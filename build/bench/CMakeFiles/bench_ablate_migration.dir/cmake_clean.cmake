file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_migration.dir/bench_ablate_migration.cc.o"
  "CMakeFiles/bench_ablate_migration.dir/bench_ablate_migration.cc.o.d"
  "bench_ablate_migration"
  "bench_ablate_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
