# Empty dependencies file for bench_ablate_density.
# This may be replaced when dependencies are built.
