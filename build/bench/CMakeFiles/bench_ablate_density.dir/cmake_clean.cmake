file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_density.dir/bench_ablate_density.cc.o"
  "CMakeFiles/bench_ablate_density.dir/bench_ablate_density.cc.o.d"
  "bench_ablate_density"
  "bench_ablate_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
