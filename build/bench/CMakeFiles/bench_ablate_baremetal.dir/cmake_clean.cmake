file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_baremetal.dir/bench_ablate_baremetal.cc.o"
  "CMakeFiles/bench_ablate_baremetal.dir/bench_ablate_baremetal.cc.o.d"
  "bench_ablate_baremetal"
  "bench_ablate_baremetal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_baremetal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
