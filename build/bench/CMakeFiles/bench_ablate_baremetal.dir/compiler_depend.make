# Empty compiler generated dependencies file for bench_ablate_baremetal.
# This may be replaced when dependencies are built.
