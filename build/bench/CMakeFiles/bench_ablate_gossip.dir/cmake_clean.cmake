file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_gossip.dir/bench_ablate_gossip.cc.o"
  "CMakeFiles/bench_ablate_gossip.dir/bench_ablate_gossip.cc.o.d"
  "bench_ablate_gossip"
  "bench_ablate_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
