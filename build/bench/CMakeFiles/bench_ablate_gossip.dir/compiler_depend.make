# Empty compiler generated dependencies file for bench_ablate_gossip.
# This may be replaced when dependencies are built.
