file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_economics.dir/bench_ablate_economics.cc.o"
  "CMakeFiles/bench_ablate_economics.dir/bench_ablate_economics.cc.o.d"
  "bench_ablate_economics"
  "bench_ablate_economics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
