# Empty dependencies file for bench_ablate_economics.
# This may be replaced when dependencies are built.
