# Empty dependencies file for bench_ablate_ipless.
# This may be replaced when dependencies are built.
