file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_ipless.dir/bench_ablate_ipless.cc.o"
  "CMakeFiles/bench_ablate_ipless.dir/bench_ablate_ipless.cc.o.d"
  "bench_ablate_ipless"
  "bench_ablate_ipless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_ipless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
