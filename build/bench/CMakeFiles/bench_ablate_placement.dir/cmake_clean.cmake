file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_placement.dir/bench_ablate_placement.cc.o"
  "CMakeFiles/bench_ablate_placement.dir/bench_ablate_placement.cc.o.d"
  "bench_ablate_placement"
  "bench_ablate_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
