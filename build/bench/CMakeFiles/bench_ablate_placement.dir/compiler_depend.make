# Empty compiler generated dependencies file for bench_ablate_placement.
# This may be replaced when dependencies are built.
