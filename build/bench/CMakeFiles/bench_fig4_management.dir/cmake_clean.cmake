file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_management.dir/bench_fig4_management.cc.o"
  "CMakeFiles/bench_fig4_management.dir/bench_fig4_management.cc.o.d"
  "bench_fig4_management"
  "bench_fig4_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
