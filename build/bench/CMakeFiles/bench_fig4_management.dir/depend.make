# Empty dependencies file for bench_fig4_management.
# This may be replaced when dependencies are built.
