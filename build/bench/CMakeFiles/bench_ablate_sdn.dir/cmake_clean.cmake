file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_sdn.dir/bench_ablate_sdn.cc.o"
  "CMakeFiles/bench_ablate_sdn.dir/bench_ablate_sdn.cc.o.d"
  "bench_ablate_sdn"
  "bench_ablate_sdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_sdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
