# Empty dependencies file for bench_ablate_sdn.
# This may be replaced when dependencies are built.
