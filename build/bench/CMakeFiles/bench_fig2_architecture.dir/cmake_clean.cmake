file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_architecture.dir/bench_fig2_architecture.cc.o"
  "CMakeFiles/bench_fig2_architecture.dir/bench_fig2_architecture.cc.o.d"
  "bench_fig2_architecture"
  "bench_fig2_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
