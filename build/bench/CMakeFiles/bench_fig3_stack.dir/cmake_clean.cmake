file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_stack.dir/bench_fig3_stack.cc.o"
  "CMakeFiles/bench_fig3_stack.dir/bench_fig3_stack.cc.o.d"
  "bench_fig3_stack"
  "bench_fig3_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
