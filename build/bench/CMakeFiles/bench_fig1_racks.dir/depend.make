# Empty dependencies file for bench_fig1_racks.
# This may be replaced when dependencies are built.
