file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_racks.dir/bench_fig1_racks.cc.o"
  "CMakeFiles/bench_fig1_racks.dir/bench_fig1_racks.cc.o.d"
  "bench_fig1_racks"
  "bench_fig1_racks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_racks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
