file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_power.dir/bench_ablate_power.cc.o"
  "CMakeFiles/bench_ablate_power.dir/bench_ablate_power.cc.o.d"
  "bench_ablate_power"
  "bench_ablate_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
