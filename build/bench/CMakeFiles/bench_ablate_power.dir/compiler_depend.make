# Empty compiler generated dependencies file for bench_ablate_power.
# This may be replaced when dependencies are built.
