# Empty compiler generated dependencies file for picloud_os.
# This may be replaced when dependencies are built.
