
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/container.cc" "src/os/CMakeFiles/picloud_os.dir/container.cc.o" "gcc" "src/os/CMakeFiles/picloud_os.dir/container.cc.o.d"
  "/root/repo/src/os/memory.cc" "src/os/CMakeFiles/picloud_os.dir/memory.cc.o" "gcc" "src/os/CMakeFiles/picloud_os.dir/memory.cc.o.d"
  "/root/repo/src/os/node_os.cc" "src/os/CMakeFiles/picloud_os.dir/node_os.cc.o" "gcc" "src/os/CMakeFiles/picloud_os.dir/node_os.cc.o.d"
  "/root/repo/src/os/scheduler.cc" "src/os/CMakeFiles/picloud_os.dir/scheduler.cc.o" "gcc" "src/os/CMakeFiles/picloud_os.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/picloud_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/picloud_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/picloud_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/picloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/picloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
