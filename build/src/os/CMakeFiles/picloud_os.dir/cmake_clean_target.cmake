file(REMOVE_RECURSE
  "libpicloud_os.a"
)
