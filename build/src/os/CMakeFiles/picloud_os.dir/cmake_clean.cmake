file(REMOVE_RECURSE
  "CMakeFiles/picloud_os.dir/container.cc.o"
  "CMakeFiles/picloud_os.dir/container.cc.o.d"
  "CMakeFiles/picloud_os.dir/memory.cc.o"
  "CMakeFiles/picloud_os.dir/memory.cc.o.d"
  "CMakeFiles/picloud_os.dir/node_os.cc.o"
  "CMakeFiles/picloud_os.dir/node_os.cc.o.d"
  "CMakeFiles/picloud_os.dir/scheduler.cc.o"
  "CMakeFiles/picloud_os.dir/scheduler.cc.o.d"
  "libpicloud_os.a"
  "libpicloud_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picloud_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
