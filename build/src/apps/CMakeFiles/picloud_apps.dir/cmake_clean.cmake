file(REMOVE_RECURSE
  "CMakeFiles/picloud_apps.dir/batch.cc.o"
  "CMakeFiles/picloud_apps.dir/batch.cc.o.d"
  "CMakeFiles/picloud_apps.dir/dfs.cc.o"
  "CMakeFiles/picloud_apps.dir/dfs.cc.o.d"
  "CMakeFiles/picloud_apps.dir/factory.cc.o"
  "CMakeFiles/picloud_apps.dir/factory.cc.o.d"
  "CMakeFiles/picloud_apps.dir/httpd.cc.o"
  "CMakeFiles/picloud_apps.dir/httpd.cc.o.d"
  "CMakeFiles/picloud_apps.dir/kvstore.cc.o"
  "CMakeFiles/picloud_apps.dir/kvstore.cc.o.d"
  "CMakeFiles/picloud_apps.dir/loadgen.cc.o"
  "CMakeFiles/picloud_apps.dir/loadgen.cc.o.d"
  "CMakeFiles/picloud_apps.dir/mapreduce.cc.o"
  "CMakeFiles/picloud_apps.dir/mapreduce.cc.o.d"
  "CMakeFiles/picloud_apps.dir/trace.cc.o"
  "CMakeFiles/picloud_apps.dir/trace.cc.o.d"
  "libpicloud_apps.a"
  "libpicloud_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picloud_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
