file(REMOVE_RECURSE
  "libpicloud_apps.a"
)
