# Empty compiler generated dependencies file for picloud_apps.
# This may be replaced when dependencies are built.
