
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/batch.cc" "src/apps/CMakeFiles/picloud_apps.dir/batch.cc.o" "gcc" "src/apps/CMakeFiles/picloud_apps.dir/batch.cc.o.d"
  "/root/repo/src/apps/dfs.cc" "src/apps/CMakeFiles/picloud_apps.dir/dfs.cc.o" "gcc" "src/apps/CMakeFiles/picloud_apps.dir/dfs.cc.o.d"
  "/root/repo/src/apps/factory.cc" "src/apps/CMakeFiles/picloud_apps.dir/factory.cc.o" "gcc" "src/apps/CMakeFiles/picloud_apps.dir/factory.cc.o.d"
  "/root/repo/src/apps/httpd.cc" "src/apps/CMakeFiles/picloud_apps.dir/httpd.cc.o" "gcc" "src/apps/CMakeFiles/picloud_apps.dir/httpd.cc.o.d"
  "/root/repo/src/apps/kvstore.cc" "src/apps/CMakeFiles/picloud_apps.dir/kvstore.cc.o" "gcc" "src/apps/CMakeFiles/picloud_apps.dir/kvstore.cc.o.d"
  "/root/repo/src/apps/loadgen.cc" "src/apps/CMakeFiles/picloud_apps.dir/loadgen.cc.o" "gcc" "src/apps/CMakeFiles/picloud_apps.dir/loadgen.cc.o.d"
  "/root/repo/src/apps/mapreduce.cc" "src/apps/CMakeFiles/picloud_apps.dir/mapreduce.cc.o" "gcc" "src/apps/CMakeFiles/picloud_apps.dir/mapreduce.cc.o.d"
  "/root/repo/src/apps/trace.cc" "src/apps/CMakeFiles/picloud_apps.dir/trace.cc.o" "gcc" "src/apps/CMakeFiles/picloud_apps.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/picloud_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/picloud_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/picloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/picloud_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/picloud_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/picloud_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
