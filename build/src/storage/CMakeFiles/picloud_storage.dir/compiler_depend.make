# Empty compiler generated dependencies file for picloud_storage.
# This may be replaced when dependencies are built.
