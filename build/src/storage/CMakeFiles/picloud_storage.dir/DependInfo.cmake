
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/image.cc" "src/storage/CMakeFiles/picloud_storage.dir/image.cc.o" "gcc" "src/storage/CMakeFiles/picloud_storage.dir/image.cc.o.d"
  "/root/repo/src/storage/sdcard.cc" "src/storage/CMakeFiles/picloud_storage.dir/sdcard.cc.o" "gcc" "src/storage/CMakeFiles/picloud_storage.dir/sdcard.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/picloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/picloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
