file(REMOVE_RECURSE
  "libpicloud_storage.a"
)
