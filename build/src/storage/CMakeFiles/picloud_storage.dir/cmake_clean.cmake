file(REMOVE_RECURSE
  "CMakeFiles/picloud_storage.dir/image.cc.o"
  "CMakeFiles/picloud_storage.dir/image.cc.o.d"
  "CMakeFiles/picloud_storage.dir/sdcard.cc.o"
  "CMakeFiles/picloud_storage.dir/sdcard.cc.o.d"
  "libpicloud_storage.a"
  "libpicloud_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picloud_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
