file(REMOVE_RECURSE
  "CMakeFiles/picloud_util.dir/json.cc.o"
  "CMakeFiles/picloud_util.dir/json.cc.o.d"
  "CMakeFiles/picloud_util.dir/logging.cc.o"
  "CMakeFiles/picloud_util.dir/logging.cc.o.d"
  "CMakeFiles/picloud_util.dir/rng.cc.o"
  "CMakeFiles/picloud_util.dir/rng.cc.o.d"
  "CMakeFiles/picloud_util.dir/stats.cc.o"
  "CMakeFiles/picloud_util.dir/stats.cc.o.d"
  "CMakeFiles/picloud_util.dir/strings.cc.o"
  "CMakeFiles/picloud_util.dir/strings.cc.o.d"
  "libpicloud_util.a"
  "libpicloud_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picloud_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
