file(REMOVE_RECURSE
  "libpicloud_util.a"
)
