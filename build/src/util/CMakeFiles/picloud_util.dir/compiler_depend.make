# Empty compiler generated dependencies file for picloud_util.
# This may be replaced when dependencies are built.
