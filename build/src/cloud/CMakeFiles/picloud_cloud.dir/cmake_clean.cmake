file(REMOVE_RECURSE
  "CMakeFiles/picloud_cloud.dir/autopilot.cc.o"
  "CMakeFiles/picloud_cloud.dir/autopilot.cc.o.d"
  "CMakeFiles/picloud_cloud.dir/chaos.cc.o"
  "CMakeFiles/picloud_cloud.dir/chaos.cc.o.d"
  "CMakeFiles/picloud_cloud.dir/cloud.cc.o"
  "CMakeFiles/picloud_cloud.dir/cloud.cc.o.d"
  "CMakeFiles/picloud_cloud.dir/control_panel.cc.o"
  "CMakeFiles/picloud_cloud.dir/control_panel.cc.o.d"
  "CMakeFiles/picloud_cloud.dir/economics.cc.o"
  "CMakeFiles/picloud_cloud.dir/economics.cc.o.d"
  "CMakeFiles/picloud_cloud.dir/gossip.cc.o"
  "CMakeFiles/picloud_cloud.dir/gossip.cc.o.d"
  "CMakeFiles/picloud_cloud.dir/migration.cc.o"
  "CMakeFiles/picloud_cloud.dir/migration.cc.o.d"
  "CMakeFiles/picloud_cloud.dir/monitor.cc.o"
  "CMakeFiles/picloud_cloud.dir/monitor.cc.o.d"
  "CMakeFiles/picloud_cloud.dir/node_daemon.cc.o"
  "CMakeFiles/picloud_cloud.dir/node_daemon.cc.o.d"
  "CMakeFiles/picloud_cloud.dir/pimaster.cc.o"
  "CMakeFiles/picloud_cloud.dir/pimaster.cc.o.d"
  "CMakeFiles/picloud_cloud.dir/placement.cc.o"
  "CMakeFiles/picloud_cloud.dir/placement.cc.o.d"
  "CMakeFiles/picloud_cloud.dir/replicaset.cc.o"
  "CMakeFiles/picloud_cloud.dir/replicaset.cc.o.d"
  "libpicloud_cloud.a"
  "libpicloud_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picloud_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
