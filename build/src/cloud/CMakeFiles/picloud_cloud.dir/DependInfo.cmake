
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/autopilot.cc" "src/cloud/CMakeFiles/picloud_cloud.dir/autopilot.cc.o" "gcc" "src/cloud/CMakeFiles/picloud_cloud.dir/autopilot.cc.o.d"
  "/root/repo/src/cloud/chaos.cc" "src/cloud/CMakeFiles/picloud_cloud.dir/chaos.cc.o" "gcc" "src/cloud/CMakeFiles/picloud_cloud.dir/chaos.cc.o.d"
  "/root/repo/src/cloud/cloud.cc" "src/cloud/CMakeFiles/picloud_cloud.dir/cloud.cc.o" "gcc" "src/cloud/CMakeFiles/picloud_cloud.dir/cloud.cc.o.d"
  "/root/repo/src/cloud/control_panel.cc" "src/cloud/CMakeFiles/picloud_cloud.dir/control_panel.cc.o" "gcc" "src/cloud/CMakeFiles/picloud_cloud.dir/control_panel.cc.o.d"
  "/root/repo/src/cloud/economics.cc" "src/cloud/CMakeFiles/picloud_cloud.dir/economics.cc.o" "gcc" "src/cloud/CMakeFiles/picloud_cloud.dir/economics.cc.o.d"
  "/root/repo/src/cloud/gossip.cc" "src/cloud/CMakeFiles/picloud_cloud.dir/gossip.cc.o" "gcc" "src/cloud/CMakeFiles/picloud_cloud.dir/gossip.cc.o.d"
  "/root/repo/src/cloud/migration.cc" "src/cloud/CMakeFiles/picloud_cloud.dir/migration.cc.o" "gcc" "src/cloud/CMakeFiles/picloud_cloud.dir/migration.cc.o.d"
  "/root/repo/src/cloud/monitor.cc" "src/cloud/CMakeFiles/picloud_cloud.dir/monitor.cc.o" "gcc" "src/cloud/CMakeFiles/picloud_cloud.dir/monitor.cc.o.d"
  "/root/repo/src/cloud/node_daemon.cc" "src/cloud/CMakeFiles/picloud_cloud.dir/node_daemon.cc.o" "gcc" "src/cloud/CMakeFiles/picloud_cloud.dir/node_daemon.cc.o.d"
  "/root/repo/src/cloud/pimaster.cc" "src/cloud/CMakeFiles/picloud_cloud.dir/pimaster.cc.o" "gcc" "src/cloud/CMakeFiles/picloud_cloud.dir/pimaster.cc.o.d"
  "/root/repo/src/cloud/placement.cc" "src/cloud/CMakeFiles/picloud_cloud.dir/placement.cc.o" "gcc" "src/cloud/CMakeFiles/picloud_cloud.dir/placement.cc.o.d"
  "/root/repo/src/cloud/replicaset.cc" "src/cloud/CMakeFiles/picloud_cloud.dir/replicaset.cc.o" "gcc" "src/cloud/CMakeFiles/picloud_cloud.dir/replicaset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/picloud_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/picloud_os.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/picloud_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/picloud_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/picloud_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/picloud_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/picloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/picloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
