file(REMOVE_RECURSE
  "libpicloud_cloud.a"
)
