# Empty dependencies file for picloud_cloud.
# This may be replaced when dependencies are built.
