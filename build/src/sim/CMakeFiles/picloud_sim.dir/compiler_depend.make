# Empty compiler generated dependencies file for picloud_sim.
# This may be replaced when dependencies are built.
