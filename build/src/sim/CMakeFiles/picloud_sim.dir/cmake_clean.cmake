file(REMOVE_RECURSE
  "CMakeFiles/picloud_sim.dir/event_queue.cc.o"
  "CMakeFiles/picloud_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/picloud_sim.dir/simulation.cc.o"
  "CMakeFiles/picloud_sim.dir/simulation.cc.o.d"
  "CMakeFiles/picloud_sim.dir/time.cc.o"
  "CMakeFiles/picloud_sim.dir/time.cc.o.d"
  "libpicloud_sim.a"
  "libpicloud_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picloud_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
