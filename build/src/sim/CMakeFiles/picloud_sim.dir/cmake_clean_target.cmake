file(REMOVE_RECURSE
  "libpicloud_sim.a"
)
