# Empty dependencies file for picloud_proto.
# This may be replaced when dependencies are built.
