file(REMOVE_RECURSE
  "CMakeFiles/picloud_proto.dir/dhcp.cc.o"
  "CMakeFiles/picloud_proto.dir/dhcp.cc.o.d"
  "CMakeFiles/picloud_proto.dir/dns.cc.o"
  "CMakeFiles/picloud_proto.dir/dns.cc.o.d"
  "CMakeFiles/picloud_proto.dir/http.cc.o"
  "CMakeFiles/picloud_proto.dir/http.cc.o.d"
  "CMakeFiles/picloud_proto.dir/rest.cc.o"
  "CMakeFiles/picloud_proto.dir/rest.cc.o.d"
  "libpicloud_proto.a"
  "libpicloud_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picloud_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
