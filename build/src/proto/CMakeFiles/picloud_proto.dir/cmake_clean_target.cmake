file(REMOVE_RECURSE
  "libpicloud_proto.a"
)
