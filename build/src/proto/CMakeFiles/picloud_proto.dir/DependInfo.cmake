
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/dhcp.cc" "src/proto/CMakeFiles/picloud_proto.dir/dhcp.cc.o" "gcc" "src/proto/CMakeFiles/picloud_proto.dir/dhcp.cc.o.d"
  "/root/repo/src/proto/dns.cc" "src/proto/CMakeFiles/picloud_proto.dir/dns.cc.o" "gcc" "src/proto/CMakeFiles/picloud_proto.dir/dns.cc.o.d"
  "/root/repo/src/proto/http.cc" "src/proto/CMakeFiles/picloud_proto.dir/http.cc.o" "gcc" "src/proto/CMakeFiles/picloud_proto.dir/http.cc.o.d"
  "/root/repo/src/proto/rest.cc" "src/proto/CMakeFiles/picloud_proto.dir/rest.cc.o" "gcc" "src/proto/CMakeFiles/picloud_proto.dir/rest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/picloud_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/picloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/picloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
