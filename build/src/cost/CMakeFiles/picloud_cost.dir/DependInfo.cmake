
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/cost_model.cc" "src/cost/CMakeFiles/picloud_cost.dir/cost_model.cc.o" "gcc" "src/cost/CMakeFiles/picloud_cost.dir/cost_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/picloud_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/picloud_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/picloud_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
