file(REMOVE_RECURSE
  "libpicloud_cost.a"
)
