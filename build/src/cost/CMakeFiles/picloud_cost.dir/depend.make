# Empty dependencies file for picloud_cost.
# This may be replaced when dependencies are built.
