file(REMOVE_RECURSE
  "CMakeFiles/picloud_cost.dir/cost_model.cc.o"
  "CMakeFiles/picloud_cost.dir/cost_model.cc.o.d"
  "libpicloud_cost.a"
  "libpicloud_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picloud_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
