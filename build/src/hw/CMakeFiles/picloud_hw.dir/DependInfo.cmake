
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/device.cc" "src/hw/CMakeFiles/picloud_hw.dir/device.cc.o" "gcc" "src/hw/CMakeFiles/picloud_hw.dir/device.cc.o.d"
  "/root/repo/src/hw/power.cc" "src/hw/CMakeFiles/picloud_hw.dir/power.cc.o" "gcc" "src/hw/CMakeFiles/picloud_hw.dir/power.cc.o.d"
  "/root/repo/src/hw/rack.cc" "src/hw/CMakeFiles/picloud_hw.dir/rack.cc.o" "gcc" "src/hw/CMakeFiles/picloud_hw.dir/rack.cc.o.d"
  "/root/repo/src/hw/spec.cc" "src/hw/CMakeFiles/picloud_hw.dir/spec.cc.o" "gcc" "src/hw/CMakeFiles/picloud_hw.dir/spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/picloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/picloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
