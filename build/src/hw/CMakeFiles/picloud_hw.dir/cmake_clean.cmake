file(REMOVE_RECURSE
  "CMakeFiles/picloud_hw.dir/device.cc.o"
  "CMakeFiles/picloud_hw.dir/device.cc.o.d"
  "CMakeFiles/picloud_hw.dir/power.cc.o"
  "CMakeFiles/picloud_hw.dir/power.cc.o.d"
  "CMakeFiles/picloud_hw.dir/rack.cc.o"
  "CMakeFiles/picloud_hw.dir/rack.cc.o.d"
  "CMakeFiles/picloud_hw.dir/spec.cc.o"
  "CMakeFiles/picloud_hw.dir/spec.cc.o.d"
  "libpicloud_hw.a"
  "libpicloud_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picloud_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
