# Empty compiler generated dependencies file for picloud_hw.
# This may be replaced when dependencies are built.
