file(REMOVE_RECURSE
  "libpicloud_hw.a"
)
