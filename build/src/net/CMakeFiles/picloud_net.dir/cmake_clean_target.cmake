file(REMOVE_RECURSE
  "libpicloud_net.a"
)
