# Empty compiler generated dependencies file for picloud_net.
# This may be replaced when dependencies are built.
