file(REMOVE_RECURSE
  "CMakeFiles/picloud_net.dir/addr.cc.o"
  "CMakeFiles/picloud_net.dir/addr.cc.o.d"
  "CMakeFiles/picloud_net.dir/fabric.cc.o"
  "CMakeFiles/picloud_net.dir/fabric.cc.o.d"
  "CMakeFiles/picloud_net.dir/network.cc.o"
  "CMakeFiles/picloud_net.dir/network.cc.o.d"
  "CMakeFiles/picloud_net.dir/sdn.cc.o"
  "CMakeFiles/picloud_net.dir/sdn.cc.o.d"
  "CMakeFiles/picloud_net.dir/topology.cc.o"
  "CMakeFiles/picloud_net.dir/topology.cc.o.d"
  "libpicloud_net.a"
  "libpicloud_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picloud_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
