# Empty dependencies file for picloud_shell.
# This may be replaced when dependencies are built.
