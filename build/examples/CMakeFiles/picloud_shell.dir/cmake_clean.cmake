file(REMOVE_RECURSE
  "CMakeFiles/picloud_shell.dir/picloud_shell.cpp.o"
  "CMakeFiles/picloud_shell.dir/picloud_shell.cpp.o.d"
  "picloud_shell"
  "picloud_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picloud_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
