# Empty compiler generated dependencies file for sdn_playground.
# This may be replaced when dependencies are built.
