file(REMOVE_RECURSE
  "CMakeFiles/sdn_playground.dir/sdn_playground.cpp.o"
  "CMakeFiles/sdn_playground.dir/sdn_playground.cpp.o.d"
  "sdn_playground"
  "sdn_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
