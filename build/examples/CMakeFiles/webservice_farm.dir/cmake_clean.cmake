file(REMOVE_RECURSE
  "CMakeFiles/webservice_farm.dir/webservice_farm.cpp.o"
  "CMakeFiles/webservice_farm.dir/webservice_farm.cpp.o.d"
  "webservice_farm"
  "webservice_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webservice_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
