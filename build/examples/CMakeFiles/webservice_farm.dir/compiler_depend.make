# Empty compiler generated dependencies file for webservice_farm.
# This may be replaced when dependencies are built.
