# Empty compiler generated dependencies file for cloud_placement_test.
# This may be replaced when dependencies are built.
