file(REMOVE_RECURSE
  "CMakeFiles/cloud_placement_test.dir/cloud_placement_test.cc.o"
  "CMakeFiles/cloud_placement_test.dir/cloud_placement_test.cc.o.d"
  "cloud_placement_test"
  "cloud_placement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
