file(REMOVE_RECURSE
  "CMakeFiles/cloud_gossip_test.dir/cloud_gossip_test.cc.o"
  "CMakeFiles/cloud_gossip_test.dir/cloud_gossip_test.cc.o.d"
  "cloud_gossip_test"
  "cloud_gossip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_gossip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
