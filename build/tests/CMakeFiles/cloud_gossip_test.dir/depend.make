# Empty dependencies file for cloud_gossip_test.
# This may be replaced when dependencies are built.
