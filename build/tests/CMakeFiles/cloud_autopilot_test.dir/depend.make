# Empty dependencies file for cloud_autopilot_test.
# This may be replaced when dependencies are built.
