file(REMOVE_RECURSE
  "CMakeFiles/cloud_autopilot_test.dir/cloud_autopilot_test.cc.o"
  "CMakeFiles/cloud_autopilot_test.dir/cloud_autopilot_test.cc.o.d"
  "cloud_autopilot_test"
  "cloud_autopilot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_autopilot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
