file(REMOVE_RECURSE
  "CMakeFiles/cloud_chaos_test.dir/cloud_chaos_test.cc.o"
  "CMakeFiles/cloud_chaos_test.dir/cloud_chaos_test.cc.o.d"
  "cloud_chaos_test"
  "cloud_chaos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
