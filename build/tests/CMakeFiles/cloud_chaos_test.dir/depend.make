# Empty dependencies file for cloud_chaos_test.
# This may be replaced when dependencies are built.
