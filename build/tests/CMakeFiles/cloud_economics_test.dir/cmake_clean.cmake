file(REMOVE_RECURSE
  "CMakeFiles/cloud_economics_test.dir/cloud_economics_test.cc.o"
  "CMakeFiles/cloud_economics_test.dir/cloud_economics_test.cc.o.d"
  "cloud_economics_test"
  "cloud_economics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_economics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
