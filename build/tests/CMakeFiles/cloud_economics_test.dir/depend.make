# Empty dependencies file for cloud_economics_test.
# This may be replaced when dependencies are built.
