
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_sdn_test.cc" "tests/CMakeFiles/net_sdn_test.dir/net_sdn_test.cc.o" "gcc" "tests/CMakeFiles/net_sdn_test.dir/net_sdn_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloud/CMakeFiles/picloud_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/picloud_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/picloud_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/picloud_os.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/picloud_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/picloud_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/picloud_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/picloud_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/picloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/picloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
