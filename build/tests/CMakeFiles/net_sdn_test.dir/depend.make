# Empty dependencies file for net_sdn_test.
# This may be replaced when dependencies are built.
