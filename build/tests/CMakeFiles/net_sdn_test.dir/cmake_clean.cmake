file(REMOVE_RECURSE
  "CMakeFiles/net_sdn_test.dir/net_sdn_test.cc.o"
  "CMakeFiles/net_sdn_test.dir/net_sdn_test.cc.o.d"
  "net_sdn_test"
  "net_sdn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_sdn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
