file(REMOVE_RECURSE
  "CMakeFiles/os_scheduler_test.dir/os_scheduler_test.cc.o"
  "CMakeFiles/os_scheduler_test.dir/os_scheduler_test.cc.o.d"
  "os_scheduler_test"
  "os_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
