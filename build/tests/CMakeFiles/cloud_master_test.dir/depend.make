# Empty dependencies file for cloud_master_test.
# This may be replaced when dependencies are built.
