file(REMOVE_RECURSE
  "CMakeFiles/cloud_master_test.dir/cloud_master_test.cc.o"
  "CMakeFiles/cloud_master_test.dir/cloud_master_test.cc.o.d"
  "cloud_master_test"
  "cloud_master_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_master_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
