# Empty dependencies file for cloud_replicaset_test.
# This may be replaced when dependencies are built.
