file(REMOVE_RECURSE
  "CMakeFiles/cloud_replicaset_test.dir/cloud_replicaset_test.cc.o"
  "CMakeFiles/cloud_replicaset_test.dir/cloud_replicaset_test.cc.o.d"
  "cloud_replicaset_test"
  "cloud_replicaset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_replicaset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
