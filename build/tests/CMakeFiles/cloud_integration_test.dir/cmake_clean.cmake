file(REMOVE_RECURSE
  "CMakeFiles/cloud_integration_test.dir/cloud_integration_test.cc.o"
  "CMakeFiles/cloud_integration_test.dir/cloud_integration_test.cc.o.d"
  "cloud_integration_test"
  "cloud_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
