file(REMOVE_RECURSE
  "CMakeFiles/cloud_crosslayer_test.dir/cloud_crosslayer_test.cc.o"
  "CMakeFiles/cloud_crosslayer_test.dir/cloud_crosslayer_test.cc.o.d"
  "cloud_crosslayer_test"
  "cloud_crosslayer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_crosslayer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
