file(REMOVE_RECURSE
  "CMakeFiles/os_container_test.dir/os_container_test.cc.o"
  "CMakeFiles/os_container_test.dir/os_container_test.cc.o.d"
  "os_container_test"
  "os_container_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_container_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
