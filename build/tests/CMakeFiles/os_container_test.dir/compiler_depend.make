# Empty compiler generated dependencies file for os_container_test.
# This may be replaced when dependencies are built.
