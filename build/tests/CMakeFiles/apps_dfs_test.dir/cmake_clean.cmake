file(REMOVE_RECURSE
  "CMakeFiles/apps_dfs_test.dir/apps_dfs_test.cc.o"
  "CMakeFiles/apps_dfs_test.dir/apps_dfs_test.cc.o.d"
  "apps_dfs_test"
  "apps_dfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_dfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
