#include "cloud/monitor.h"

namespace picloud::cloud {

util::Json NodeSample::to_json() const {
  util::Json gauges = util::Json::object();
  gauges.set("cpu_utilization", cpu_utilization);
  gauges.set("mem_used", static_cast<unsigned long long>(mem_used));
  gauges.set("mem_capacity", static_cast<unsigned long long>(mem_capacity));
  gauges.set("sd_used", static_cast<unsigned long long>(sd_used));
  gauges.set("containers_total", containers_total);
  gauges.set("containers_running", containers_running);
  gauges.set("power_watts", power_watts);
  util::Json j = util::Json::object();
  j.set("counters", util::Json::object());
  j.set("gauges", std::move(gauges));
  return j;
}

NodeSample NodeSample::from_json(const util::Json& j, sim::SimTime at) {
  NodeSample s;
  s.at = at;
  const util::Json& g = j.get("gauges");
  s.cpu_utilization = g.get_number("cpu_utilization");
  s.mem_used = static_cast<std::uint64_t>(g.get_number("mem_used"));
  s.mem_capacity = static_cast<std::uint64_t>(g.get_number("mem_capacity"));
  s.sd_used = static_cast<std::uint64_t>(g.get_number("sd_used"));
  s.containers_total = static_cast<int>(g.get_number("containers_total"));
  s.containers_running = static_cast<int>(g.get_number("containers_running"));
  s.power_watts = g.get_number("power_watts");
  return s;
}

ClusterMonitor::ClusterMonitor(sim::Simulation& sim,
                               sim::Duration liveness_window,
                               size_t history_depth)
    : sim_(sim),
      liveness_window_(liveness_window),
      history_depth_(history_depth),
      samples_(&sim.metrics().counter("cloud.monitor.samples_ingested")) {}

void ClusterMonitor::register_node(const std::string& hostname,
                                   const std::string& mac, net::Ipv4Addr ip,
                                   int rack, double cpu_capacity_hz) {
  NodeRecord& rec = records_[hostname];
  rec.hostname = hostname;
  rec.mac = mac;
  rec.ip = ip;
  rec.rack = rack;
  rec.cpu_capacity_hz = cpu_capacity_hz;
  rec.registered_at = sim_.now();
  rec.last_seen = sim_.now();
}

bool ClusterMonitor::known(const std::string& hostname) const {
  return records_.count(hostname) > 0;
}

void ClusterMonitor::record_sample(const std::string& hostname,
                                   const NodeSample& sample) {
  auto it = records_.find(hostname);
  if (it == records_.end()) return;  // unregistered: ignore
  NodeRecord& rec = it->second;
  if (!rec.baseline_set) {
    rec.baseline_mem = sample.mem_used;
    rec.baseline_set = true;
  }
  rec.last_seen = sample.at;
  rec.latest = sample;
  rec.history.push_back(sample);
  while (rec.history.size() > history_depth_) rec.history.pop_front();
  samples_->inc();
}

bool ClusterMonitor::alive(const std::string& hostname) const {
  auto it = records_.find(hostname);
  if (it == records_.end()) return false;
  return sim_.now() - it->second.last_seen <= liveness_window_;
}

std::optional<NodeRecord> ClusterMonitor::node(
    const std::string& hostname) const {
  auto it = records_.find(hostname);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeRecord> ClusterMonitor::nodes() const {
  std::vector<NodeRecord> out;
  out.reserve(records_.size());
  for (const auto& [hostname, rec] : records_) out.push_back(rec);
  return out;
}

std::vector<NodeView> ClusterMonitor::views() const {
  std::vector<NodeView> out;
  out.reserve(records_.size());
  for (const auto& [hostname, rec] : records_) {
    NodeView v;
    v.hostname = rec.hostname;
    v.rack = rec.rack;
    v.alive = alive(hostname);
    v.mem_capacity = rec.latest.mem_capacity;
    v.mem_used = rec.latest.mem_used;
    v.baseline_mem = rec.baseline_mem;
    v.cpu_capacity_hz = rec.cpu_capacity_hz;
    v.cpu_utilization = rec.latest.cpu_utilization;
    v.containers = rec.latest.containers_total;
    out.push_back(v);
  }
  return out;
}

ClusterSummary ClusterMonitor::summary() const {
  ClusterSummary s;
  s.nodes_total = static_cast<int>(records_.size());
  double cpu_sum = 0;
  for (const auto& [hostname, rec] : records_) {
    if (!alive(hostname)) continue;
    ++s.nodes_alive;
    cpu_sum += rec.latest.cpu_utilization;
    s.containers_running += rec.latest.containers_running;
    s.mem_used += rec.latest.mem_used;
    s.mem_capacity += rec.latest.mem_capacity;
    s.power_watts += rec.latest.power_watts;
  }
  s.avg_cpu_utilization = s.nodes_alive > 0 ? cpu_sum / s.nodes_alive : 0;
  return s;
}

}  // namespace picloud::cloud
