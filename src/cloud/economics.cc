#include "cloud/economics.h"

#include <algorithm>

#include "util/logging.h"

namespace picloud::cloud {

std::vector<Offering> standard_offerings() {
  return {
      {"pi.micro", 0.25, 40ull << 20, 0.008},
      {"pi.small", 0.50, 48ull << 20, 0.018},
      {"pi.large", 1.00, 96ull << 20, 0.040},
  };
}

CloudEconomics::CloudEconomics(sim::Simulation& sim, PiMaster& master,
                               Config config)
    : sim_(sim), master_(master), config_(std::move(config)) {}

util::Result<Offering> CloudEconomics::offering(const std::string& name) const {
  for (const Offering& o : config_.catalogue) {
    if (o.name == name) return o;
  }
  return util::Error::make("not_found", "no such offering: " + name);
}

double CloudEconomics::cpu_sold(const std::string& hostname) const {
  double sold = 0;
  for (const auto& [instance, tenant] : tenants_) {
    if (tenant.active && tenant.hostname == hostname) {
      sold += tenant.offering.cpu_fraction;
    }
  }
  return sold;
}

util::Result<std::string> CloudEconomics::pick_host(const Offering& offering) {
  std::vector<NodeView> views = master_.admission_views();
  std::sort(views.begin(), views.end(),
            [](const NodeView& a, const NodeView& b) {
              return a.hostname < b.hostname;
            });
  const PlacementLimits& limits = master_.master_config().placement_limits;
  for (const NodeView& v : views) {
    if (!v.alive) continue;
    if (v.containers >= limits.max_containers_per_node) continue;
    if (static_cast<double>(v.mem_used + offering.memory_bytes) >
        static_cast<double>(v.mem_capacity) * limits.mem_headroom) {
      continue;
    }
    // The economic dimension: sell CPU only up to the overcommit budget.
    if (cpu_sold(v.hostname) + offering.cpu_fraction >
        config_.overcommit + 1e-9) {
      continue;
    }
    return v.hostname;
  }
  return util::Error::make("no_capacity",
                           "no node within the overcommit budget");
}

void CloudEconomics::launch(const std::string& instance,
                            const std::string& offering_name,
                            const std::string& app_kind, LaunchCallback cb) {
  auto chosen = offering(offering_name);
  if (!chosen.ok()) {
    ++rejected_;
    cb(chosen.error());
    return;
  }
  auto host = pick_host(chosen.value());
  if (!host.ok()) {
    ++rejected_;
    cb(host.error());
    return;
  }

  PiMaster::SpawnSpec spec;
  spec.name = instance;
  spec.app_kind = app_kind;
  spec.app_params = config_.app_params;
  spec.cpu_limit = chosen.value().cpu_fraction;
  spec.memory_limit = chosen.value().memory_bytes;
  spec.hostname = host.value();
  master_.spawn_instance(
      std::move(spec),
      [this, instance, offering = chosen.value(),
       cb](util::Result<InstanceRecord> result) {
        if (!result.ok()) {
          ++rejected_;
          cb(result.error());
          return;
        }
        TenantRecord tenant;
        tenant.instance = instance;
        tenant.offering = offering;
        tenant.hostname = result.value().hostname;
        tenant.launched_at = sim_.now();
        tenants_[instance] = tenant;
        LOG_INFO("economics", "tenant %s (%s, $%.3f/h) on %s",
                 instance.c_str(), offering.name.c_str(),
                 offering.price_per_hour, tenant.hostname.c_str());
        cb(tenant);
      });
}

void CloudEconomics::terminate(const std::string& instance,
                               PiMaster::SimpleCallback cb) {
  auto it = tenants_.find(instance);
  if (it == tenants_.end() || !it->second.active) {
    cb(util::Error::make("not_found", "no active tenant: " + instance));
    return;
  }
  master_.delete_instance(instance, [this, instance,
                                     cb](util::Status status) {
    if (status.ok()) {
      auto it = tenants_.find(instance);
      if (it != tenants_.end()) {
        it->second.active = false;
        it->second.terminated_at = sim_.now();
      }
    }
    cb(status);
  });
}

double CloudEconomics::revenue_usd(sim::SimTime now) const {
  double total = 0;
  for (const auto& [instance, tenant] : tenants_) {
    total += tenant.accrued_usd(now);
  }
  return total;
}

double CloudEconomics::energy_cost_usd() const {
  return energy_kwh_ ? energy_kwh_() * config_.usd_per_kwh : 0.0;
}

std::vector<TenantRecord> CloudEconomics::tenants() const {
  std::vector<TenantRecord> out;
  out.reserve(tenants_.size());
  for (const auto& [instance, tenant] : tenants_) out.push_back(tenant);
  return out;
}

size_t CloudEconomics::active_tenants() const {
  size_t n = 0;
  for (const auto& [instance, tenant] : tenants_) {
    if (tenant.active) ++n;
  }
  return n;
}

std::vector<SloSample> CloudEconomics::slo_samples(sim::SimTime now) {
  std::vector<SloSample> out;
  for (const auto& [instance, tenant] : tenants_) {
    if (!tenant.active) continue;
    NodeDaemon* daemon = master_.node_daemon(tenant.hostname);
    if (daemon == nullptr) continue;
    os::Container* container = daemon->node().find_container(instance);
    if (container == nullptr) continue;
    SloSample sample;
    sample.instance = instance;
    sample.entitled_cycles = tenant.offering.cpu_fraction *
                             daemon->node().cpu().capacity() *
                             (now - tenant.launched_at).to_seconds();
    sample.delivered_cycles = container->cpu_cycles_used();
    out.push_back(sample);
  }
  return out;
}

}  // namespace picloud::cloud
