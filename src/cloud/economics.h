// Pay-as-you-go economics: offerings, billing, oversubscription.
//
// The paper's opening sentence frames the cloud as "outsourcing
// infrastructure on a 'pay-as-you-go' basis", lists "economic strategies
// for provisioning virtualised resources to incoming user requests" among
// the provider problems (§I), and names "oversubscription to improve cost
// efficiency" as a management lever (§III). CloudEconomics is that layer on
// top of the pimaster:
//
//   * a catalogue of instance offerings (a CPU fraction + RAM at an hourly
//     price — EC2-style types scaled to a Pi);
//   * admission control that may *oversell* CPU: the sum of sold fractions
//     on a node can exceed 1.0 by the configured overcommit factor (tenant
//     cgroups then share what physically exists);
//   * metered billing per tenant-hour, energy cost from the socket board,
//     and delivered-vs-entitled CPU as the SLO metric.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cloud/pimaster.h"
#include "sim/simulation.h"

namespace picloud::cloud {

// An instance type in the catalogue.
struct Offering {
  std::string name;            // "pi.small"
  double cpu_fraction = 0.5;   // of one Pi core, sold as the cgroup limit
  std::uint64_t memory_bytes = 30ull << 20;
  double price_per_hour = 0.02;  // USD
};

// Default catalogue: fractions of a 700 MHz core.
std::vector<Offering> standard_offerings();

struct TenantRecord {
  std::string instance;
  Offering offering;
  std::string hostname;
  sim::SimTime launched_at;
  bool active = true;
  sim::SimTime terminated_at;

  double hours(sim::SimTime now) const {
    sim::SimTime end = active ? now : terminated_at;
    return (end - launched_at).to_seconds() / 3600.0;
  }
  double accrued_usd(sim::SimTime now) const {
    return hours(now) * offering.price_per_hour;
  }
};

// Per-tenant SLO sample: what they bought vs what the scheduler delivered.
struct SloSample {
  std::string instance;
  double entitled_cycles = 0;
  double delivered_cycles = 0;
  double satisfaction() const {
    return entitled_cycles > 0
               ? std::min(delivered_cycles / entitled_cycles, 1.0)
               : 1.0;
  }
};

class CloudEconomics {
 public:
  struct Config {
    std::vector<Offering> catalogue = standard_offerings();
    // CPU may be sold up to this multiple of physical capacity per node.
    double overcommit = 1.0;
    double usd_per_kwh = 0.15;
    // Parameters handed to every tenant app at launch.
    util::Json app_params;
  };

  CloudEconomics(sim::Simulation& sim, PiMaster& master, Config config);

  // Energy source: wired to the facade's socket board (kWh so far).
  void set_energy_source(std::function<double()> kwh) {
    energy_kwh_ = std::move(kwh);
  }

  // --- The tenant API ------------------------------------------------------------
  // Launches a tenant of the named offering running `app_kind`. Placement:
  // first node (hostname order) whose *sold* CPU stays within the
  // overcommit budget and whose placement envelope fits. Asynchronous.
  using LaunchCallback = std::function<void(util::Result<TenantRecord>)>;
  void launch(const std::string& instance, const std::string& offering,
              const std::string& app_kind, LaunchCallback cb);
  void terminate(const std::string& instance, PiMaster::SimpleCallback cb);

  util::Result<Offering> offering(const std::string& name) const;

  // --- The books -------------------------------------------------------------------
  double revenue_usd(sim::SimTime now) const;   // accrued across tenants
  double energy_cost_usd() const;               // socket board * tariff
  double profit_usd(sim::SimTime now) const {
    return revenue_usd(now) - energy_cost_usd();
  }
  // Sold CPU (fractions of a core) on a node right now.
  double cpu_sold(const std::string& hostname) const;
  std::vector<TenantRecord> tenants() const;
  size_t active_tenants() const;
  std::uint64_t rejected_launches() const { return rejected_; }

  // SLO: delivered vs entitled cycles per active tenant since launch.
  // Requires the master's node accessor to reach the containers.
  std::vector<SloSample> slo_samples(sim::SimTime now);

 private:
  util::Result<std::string> pick_host(const Offering& offering);

  sim::Simulation& sim_;
  PiMaster& master_;
  Config config_;
  std::function<double()> energy_kwh_;
  std::map<std::string, TenantRecord> tenants_;
  std::uint64_t rejected_ = 0;
};

}  // namespace picloud::cloud
