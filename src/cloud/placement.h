// Virtual-host placement policies.
//
// Paper §III: "Virtual Machine (VM) management is an important aspect of
// Cloud Computing ... The way in which VMs are allocated is crucial; we can
// experiment with new algorithms on the PiCloud, while directly observing
// the resulting behaviour on all layers of the Cloud architecture."
//
// Policies place an instance request onto one of the live nodes; the
// bench_ablate_placement harness compares them on packing efficiency, power
// and the induced network congestion (the paper's consolidation-vs-network
// ripple effect, §IV).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace picloud::cloud {

// The pimaster's view of one node when placing (from the latest heartbeat).
struct NodeView {
  std::string hostname;
  int rack = 0;
  bool alive = false;
  std::uint64_t mem_capacity = 0;
  std::uint64_t mem_used = 0;
  std::uint64_t baseline_mem = 0;  // OS footprint before containers
  double cpu_capacity_hz = 0;
  double cpu_utilization = 0;  // [0, 1]
  int containers = 0;
  // Peak utilisation of this rack's ToR uplinks, from the SDN controller's
  // global network view (0 when no observer is wired).
  double rack_uplink_utilization = 0;

  std::uint64_t mem_free() const {
    return mem_capacity > mem_used ? mem_capacity - mem_used : 0;
  }
};

struct PlacementRequest {
  std::string instance_name;
  // Memory the instance needs resident to start (idle footprint, or its
  // cgroup limit when set — conservative admission control).
  std::uint64_t mem_bytes = 30ull << 20;
  // Optional rack affinity: >= 0 pins the instance to that rack.
  int rack_affinity = -1;
  // Group label for network-aware placement (instances of one application).
  std::string affinity_group;
};

// Hard limits every policy obeys. The 3-containers-per-Pi figure is the
// paper's own envelope ("we are able to comfortably support three containers
// concurrently on a Raspberry Pi", §II-A).
struct PlacementLimits {
  int max_containers_per_node = 3;
  // Fraction of node RAM placements may fill (leave room for the OS).
  double mem_headroom = 1.0;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::string name() const = 0;
  // Returns the chosen hostname or an Error{"no_capacity"}.
  virtual util::Result<std::string> pick(
      const std::vector<NodeView>& nodes, const PlacementRequest& request) = 0;

 protected:
  // Shared feasibility filter.
  static bool fits(const NodeView& node, const PlacementRequest& request,
                   const PlacementLimits& limits);
  PlacementLimits limits_;

 public:
  void set_limits(PlacementLimits limits) { limits_ = limits; }
  const PlacementLimits& limits() const { return limits_; }
};

// First node (hostname order) with room — the packing baseline.
class FirstFitPolicy : public PlacementPolicy {
 public:
  std::string name() const override { return "first-fit"; }
  util::Result<std::string> pick(const std::vector<NodeView>& nodes,
                                 const PlacementRequest& request) override;
};

// Tightest node that still fits: consolidates onto few nodes (best packing,
// worst network/CPU interference).
class BestFitPolicy : public PlacementPolicy {
 public:
  std::string name() const override { return "best-fit"; }
  util::Result<std::string> pick(const std::vector<NodeView>& nodes,
                                 const PlacementRequest& request) override;
};

// Emptiest node: spreads load.
class WorstFitPolicy : public PlacementPolicy {
 public:
  std::string name() const override { return "worst-fit"; }
  util::Result<std::string> pick(const std::vector<NodeView>& nodes,
                                 const PlacementRequest& request) override;
};

// Cycles through nodes irrespective of load (stateful).
class RoundRobinPolicy : public PlacementPolicy {
 public:
  std::string name() const override { return "round-robin"; }
  util::Result<std::string> pick(const std::vector<NodeView>& nodes,
                                 const PlacementRequest& request) override;

 private:
  size_t cursor_ = 0;
};

// Least instantaneous CPU utilisation (the panel's live-load view).
class LeastLoadedPolicy : public PlacementPolicy {
 public:
  std::string name() const override { return "least-loaded"; }
  util::Result<std::string> pick(const std::vector<NodeView>& nodes,
                                 const PlacementRequest& request) override;
};

// Network-aware: keeps an affinity group inside one rack while it fits
// (shuffle traffic stays under the ToR), spills to the emptiest rack after.
class RackAffinityPolicy : public PlacementPolicy {
 public:
  std::string name() const override { return "rack-affinity"; }
  util::Result<std::string> pick(const std::vector<NodeView>& nodes,
                                 const PlacementRequest& request) override;

 private:
  std::map<std::string, int> group_rack_;  // affinity group -> chosen rack
};

// Cross-layer placement (paper SIV: "a global view of the network will
// enhance overall resource management"): among feasible nodes, prefer the
// rack whose ToR uplinks are least utilised right now, then the least
// CPU-loaded node inside it. Requires the master's network observer.
class CongestionAwarePolicy : public PlacementPolicy {
 public:
  std::string name() const override { return "congestion-aware"; }
  util::Result<std::string> pick(const std::vector<NodeView>& nodes,
                                 const PlacementRequest& request) override;
};

// Factory by name ("first-fit", "best-fit", "worst-fit", "round-robin",
// "least-loaded", "rack-affinity", "congestion-aware").
util::Result<std::unique_ptr<PlacementPolicy>> make_policy(
    const std::string& name);
std::vector<std::string> policy_names();

}  // namespace picloud::cloud
