#include "cloud/chaos.h"

#include "util/logging.h"

namespace picloud::cloud {

ChaosMonkey::ChaosMonkey(sim::Simulation& sim, net::Fabric& fabric,
                         Config config, util::Rng rng)
    : sim_(sim), fabric_(fabric), config_(config), rng_(rng) {
  util::MetricsRegistry& m = sim_.metrics();
  node_crashes_ = &m.counter("cloud.chaos.node_crashes");
  node_repairs_ = &m.counter("cloud.chaos.node_repairs");
  link_cuts_ = &m.counter("cloud.chaos.link_cuts");
  link_repairs_ = &m.counter("cloud.chaos.link_repairs");
  loss_onsets_ = &m.counter("cloud.chaos.loss_onsets");
  loss_clears_ = &m.counter("cloud.chaos.loss_clears");
}

ChaosMonkey::~ChaosMonkey() { stop(); }

void ChaosMonkey::add_node(NodeDaemon* daemon) { nodes_.push_back(daemon); }

void ChaosMonkey::add_link(net::LinkId link) { links_.push_back(link); }

void ChaosMonkey::start() {
  if (running_) return;
  running_ = true;
  if (config_.loss_mtbf > sim::Duration::zero()) {
    // Tie the fabric's loss stream to this monkey's seed so same-seed runs
    // drop the same flows. Consumes one draw only when loss mode is on.
    fabric_.seed_loss_rng(rng_.next_u64());
  }
  tick_task_ = sim::PeriodicTask(sim_, config_.tick, [this]() { tick(); });
}

void ChaosMonkey::stop() {
  if (!running_) return;
  running_ = false;
  tick_task_.stop();
  // Leave links up/down as-is (operators repair them), but clear transient
  // degradation: a stopped monkey should not keep dropping flows.
  for (size_t i : lossy_links_) fabric_.set_link_pair_loss(links_[i], 0);
  lossy_links_.clear();
}

void ChaosMonkey::tick() {
  double dt = config_.tick.to_seconds();
  // Memoryless per-tick hazard: P(fail) = dt / MTBF, P(repair) = dt / MTTR.
  double node_fail_p = dt / config_.node_mtbf.to_seconds();
  double node_repair_p = dt / config_.node_mttr.to_seconds();
  double link_fail_p = dt / config_.link_mtbf.to_seconds();
  double link_repair_p = dt / config_.link_mttr.to_seconds();

  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (down_nodes_.count(i) > 0) {
      if (rng_.chance(node_repair_p)) {
        down_nodes_.erase(i);
        node_repairs_->inc();
        PICLOUD_TRACE(sim_.trace(), "cloud.chaos", "node_repair",
                      {"node", nodes_[i]->hostname()});
        LOG_INFO("chaos", "repairing node %zu (power cycle)", i);
        nodes_[i]->start();  // re-runs DHCP + registration
      }
    } else if (rng_.chance(node_fail_p)) {
      down_nodes_.insert(i);
      node_crashes_->inc();
      PICLOUD_TRACE(sim_.trace(), "cloud.chaos", "node_crash",
                    {"node", nodes_[i]->hostname()});
      LOG_WARN("chaos", "crashing node %zu", i);
      nodes_[i]->crash();
    }
  }

  for (size_t i = 0; i < links_.size(); ++i) {
    if (down_links_.count(i) > 0) {
      if (rng_.chance(link_repair_p)) {
        down_links_.erase(i);
        link_repairs_->inc();
        fabric_.set_link_pair_up(links_[i], true);
      }
    } else if (rng_.chance(link_fail_p)) {
      down_links_.insert(i);
      link_cuts_->inc();
      fabric_.set_link_pair_up(links_[i], false);
    }
  }

  if (config_.loss_mtbf > sim::Duration::zero()) {
    double loss_onset_p = dt / config_.loss_mtbf.to_seconds();
    double loss_clear_p = dt / config_.loss_mttr.to_seconds();
    for (size_t i = 0; i < links_.size(); ++i) {
      if (lossy_links_.count(i) > 0) {
        if (rng_.chance(loss_clear_p)) {
          lossy_links_.erase(i);
          loss_clears_->inc();
          fabric_.set_link_pair_loss(links_[i], 0);
        }
      } else if (rng_.chance(loss_onset_p)) {
        lossy_links_.insert(i);
        loss_onsets_->inc();
        LOG_WARN("chaos", "link %zu degraded (loss %.0f%%)", i,
                 config_.loss_rate * 100);
        fabric_.set_link_pair_loss(links_[i], config_.loss_rate);
      }
    }
  }
}

}  // namespace picloud::cloud
