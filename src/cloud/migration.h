// Container migration: stop-and-copy and iterative pre-copy live migration.
//
// Paper §VI: "we will implement sophisticated live migration within the
// PiCloud, to enable the study of important Cloud resource management
// aspects in depth" — and §III motivates it: consolidation to reduce power,
// plus the networking/virtualisation control loops interacting ("IP-less
// routing in order to support more flexible and efficient migration").
//
// Mechanics modelled faithfully at the resource level:
//   * every copied byte crosses the fabric as a real flow (it contends with
//     application traffic — the paper's ripple effect);
//   * pre-copy rounds shrink geometrically with the app's dirty rate;
//   * downtime = freeze -> restart-at-destination interval;
//   * the container's IP moves with it (bridged re-binding), so flows started
//     after the migration route to the new host without client changes.
//
// The app object and its state move at commit time; its memory is re-charged
// on the destination when the app restarts, so packing constraints hold.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloud/node_daemon.h"
#include "net/fabric.h"
#include "sim/simulation.h"

namespace picloud::cloud {

// How the moved container's address becomes reachable at the destination —
// the paper's "IP-less routing in order to support more flexible and
// efficient migration" research direction (SIII).
enum class AddressUpdateMode {
  // Traditional bridged-L2 convergence: gratuitous ARP + switch learning;
  // the address stays dark for kArpConvergenceDelay after restart.
  kArpConvergence,
  // SDN-assisted: the controller redirects the identity as part of the
  // migration commit; only a controller round-trip of darkness.
  kSdnRedirect,
};

const char* address_update_name(AddressUpdateMode mode);

struct MigrationParams {
  std::string instance;
  std::string from;  // source hostname
  std::string to;    // destination hostname
  bool live = true;  // false: stop-and-copy
  int max_precopy_rounds = 4;
  double stop_threshold_bytes = 1 << 20;  // freeze when dirty set below this
  AddressUpdateMode address_update = AddressUpdateMode::kSdnRedirect;
  // Image layers ({id, bytes}) the destination must cache first.
  util::Json layers = util::Json::array();
};

// L2 convergence time for a moved bridged address (gratuitous ARP flood +
// switch table updates across the tree).
inline constexpr sim::Duration kArpConvergenceDelay =
    sim::Duration::millis(500);
// Controller round-trip to redirect an identity under SDN.
inline constexpr sim::Duration kSdnUpdateDelay = sim::Duration::millis(2);

struct MigrationReport {
  std::string instance;
  std::string from;
  std::string to;
  bool live = false;
  bool success = false;
  // On failure: true when the container survives on neither node (the
  // destination died past the point of no return). The instance record must
  // be marked lost so the reconciler / owning ReplicaSet respawns it. When
  // false, a failed migration leaves the container running on the source —
  // or the source itself is dead, which the dead-node reconciliation path
  // already covers.
  bool instance_lost = false;
  std::string phase;           // phase reached: prepare|pre-copy|final-copy|
                               // commit|done
  std::string address_update;  // "arp" | "sdn"
  std::string error;
  double bytes_transferred = 0;
  int precopy_rounds = 0;
  sim::Duration total_duration;
  sim::Duration downtime;  // service blackout (freeze -> restarted)

  util::Json to_json() const;
};

class MigrationCoordinator {
 public:
  using NodeAccessor = std::function<NodeDaemon*(const std::string& hostname)>;
  using DoneCallback = std::function<void(const MigrationReport&)>;

  MigrationCoordinator(sim::Simulation& sim, net::Fabric& fabric,
                       NodeAccessor accessor);

  // Runs a migration; the callback fires exactly once. Concurrent
  // migrations of distinct instances are fine; re-migrating an instance
  // already in flight fails.
  //
  // Crash safety: ChaosMonkey may kill either endpoint at any moment, so no
  // daemon or container pointer is held across an async boundary — every
  // resume point re-resolves by hostname/name and aborts cleanly if the
  // node died. Source death aborts (record reverts to the source-dead
  // reconciliation path); destination death before commit aborts with the
  // instance still running (thawed) on the source; destination death after
  // the point of no return loses the instance and reports instance_lost.
  void migrate(MigrationParams params, DoneCallback done);

  // Value snapshot of the `cloud.migration.*` registry counters.
  struct Stats {
    std::uint64_t started = 0;
    std::uint64_t succeeded = 0;
    std::uint64_t failed = 0;  // all failures, including the below
    std::uint64_t aborted_source_dead = 0;
    std::uint64_t aborted_dest_dead = 0;
    std::uint64_t rolled_back = 0;  // reverted to source with app restarted
    std::uint64_t lost = 0;         // destination died past commit
  };

  const std::vector<MigrationReport>& history() const { return history_; }
  size_t in_flight() const { return in_flight_; }
  Stats stats() const {
    Stats s;
    s.started = started_->value();
    s.succeeded = succeeded_->value();
    s.failed = failed_->value();
    s.aborted_source_dead = aborted_source_dead_->value();
    s.aborted_dest_dead = aborted_dest_dead_->value();
    s.rolled_back = rolled_back_->value();
    s.lost = lost_->value();
    return s;
  }

 private:
  struct Session;
  // The daemon for `hostname` iff its node is powered on, else nullptr.
  NodeDaemon* live_node(const std::string& hostname);
  // The migrating container on the live source, else nullptr.
  os::Container* source_container(const Session& session);
  void precopy_round(std::shared_ptr<Session> session);
  void final_copy(std::shared_ptr<Session> session);
  void commit(std::shared_ptr<Session> session);
  void abort_source_dead(std::shared_ptr<Session> session);
  void abort_dest_dead(std::shared_ptr<Session> session);
  void fail(std::shared_ptr<Session> session, const std::string& error);
  void finish(std::shared_ptr<Session> session);

  sim::Simulation& sim_;
  net::Fabric& fabric_;
  NodeAccessor accessor_;
  std::vector<MigrationReport> history_;
  std::set<std::string> migrating_;  // instances currently moving
  size_t in_flight_ = 0;
  // Registry handles under `cloud.migration.*` (never null).
  util::Counter* started_ = nullptr;
  util::Counter* succeeded_ = nullptr;
  util::Counter* failed_ = nullptr;
  util::Counter* aborted_source_dead_ = nullptr;
  util::Counter* aborted_dest_dead_ = nullptr;
  util::Counter* rolled_back_ = nullptr;
  util::Counter* lost_ = nullptr;
  util::LogHistogram* downtime_seconds_ = nullptr;
};

}  // namespace picloud::cloud
