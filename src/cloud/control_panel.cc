#include "cloud/control_panel.h"

#include <memory>

#include "util/strings.h"

namespace picloud::cloud {

using proto::HttpResponse;
using proto::Method;
using util::Json;

ControlPanel::ControlPanel(net::Network& network, net::Ipv4Addr self,
                           net::Ipv4Addr master, std::uint16_t master_port)
    : master_(master),
      master_port_(master_port),
      client_(network, self, /*ephemeral_port=*/50080) {}

void ControlPanel::get_json(const std::string& path, JsonCallback cb) {
  // Reads are idempotent: a browser retries a stalled page fetch.
  client_.call(master_, master_port_, Method::kGet, path, Json(),
               [cb = std::move(cb)](util::Result<HttpResponse> result) {
                 if (!result.ok()) {
                   cb(result.error());
                   return;
                 }
                 if (!result.value().ok()) {
                   cb(util::Error::make(
                       result.value().body.get_string("error", "error"),
                       result.value().body.get_string("message", "")));
                   return;
                 }
                 cb(result.value().body);
               },
               proto::RetryPolicy::standard(2));
}

util::Json ControlPanel::stamp_idem(Json body, const std::string& op) {
  if (body.get_string("idem").empty()) {
    body.set("idem", util::format("panel/%s/%llu", op.c_str(),
                                  static_cast<unsigned long long>(++idem_seq_)));
  }
  return body;
}

void ControlPanel::render_dashboard(
    std::function<void(util::Result<std::string>)> cb) {
  // Three sequential fetches, like a browser populating the page.
  auto state = std::make_shared<std::array<Json, 3>>();
  get_json("/cluster/summary", [this, state, cb](util::Result<Json> summary) {
    if (!summary.ok()) {
      cb(summary.error());
      return;
    }
    (*state)[0] = std::move(summary).value();
    get_json("/nodes", [this, state, cb](util::Result<Json> nodes) {
      if (!nodes.ok()) {
        cb(nodes.error());
        return;
      }
      (*state)[1] = std::move(nodes).value();
      get_json("/instances", [state, cb](util::Result<Json> instances) {
        if (!instances.ok()) {
          cb(instances.error());
          return;
        }
        (*state)[2] = std::move(instances).value();
        cb(render((*state)[0], (*state)[1], (*state)[2]));
      });
    });
  });
}

std::string ControlPanel::render(const Json& summary, const Json& nodes,
                                 const Json& instances) {
  std::string out;
  out += "+====================== PiCloud Control Panel ======================+\n";
  out += util::format(
      "| nodes %2d/%-2d up | containers %3d | avg cpu %5.1f%% | power %7.1f W |\n",
      static_cast<int>(summary.get_number("nodes_alive")),
      static_cast<int>(summary.get_number("nodes_total")),
      static_cast<int>(summary.get_number("containers_running")),
      summary.get_number("avg_cpu") * 100.0, summary.get_number("watts"));
  out += util::format(
      "| memory %s / %s%s|\n",
      util::human_bytes(summary.get_number("mem_used")).c_str(),
      util::human_bytes(summary.get_number("mem_capacity")).c_str(),
      std::string(38, ' ').c_str());
  out += "+--------------------------------------------------------------------+\n";
  out += "| node          rack ip              cpu%  mem         ct  W   state |\n";
  for (const Json& node : nodes.as_array()) {
    // Node rows are the canonical metrics snapshot ({counters, gauges})
    // plus top-level identity keys the master stamps on.
    const Json& g = node.get("gauges");
    out += util::format(
        "| %s %2d   %s %5.1f %s %2d %5.1f %s |\n",
        util::pad(node.get_string("hostname"), 13).c_str(),
        static_cast<int>(node.get_number("rack")),
        util::pad(node.get_string("ip"), 15).c_str(),
        g.get_number("cpu_utilization") * 100.0,
        util::pad(util::human_bytes(g.get_number("mem_used")), 11).c_str(),
        static_cast<int>(g.get_number("containers_total")),
        g.get_number("power_watts"),
        node.get_bool("alive") ? "up  " : "DOWN");
  }
  out += "+--------------------------------------------------------------------+\n";
  out += "| instance            node          ip              app       state  |\n";
  for (const Json& inst : instances.as_array()) {
    out += util::format(
        "| %s %s %s %s %s |\n", util::pad(inst.get_string("name"), 19).c_str(),
        util::pad(inst.get_string("node"), 13).c_str(),
        util::pad(inst.get_string("ip"), 15).c_str(),
        util::pad(inst.get_string("app", "-"), 9).c_str(),
        util::pad(inst.get_string("state"), 6).c_str());
  }
  out += "+====================================================================+\n";
  return out;
}

void ControlPanel::monitor_cpu(std::vector<std::string> hostnames,
                               CpuCallback cb) {
  get_json("/nodes", [hostnames = std::move(hostnames),
                      cb = std::move(cb)](util::Result<Json> nodes) {
    if (!nodes.ok()) {
      cb(nodes.error());
      return;
    }
    std::map<std::string, double> loads;
    for (const Json& node : nodes.value().as_array()) {
      std::string hostname = node.get_string("hostname");
      if (!hostnames.empty() &&
          std::find(hostnames.begin(), hostnames.end(), hostname) ==
              hostnames.end()) {
        continue;
      }
      loads[hostname] = node.get("gauges").get_number("cpu_utilization");
    }
    cb(std::move(loads));
  });
}

void ControlPanel::spawn_vm(Json spec, JsonCallback cb) {
  // Spawns can pull image layers over 100 Mb links; give each attempt
  // headroom. The idem key makes the retry safe (no double-spawn).
  client_.call(master_, master_port_, Method::kPost, "/instances",
               stamp_idem(std::move(spec), "spawn"),
               [cb = std::move(cb)](util::Result<HttpResponse> result) {
                 if (!result.ok()) {
                   cb(result.error());
                   return;
                 }
                 if (!result.value().ok()) {
                   cb(util::Error::make(
                       result.value().body.get_string("error", "error"),
                       result.value().body.get_string("message", "")));
                   return;
                 }
                 cb(result.value().body);
               },
               proto::RetryPolicy::standard(2, sim::Duration::seconds(300)));
}

void ControlPanel::set_vm_limits(const std::string& instance, Json limits,
                                 JsonCallback cb) {
  client_.call(master_, master_port_, Method::kPut,
               "/instances/" + instance + "/limits", std::move(limits),
               [cb = std::move(cb)](util::Result<HttpResponse> result) {
                 if (!result.ok()) {
                   cb(result.error());
                   return;
                 }
                 if (!result.value().ok()) {
                   cb(util::Error::make(
                       result.value().body.get_string("error", "error"),
                       result.value().body.get_string("message", "")));
                   return;
                 }
                 cb(result.value().body);
               },
               proto::RetryPolicy::standard(3));
}

void ControlPanel::migrate_vm(const std::string& instance,
                              const std::string& to, bool live,
                              JsonCallback cb) {
  Json body = Json::object();
  if (!to.empty()) body.set("to", to);
  body.set("live", live);
  client_.call(master_, master_port_, Method::kPost,
               "/instances/" + instance + "/migrate",
               stamp_idem(std::move(body), "migrate/" + instance),
               [cb = std::move(cb)](util::Result<HttpResponse> result) {
                 if (!result.ok()) {
                   cb(result.error());
                   return;
                 }
                 cb(result.value().body);
               },
               proto::RetryPolicy::standard(2, sim::Duration::seconds(120)));
}

void ControlPanel::delete_vm(const std::string& instance, JsonCallback cb) {
  client_.call(master_, master_port_, Method::kDelete,
               "/instances/" + instance,
               stamp_idem(Json::object(), "delete/" + instance),
               [cb = std::move(cb)](util::Result<HttpResponse> result) {
                 if (!result.ok()) {
                   cb(result.error());
                   return;
                 }
                 cb(result.value().body);
               },
               proto::RetryPolicy::standard(3));
}

}  // namespace picloud::cloud
