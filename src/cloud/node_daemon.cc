#include "cloud/node_daemon.h"

#include <utility>

#include "util/logging.h"

namespace picloud::cloud {

using proto::HttpRequest;
using proto::HttpResponse;
using proto::Method;
using proto::PathParams;
using util::Json;

NodeDaemon::NodeDaemon(os::NodeOs& node, Config config)
    : node_(node), config_(config), scope_("node." + node.hostname()) {
  util::MetricsRegistry& m = node_.simulation().metrics();
  heartbeats_sent_ = &m.counter(scope_ + ".heartbeats_sent");
  cpu_gauge_ = &m.gauge(scope_ + ".cpu_utilization");
  mem_used_gauge_ = &m.gauge(scope_ + ".mem_used");
  mem_capacity_gauge_ = &m.gauge(scope_ + ".mem_capacity");
  sd_used_gauge_ = &m.gauge(scope_ + ".sd_used");
  containers_total_gauge_ = &m.gauge(scope_ + ".containers_total");
  containers_running_gauge_ = &m.gauge(scope_ + ".containers_running");
  power_gauge_ = &m.gauge(scope_ + ".power_watts");
  idem_.bind_metrics(m, scope_ + ".dedup");
  install_routes();
}

NodeDaemon::~NodeDaemon() { stop(); }

void NodeDaemon::start() {
  if (started_) return;
  started_ = true;
  node_.boot();
  dhcp_ = std::make_unique<proto::DhcpClient>(
      node_.network(), node_.fabric_node(), node_.device().mac_address(),
      node_.hostname());
  dhcp_->start([this](net::Ipv4Addr ip, sim::Duration lease) {
    on_dhcp_bound(ip, lease);
  });
}

void NodeDaemon::stop() {
  if (!started_) return;
  started_ = false;
  registered_ = false;
  heartbeat_task_.stop();
  server_.reset();
  client_.reset();
  dhcp_.reset();
  node_.shutdown();
}

void NodeDaemon::crash() {
  if (!started_) return;
  started_ = false;
  registered_ = false;
  heartbeat_task_.stop();
  server_.reset();
  client_.reset();
  dhcp_.reset();
  node_.crash();
}

void NodeDaemon::on_dhcp_bound(net::Ipv4Addr ip, sim::Duration /*lease*/) {
  if (node_.host_ip() == ip && server_ != nullptr) return;  // renewal
  node_.set_host_ip(ip);
  server_ = std::make_unique<proto::RestServer>(node_.network(), ip, kPort,
                                                &router_);
  server_->start();
  client_ = std::make_unique<proto::RestClient>(node_.network(), ip, 49152,
                                                scope_ + ".rest");
  register_with_master();
}

void NodeDaemon::register_with_master() {
  Json body = Json::object();
  body.set("hostname", node_.hostname());
  body.set("mac", node_.device().mac_address());
  body.set("ip", node_.host_ip().to_string());
  body.set("rack", config_.rack);
  body.set("cpu_hz", node_.cpu().capacity());
  // Keep retrying with backoff until the master answers: a node that boots
  // while the master (or the path to it) is down registers as soon as it
  // recovers. The policy's jitter decorrelates a rack booting in lockstep.
  proto::RetryPolicy policy = proto::RetryPolicy::unbounded();
  client_->call(
      config_.pimaster_ip, config_.pimaster_port, proto::Method::kPost,
      "/register", std::move(body),
      [this](util::Result<HttpResponse> result) {
        if (!started_) return;
        if (!result.ok()) return;  // cancelled: the daemon is going down
        if (!result.value().ok()) {
          // Master answered but refused: retry after a beat.
          node_.simulation().after(sim::Duration::seconds(2), [this]() {
            if (started_ && !registered_) register_with_master();
          });
          return;
        }
        registered_ = true;
        LOG_INFO("daemon", "%s registered with pimaster",
                 node_.hostname().c_str());
        heartbeat_task_ = sim::PeriodicTask(
            node_.simulation(), config_.heartbeat_period,
            [this]() { send_heartbeat(); });
      },
      policy);
}

Json NodeDaemon::stats_json() const {
  os::NodeOs::NodeStats s = node_.stats();
  cpu_gauge_->set(s.cpu_utilization);
  mem_used_gauge_->set(static_cast<double>(s.mem_used));
  mem_capacity_gauge_->set(static_cast<double>(s.mem_capacity));
  sd_used_gauge_->set(static_cast<double>(s.sd_used));
  containers_total_gauge_->set(s.containers_total);
  containers_running_gauge_->set(s.containers_running);
  power_gauge_->set(s.power_watts);
  return node_.simulation().metrics().snapshot(scope_);
}

void NodeDaemon::send_heartbeat() {
  if (!started_ || client_ == nullptr) return;
  heartbeats_sent_->inc();
  // Single attempt bounded by the heartbeat period: a lost heartbeat is
  // information (the monitor tolerates gaps), and retrying a stale one past
  // the next beat would only add load exactly when the network is sick.
  proto::RetryPolicy policy =
      proto::RetryPolicy::single(config_.heartbeat_period);
  client_->call(config_.pimaster_ip, config_.pimaster_port,
                proto::Method::kPost, "/nodes/" + node_.hostname() + "/stats",
                stats_json(), [](util::Result<HttpResponse>) {}, policy);
}

void NodeDaemon::fetch_layers(util::JsonArray layers, size_t index,
                              std::function<void(util::Status)> done) {
  // Find the next layer we do not have.
  while (index < layers.size() &&
         node_.has_image_layer(layers[index].get_string("id"))) {
    ++index;
  }
  if (index >= layers.size()) {
    done(util::Status::success());
    return;
  }
  const Json& layer = layers[index];
  std::string id = layer.get_string("id");
  auto bytes = static_cast<std::uint64_t>(layer.get_number("bytes"));

  auto master_node = node_.network().resolve(config_.pimaster_ip);
  if (!master_node) {
    done(util::Error::make("unavailable", "pimaster unreachable for image pull"));
    return;
  }
  // Bulk layer download: a real flow across the fabric, then an SD write.
  net::FlowSpec flow;
  flow.src = *master_node;
  flow.dst = node_.fabric_node();
  flow.bytes = static_cast<double>(bytes);
  flow.on_complete = [this, id, bytes, layers = std::move(layers), index,
                      done = std::move(done)](net::FlowId,
                                              bool success) mutable {
    if (!success) {
      done(util::Error::make("unavailable", "image transfer failed: " + id));
      return;
    }
    node_.sdcard().write(
        bytes, [this, id, bytes, layers = std::move(layers), index,
                done = std::move(done)]() mutable {
          util::Status cached = node_.add_image_layer(id, bytes);
          if (!cached.ok()) {
            done(cached);
            return;
          }
          fetch_layers(std::move(layers), index + 1, std::move(done));
        });
  };
  node_.network().fabric().start_flow(std::move(flow));
}

void NodeDaemon::spawn_container(const Json& spec, SpawnCallback cb) {
  std::string name = spec.get_string("name");
  if (name.empty()) {
    cb(util::Error::make("invalid", "container name required"));
    return;
  }
  if (node_.find_container(name) != nullptr) {
    cb(util::Error::make("exists", "container exists: " + name));
    return;
  }
  util::JsonArray layers = spec.get("layers").as_array();
  fetch_layers(std::move(layers), 0, [this, spec, cb](util::Status fetched) {
    // The layer pull crosses the fabric; the node may have crashed (or been
    // cleanly stopped) while it was in flight. Never materialise a container
    // on a dead node.
    if (!started_ || !node_.running()) {
      cb(util::Error::make("unavailable", "node went down during spawn"));
      return;
    }
    if (!fetched.ok()) {
      cb(fetched.error());
      return;
    }
    os::ContainerConfig config;
    config.name = spec.get_string("name");
    config.image_id = spec.get_string("image");
    config.cpu_shares = spec.get_number("cpu_shares", 1024);
    config.cpu_limit = spec.get_number("cpu_limit", 0);
    config.memory_limit =
        static_cast<std::uint64_t>(spec.get_number("memory_limit", 0));
    config.bare_metal = spec.get_bool("bare_metal");
    auto created = node_.create_container(std::move(config));
    if (!created.ok()) {
      cb(created.error());
      return;
    }
    os::Container* container = created.value();

    std::string app_kind = spec.get_string("app");
    if (!app_kind.empty()) {
      if (!app_factory_) {
        (void)node_.destroy_container(container->name());
        cb(util::Error::make("invalid", "node has no app factory"));
        return;
      }
      auto app = app_factory_(app_kind, spec.get("app_params"));
      if (!app.ok()) {
        (void)node_.destroy_container(container->name());
        cb(app.error());
        return;
      }
      container->set_app(std::move(app).value());
    }

    auto ip = net::Ipv4Addr::parse(spec.get_string("ip"));
    util::Status started = container->start(ip.value_or(net::Ipv4Addr::any()));
    if (!started.ok()) {
      (void)node_.destroy_container(container->name());
      cb(started.error());
      return;
    }
    cb(container->name());
  });
}

void NodeDaemon::install_routes() {
  router_.handle(Method::kGet, "/ping",
                 [](const HttpRequest&, const PathParams&) {
                   return HttpResponse::make(200, Json("pong"));
                 });

  router_.handle(Method::kGet, "/stats",
                 [this](const HttpRequest&, const PathParams&) {
                   return HttpResponse::make(200, stats_json());
                 });

  router_.handle(Method::kGet, "/containers",
                 [this](const HttpRequest&, const PathParams&) {
                   Json list = Json::array();
                   for (os::Container* c : node_.containers()) {
                     list.push_back(c->describe());
                   }
                   return HttpResponse::make(200, std::move(list));
                 });

  router_.handle(Method::kGet, "/containers/:name",
                 [this](const HttpRequest&, const PathParams& params) {
                   os::Container* c = node_.find_container(params.at("name"));
                   if (c == nullptr) return HttpResponse::not_found();
                   return HttpResponse::make(200, c->describe());
                 });

  router_.handle_async(
      Method::kPost, "/containers",
      [this](const HttpRequest& req, const PathParams&,
             proto::Responder respond) {
        // Admit the request's idempotency key first: a retried spawn whose
        // original attempt already executed (or is still executing) must
        // not create a second container.
        proto::Responder once =
            idem_.admit(req.body.get_string("idem"), std::move(respond));
        if (!once) return;  // duplicate: replayed or coalesced
        spawn_container(req.body, [once = std::move(once)](
                                      util::Result<std::string> result) {
          if (!result.ok()) {
            once(HttpResponse::from_error(result.error()));
            return;
          }
          Json body = Json::object();
          body.set("name", result.value());
          once(HttpResponse::make(201, std::move(body)));
        });
      });

  auto lifecycle = [this](const std::string& action) {
    return [this, action](const HttpRequest&, const PathParams& params) {
      os::Container* c = node_.find_container(params.at("name"));
      if (c == nullptr) return HttpResponse::not_found();
      util::Status status =
          action == "stop" ? c->stop()
          : action == "freeze" ? c->freeze()
          : c->thaw();
      if (!status.ok()) return HttpResponse::from_error(status.error());
      return HttpResponse::make(200, c->describe());
    };
  };
  router_.handle(Method::kPost, "/containers/:name/stop", lifecycle("stop"));
  router_.handle(Method::kPost, "/containers/:name/freeze",
                 lifecycle("freeze"));
  router_.handle(Method::kPost, "/containers/:name/thaw", lifecycle("thaw"));

  router_.handle_async(
      Method::kDelete, "/containers/:name",
      [this](const HttpRequest& req, const PathParams& params,
             proto::Responder respond) {
        // Destroy is naturally idempotent (a second attempt sees 404), but
        // recording the outcome lets a retried delete observe its own 204
        // instead of a confusing not-found.
        proto::Responder once =
            idem_.admit(req.body.get_string("idem"), std::move(respond));
        if (!once) return;
        util::Status status = node_.destroy_container(params.at("name"));
        if (!status.ok()) {
          once(HttpResponse::from_error(status.error()));
          return;
        }
        once(HttpResponse::make(204));
      });

  router_.handle(
      Method::kPut, "/containers/:name/limits",
      [this](const HttpRequest& req, const PathParams& params) {
        os::Container* c = node_.find_container(params.at("name"));
        if (c == nullptr) return HttpResponse::not_found();
        if (req.body.has("cpu_limit")) {
          c->set_cpu_limit(req.body.get_number("cpu_limit"));
        }
        if (req.body.has("cpu_shares")) {
          c->set_cpu_shares(req.body.get_number("cpu_shares"));
        }
        if (req.body.has("memory_limit")) {
          c->set_memory_limit(
              static_cast<std::uint64_t>(req.body.get_number("memory_limit")));
        }
        return HttpResponse::make(200, c->describe());
      });

  router_.handle(
      Method::kGet, "/health",
      [this](const HttpRequest&, const PathParams&) {
        Json j = Json::object();
        j.set("hostname", node_.hostname());
        j.set("registered", registered_);
        j.set("containers", static_cast<double>(node_.containers().size()));
        j.set("heartbeats_sent",
              static_cast<unsigned long long>(heartbeats_sent_->value()));
        if (client_ != nullptr) {
          const proto::RetryStats& rs = client_->retry_stats();
          Json retry = Json::object();
          retry.set("inflight", static_cast<double>(client_->inflight_retries()));
          retry.set("attempts", static_cast<unsigned long long>(rs.attempts));
          retry.set("retries", static_cast<unsigned long long>(rs.retries));
          retry.set("exhausted", static_cast<unsigned long long>(rs.exhausted));
          j.set("retry", std::move(retry));
        }
        Json dedup = Json::object();
        dedup.set("admitted",
                  static_cast<unsigned long long>(idem_.stats().admitted));
        dedup.set("replayed",
                  static_cast<unsigned long long>(idem_.stats().replayed));
        dedup.set("coalesced",
                  static_cast<unsigned long long>(idem_.stats().coalesced));
        j.set("dedup", std::move(dedup));
        return HttpResponse::make(200, std::move(j));
      });

  router_.handle(Method::kGet, "/metrics",
                 [this](const HttpRequest&, const PathParams&) {
                   // Refresh gauges first so a poll between heartbeats still
                   // sees current utilisation.
                   return HttpResponse::make(200, stats_json());
                 });

  router_.handle_async(
      Method::kPost, "/images/prefetch",
      [this](const HttpRequest& req, const PathParams&,
             proto::Responder respond) {
        util::JsonArray layers = req.body.get("layers").as_array();
        fetch_layers(std::move(layers), 0,
                     [respond = std::move(respond)](util::Status status) {
                       if (!status.ok()) {
                         respond(HttpResponse::from_error(status.error()));
                         return;
                       }
                       respond(HttpResponse::make(200));
                     });
      });
}

}  // namespace picloud::cloud
