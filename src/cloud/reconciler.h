// Reconciler — the pimaster's anti-entropy loop.
//
// The registry (InstanceRecords) and reality (containers on nodes) drift
// apart under chaos: a node crash takes its containers with it while the
// records still say "running"; a spawn whose response was lost leaves a
// container no record points at. The reconciler periodically cross-checks
// records against monitor liveness and daemon-reported container lists:
//
//   * records in state "running" on a dead node are marked "lost" — their
//     owning ReplicaSet (if any) respawns them elsewhere;
//   * records whose live node no longer reports the container are likewise
//     marked "lost" after two consecutive sightings (registry drift);
//   * containers no record claims are garbage-collected off the node after
//     two consecutive sightings (orphans from lost spawn responses or
//     migration remnants), via an idempotent retried DELETE.
//
// Everything is driven by the deterministic event loop; queries go through
// the master's RestClient with an explicit RetryPolicy, so a sweep under a
// flapping link still converges.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "proto/rest.h"
#include "sim/simulation.h"

namespace picloud::cloud {

class PiMaster;

class Reconciler {
 public:
  struct Config {
    sim::Duration period = sim::Duration::seconds(15);
    // Consecutive sweeps a discrepancy must persist before acting on it —
    // guards against racing an in-flight spawn/migration the master has not
    // recorded yet.
    int confirmations = 2;
    // Policy for the per-node GET /containers audits and orphan DELETEs.
    proto::RetryPolicy rest_policy = proto::RetryPolicy::standard(
        2, sim::Duration::seconds(3));
  };

  // Value snapshot of the `cloud.reconciler.*` registry counters
  // (orphans_destroyed is exported as `cloud.reconciler.orphans_gc`).
  struct Stats {
    std::uint64_t sweeps = 0;
    std::uint64_t node_queries = 0;
    std::uint64_t query_failures = 0;
    std::uint64_t marked_lost_dead_node = 0;  // node stopped heartbeating
    std::uint64_t marked_lost_drift = 0;      // live node lost the container
    std::uint64_t orphans_destroyed = 0;
  };

  Reconciler(PiMaster& master, Config config);
  ~Reconciler();

  Reconciler(const Reconciler&) = delete;
  Reconciler& operator=(const Reconciler&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }
  Stats stats() const {
    Stats s;
    s.sweeps = sweeps_->value();
    s.node_queries = node_queries_->value();
    s.query_failures = query_failures_->value();
    s.marked_lost_dead_node = marked_lost_dead_node_->value();
    s.marked_lost_drift = marked_lost_drift_->value();
    s.orphans_destroyed = orphans_gc_->value();
    return s;
  }

 private:
  void sweep();
  // Processes one live node's reported container list.
  void audit_node(const std::string& hostname,
                  const std::set<std::string>& reported);
  void destroy_orphan(const std::string& hostname, const std::string& name);

  PiMaster& master_;
  Config config_;
  // Registry counter handles under `cloud.reconciler.*` (never null).
  util::Counter* sweeps_ = nullptr;
  util::Counter* node_queries_ = nullptr;
  util::Counter* query_failures_ = nullptr;
  util::Counter* marked_lost_dead_node_ = nullptr;
  util::Counter* marked_lost_drift_ = nullptr;
  util::Counter* orphans_gc_ = nullptr;
  bool running_ = false;
  // Discrepancy strike counters, keyed "orphan/<host>/<name>" and
  // "drift/<name>"; an entry acts once it reaches config_.confirmations.
  std::map<std::string, int> strikes_;
  // Orphans with a DELETE already in flight (avoid duplicate GCs).
  std::set<std::string> deleting_;
  std::uint64_t gc_seq_ = 0;  // idempotency keys for GC deletes
  sim::PeriodicTask task_;
};

}  // namespace picloud::cloud
