// ControlPanel — the pimaster's web-based control panel (paper Fig. 4).
//
// "An outward-facing webserver on pimaster provides a web-based control
// panel to users and administrators ... Typical use-case scenarios include
// remote monitoring of the CPU load on some/all Pi nodes, spawning new VM
// instances and specifying (soft) per-VM resource utilisation limits."
//
// The panel is modelled as an administrator's browser session: it talks to
// the pimaster exclusively over the REST API (every click costs real
// round-trips on the fabric) and renders the dashboard as text — the same
// node grid, instance table and cluster header the screenshot shows.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/addr.h"
#include "net/network.h"
#include "proto/rest.h"
#include "util/json.h"
#include "util/result.h"

namespace picloud::cloud {

class ControlPanel {
 public:
  ControlPanel(net::Network& network, net::Ipv4Addr self,
               net::Ipv4Addr master, std::uint16_t master_port = 9000);

  // --- Panel pages -------------------------------------------------------------
  // Fetches summary + nodes + instances and renders the dashboard text.
  void render_dashboard(std::function<void(util::Result<std::string>)> cb);

  // --- Use cases from §II-C ------------------------------------------------------
  // CPU load of the named nodes (empty = all). Result maps hostname -> load.
  using CpuCallback =
      std::function<void(util::Result<std::map<std::string, double>>)>;
  void monitor_cpu(std::vector<std::string> hostnames, CpuCallback cb);

  // Spawning a new VM instance through the panel's "new instance" form.
  using JsonCallback = std::function<void(util::Result<util::Json>)>;
  void spawn_vm(util::Json spec, JsonCallback cb);

  // Soft per-VM resource limits.
  void set_vm_limits(const std::string& instance, util::Json limits,
                     JsonCallback cb);

  // Kick off a migration from the instance row's action menu.
  void migrate_vm(const std::string& instance, const std::string& to,
                  bool live, JsonCallback cb);

  void delete_vm(const std::string& instance, JsonCallback cb);

  // GET /metrics — the master's full MetricsRegistry snapshot (the
  // canonical {counters, gauges, histograms} shape, DESIGN.md §9).
  void get_metrics(JsonCallback cb) { get_json("/metrics", std::move(cb)); }

  proto::RestClient& client() { return client_; }

  // Pure rendering helper (unit-testable): builds the dashboard text from
  // the three API payloads.
  static std::string render(const util::Json& summary, const util::Json& nodes,
                            const util::Json& instances);

 private:
  void get_json(const std::string& path, JsonCallback cb);
  // Stamps a fresh idempotency key onto a mutating request body so wire
  // retries of the same click stay at-most-once on the pimaster.
  util::Json stamp_idem(util::Json body, const std::string& op);

  net::Ipv4Addr master_;
  std::uint16_t master_port_;
  proto::RestClient client_;
  std::uint64_t idem_seq_ = 0;
};

}  // namespace picloud::cloud
