#include "cloud/pimaster.h"

#include <algorithm>

#include "os/container.h"
#include "util/check.h"
#include "util/faults.h"
#include "util/logging.h"
#include "util/strings.h"

namespace picloud::cloud {

using proto::HttpRequest;
using proto::HttpResponse;
using proto::Method;
using proto::PathParams;
using util::Json;

util::Json InstanceRecord::to_json() const {
  Json j = Json::object();
  j.set("name", name);
  j.set("node", hostname);
  j.set("ip", ip.to_string());
  j.set("image", image);
  j.set("app", app_kind);
  j.set("state", state);
  j.set("created_s", created_at.to_seconds());
  return j;
}

PiMaster::PiMaster(net::Network& network, net::NetNodeId fabric_node,
                   Config config)
    : network_(network),
      sim_(network.simulation()),
      node_(fabric_node),
      config_(std::move(config)),
      monitor_(sim_, config_.node_liveness_window) {
  util::MetricsRegistry& m = sim_.metrics();
  spawn_requests_ = &m.counter("cloud.master.spawn_requests");
  spawns_ok_ = &m.counter("cloud.master.spawns_ok");
  spawns_failed_ = &m.counter("cloud.master.spawns_failed");
  idem_.bind_metrics(m, "cloud.master.dedup");
  auto policy = make_policy(config_.placement_policy);
  PICLOUD_CHECK(policy.ok()) << "unknown placement policy \""
                             << config_.placement_policy << "\"";
  policy_ = std::move(policy).value();
  policy_->set_limits(config_.placement_limits);
  policy_name_ = config_.placement_policy;
  install_routes();
}

PiMaster::~PiMaster() { stop(); }

void PiMaster::start() {
  if (started_) return;
  started_ = true;
  network_.bind_ip(config_.ip, node_);

  proto::DhcpServerConfig dhcp_config;
  dhcp_config.subnet = config_.subnet;
  dhcp_config.range_start = config_.dhcp_range_start;
  dhcp_config.range_end = config_.dhcp_range_end;
  dhcp_ = std::make_unique<proto::DhcpServer>(network_, node_, config_.ip,
                                              dhcp_config);
  dhcp_->set_lease_callback([this](const proto::DhcpLease& lease) {
    if (!lease.hostname.empty()) {
      dns_->add_record(lease.hostname, lease.ip);
    }
  });
  dhcp_->start();

  dns_ = std::make_unique<proto::DnsServer>(network_, config_.ip);
  dns_->add_record("pimaster", config_.ip);
  dns_->start();

  server_ = std::make_unique<proto::RestServer>(network_, config_.ip, kPort,
                                                &router_);
  server_->start();
  client_ = std::make_unique<proto::RestClient>(network_, config_.ip);

  migrations_ = std::make_unique<MigrationCoordinator>(
      sim_, network_.fabric(), [this](const std::string& hostname) {
        return node_accessor_ ? node_accessor_(hostname) : nullptr;
      });

  reconciler_ = std::make_unique<Reconciler>(*this, config_.reconcile);
  reconciler_->start();

  // The stock Raspbian+LXC rootfs every instance spawns from.
  if (!images_.latest(config_.default_image).ok()) {
    (void)images_.add_base(config_.default_image, 1800ull << 20,
                           "Raspbian wheezy + LXC tools");
  }
  LOG_INFO("pimaster", "up at %s (policy %s)", config_.ip.to_string().c_str(),
           policy_name_.c_str());
}

void PiMaster::stop() {
  if (!started_) return;
  started_ = false;
  server_.reset();
  // Destroying the client fails its pending calls with "cancelled"; the
  // reconciler's callbacks must still be alive to absorb those, so it is
  // torn down strictly after the client.
  client_.reset();
  reconciler_.reset();
  dns_.reset();
  dhcp_.reset();
  migrations_.reset();
  network_.unbind_ip(config_.ip);
}

void PiMaster::set_node_accessor(MigrationCoordinator::NodeAccessor accessor) {
  node_accessor_ = std::move(accessor);
}

bool PiMaster::operation_in_flight(const std::string& name) const {
  auto it = ops_.find(name);
  return it != ops_.end() && it->second.in_flight;
}

void PiMaster::record_op_start(const std::string& name, const std::string& op) {
  OperationRecord& record = ops_[name];
  record.op = op;
  record.in_flight = true;
  record.success = false;
  record.at = sim_.now();
}

void PiMaster::record_op_end(const std::string& name, bool success) {
  auto it = ops_.find(name);
  if (it == ops_.end()) return;
  // Keep ops_ bounded: records only persist alongside an instance record
  // (failed spawns and completed deletes leave nothing behind).
  if (instances_.count(name) == 0) {
    ops_.erase(it);
    return;
  }
  it->second.in_flight = false;
  it->second.success = success;
  it->second.at = sim_.now();
}

proto::RetryPolicy PiMaster::proxy_policy(sim::Duration attempt_timeout) const {
  return proto::RetryPolicy::standard(config_.proxy_attempts, attempt_timeout);
}

util::Result<std::string> PiMaster::resolve_image(
    const std::string& requested) const {
  if (requested.empty()) return images_.latest(config_.default_image);
  if (requested.find(':') != std::string::npos) {
    auto layer = images_.get(requested);
    if (!layer.ok()) return layer.error();
    return requested;
  }
  return images_.latest(requested);
}

util::Result<util::Json> PiMaster::layer_list(
    const std::string& image_id) const {
  auto chain = images_.chain(image_id);
  if (!chain.ok()) return chain.error();
  Json layers = Json::array();
  for (const auto& layer : chain.value()) {
    Json j = Json::object();
    j.set("id", layer.id());
    j.set("bytes", static_cast<unsigned long long>(layer.layer_bytes));
    layers.push_back(std::move(j));
  }
  return layers;
}

std::vector<NodeView> PiMaster::placement_views() const {
  std::vector<NodeView> views = monitor_.views();
  // Heartbeats lag the truth by up to one period, so fuse in the master's
  // own authoritative registry (placed instances) plus in-flight
  // reservations — otherwise back-to-back spawns overpack a node.
  std::map<std::string, Reservation> placed;
  for (const auto& [name, record] : instances_) {
    // Lost instances hold no capacity anywhere — their container is gone.
    if (record.state == "lost") continue;
    placed[record.hostname].mem += record.mem_reserved;
    placed[record.hostname].containers += 1;
  }
  for (auto& view : views) {
    std::uint64_t known_mem = view.baseline_mem;
    int known_containers = 0;
    auto it = placed.find(view.hostname);
    if (it != placed.end()) {
      known_mem += it->second.mem;
      known_containers += it->second.containers;
    }
    auto pending = reservations_.find(view.hostname);
    if (pending != reservations_.end()) {
      known_mem += pending->second.mem;
      known_containers += pending->second.containers;
    }
    view.mem_used = std::max(view.mem_used, known_mem);
    view.containers = std::max(view.containers, known_containers);
  }
  if (network_observer_) {
    std::map<int, double> rack_util = network_observer_();
    for (auto& view : views) {
      auto it = rack_util.find(view.rack);
      if (it != rack_util.end()) view.rack_uplink_utilization = it->second;
    }
  }
  return views;
}

void PiMaster::spawn_instance(SpawnSpec spec, SpawnCallback cb) {
  // Every admission is counted exactly once, before any outcome: the
  // invariant spawns_ok + spawns_failed <= spawn_requests holds at all
  // times (equality once no spawn is in flight).
  spawn_requests_->inc();
  if (spec.name.empty()) {
    spawns_failed_->inc();
    cb(util::Error::make("invalid", "instance name required"));
    return;
  }
  if (instances_.count(spec.name) > 0) {
    spawns_failed_->inc();
    cb(util::Error::make("exists", "instance name in use: " + spec.name));
    return;
  }
  auto image = resolve_image(spec.image);
  if (!image.ok()) {
    spawns_failed_->inc();
    cb(image.error());
    return;
  }
  auto layers = layer_list(image.value());
  if (!layers.ok()) {
    spawns_failed_->inc();
    cb(layers.error());
    return;
  }

  // Admission control + placement.
  std::uint64_t mem_needed =
      spec.memory_limit > 0 ? spec.memory_limit
      : spec.bare_metal     ? os::Container::kBareMetalRamBytes
                            : os::Container::kIdleRamBytes;
  std::string hostname = spec.hostname;
  if (hostname.empty()) {
    PlacementRequest request;
    request.instance_name = spec.name;
    request.mem_bytes = mem_needed;
    request.rack_affinity = spec.rack_affinity;
    request.affinity_group = spec.affinity_group;
    auto picked = policy_->pick(placement_views(), request);
    if (!picked.ok()) {
      spawns_failed_->inc();
      cb(picked.error());
      return;
    }
    hostname = picked.value();
  } else if (!monitor_.alive(hostname)) {
    spawns_failed_->inc();
    cb(util::Error::make("unavailable", "pinned node is not alive"));
    return;
  }
  auto node_ip = node_ips_.find(hostname);
  if (node_ip == node_ips_.end()) {
    spawns_failed_->inc();
    cb(util::Error::make("unavailable", "no management address for node"));
    return;
  }

  // Container address from the DHCP pool ("customised IP policies"):
  // synthetic locally-administered MAC per virtual host.
  std::string mac = util::format("02:00:00:%02x:%02x:%02x",
                                 (next_container_mac_ >> 16) & 0xff,
                                 (next_container_mac_ >> 8) & 0xff,
                                 next_container_mac_ & 0xff);
  ++next_container_mac_;
  auto container_ip = dhcp_->allocate_static(mac, spec.name);
  if (!container_ip.ok()) {
    spawns_failed_->inc();
    cb(container_ip.error());
    return;
  }

  // Reserve capacity while the spawn is in flight (guards concurrent
  // placements from double-booking a node).
  reservations_[hostname].mem += mem_needed;
  reservations_[hostname].containers += 1;
  record_op_start(spec.name, "spawn");

  Json body = Json::object();
  body.set("name", spec.name);
  // Idempotency key: wire-level retries of this request must not
  // double-spawn on the daemon.
  body.set("idem", util::format("spawn/%s/%llu", spec.name.c_str(),
                                static_cast<unsigned long long>(++op_seq_)));
  body.set("image", image.value());
  body.set("layers", layers.value());
  body.set("ip", container_ip.value().to_string());
  body.set("cpu_shares", spec.cpu_shares);
  body.set("cpu_limit", spec.cpu_limit);
  body.set("memory_limit", static_cast<unsigned long long>(spec.memory_limit));
  if (spec.bare_metal) body.set("bare_metal", true);
  if (!spec.app_kind.empty()) {
    body.set("app", spec.app_kind);
    body.set("app_params", spec.app_params);
  }

  net::Ipv4Addr daemon_ip = node_ip->second;
  net::Ipv4Addr vip = container_ip.value();
  client_->call(
      daemon_ip, NodeDaemon::kPort, Method::kPost, "/containers",
      std::move(body),
      [this, spec, hostname, vip, mem_needed, cb,
       image = image.value()](util::Result<HttpResponse> result) {
        auto& reservation = reservations_[hostname];
        reservation.mem -= std::min(reservation.mem, mem_needed);
        reservation.containers = std::max(reservation.containers - 1, 0);

        auto fail = [&](util::Error error) {
          dhcp_->release(vip);
          spawns_failed_->inc();
          record_op_end(spec.name, false);
          cb(std::move(error));
        };
        if (!result.ok()) {
          fail(result.error());
          return;
        }
        if (!result.value().ok()) {
          fail(util::Error::make(
              result.value().body.get_string("error", "error"),
              result.value().body.get_string("message", "spawn refused")));
          return;
        }
        InstanceRecord record;
        record.name = spec.name;
        record.hostname = hostname;
        record.ip = vip;
        record.image = image;
        record.app_kind = spec.app_kind;
        record.state = "running";
        record.mem_reserved = mem_needed;
        record.created_at = sim_.now();
        instances_[spec.name] = record;
        dns_->add_record(spec.name, vip);
        spawns_ok_->inc();
        if (util::FaultInjection::instance().double_count_spawn_ok) {
          spawns_ok_->inc();  // planted bug for the fuzzer self-check
        }
        record_op_end(spec.name, true);
        LOG_INFO("pimaster", "spawned %s on %s at %s", spec.name.c_str(),
                 hostname.c_str(), vip.to_string().c_str());
        cb(std::move(record));
      },
      proxy_policy(config_.spawn_timeout));
}

void PiMaster::delete_instance(const std::string& name, SimpleCallback cb) {
  auto it = instances_.find(name);
  if (it == instances_.end()) {
    cb(util::Error::make("not_found", "no such instance: " + name));
    return;
  }
  InstanceRecord record = it->second;
  auto node_ip = node_ips_.find(record.hostname);
  if (record.state == "lost" || node_ip == node_ips_.end() ||
      !monitor_.alive(record.hostname)) {
    // The container is gone or its node is dark: there is nothing to ask.
    // Repair the registry directly (the container died with its node).
    dhcp_->release(record.ip);
    dns_->remove_record(name);
    instances_.erase(name);
    ops_.erase(name);
    cb(util::Status::success());
    return;
  }
  record_op_start(name, "delete");
  Json body = Json::object();
  body.set("idem", util::format("del/%s/%llu", name.c_str(),
                                static_cast<unsigned long long>(++op_seq_)));
  client_->call(
      node_ip->second, NodeDaemon::kPort, Method::kDelete,
      "/containers/" + name, std::move(body),
      [this, name, record, cb](util::Result<HttpResponse> result) {
        if (!result.ok()) {
          record_op_end(name, false);
          cb(util::Error::make("unavailable", result.error().message));
          return;
        }
        // 404 from the daemon still clears master state (drift repair).
        dhcp_->release(record.ip);
        dns_->remove_record(name);
        instances_.erase(name);
        record_op_end(name, true);
        cb(util::Status::success());
      },
      proxy_policy(sim::Duration::seconds(5)));
}

void PiMaster::migrate_instance(const std::string& name, const std::string& to,
                                bool live,
                                MigrationCoordinator::DoneCallback cb,
                                AddressUpdateMode address_update) {
  auto it = instances_.find(name);
  if (it == instances_.end()) {
    MigrationReport report;
    report.instance = name;
    report.success = false;
    report.error = "no such instance";
    cb(report);
    return;
  }
  InstanceRecord& record = it->second;
  if (record.state == "lost") {
    MigrationReport report;
    report.instance = name;
    report.from = record.hostname;
    report.success = false;
    report.error = "instance is lost (no container to migrate)";
    cb(report);
    return;
  }

  std::string destination = to;
  if (!destination.empty()) {
    // Explicit destinations still pass admission control: the envelope
    // (3 containers per Pi, RAM headroom) binds migrations too.
    bool fits = false;
    for (const NodeView& view : placement_views()) {
      if (view.hostname != destination) continue;
      fits = view.alive &&
             view.containers <
                 config_.placement_limits.max_containers_per_node &&
             static_cast<double>(view.mem_used + record.mem_reserved) <=
                 static_cast<double>(view.mem_capacity) *
                     config_.placement_limits.mem_headroom;
      break;
    }
    if (!fits) {
      MigrationReport report;
      report.instance = name;
      report.from = record.hostname;
      report.to = destination;
      report.success = false;
      report.error = "destination fails admission control";
      cb(report);
      return;
    }
  }
  if (destination.empty()) {
    // Policy-driven destination, excluding the current host.
    PlacementRequest request;
    request.instance_name = name;
    request.mem_bytes = os::Container::kIdleRamBytes;
    std::vector<NodeView> views = placement_views();
    views.erase(std::remove_if(views.begin(), views.end(),
                               [&](const NodeView& v) {
                                 return v.hostname == record.hostname;
                               }),
                views.end());
    auto picked = policy_->pick(views, request);
    if (!picked.ok()) {
      MigrationReport report;
      report.instance = name;
      report.from = record.hostname;
      report.success = false;
      report.error = "no destination with capacity";
      cb(report);
      return;
    }
    destination = picked.value();
  }

  MigrationParams params;
  params.instance = name;
  params.from = record.hostname;
  params.to = destination;
  params.live = live;
  params.address_update = address_update;
  auto layers = layer_list(record.image);
  if (layers.ok()) params.layers = layers.value();

  record.state = "migrating";
  record_op_start(name, "migrate");
  migrations_->migrate(std::move(params), [this, name, destination,
                                           cb](const MigrationReport& report) {
    auto it = instances_.find(name);
    if (it != instances_.end()) {
      if (report.success) {
        it->second.state = "running";
        it->second.hostname = destination;
      } else if (report.instance_lost) {
        // The container survived on neither end (e.g. destination died in
        // the commit blackout). The record stays so a ReplicaSet can
        // respawn, but it holds no capacity and cannot be migrated again.
        it->second.state = "lost";
      } else {
        // Aborted/rolled back: still running on the source.
        it->second.state = "running";
      }
    }
    record_op_end(name, report.success);
    cb(report);
  });
}

bool PiMaster::instance_healthy(const std::string& name) const {
  auto it = instances_.find(name);
  if (it == instances_.end()) return false;
  const InstanceRecord& record = it->second;
  if (record.state != "running") return false;
  if (!monitor_.alive(record.hostname)) return false;
  // Registry drift check: a node that power-cycled re-registers as alive
  // but its containers died with it. Probe the daemon's actual state.
  NodeDaemon* daemon = node_daemon(record.hostname);
  if (daemon == nullptr) return false;
  os::Container* container = daemon->node().find_container(name);
  return container != nullptr &&
         container->state() == os::ContainerState::kRunning;
}

util::Result<InstanceRecord> PiMaster::instance(const std::string& name) const {
  auto it = instances_.find(name);
  if (it == instances_.end()) {
    return util::Error::make("not_found", "no such instance: " + name);
  }
  return it->second;
}

std::vector<InstanceRecord> PiMaster::instances() const {
  std::vector<InstanceRecord> out;
  out.reserve(instances_.size());
  for (const auto& [name, record] : instances_) out.push_back(record);
  return out;
}

util::Status PiMaster::set_policy(const std::string& name) {
  auto policy = make_policy(name);
  if (!policy.ok()) return policy.error();
  policy_ = std::move(policy).value();
  policy_->set_limits(config_.placement_limits);
  policy_name_ = name;
  return util::Status::success();
}

void PiMaster::install_routes() {
  router_.handle(
      Method::kPost, "/register",
      [this](const HttpRequest& req, const PathParams&) {
        std::string hostname = req.body.get_string("hostname");
        auto ip = net::Ipv4Addr::parse(req.body.get_string("ip"));
        if (hostname.empty() || !ip) {
          return HttpResponse::bad_request("hostname and ip required");
        }
        monitor_.register_node(hostname, req.body.get_string("mac"), *ip,
                               static_cast<int>(req.body.get_number("rack", -1)),
                               req.body.get_number("cpu_hz"));
        node_ips_[hostname] = *ip;
        return HttpResponse::make(200, Json("registered"));
      });

  router_.handle(
      Method::kPost, "/nodes/:hostname/stats",
      [this](const HttpRequest& req, const PathParams& params) {
        const std::string& hostname = params.at("hostname");
        if (!monitor_.known(hostname)) {
          return HttpResponse::not_found("unregistered node");
        }
        monitor_.record_sample(hostname,
                               NodeSample::from_json(req.body, sim_.now()));
        return HttpResponse::make(200);
      });

  router_.handle(Method::kGet, "/nodes",
                 [this](const HttpRequest&, const PathParams&) {
                   Json list = Json::array();
                   for (const NodeRecord& rec : monitor_.nodes()) {
                     Json j = rec.latest.to_json();
                     j.set("hostname", rec.hostname);
                     j.set("ip", rec.ip.to_string());
                     j.set("rack", rec.rack);
                     j.set("alive", monitor_.alive(rec.hostname));
                     list.push_back(std::move(j));
                   }
                   return HttpResponse::make(200, std::move(list));
                 });

  router_.handle(Method::kGet, "/nodes/:hostname",
                 [this](const HttpRequest&, const PathParams& params) {
                   auto rec = monitor_.node(params.at("hostname"));
                   if (!rec) return HttpResponse::not_found();
                   Json j = rec->latest.to_json();
                   j.set("hostname", rec->hostname);
                   j.set("ip", rec->ip.to_string());
                   j.set("rack", rec->rack);
                   j.set("alive", monitor_.alive(rec->hostname));
                   return HttpResponse::make(200, std::move(j));
                 });

  router_.handle(Method::kGet, "/cluster/summary",
                 [this](const HttpRequest&, const PathParams&) {
                   ClusterSummary s = monitor_.summary();
                   Json j = Json::object();
                   j.set("nodes_total", s.nodes_total);
                   j.set("nodes_alive", s.nodes_alive);
                   j.set("containers_running", s.containers_running);
                   j.set("avg_cpu", s.avg_cpu_utilization);
                   j.set("mem_used", static_cast<unsigned long long>(s.mem_used));
                   j.set("mem_capacity",
                         static_cast<unsigned long long>(s.mem_capacity));
                   j.set("watts", s.power_watts);
                   return HttpResponse::make(200, std::move(j));
                 });

  router_.handle(Method::kGet, "/instances",
                 [this](const HttpRequest&, const PathParams&) {
                   Json list = Json::array();
                   for (const auto& record : instances()) {
                     list.push_back(record.to_json());
                   }
                   return HttpResponse::make(200, std::move(list));
                 });

  router_.handle(Method::kGet, "/instances/:name",
                 [this](const HttpRequest&, const PathParams& params) {
                   auto record = instance(params.at("name"));
                   if (!record.ok()) return HttpResponse::not_found();
                   return HttpResponse::make(200, record.value().to_json());
                 });

  router_.handle_async(
      Method::kPost, "/instances",
      [this](const HttpRequest& req, const PathParams&,
             proto::Responder respond) {
        // A retried spawn (client resent after a lost response) replays the
        // recorded outcome instead of reporting a spurious name collision.
        const std::uint64_t replays_before = idem_.stats().replayed;
        proto::Responder once =
            idem_.admit(req.body.get_string("idem"), std::move(respond));
        if (!once) {
          if (util::FaultInjection::instance().recount_replayed_spawn &&
              idem_.stats().replayed > replays_before) {
            // Planted, schedule-dependent bug for the model checker
            // (util/faults.h): the replay path re-counts the recorded
            // success, which only happens when the duplicate arrived after
            // the original completed — a specific interleaving.
            spawns_ok_->inc();
          }
          return;
        }
        respond = std::move(once);
        SpawnSpec spec;
        spec.name = req.body.get_string("name");
        spec.image = req.body.get_string("image");
        spec.app_kind = req.body.get_string("app");
        spec.app_params = req.body.get("app_params");
        spec.cpu_shares = req.body.get_number("cpu_shares", 1024);
        spec.cpu_limit = req.body.get_number("cpu_limit", 0);
        spec.memory_limit =
            static_cast<std::uint64_t>(req.body.get_number("memory_limit", 0));
        spec.rack_affinity =
            static_cast<int>(req.body.get_number("rack", -1));
        spec.affinity_group = req.body.get_string("group");
        spec.hostname = req.body.get_string("node");
        spec.bare_metal = req.body.get_bool("bare_metal");
        spawn_instance(std::move(spec),
                       [respond = std::move(respond)](
                           util::Result<InstanceRecord> result) {
                         if (!result.ok()) {
                           respond(HttpResponse::from_error(result.error()));
                           return;
                         }
                         respond(HttpResponse::make(
                             201, result.value().to_json()));
                       });
      });

  router_.handle_async(
      Method::kDelete, "/instances/:name",
      [this](const HttpRequest& req, const PathParams& params,
             proto::Responder respond) {
        proto::Responder once =
            idem_.admit(req.body.get_string("idem"), std::move(respond));
        if (!once) return;
        respond = std::move(once);
        delete_instance(params.at("name"),
                        [respond = std::move(respond)](util::Status status) {
                          if (!status.ok()) {
                            respond(HttpResponse::from_error(status.error()));
                            return;
                          }
                          respond(HttpResponse::make(204));
                        });
      });

  router_.handle_async(
      Method::kPut, "/instances/:name/limits",
      [this](const HttpRequest& req, const PathParams& params,
             proto::Responder respond) {
        auto record = instance(params.at("name"));
        if (!record.ok()) {
          respond(HttpResponse::not_found());
          return;
        }
        auto node_ip = node_ips_.find(record.value().hostname);
        if (node_ip == node_ips_.end()) {
          respond(HttpResponse::service_unavailable("hosting node unknown"));
          return;
        }
        client_->call(node_ip->second, NodeDaemon::kPort, Method::kPut,
                      "/containers/" + record.value().name + "/limits",
                      req.body,
                      [respond = std::move(respond)](
                          util::Result<HttpResponse> result) {
                        if (!result.ok()) {
                          respond(HttpResponse::service_unavailable(
                              result.error().message));
                          return;
                        }
                        respond(result.value());
                      },
                      proxy_policy(sim::Duration::seconds(5)));
      });

  router_.handle_async(
      Method::kPost, "/instances/:name/migrate",
      [this](const HttpRequest& req, const PathParams& params,
             proto::Responder respond) {
        proto::Responder once =
            idem_.admit(req.body.get_string("idem"), std::move(respond));
        if (!once) return;
        respond = std::move(once);
        AddressUpdateMode mode =
            req.body.get_string("address_update", "sdn") == "arp"
                ? AddressUpdateMode::kArpConvergence
                : AddressUpdateMode::kSdnRedirect;
        migrate_instance(params.at("name"), req.body.get_string("to"),
                         req.body.get_bool("live", true),
                         [respond = std::move(respond)](
                             const MigrationReport& report) {
                           respond(HttpResponse::make(
                               report.success ? 200 : 409, report.to_json()));
                         },
                         mode);
      });

  router_.handle(Method::kGet, "/images",
                 [this](const HttpRequest&, const PathParams&) {
                   Json list = Json::array();
                   for (const auto& id : images_.list()) {
                     auto layer = images_.get(id);
                     Json j = Json::object();
                     j.set("id", id);
                     j.set("bytes", static_cast<unsigned long long>(
                                        layer.value().layer_bytes));
                     j.set("note", layer.value().note);
                     list.push_back(std::move(j));
                   }
                   return HttpResponse::make(200, std::move(list));
                 });

  router_.handle(
      Method::kPost, "/images",
      [this](const HttpRequest& req, const PathParams&) {
        auto id = images_.add_base(
            req.body.get_string("name"),
            static_cast<std::uint64_t>(req.body.get_number("bytes")),
            req.body.get_string("note"));
        if (!id.ok()) return HttpResponse::from_error(id.error());
        return HttpResponse::make(201, Json(id.value()));
      });

  router_.handle(
      Method::kPost, "/images/:name/patch",
      [this](const HttpRequest& req, const PathParams& params) {
        auto id = images_.patch(
            params.at("name"),
            static_cast<std::uint64_t>(req.body.get_number("bytes")),
            req.body.get_string("note"));
        if (!id.ok()) return HttpResponse::from_error(id.error());
        return HttpResponse::make(201, Json(id.value()));
      });

  router_.handle(
      Method::kPost, "/images/:name/upgrade",
      [this](const HttpRequest& req, const PathParams& params) {
        auto id = images_.upgrade(
            params.at("name"),
            static_cast<std::uint64_t>(req.body.get_number("bytes")),
            req.body.get_string("note"));
        if (!id.ok()) return HttpResponse::from_error(id.error());
        return HttpResponse::make(201, Json(id.value()));
      });

  router_.handle(Method::kGet, "/network",
                 [this](const HttpRequest&, const PathParams&) {
                   Json racks = Json::array();
                   if (network_observer_) {
                     for (const auto& [rack, util] : network_observer_()) {
                       Json j = Json::object();
                       j.set("rack", rack);
                       j.set("uplink_utilization", util);
                       racks.push_back(std::move(j));
                     }
                   }
                   Json body = Json::object();
                   body.set("racks", std::move(racks));
                   return HttpResponse::make(200, std::move(body));
                 });

  router_.handle(Method::kGet, "/health",
                 [this](const HttpRequest&, const PathParams&) {
                   ClusterSummary s = monitor_.summary();
                   Json j = Json::object();
                   j.set("role", "pimaster");
                   j.set("nodes_alive", s.nodes_alive);
                   j.set("nodes_total", s.nodes_total);
                   j.set("instances", static_cast<double>(instances_.size()));
                   j.set("liveness_window_s",
                         config_.node_liveness_window.to_seconds());
                   if (client_) {
                     const proto::RetryStats& rs = client_->retry_stats();
                     Json retry = Json::object();
                     retry.set("inflight",
                               static_cast<double>(client_->inflight_retries()));
                     retry.set("attempts", static_cast<double>(rs.attempts));
                     retry.set("retries", static_cast<double>(rs.retries));
                     retry.set("exhausted", static_cast<double>(rs.exhausted));
                     j.set("retry", std::move(retry));
                   }
                   Json dedup = Json::object();
                   dedup.set("admitted",
                             static_cast<double>(idem_.stats().admitted));
                   dedup.set("replayed",
                             static_cast<double>(idem_.stats().replayed));
                   dedup.set("coalesced",
                             static_cast<double>(idem_.stats().coalesced));
                   j.set("dedup", std::move(dedup));
                   if (reconciler_) {
                     const Reconciler::Stats& cs = reconciler_->stats();
                     Json rec = Json::object();
                     rec.set("sweeps", static_cast<double>(cs.sweeps));
                     rec.set("marked_lost",
                             static_cast<double>(cs.marked_lost_dead_node +
                                                 cs.marked_lost_drift));
                     rec.set("orphans_destroyed",
                             static_cast<double>(cs.orphans_destroyed));
                     j.set("reconciler", std::move(rec));
                   }
                   return HttpResponse::make(200, std::move(j));
                 });

  // The full telemetry spine: every counter/gauge/histogram registered by
  // any component of the simulation, in canonical snapshot form. This is
  // the one endpoint the web panel and external scrapers need.
  router_.handle(Method::kGet, "/metrics",
                 [this](const HttpRequest&, const PathParams&) {
                   return HttpResponse::make(200, sim_.metrics().snapshot());
                 });

  // Recent structured trace events (sim-time, bounded ring buffer).
  router_.handle(Method::kGet, "/trace",
                 [this](const HttpRequest&, const PathParams&) {
                   return HttpResponse::make(200, sim_.trace().to_json());
                 });

  router_.handle(Method::kGet, "/policy",
                 [this](const HttpRequest&, const PathParams&) {
                   Json j = Json::object();
                   j.set("name", policy_name_);
                   return HttpResponse::make(200, std::move(j));
                 });

  router_.handle(Method::kPut, "/policy",
                 [this](const HttpRequest& req, const PathParams&) {
                   util::Status status =
                       set_policy(req.body.get_string("name"));
                   if (!status.ok()) {
                     return HttpResponse::from_error(status.error());
                   }
                   Json j = Json::object();
                   j.set("name", policy_name_);
                   return HttpResponse::make(200, std::move(j));
                 });
}

}  // namespace picloud::cloud
