// PiCloud — the public facade: builds the whole Glasgow Raspberry Pi Cloud
// and offers the high-level operations examples, tests and benches use.
//
// One call constructs the full stack of Fig. 2: 4 Lego racks of 14 Model B
// Pis behind ToR switches, an OpenFlow aggregation layer under a central
// SDN controller, the university gateway, the pimaster head node (DHCP,
// DNS, image store, placement, REST API) and an administrator workstation
// beyond the gateway running the web control panel.
//
//   sim::Simulation sim(42);
//   cloud::PiCloud cloud(sim);            // the Glasgow build
//   cloud.power_on();
//   cloud.await_ready();                  // DHCP storm, registration
//   auto web = cloud.spawn_and_wait({.name = "web-1", .app_kind = "httpd"});
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloud/autopilot.h"
#include "cloud/control_panel.h"
#include "cloud/gossip.h"
#include "cloud/node_daemon.h"
#include "cloud/pimaster.h"
#include "hw/rack.h"
#include "net/sdn.h"
#include "net/topology.h"
#include "sim/simulation.h"

namespace picloud::cloud {

struct PiCloudConfig {
  // --- Scale (defaults = the Glasgow build) ------------------------------------
  int racks = 4;
  int hosts_per_rack = 14;

  // --- Topology -------------------------------------------------------------------
  enum class Topo { kMultiRootTree, kFatTree };
  Topo topology = Topo::kMultiRootTree;
  int aggregation_switches = 2;  // multi-root tree roots
  int fat_tree_k = 4;            // ignored unless kFatTree (k^3/4 hosts)

  // --- Hardware -------------------------------------------------------------------
  hw::DeviceSpec node_spec = hw::pi_model_b();

  // --- SDN ------------------------------------------------------------------------
  bool enable_sdn = true;
  net::SdnPolicy sdn_policy = net::SdnPolicy::kEcmp;

  // --- Management -----------------------------------------------------------------
  std::string placement_policy = "first-fit";
  PlacementLimits placement_limits;
  sim::Duration heartbeat_period = sim::Duration::seconds(2);
  // Anti-entropy loop tuning, passed through to PiMaster::Config (the model
  // checker shortens the period so lost-marking happens inside an episode).
  Reconciler::Config reconcile;

  // --- Addressing -----------------------------------------------------------------
  net::Subnet subnet{net::Ipv4Addr(10, 0, 0, 0), 16};
  net::Ipv4Addr master_ip{10, 0, 0, 2};
  net::Ipv4Addr admin_ip{10, 0, 250, 1};
  net::Ipv4Addr dhcp_range_start{10, 0, 1, 1};
  net::Ipv4Addr dhcp_range_end{10, 0, 199, 254};
};

class PiCloud {
 public:
  explicit PiCloud(sim::Simulation& sim, PiCloudConfig config = {});
  ~PiCloud();

  PiCloud(const PiCloud&) = delete;
  PiCloud& operator=(const PiCloud&) = delete;

  // --- Lifecycle --------------------------------------------------------------
  // Powers the pimaster and every Pi; daemons begin the DHCP/register dance.
  void power_on();
  // Runs the simulation until every node is registered (or `max` elapses).
  // Returns true when the whole fleet reported in.
  bool await_ready(sim::Duration max = sim::Duration::seconds(120));

  // Steps simulated time until `predicate` holds or `max` elapses.
  bool run_until(sim::Duration max, const std::function<bool()>& predicate);
  void run_for(sim::Duration d) { sim_.run_for(d); }

  // --- Components --------------------------------------------------------------
  sim::Simulation& simulation() { return sim_; }
  const sim::Simulation& simulation() const { return sim_; }
  net::Fabric& fabric() { return *fabric_; }
  const net::Fabric& fabric() const { return *fabric_; }
  net::Network& network() { return *network_; }
  const net::Topology& topology() const { return topology_; }
  net::SdnController* sdn() { return sdn_.get(); }
  PiMaster& master() { return *master_; }
  const PiMaster& master() const { return *master_; }
  ControlPanel& panel() { return *panel_; }
  hw::MachineRoom& machine_room() { return machine_room_; }

  size_t node_count() const { return daemons_.size(); }
  NodeDaemon& daemon(size_t i) { return *daemons_[i]; }
  const NodeDaemon& daemon(size_t i) const { return *daemons_[i]; }
  NodeDaemon* daemon_by_hostname(const std::string& hostname);
  os::NodeOs& node(size_t i) { return *node_oses_[i]; }
  const os::NodeOs& node(size_t i) const { return *node_oses_[i]; }
  hw::Device& device(size_t i) { return *devices_[i]; }

  net::Ipv4Addr master_ip() const { return config_.master_ip; }
  net::Ipv4Addr admin_ip() const { return config_.admin_ip; }
  const PiCloudConfig& config() const { return config_; }

  // --- Autopilot (paper §III consolidation-for-power, automated) ----------------
  // Creates and starts the consolidation controller; its power control is
  // wired to daemon start/stop (the socket-board switch). Idempotent.
  Autopilot& enable_autopilot(Autopilot::Config config = {});
  Autopilot* autopilot() { return autopilot_.get(); }

  // --- Peer-to-peer management (paper §III "radical departures") ---------------
  // Starts a GossipAgent on every registered node (requires await_ready()):
  // nodes exchange membership/load epidemically, so any Pi can answer for
  // the whole cluster without the pimaster. Seeded as a ring + node 0.
  void start_gossip(GossipConfig config = {});
  GossipAgent* gossip_agent(size_t i) {
    return i < gossip_.size() ? gossip_[i].get() : nullptr;
  }
  // Silences a node's agent (used together with daemon(i).crash()).
  void stop_gossip_agent(size_t i);
  bool gossip_enabled() const { return !gossip_.empty(); }

  // --- Power instrumentation ("single trailing power socket board") -------------
  double current_power_watts() const { return power_board_.current_watts(); }
  double energy_kwh() const { return power_board_.kwh(sim_.now()); }
  const hw::PowerDistributionBoard& power_board() const { return power_board_; }

  // --- Convenience operations (drive the REST API, then step time) --------------
  // Each runs the simulation until the operation completes, so callers can
  // write linear example code.
  util::Result<InstanceRecord> spawn_and_wait(
      PiMaster::SpawnSpec spec,
      sim::Duration max = sim::Duration::seconds(300));
  util::Status delete_and_wait(const std::string& name,
                               sim::Duration max = sim::Duration::seconds(60));
  MigrationReport migrate_and_wait(
      const std::string& name, const std::string& to, bool live,
      sim::Duration max = sim::Duration::seconds(600));
  // --- Fault schedule points (DESIGN.md §13) -------------------------------------
  // Schedules `fault` (e.g. a daemon crash or link blip) to be applied
  // `delay` from now, routed through the simulation's SchedulePoint hub: in
  // a default run it fires exactly at now+delay; under a model-checking
  // strategy it becomes a parked kFault action the explorer can reorder
  // against in-flight deliveries. `label` must be stable across episodes;
  // faults are treated as dependent with every other action.
  sim::EventId schedule_fault(sim::Duration delay, std::string label,
                              std::function<void()> fault);

  // Renders the control panel dashboard over REST.
  util::Result<std::string> dashboard(
      sim::Duration max = sim::Duration::seconds(30));
  // GET /metrics from the pimaster over REST: the full registry snapshot.
  util::Result<util::Json> metrics_snapshot(
      sim::Duration max = sim::Duration::seconds(30));

 private:
  void build();

  sim::Simulation& sim_;
  PiCloudConfig config_;

  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<net::SdnController> sdn_;
  net::Topology topology_;

  hw::MachineRoom machine_room_;
  hw::PowerDistributionBoard power_board_;
  std::vector<std::unique_ptr<hw::Device>> devices_;   // index = host index
  std::unique_ptr<hw::Device> master_device_;
  std::vector<std::unique_ptr<os::NodeOs>> node_oses_;
  std::vector<std::unique_ptr<NodeDaemon>> daemons_;

  std::unique_ptr<PiMaster> master_;
  std::unique_ptr<ControlPanel> panel_;
  std::vector<std::unique_ptr<GossipAgent>> gossip_;  // index = host index
  std::unique_ptr<Autopilot> autopilot_;
  bool powered_ = false;
};

}  // namespace picloud::cloud
