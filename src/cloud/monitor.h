// ClusterMonitor — the pimaster's live view of every node.
//
// Node daemons push heartbeat stats over REST; the monitor keeps the latest
// sample and a short history per node, computes cluster aggregates, and
// declares nodes dead when heartbeats stop (the panel's red rows). This is
// the data behind the Fig. 4 web interface and the "remote monitoring of the
// CPU load on some/all Pi nodes" use case (§II-C).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cloud/placement.h"
#include "net/addr.h"
#include "sim/simulation.h"
#include "util/json.h"

namespace picloud::cloud {

// One heartbeat sample as reported by a node daemon.
//
// The wire shape is the canonical registry snapshot (DESIGN.md §9): a
// daemon heartbeats its `node.<hostname>.` scope, `{"counters": {...},
// "gauges": {...}, ...}`, and from_json() reads the gauge keys it knows
// (cpu_utilization, mem_used, mem_capacity, sd_used, containers_total,
// containers_running, power_watts). Extra metrics in the snapshot pass
// through untouched — the monitor keeps only the sample fields.
struct NodeSample {
  sim::SimTime at;
  double cpu_utilization = 0;
  std::uint64_t mem_used = 0;
  std::uint64_t mem_capacity = 0;
  std::uint64_t sd_used = 0;
  int containers_total = 0;
  int containers_running = 0;
  double power_watts = 0;

  util::Json to_json() const;
  static NodeSample from_json(const util::Json& j, sim::SimTime at);
};

struct NodeRecord {
  std::string hostname;
  std::string mac;
  net::Ipv4Addr ip;
  int rack = -1;
  double cpu_capacity_hz = 0;
  sim::SimTime registered_at;
  sim::SimTime last_seen;
  // Memory in use before any container was placed (first heartbeat):
  // the OS's own footprint, used for authoritative placement accounting.
  std::uint64_t baseline_mem = 0;
  bool baseline_set = false;
  NodeSample latest;
  std::deque<NodeSample> history;  // bounded to the monitor's history_depth
};

struct ClusterSummary {
  int nodes_total = 0;
  int nodes_alive = 0;
  int containers_running = 0;
  double avg_cpu_utilization = 0;  // across live nodes
  std::uint64_t mem_used = 0;
  std::uint64_t mem_capacity = 0;
  double power_watts = 0;
};

class ClusterMonitor {
 public:
  static constexpr size_t kHistoryDepth = 60;

  // `history_depth` bounds each node's sample ring; the default keeps one
  // minute of 1 Hz heartbeats (the Fig. 4 sparkline window).
  ClusterMonitor(sim::Simulation& sim,
                 sim::Duration liveness_window = sim::Duration::seconds(10),
                 size_t history_depth = kHistoryDepth);

  // Registration (first contact after DHCP).
  void register_node(const std::string& hostname, const std::string& mac,
                     net::Ipv4Addr ip, int rack, double cpu_capacity_hz);
  bool known(const std::string& hostname) const;

  // Heartbeat ingestion.
  void record_sample(const std::string& hostname, const NodeSample& sample);

  // A node is alive when a heartbeat arrived within the liveness window.
  bool alive(const std::string& hostname) const;
  std::optional<NodeRecord> node(const std::string& hostname) const;
  std::vector<NodeRecord> nodes() const;  // hostname order
  // Placement-policy input.
  std::vector<NodeView> views() const;
  ClusterSummary summary() const;

  size_t node_count() const { return records_.size(); }
  size_t history_depth() const { return history_depth_; }
  std::uint64_t samples_ingested() const { return samples_->value(); }

 private:
  sim::Simulation& sim_;
  sim::Duration liveness_window_;
  size_t history_depth_;
  std::map<std::string, NodeRecord> records_;
  util::Counter* samples_ = nullptr;  // cloud.monitor.samples_ingested
};

}  // namespace picloud::cloud
