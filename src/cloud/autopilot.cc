#include "cloud/autopilot.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace picloud::cloud {

Autopilot::Autopilot(sim::Simulation& sim, PiMaster& master, Config config)
    : sim_(sim), master_(master), config_(config) {}

Autopilot::~Autopilot() { stop(); }

void Autopilot::start() {
  if (running_) return;
  running_ = true;
  evaluation_task_ = sim::PeriodicTask(sim_, config_.evaluation_period,
                                       [this]() { evaluate(); });
}

void Autopilot::stop() {
  if (!running_) return;
  running_ = false;
  evaluation_task_.stop();
}

void Autopilot::evaluate() {
  if (draining_) return;  // one consolidation at a time
  ++stats_.evaluations;

  // --- SLO burn: shed/dropped requests accumulating too fast ------------------
  if (!config_.slo_burn_counter.empty()) {
    const std::uint64_t count =
        sim_.metrics().counter_value(config_.slo_burn_counter);
    const std::uint64_t burned =
        count >= last_slo_count_ ? count - last_slo_count_ : 0;
    last_slo_count_ = count;
    const double rate =
        static_cast<double>(burned) / config_.evaluation_period.to_seconds();
    if (rate > config_.slo_burn_threshold) {
      ++stats_.slo_scale_ups;
      LOG_INFO("autopilot", "SLO burn %.1f/s on %s: scaling up", rate,
               config_.slo_burn_counter.c_str());
      if (!parked_.empty()) {
        std::string wake = *parked_.begin();
        parked_.erase(parked_.begin());
        ++stats_.nodes_powered_on;
        if (power_control_) power_control_(wake, true);
      }
      if (scale_up_hook_) scale_up_hook_();
      return;  // never consolidate while the SLO is burning
    }
  }

  std::vector<NodeView> views = master_.monitor().views();
  // Partition: live, parked-by-us, and how loaded the live set is. A node
  // we just parked can still look monitor-alive for one liveness window, so
  // the parked set is authoritative here — otherwise the lag lets the
  // controller drain below its floor.
  int live = 0;
  double cpu_sum = 0;
  for (const NodeView& v : views) {
    if (v.alive && parked_.count(v.hostname) == 0) {
      ++live;
      cpu_sum += v.cpu_utilization;
    }
  }
  double avg_cpu = live > 0 ? cpu_sum / live : 0;

  // --- Scale up: pressure high and we have parked capacity -------------------
  if (avg_cpu > config_.wake_cpu_threshold && !parked_.empty()) {
    std::string wake = *parked_.begin();
    parked_.erase(parked_.begin());
    ++stats_.nodes_powered_on;
    LOG_INFO("autopilot", "pressure %.0f%%: waking %s", avg_cpu * 100,
             wake.c_str());
    if (power_control_) power_control_(wake, true);
    return;
  }

  // --- Consolidate: find the emptiest drainable donor -------------------------
  if (live <= config_.min_nodes_on) return;

  std::map<std::string, std::vector<std::string>> instances_by_node;
  for (const InstanceRecord& record : master_.instances()) {
    if (record.state == "running") {
      instances_by_node[record.hostname].push_back(record.name);
    }
  }

  const NodeView* donor = nullptr;
  for (const NodeView& v : views) {
    if (!v.alive || parked_.count(v.hostname) > 0) continue;
    size_t count = instances_by_node[v.hostname].size();
    if (count == 0) {
      // Empty already: park it immediately.
      parked_.insert(v.hostname);
      ++stats_.nodes_powered_off;
      LOG_INFO("autopilot", "parking idle node %s", v.hostname.c_str());
      if (power_control_) power_control_(v.hostname, false);
      return;
    }
    if (donor == nullptr ||
        count < instances_by_node[donor->hostname].size()) {
      donor = &v;
    }
  }
  if (donor == nullptr) return;

  // Will the donor's instances fit on the others?
  std::uint64_t donor_mem = 0;
  for (const InstanceRecord& record : master_.instances()) {
    if (record.hostname == donor->hostname) donor_mem += record.mem_reserved;
  }
  std::uint64_t spare = 0;
  for (const NodeView& v : views) {
    if (!v.alive || v.hostname == donor->hostname ||
        parked_.count(v.hostname) > 0) {
      continue;
    }
    double budget = static_cast<double>(v.mem_capacity) *
                    config_.target_mem_headroom;
    if (static_cast<double>(v.mem_used) < budget) {
      spare += static_cast<std::uint64_t>(budget) - v.mem_used;
    }
  }
  if (spare < donor_mem) return;  // would overpack; stay spread

  ++stats_.drains_started;
  draining_ = true;
  LOG_INFO("autopilot", "draining %s (%zu instances)",
           donor->hostname.c_str(),
           instances_by_node[donor->hostname].size());
  drain(donor->hostname, instances_by_node[donor->hostname]);
}

void Autopilot::drain(const std::string& donor,
                      std::vector<std::string> instances) {
  if (instances.empty()) {
    // Drained: flip the switch.
    draining_ = false;
    parked_.insert(donor);
    ++stats_.nodes_powered_off;
    LOG_INFO("autopilot", "parking drained node %s", donor.c_str());
    if (power_control_) power_control_(donor, false);
    return;
  }
  std::string instance = instances.back();
  instances.pop_back();
  master_.migrate_instance(
      instance, /*to=*/"", /*live=*/true,
      [this, donor, instances = std::move(instances),
       instance](const MigrationReport& report) mutable {
        if (report.success) {
          ++stats_.migrations_ok;
        } else {
          ++stats_.migrations_failed;
          LOG_WARN("autopilot", "drain of %s stalled: %s", instance.c_str(),
                   report.error.c_str());
          // Abort this drain; re-evaluate next period.
          draining_ = false;
          return;
        }
        drain(donor, std::move(instances));
      });
}

}  // namespace picloud::cloud
