// ReplicaSet — declarative self-healing replication.
//
// The paper's motivation workloads ("private data processing to public
// website hosting", §I) only survive a failing testbed if something puts
// replicas back. ReplicaSet is that something: declare "N copies of this
// spec" and a reconciliation loop on the pimaster respawns replicas whose
// node has died (detected through the monitor's liveness), placing them via
// the active policy. Endpoints are exposed for client load balancers and a
// change hook fires whenever the serving set moves.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "cloud/pimaster.h"
#include "sim/simulation.h"

namespace picloud::cloud {

class ReplicaSet {
 public:
  struct Config {
    std::string name_prefix = "replica";  // instances are "<prefix>-K"
    int replicas = 2;
    PiMaster::SpawnSpec spec;  // name/hostname fields are overridden
    sim::Duration reconcile_period = sim::Duration::seconds(10);
  };

  // picloud-lint: allow(metrics-registry)
  struct Stats {
    std::uint64_t reconciliations = 0;
    std::uint64_t spawned = 0;
    std::uint64_t replaced = 0;  // respawns after a node death
    std::uint64_t spawn_failures = 0;
  };

  ReplicaSet(sim::Simulation& sim, PiMaster& master, Config config);
  ~ReplicaSet();

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  void start();
  void stop();

  // IPs of replicas currently healthy (node alive + container running).
  std::vector<net::Ipv4Addr> endpoints() const;
  size_t healthy_replicas() const { return endpoints().size(); }
  int replicas() const { return config_.replicas; }
  // Re-targets the set (the autopilot's SLO-burn scale-up signal lands
  // here). Growing spawns into the new slots on the next reconcile; shrinking
  // deletes the excess slots' instances.
  void set_replicas(int replicas);
  // Fires after any reconciliation that changed the endpoint set.
  void set_on_change(std::function<void()> hook) { on_change_ = std::move(hook); }

  const Stats& stats() const { return stats_; }

 private:
  void reconcile();
  std::string replica_name(int slot) const;

  sim::Simulation& sim_;
  PiMaster& master_;
  Config config_;
  Stats stats_;
  bool running_ = false;
  std::set<int> inflight_;  // slots with a spawn/delete in progress
  std::function<void()> on_change_;
  sim::PeriodicTask reconcile_task_;
};

}  // namespace picloud::cloud
