#include "cloud/replicaset.h"

#include "util/logging.h"
#include "util/strings.h"

namespace picloud::cloud {

ReplicaSet::ReplicaSet(sim::Simulation& sim, PiMaster& master, Config config)
    : sim_(sim), master_(master), config_(std::move(config)) {}

ReplicaSet::~ReplicaSet() { stop(); }

void ReplicaSet::start() {
  if (running_) return;
  running_ = true;
  reconcile();
  reconcile_task_ = sim::PeriodicTask(sim_, config_.reconcile_period,
                                      [this]() { reconcile(); });
}

void ReplicaSet::stop() {
  if (!running_) return;
  running_ = false;
  reconcile_task_.stop();
}

std::string ReplicaSet::replica_name(int slot) const {
  return util::format("%s-%d", config_.name_prefix.c_str(), slot);
}

std::vector<net::Ipv4Addr> ReplicaSet::endpoints() const {
  std::vector<net::Ipv4Addr> out;
  for (int slot = 0; slot < config_.replicas; ++slot) {
    std::string name = replica_name(slot);
    if (!master_.instance_healthy(name)) continue;
    auto record = master_.instance(name);
    if (record.ok()) out.push_back(record.value().ip);
  }
  return out;
}

void ReplicaSet::set_replicas(int replicas) {
  if (replicas < 0) replicas = 0;
  if (replicas == config_.replicas) return;
  // Shrinking: delete the instances in the abandoned slots; reconcile()
  // only iterates slots < config_.replicas, so nothing will respawn them.
  for (int slot = replicas; slot < config_.replicas; ++slot) {
    std::string name = replica_name(slot);
    if (!master_.instance(name).ok()) continue;
    master_.delete_instance(name, [this](util::Status) {
      if (on_change_) on_change_();
    });
  }
  LOG_INFO("replicaset", "%s: scaling %d -> %d replicas",
           config_.name_prefix.c_str(), config_.replicas, replicas);
  config_.replicas = replicas;
  if (running_) reconcile();
}

void ReplicaSet::reconcile() {
  ++stats_.reconciliations;
  for (int slot = 0; slot < config_.replicas; ++slot) {
    if (inflight_.count(slot) > 0) continue;
    std::string name = replica_name(slot);
    auto record = master_.instance(name);

    if (master_.instance_healthy(name)) continue;
    if (record.ok() && record.value().state == "migrating") {
      continue;  // in motion; leave it alone
    }

    inflight_.insert(slot);
    if (record.ok()) {
      // The hosting node died (or the record is stale): clear the registry
      // entry, then respawn next round.
      LOG_WARN("replicaset", "%s lost its node (%s); replacing",
               name.c_str(), record.value().hostname.c_str());
      master_.delete_instance(name, [this, slot](util::Status) {
        inflight_.erase(slot);
        ++stats_.replaced;
        if (on_change_) on_change_();
      });
      continue;
    }

    // Missing entirely: spawn into this slot.
    PiMaster::SpawnSpec spec = config_.spec;
    spec.name = name;
    spec.hostname.clear();  // always let the policy place replacements
    master_.spawn_instance(
        std::move(spec), [this, slot](util::Result<InstanceRecord> result) {
          inflight_.erase(slot);
          if (result.ok()) {
            ++stats_.spawned;
            if (on_change_) on_change_();
          } else {
            ++stats_.spawn_failures;
          }
        });
  }
}

}  // namespace picloud::cloud
