// NodeDaemon — the bespoke per-Pi administration daemon (paper §II-C).
//
// "for the moment we rely upon a bespoke administration API supported by
// daemons on the pimaster and on individual Pi devices ... This website
// interacts with the local daemons, and controls workloads running on the
// Pi devices using RESTful interfaces."
//
// Boot sequence of a Pi in the PiCloud:
//   NodeOs::boot -> DHCP DORA handshake -> REST server on the leased IP
//   -> register with pimaster -> periodic heartbeat stats.
//
// REST surface (port 8080):
//   GET    /ping
//   GET    /stats
//   GET    /containers                     list
//   GET    /containers/:name               inspect
//   POST   /containers                     spawn (fetches missing image
//                                          layers from pimaster first)
//   POST   /containers/:name/stop
//   POST   /containers/:name/freeze
//   POST   /containers/:name/thaw
//   DELETE /containers/:name
//   PUT    /containers/:name/limits        soft per-VM resource limits
//   POST   /images/prefetch                pull image layers ahead of time
//   GET    /health                         liveness + retry/dedup stats
//   GET    /metrics                        this node's registry scope
//
// Telemetry (DESIGN.md §9): the daemon owns the `node.<hostname>.` scope of
// the simulation's MetricsRegistry — gauges refreshed from NodeOs at each
// heartbeat, counters for its own activity, and its RestClient accounting
// under `node.<hostname>.rest.*`. GET /metrics and the heartbeat body are
// both the canonical prefix-stripped snapshot of that scope.
//
// Mutating requests (spawn, delete) may carry an "idem" key in the body;
// the daemon keeps a bounded dedup cache so a retried request that already
// executed replays the recorded outcome instead of double-spawning.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "os/node_os.h"
#include "proto/dhcp.h"
#include "proto/http.h"
#include "proto/rest.h"
#include "sim/simulation.h"
#include "util/json.h"
#include "util/result.h"

namespace picloud::cloud {

class NodeDaemon {
 public:
  static constexpr std::uint16_t kPort = 8080;

  struct Config {
    net::Ipv4Addr pimaster_ip;
    std::uint16_t pimaster_port = 9000;
    int rack = -1;
    sim::Duration heartbeat_period = sim::Duration::seconds(2);
  };

  // Creates ContainerApp instances from the "app" / "app_params" fields of
  // a spawn request. Wired by the PiCloud facade to the apps library.
  using AppFactory = std::function<util::Result<std::unique_ptr<os::ContainerApp>>(
      const std::string& kind, const util::Json& params)>;

  NodeDaemon(os::NodeOs& node, Config config);
  ~NodeDaemon();

  NodeDaemon(const NodeDaemon&) = delete;
  NodeDaemon& operator=(const NodeDaemon&) = delete;

  void set_app_factory(AppFactory factory) { app_factory_ = std::move(factory); }

  // Boots the node and begins the DHCP -> register -> heartbeat sequence.
  void start();
  // Graceful stop (deregisters nothing — the pimaster notices the silence,
  // as it would in the real deployment).
  void stop();
  // Failure injection: kills the node mid-flight.
  void crash();

  os::NodeOs& node() { return node_; }
  const os::NodeOs& node() const { return node_; }
  const std::string& hostname() const { return node_.hostname(); }
  bool registered() const { return registered_; }
  net::Ipv4Addr ip() const { return node_.host_ip(); }
  int rack() const { return config_.rack; }

  // Spawns a container locally (same path the REST endpoint uses). Fetches
  // missing image layers from the pimaster first. Asynchronous.
  using SpawnCallback = std::function<void(util::Result<std::string>)>;
  void spawn_container(const util::Json& spec, SpawnCallback cb);

  // Ensures the given image layers ({id, bytes} array) are cached locally,
  // pulling missing ones from the pimaster. Used by the REST prefetch
  // endpoint and by the migration coordinator's prepare phase.
  void prefetch_layers(util::JsonArray layers,
                       std::function<void(util::Status)> done) {
    fetch_layers(std::move(layers), 0, std::move(done));
  }

  std::uint64_t heartbeats_sent() const { return heartbeats_sent_->value(); }
  // This daemon's registry scope, "node.<hostname>".
  const std::string& metrics_scope() const { return scope_; }
  // Dedup cache for idempotent mutations (spawn/delete).
  const proto::IdempotencyCache& idempotency() const { return idem_; }
  // REST client retry accounting (registration, heartbeats). The client
  // only exists while the daemon is up and bound.
  const proto::RestClient* rest_client() const { return client_.get(); }

 private:
  void on_dhcp_bound(net::Ipv4Addr ip, sim::Duration lease);
  void register_with_master();
  void send_heartbeat();
  void install_routes();
  // Refreshes this node's gauges from NodeOs, then returns the canonical
  // prefix-stripped snapshot of the `node.<hostname>.` scope.
  util::Json stats_json() const;
  // Fetches `layers` (array of {id, bytes}) not yet cached, one at a time:
  // network flow from the pimaster, then SD write. `done` gets an error if
  // the SD card fills or the transfer fails.
  void fetch_layers(util::JsonArray layers, size_t index,
                    std::function<void(util::Status)> done);

  os::NodeOs& node_;
  Config config_;
  std::string scope_;  // "node.<hostname>"
  AppFactory app_factory_;
  proto::Router router_;
  std::unique_ptr<proto::DhcpClient> dhcp_;
  std::unique_ptr<proto::RestServer> server_;
  std::unique_ptr<proto::RestClient> client_;
  sim::PeriodicTask heartbeat_task_;
  proto::IdempotencyCache idem_{128};
  bool started_ = false;
  bool registered_ = false;
  // Registry handles under `node.<hostname>.` (never null).
  util::Counter* heartbeats_sent_ = nullptr;
  util::Gauge* cpu_gauge_ = nullptr;
  util::Gauge* mem_used_gauge_ = nullptr;
  util::Gauge* mem_capacity_gauge_ = nullptr;
  util::Gauge* sd_used_gauge_ = nullptr;
  util::Gauge* containers_total_gauge_ = nullptr;
  util::Gauge* containers_running_gauge_ = nullptr;
  util::Gauge* power_gauge_ = nullptr;
};

}  // namespace picloud::cloud
