#include "cloud/cloud.h"

#include <cassert>

#include "apps/factory.h"
#include "util/logging.h"

namespace picloud::cloud {

PiCloud::PiCloud(sim::Simulation& sim, PiCloudConfig config)
    : sim_(sim), config_(std::move(config)) {
  build();
}

PiCloud::~PiCloud() = default;

void PiCloud::build() {
  fabric_ = std::make_unique<net::Fabric>(sim_);
  network_ = std::make_unique<net::Network>(sim_, *fabric_);

  // --- Fig. 2: the data-centre fabric ---------------------------------------
  if (config_.topology == PiCloudConfig::Topo::kMultiRootTree) {
    net::MultiRootTreeConfig topo_config;
    topo_config.racks = config_.racks;
    topo_config.hosts_per_rack = config_.hosts_per_rack;
    topo_config.aggregation_switches = config_.aggregation_switches;
    topo_config.host_link_bps = config_.node_spec.nic_bits_per_sec;
    topology_ = net::build_multi_root_tree(*fabric_, topo_config);
  } else {
    net::FatTreeConfig topo_config;
    topo_config.k = config_.fat_tree_k;
    topo_config.host_link_bps = config_.node_spec.nic_bits_per_sec;
    topology_ = net::build_fat_tree(*fabric_, topo_config);
  }

  if (config_.enable_sdn) {
    sdn_ = std::make_unique<net::SdnController>(sim_, config_.sdn_policy);
    fabric_->set_routing(sdn_.get());
  }

  // The pimaster head node hangs off the gateway on a fast link; the admin
  // workstation reaches the cloud from beyond it (the Internet node).
  net::NetNodeId master_node =
      fabric_->add_node(net::NodeKind::kHost, "pimaster");
  fabric_->add_link(master_node, topology_.gateway, 1e9,
                    sim::Duration::micros(50));
  network_->bind_ip(config_.admin_ip, topology_.internet);

  // --- Fig. 1: racks and devices ---------------------------------------------
  for (int r = 0; r < topology_.rack_count(); ++r) {
    hw::RackGeometry geometry;
    geometry.slots = std::max(config_.hosts_per_rack,
                              static_cast<int>(topology_.hosts.size()));
    machine_room_.racks.push_back(std::make_unique<hw::Rack>(r, geometry));
  }

  for (size_t i = 0; i < topology_.hosts.size(); ++i) {
    int rack = topology_.host_rack[i];
    std::string hostname = fabric_->node(topology_.hosts[i]).name;
    auto device = std::make_unique<hw::Device>(static_cast<hw::DeviceId>(i),
                                               hostname, config_.node_spec);
    machine_room_.racks[rack]->install(device.get());
    power_board_.attach(&device->power());
    devices_.push_back(std::move(device));

    auto node_os = std::make_unique<os::NodeOs>(
        sim_, *devices_.back(), *network_, topology_.hosts[i]);
    node_oses_.push_back(std::move(node_os));

    NodeDaemon::Config daemon_config;
    daemon_config.pimaster_ip = config_.master_ip;
    daemon_config.pimaster_port = PiMaster::kPort;
    daemon_config.rack = rack;
    daemon_config.heartbeat_period = config_.heartbeat_period;
    auto daemon =
        std::make_unique<NodeDaemon>(*node_oses_.back(), daemon_config);
    daemon->set_app_factory(
        [](const std::string& kind, const util::Json& params) {
          return apps::make_app(kind, params);
        });
    daemons_.push_back(std::move(daemon));
  }

  // The head node: a beefier box, also on the power board.
  hw::DeviceSpec master_spec = hw::pi_model_b_rev2();
  master_spec.name = "pimaster-node";
  master_device_ = std::make_unique<hw::Device>(
      static_cast<hw::DeviceId>(devices_.size()), "pimaster", master_spec);
  power_board_.attach(&master_device_->power());

  PiMaster::Config master_config;
  master_config.ip = config_.master_ip;
  master_config.subnet = config_.subnet;
  master_config.dhcp_range_start = config_.dhcp_range_start;
  master_config.dhcp_range_end = config_.dhcp_range_end;
  master_config.placement_policy = config_.placement_policy;
  master_config.placement_limits = config_.placement_limits;
  master_config.reconcile = config_.reconcile;
  master_ = std::make_unique<PiMaster>(*network_, master_node, master_config);
  master_->set_node_accessor([this](const std::string& hostname) {
    return daemon_by_hostname(hostname);
  });
  // The SDN controller's logically-central view: per-rack peak ToR-uplink
  // utilisation, read straight off the fabric gauges.
  master_->set_network_observer([this]() {
    std::map<int, double> rack_util;
    for (int r = 0; r < topology_.rack_count(); ++r) {
      double peak = 0;
      for (net::LinkId lid : fabric_->node(topology_.tor_switches[r]).out_links) {
        const net::DirectedLink& link = fabric_->link(lid);
        if (fabric_->node(link.to).kind != net::NodeKind::kSwitch) continue;
        peak = std::max(peak, link.utilization());
        peak = std::max(peak, fabric_->link(fabric_->reverse(lid)).utilization());
      }
      rack_util[r] = peak;
    }
    return rack_util;
  });

  panel_ = std::make_unique<ControlPanel>(*network_, config_.admin_ip,
                                          config_.master_ip, PiMaster::kPort);
}

void PiCloud::power_on() {
  if (powered_) return;
  powered_ = true;
  master_device_->set_powered(sim_.now(), true);
  master_->start();
  // SD cards ship pre-flashed with the stock image (the paper's cards are
  // imaged before racking); only patches/upgrades transfer over the fabric.
  auto base = master_->images().latest("raspbian-lxc");
  if (base.ok()) {
    auto chain = master_->images().chain(base.value());
    if (chain.ok()) {
      for (auto& node_os : node_oses_) {
        for (const auto& layer : chain.value()) {
          (void)node_os->add_image_layer(layer.id(), layer.layer_bytes);
        }
      }
    }
  }
  for (auto& daemon : daemons_) daemon->start();
  LOG_INFO("picloud", "powered on: %zu nodes in %d racks (%s, sdn=%s)",
           daemons_.size(), topology_.rack_count(), topology_.kind.c_str(),
           sdn_ ? net::sdn_policy_name(sdn_->policy()) : "off");
}

bool PiCloud::await_ready(sim::Duration max) {
  return run_until(max, [this]() {
    for (const auto& daemon : daemons_) {
      if (!daemon->registered()) return false;
    }
    return true;
  });
}

bool PiCloud::run_until(sim::Duration max,
                        const std::function<bool()>& predicate) {
  sim::SimTime deadline = sim_.now() + max;
  // Step in heartbeat-sized slices so the predicate is polled often without
  // burning host CPU per event.
  while (sim_.now() < deadline) {
    if (predicate()) return true;
    sim::Duration step = sim::Duration::millis(100);
    if (sim_.now() + step > deadline) step = deadline - sim_.now();
    sim_.run_for(step);
  }
  return predicate();
}

Autopilot& PiCloud::enable_autopilot(Autopilot::Config config) {
  if (autopilot_ == nullptr) {
    autopilot_ = std::make_unique<Autopilot>(sim_, *master_, config);
    autopilot_->set_power_control(
        [this](const std::string& hostname, bool on) {
          NodeDaemon* daemon = daemon_by_hostname(hostname);
          if (daemon == nullptr) return;
          if (on) {
            daemon->start();
          } else {
            daemon->stop();
          }
        });
    autopilot_->start();
  }
  return *autopilot_;
}

void PiCloud::start_gossip(GossipConfig config) {
  if (!gossip_.empty()) return;
  for (size_t i = 0; i < daemons_.size(); ++i) {
    auto agent = std::make_unique<GossipAgent>(*network_, config,
                                               sim_.rng().fork());
    os::NodeOs* node = node_oses_[i].get();
    agent->set_load_provider([node]() {
      os::NodeOs::NodeStats stats = node->stats();
      GossipAgent::SelfLoad load;
      load.cpu = stats.cpu_utilization;
      load.mem_used = stats.mem_used;
      load.containers = stats.containers_total;
      return load;
    });
    gossip_.push_back(std::move(agent));
  }
  // Seed a ring plus a common anchor, then start everyone.
  for (size_t i = 0; i < gossip_.size(); ++i) {
    size_t next = (i + 1) % gossip_.size();
    gossip_[i]->add_seed(node_oses_[next]->hostname(),
                         node_oses_[next]->host_ip());
    if (i != 0) {
      gossip_[i]->add_seed(node_oses_[0]->hostname(),
                           node_oses_[0]->host_ip());
    }
    gossip_[i]->start(node_oses_[i]->hostname(), node_oses_[i]->host_ip());
  }
}

void PiCloud::stop_gossip_agent(size_t i) {
  if (i < gossip_.size() && gossip_[i] != nullptr) gossip_[i]->stop();
}

NodeDaemon* PiCloud::daemon_by_hostname(const std::string& hostname) {
  for (auto& daemon : daemons_) {
    if (daemon->node().hostname() == hostname) return daemon.get();
  }
  return nullptr;
}

util::Result<InstanceRecord> PiCloud::spawn_and_wait(PiMaster::SpawnSpec spec,
                                                     sim::Duration max) {
  // Drive the full path: admin workstation -> pimaster REST -> node daemon.
  util::Json body = util::Json::object();
  body.set("name", spec.name);
  if (!spec.image.empty()) body.set("image", spec.image);
  if (!spec.app_kind.empty()) {
    body.set("app", spec.app_kind);
    body.set("app_params", spec.app_params);
  }
  body.set("cpu_shares", spec.cpu_shares);
  body.set("cpu_limit", spec.cpu_limit);
  body.set("memory_limit",
           static_cast<unsigned long long>(spec.memory_limit));
  if (spec.rack_affinity >= 0) body.set("rack", spec.rack_affinity);
  if (!spec.affinity_group.empty()) body.set("group", spec.affinity_group);
  if (!spec.hostname.empty()) body.set("node", spec.hostname);
  if (spec.bare_metal) body.set("bare_metal", true);

  bool done = false;
  util::Result<InstanceRecord> out =
      util::Error::make("timeout", "spawn did not complete in time");
  panel_->spawn_vm(std::move(body), [&](util::Result<util::Json> result) {
    done = true;
    if (!result.ok()) {
      out = result.error();
      return;
    }
    auto record = master_->instance(result.value().get_string("name"));
    if (record.ok()) {
      out = record.value();
    } else {
      out = record.error();
    }
  });
  run_until(max, [&]() { return done; });
  return out;
}

util::Status PiCloud::delete_and_wait(const std::string& name,
                                      sim::Duration max) {
  bool done = false;
  util::Status out = util::Error::make("timeout", "delete did not complete");
  panel_->delete_vm(name, [&](util::Result<util::Json> result) {
    done = true;
    out = result.ok() ? util::Status::success()
                      : util::Status(result.error());
  });
  run_until(max, [&]() { return done; });
  return out;
}

MigrationReport PiCloud::migrate_and_wait(const std::string& name,
                                          const std::string& to, bool live,
                                          sim::Duration max) {
  bool done = false;
  MigrationReport out;
  out.instance = name;
  out.error = "timeout";
  panel_->migrate_vm(name, to, live, [&](util::Result<util::Json> result) {
    done = true;
    if (!result.ok()) {
      out.error = result.error().message;
      return;
    }
    const util::Json& j = result.value();
    out.success = j.get_bool("success");
    out.error = j.get_string("error");
    out.live = j.get_bool("live");
    out.from = j.get_string("from");
    out.to = j.get_string("to");
    out.bytes_transferred = j.get_number("bytes");
    out.precopy_rounds = static_cast<int>(j.get_number("rounds"));
    out.total_duration = sim::Duration::seconds(j.get_number("duration_s"));
    out.downtime = sim::Duration::seconds(j.get_number("downtime_s"));
  });
  run_until(max, [&]() { return done; });
  return out;
}

sim::EventId PiCloud::schedule_fault(sim::Duration delay, std::string label,
                                     std::function<void()> fault) {
  return sim_.after(delay, [this, label = std::move(label),
                            fault = std::move(fault)]() {
    // Fault schedule point (DESIGN.md §13): inline in default runs, parked
    // for reordering when a model-checking strategy is installed.
    if (!sim_.schedule_points().active()) {
      fault();
      return;
    }
    sim::SchedulePoint point;
    point.kind = sim::SchedulePointKind::kFault;
    point.label = "fault:" + label;
    point.object = "fault";
    sim_.schedule_points().intercept(std::move(point), fault);
  });
}

util::Result<std::string> PiCloud::dashboard(sim::Duration max) {
  bool done = false;
  util::Result<std::string> out =
      util::Error::make("timeout", "dashboard fetch timed out");
  panel_->render_dashboard([&](util::Result<std::string> result) {
    done = true;
    out = std::move(result);
  });
  run_until(max, [&]() { return done; });
  return out;
}

util::Result<util::Json> PiCloud::metrics_snapshot(sim::Duration max) {
  bool done = false;
  util::Result<util::Json> out =
      util::Error::make("timeout", "metrics fetch timed out");
  panel_->get_metrics([&](util::Result<util::Json> result) {
    done = true;
    out = std::move(result);
  });
  run_until(max, [&]() { return done; });
  return out;
}

}  // namespace picloud::cloud
