#include "cloud/gossip.h"

#include <algorithm>


namespace picloud::cloud {

using util::Json;

GossipAgent::GossipAgent(net::Network& network, GossipConfig config,
                         util::Rng rng)
    : network_(network),
      sim_(network.simulation()),
      config_(config),
      rng_(rng) {}

GossipAgent::~GossipAgent() { stop(); }

void GossipAgent::start(const std::string& hostname, net::Ipv4Addr self) {
  if (running_) return;
  running_ = true;
  self_hostname_ = hostname;
  self_ip_ = self;
  GossipEntry& me = entries_[hostname];
  me.hostname = hostname;
  me.ip = self;
  // Monotonic across restarts (the SWIM "incarnation" idea): peers hold our
  // pre-restart version, and an equal-or-lower one would be ignored forever.
  me.version = std::max<std::uint64_t>(me.version + 1, 1);
  me.freshened_at = sim_.now();
  network_.listen(self_ip_, kGossipPort,
                  [this](const net::Message& msg) { on_message(msg); });
  round_task_ = sim::PeriodicTask(sim_, config_.period, [this]() { round(); });
}

void GossipAgent::stop() {
  if (!running_) return;
  running_ = false;
  round_task_.stop();
  network_.unlisten(self_ip_, kGossipPort);
}

void GossipAgent::add_seed(const std::string& hostname, net::Ipv4Addr ip) {
  if (entries_.count(hostname) > 0) return;
  GossipEntry entry;
  entry.hostname = hostname;
  entry.ip = ip;
  entry.version = 0;  // nothing heard yet
  entry.freshened_at = sim_.now();
  entries_[hostname] = entry;
}

void GossipAgent::update_self(double cpu, std::uint64_t mem_used,
                              int containers) {
  if (!running_) return;
  GossipEntry& me = entries_[self_hostname_];
  me.cpu = cpu;
  me.mem_used = mem_used;
  me.containers = containers;
  ++me.version;
  me.freshened_at = sim_.now();
}

Json GossipAgent::digest() const {
  Json entries = Json::array();
  for (const auto& [hostname, e] : entries_) {
    Json j = Json::object();
    j.set("h", e.hostname);
    j.set("ip", e.ip.to_string());
    j.set("v", static_cast<unsigned long long>(e.version));
    j.set("cpu", e.cpu);
    j.set("mem", static_cast<unsigned long long>(e.mem_used));
    j.set("ct", e.containers);
    entries.push_back(std::move(j));
  }
  Json out = Json::object();
  out.set("type", "gossip");
  out.set("from", self_hostname_);
  out.set("entries", std::move(entries));
  return out;
}

void GossipAgent::round() {
  // Liveness is version-staleness: our own version must advance every round
  // even when load figures are unchanged.
  GossipEntry& me = entries_[self_hostname_];
  if (load_provider_) {
    SelfLoad load = load_provider_();
    me.cpu = load.cpu;
    me.mem_used = load.mem_used;
    me.containers = load.containers;
  }
  ++me.version;
  me.freshened_at = sim_.now();
  ++rounds_;

  // Pick `fanout` distinct live peers uniformly.
  std::vector<const GossipEntry*> candidates;
  for (const auto& [hostname, e] : entries_) {
    if (hostname == self_hostname_) continue;
    candidates.push_back(&e);
  }
  if (candidates.empty()) return;
  rng_.shuffle(candidates);
  size_t targets = std::min<size_t>(
      candidates.size(), static_cast<size_t>(std::max(config_.fanout, 1)));
  std::string payload = digest().dump();
  for (size_t i = 0; i < targets; ++i) {
    net::Message msg;
    msg.src = self_ip_;
    msg.dst = candidates[i]->ip;
    msg.src_port = kGossipPort;
    msg.dst_port = kGossipPort;
    msg.payload = payload;
    network_.send(std::move(msg));
    ++messages_sent_;
  }
}

void GossipAgent::on_message(const net::Message& msg) {
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok() || parsed.value().get_string("type") != "gossip") return;
  for (const Json& j : parsed.value().get("entries").as_array()) {
    std::string hostname = j.get_string("h");
    if (hostname.empty() || hostname == self_hostname_) continue;
    auto version = static_cast<std::uint64_t>(j.get_number("v"));
    auto ip = net::Ipv4Addr::parse(j.get_string("ip"));
    if (!ip) continue;
    GossipEntry& entry = entries_[hostname];
    if (entry.hostname.empty()) {  // newly learned member
      entry.hostname = hostname;
      entry.freshened_at = sim_.now();
    }
    if (version > entry.version) {
      entry.version = version;
      entry.ip = *ip;
      entry.cpu = j.get_number("cpu");
      entry.mem_used = static_cast<std::uint64_t>(j.get_number("mem"));
      entry.containers = static_cast<int>(j.get_number("ct"));
      entry.freshened_at = sim_.now();
      ++merges_;
    }
  }
}

std::vector<GossipEntry> GossipAgent::view() const {
  std::vector<GossipEntry> out;
  out.reserve(entries_.size());
  for (const auto& [hostname, e] : entries_) out.push_back(e);
  return out;
}

std::optional<GossipEntry> GossipAgent::entry(
    const std::string& hostname) const {
  auto it = entries_.find(hostname);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool GossipAgent::alive(const std::string& hostname) const {
  auto it = entries_.find(hostname);
  if (it == entries_.end()) return false;
  return sim_.now() - it->second.freshened_at <= config_.suspect_after;
}

size_t GossipAgent::live_members() const {
  size_t n = 0;
  for (const auto& [hostname, e] : entries_) {
    if (alive(hostname)) ++n;
  }
  return n;
}

}  // namespace picloud::cloud
