// Gossip-based (peer-to-peer) cluster membership and monitoring.
//
// Paper §III: "the flexibility of owning our own testbed allows us to
// consider radical departures to the norm, such as a peer-to-peer Cloud
// management system." This module is that departure: instead of every Pi
// heartbeating the pimaster, each node runs a GossipAgent that periodically
// pushes its view of the whole cluster to a few random peers. State
// converges epidemically; any node can answer "what does the cluster look
// like?", and failures are detected by version staleness rather than by a
// central monitor.
//
// Protocol (JSON datagrams on port 7946, SWIM-flavoured push gossip):
//   every `period`, an agent bumps its own version and sends its full
//   digest to `fanout` random live peers:
//     {"type":"gossip","from":h,"entries":[{"h":..,"ip":..,"v":..,
//       "cpu":..,"mem":..,"ct":..}, ...]}
//   receivers merge entry-wise by version (greater wins) and adopt unknown
//   members. An entry whose version has not advanced within
//   `suspect_after` is suspected dead.
//
// The bench_ablate_gossip harness compares this against the centralized
// monitor on detection latency and management-plane traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/addr.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "util/json.h"
#include "util/rng.h"

namespace picloud::cloud {

inline constexpr std::uint16_t kGossipPort = 7946;

struct GossipEntry {
  std::string hostname;
  net::Ipv4Addr ip;
  std::uint64_t version = 0;
  double cpu = 0;
  std::uint64_t mem_used = 0;
  int containers = 0;
  // Local clock when the version last advanced (not gossiped).
  sim::SimTime freshened_at;
};

struct GossipConfig {
  sim::Duration period = sim::Duration::seconds(1);
  int fanout = 2;
  sim::Duration suspect_after = sim::Duration::seconds(10);
};

class GossipAgent {
 public:
  GossipAgent(net::Network& network, GossipConfig config, util::Rng rng);
  ~GossipAgent();

  GossipAgent(const GossipAgent&) = delete;
  GossipAgent& operator=(const GossipAgent&) = delete;

  // Joins the mesh: registers the listener and begins gossip rounds.
  void start(const std::string& hostname, net::Ipv4Addr self);
  void stop();
  bool running() const { return running_; }

  // Initial membership (a seed list; typically just one other node —
  // everything else is learned epidemically).
  void add_seed(const std::string& hostname, net::Ipv4Addr ip);

  // Refreshes this node's own gossiped load figures (bumps the version).
  void update_self(double cpu, std::uint64_t mem_used, int containers);

  // Optional pull-based refresh: sampled at the start of every round (the
  // facade wires this to NodeOs::stats so gossip carries live load).
  struct SelfLoad {
    double cpu = 0;
    std::uint64_t mem_used = 0;
    int containers = 0;
  };
  void set_load_provider(std::function<SelfLoad()> provider) {
    load_provider_ = std::move(provider);
  }

  // --- The peer-to-peer cluster view -----------------------------------------
  std::vector<GossipEntry> view() const;
  std::optional<GossipEntry> entry(const std::string& hostname) const;
  // Alive = version advanced within the suspicion window.
  bool alive(const std::string& hostname) const;
  size_t known_members() const { return entries_.size(); }
  size_t live_members() const;

  // --- Cost accounting ----------------------------------------------------------
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t merges_applied() const { return merges_; }

 private:
  void on_message(const net::Message& msg);
  void round();
  util::Json digest() const;

  net::Network& network_;
  sim::Simulation& sim_;
  GossipConfig config_;
  util::Rng rng_;
  std::string self_hostname_;
  net::Ipv4Addr self_ip_;
  bool running_ = false;
  std::map<std::string, GossipEntry> entries_;
  std::function<SelfLoad()> load_provider_;
  sim::PeriodicTask round_task_;
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t merges_ = 0;
};

}  // namespace picloud::cloud
