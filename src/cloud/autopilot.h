// Autopilot — automated consolidation and node power management.
//
// Paper §III: "Virtual Machine (VM) management is an important aspect of
// Cloud Computing, since it allows for consolidation to reduce power
// consumption, and oversubscription to improve cost efficiency." The
// Autopilot closes that loop on the pimaster: it periodically looks at the
// fleet, live-migrates the instances off the emptiest node onto best-fit
// targets, and flips the vacated Pi's switch on the socket board. When CPU
// pressure rises it powers nodes back on (they re-run DHCP and re-register,
// like a real Pi being re-plugged).
//
// Deliberately gentle: at most one donor node is drained per evaluation, and
// every move is a live migration, so the §IV warning — "a naive
// consolidation algorithm may improve server resource usage at the expense
// of frequent episodes of network congestion" — can be observed rather than
// suffered.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "cloud/pimaster.h"
#include "sim/simulation.h"

namespace picloud::cloud {

class Autopilot {
 public:
  struct Config {
    sim::Duration evaluation_period = sim::Duration::seconds(30);
    // Never drain below this many powered nodes.
    int min_nodes_on = 4;
    // Scale up when mean CPU across live nodes crosses this.
    double wake_cpu_threshold = 0.75;
    // Only drain a donor whose instances all fit elsewhere with headroom.
    double target_mem_headroom = 0.9;

    // --- SLO-burn scale-up (DESIGN.md §11) -----------------------------------
    // A registry counter whose growth is an SLO violation (shed requests,
    // deadline drops — e.g. "apps.httpd.shed_admission"). When it burns
    // faster than `slo_burn_threshold` per second over an evaluation
    // period, the autopilot wakes parked capacity and fires the scale-up
    // hook instead of consolidating. Empty = disabled.
    std::string slo_burn_counter;
    double slo_burn_threshold = 1.0;  // violations/sec
  };

  // picloud-lint: allow(metrics-registry)
  struct Stats {
    std::uint64_t evaluations = 0;
    std::uint64_t drains_started = 0;
    std::uint64_t migrations_ok = 0;
    std::uint64_t migrations_failed = 0;
    std::uint64_t nodes_powered_off = 0;
    std::uint64_t nodes_powered_on = 0;
    std::uint64_t slo_scale_ups = 0;
  };

  // Flips a node's power (the facade wires this to daemon start/stop —
  // physically, the socket-board switch).
  using PowerControl = std::function<void(const std::string& hostname, bool on)>;

  Autopilot(sim::Simulation& sim, PiMaster& master, Config config);
  ~Autopilot();

  Autopilot(const Autopilot&) = delete;
  Autopilot& operator=(const Autopilot&) = delete;

  void set_power_control(PowerControl control) {
    power_control_ = std::move(control);
  }

  // Fired on an SLO-burn scale-up decision (wired by the operator to e.g.
  // ReplicaSet::set_replicas on the burning tier).
  using ScaleUpHook = std::function<void()>;
  void set_scale_up_hook(ScaleUpHook hook) { scale_up_hook_ = std::move(hook); }

  void start();
  void stop();
  bool running() const { return running_; }

  // Nodes the autopilot itself switched off (eligible for wake-up).
  const std::set<std::string>& parked_nodes() const { return parked_; }
  const Stats& stats() const { return stats_; }

 private:
  void evaluate();
  // Drains `donor`'s instances one live migration at a time; powers the
  // node off when the last one lands.
  void drain(const std::string& donor, std::vector<std::string> instances);

  sim::Simulation& sim_;
  PiMaster& master_;
  Config config_;
  PowerControl power_control_;
  ScaleUpHook scale_up_hook_;
  std::uint64_t last_slo_count_ = 0;
  bool running_ = false;
  bool draining_ = false;
  std::set<std::string> parked_;
  Stats stats_;
  sim::PeriodicTask evaluation_task_;
};

}  // namespace picloud::cloud
