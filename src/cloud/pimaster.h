// PiMaster — the head node of the PiCloud (paper §II-A, §II-C, Fig. 4).
//
// Hosts every management service the paper describes:
//   * DHCP + DNS ("customised IP and naming policies"),
//   * the image store ("image upgrading, patching, and spawning"),
//   * the cluster monitor fed by node-daemon heartbeats,
//   * instance placement + the REST control API the web panel drives.
//
// REST surface (port 9000):
//   POST   /register                     node daemon first contact
//   POST   /nodes/:hostname/stats        heartbeat
//   GET    /nodes                        fleet view (Fig. 4 main table)
//   GET    /nodes/:hostname
//   GET    /cluster/summary
//   GET    /instances
//   GET    /instances/:name
//   POST   /instances                    spawn a virtual host
//   DELETE /instances/:name
//   PUT    /instances/:name/limits       soft per-VM resource limits
//   POST   /instances/:name/migrate      {"to": host?, "live": bool}
//   GET    /images
//   POST   /images                       {"name", "bytes"} base image
//   POST   /images/:name/patch           {"bytes", "note"}
//   POST   /images/:name/upgrade         {"bytes", "note"}
//   GET    /network                      per-rack uplink utilisation (SDN view)
//   GET    /policy                       active placement policy
//   PUT    /policy                       {"name": "best-fit"}
//   GET    /health                       liveness + headline counters
//   GET    /metrics                      full MetricsRegistry snapshot
//   GET    /trace                        recent sim-time trace events
//
// Telemetry (DESIGN.md §9): the master owns the `cloud.master.` scope; its
// GET /metrics serves the *whole* registry (every component of the
// simulation registers into the one spine), which is what the web panel and
// external scrapers consume.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/migration.h"
#include "cloud/monitor.h"
#include "cloud/node_daemon.h"
#include "cloud/placement.h"
#include "cloud/reconciler.h"
#include "net/network.h"
#include "proto/dhcp.h"
#include "proto/dns.h"
#include "proto/http.h"
#include "proto/rest.h"
#include "sim/simulation.h"
#include "storage/image.h"

namespace picloud::cloud {

struct InstanceRecord {
  std::string name;
  std::string hostname;  // node currently hosting it
  net::Ipv4Addr ip;
  std::string image;
  std::string app_kind;
  // running | migrating | lost. "lost" means the reconciler determined the
  // container no longer exists anywhere (its node died, or a live node
  // stopped reporting it); the record is kept so an owning ReplicaSet can
  // observe the loss and respawn.
  std::string state = "running";
  // Memory budgeted at admission (cgroup limit, or the idle footprint).
  std::uint64_t mem_reserved = 0;
  sim::SimTime created_at;

  util::Json to_json() const;
};

// The master's record of the last control operation per instance — the
// server-side half of idempotent retries, and the reconciler's guard
// against garbage-collecting a container whose spawn is still in flight.
struct OperationRecord {
  std::string op;  // spawn | delete | migrate
  bool in_flight = false;
  bool success = false;
  sim::SimTime at;
};

class PiMaster {
 public:
  static constexpr std::uint16_t kPort = 9000;

  struct Config {
    net::Ipv4Addr ip;                  // static management address
    net::Subnet subnet;                // the cloud's address space
    net::Ipv4Addr dhcp_range_start;
    net::Ipv4Addr dhcp_range_end;
    std::string placement_policy = "first-fit";
    PlacementLimits placement_limits;
    sim::Duration node_liveness_window = sim::Duration::seconds(10);
    // Timeout for proxied spawn calls (covers image pull over 100 Mb).
    sim::Duration spawn_timeout = sim::Duration::seconds(60);
    // Wire attempts per proxied daemon call (spawn/delete/limits); retries
    // back off with deterministic jitter.
    int proxy_attempts = 3;
    // Anti-entropy loop (see cloud/reconciler.h).
    Reconciler::Config reconcile;
    std::string default_image = "raspbian-lxc";
  };

  PiMaster(net::Network& network, net::NetNodeId fabric_node, Config config);
  ~PiMaster();

  PiMaster(const PiMaster&) = delete;
  PiMaster& operator=(const PiMaster&) = delete;

  // Binds the IP, starts DHCP/DNS/REST, registers the default base image.
  void start();
  void stop();

  // The facade wires direct access to node daemons for migration commit and
  // for tests (hostname -> daemon, nullptr when unknown/dead).
  void set_node_accessor(MigrationCoordinator::NodeAccessor accessor);
  NodeDaemon* node_daemon(const std::string& hostname) const {
    return node_accessor_ ? node_accessor_(hostname) : nullptr;
  }
  const Config& master_config() const { return config_; }
  // Exposed for layers above the master (economics, autopilot).
  std::vector<NodeView> admission_views() const { return placement_views(); }

  // The SDN controller's global network view, wired by the facade: peak
  // ToR-uplink utilisation per rack. Feeds the congestion-aware placement
  // policy and the GET /network endpoint (paper SIV cross-layer
  // management).
  using NetworkObserver = std::function<std::map<int, double>()>;
  void set_network_observer(NetworkObserver observer) {
    network_observer_ = std::move(observer);
  }

  // --- Services ----------------------------------------------------------------
  proto::DhcpServer& dhcp() { return *dhcp_; }
  proto::DnsServer& dns() { return *dns_; }
  storage::ImageStore& images() { return images_; }
  ClusterMonitor& monitor() { return monitor_; }
  MigrationCoordinator& migrations() { return *migrations_; }
  Reconciler& reconciler() { return *reconciler_; }
  const proto::IdempotencyCache& idempotency() const { return idem_; }
  const proto::RestClient* rest_client() const { return client_.get(); }
  net::Ipv4Addr ip() const { return config_.ip; }
  net::NetNodeId fabric_node() const { return node_; }

  // --- Direct (in-process) API — same logic the REST routes call ---------------
  using SpawnCallback = std::function<void(util::Result<InstanceRecord>)>;
  struct SpawnSpec {
    std::string name;
    std::string image;          // empty -> default image, latest version
    std::string app_kind;       // empty -> idle container
    util::Json app_params;
    double cpu_shares = 1024;
    double cpu_limit = 0;
    std::uint64_t memory_limit = 0;
    int rack_affinity = -1;
    std::string affinity_group;
    std::string hostname;       // non-empty pins the node (bypasses policy)
    bool bare_metal = false;    // physical-node tenancy (paper SIII)
  };
  void spawn_instance(SpawnSpec spec, SpawnCallback cb);
  using SimpleCallback = std::function<void(util::Status)>;
  void delete_instance(const std::string& name, SimpleCallback cb);
  void migrate_instance(const std::string& name, const std::string& to,
                        bool live, MigrationCoordinator::DoneCallback cb,
                        AddressUpdateMode address_update =
                            AddressUpdateMode::kSdnRedirect);

  util::Result<InstanceRecord> instance(const std::string& name) const;
  // True when the record exists, its node answers liveness, and the
  // container is really running there (detects post-crash registry drift).
  bool instance_healthy(const std::string& name) const;
  // True while a spawn/delete/migrate for `name` has not completed.
  bool operation_in_flight(const std::string& name) const;
  std::vector<InstanceRecord> instances() const;
  // Zero-copy const view of the registry, keyed by instance name — what the
  // invariant checker and other read-only auditors iterate.
  const std::map<std::string, InstanceRecord>& instance_records() const {
    return instances_;
  }
  util::Status set_policy(const std::string& name);
  const std::string& policy_name() const { return policy_name_; }

  std::uint64_t spawn_requests() const { return spawn_requests_->value(); }
  std::uint64_t spawns_succeeded() const { return spawns_ok_->value(); }
  std::uint64_t spawns_failed() const { return spawns_failed_->value(); }

 private:
  friend class Reconciler;  // anti-entropy needs the raw registry

  void install_routes();
  // Builds the {id, bytes} layer array a daemon needs for `image_id`.
  util::Result<util::Json> layer_list(const std::string& image_id) const;
  util::Result<std::string> resolve_image(const std::string& requested) const;
  // Placement views including in-flight reservations.
  std::vector<NodeView> placement_views() const;
  // Operation bookkeeping (idempotency + reconciler guard).
  void record_op_start(const std::string& name, const std::string& op);
  void record_op_end(const std::string& name, bool success);
  // The retry profile for proxied daemon calls.
  proto::RetryPolicy proxy_policy(sim::Duration attempt_timeout) const;

  net::Network& network_;
  sim::Simulation& sim_;
  net::NetNodeId node_;
  Config config_;

  proto::Router router_;
  std::unique_ptr<proto::RestServer> server_;
  std::unique_ptr<proto::RestClient> client_;
  std::unique_ptr<proto::DhcpServer> dhcp_;
  std::unique_ptr<proto::DnsServer> dns_;
  std::unique_ptr<MigrationCoordinator> migrations_;
  std::unique_ptr<Reconciler> reconciler_;
  storage::ImageStore images_;
  ClusterMonitor monitor_;
  MigrationCoordinator::NodeAccessor node_accessor_;
  NetworkObserver network_observer_;

  std::unique_ptr<PlacementPolicy> policy_;
  std::string policy_name_;

  std::map<std::string, InstanceRecord> instances_;
  // hostname -> reserved bytes/containers for spawns still in flight.
  struct Reservation {
    std::uint64_t mem = 0;
    int containers = 0;
  };
  std::map<std::string, Reservation> reservations_;
  std::map<std::string, net::Ipv4Addr> node_ips_;  // hostname -> mgmt ip
  // name -> last operation; erased with the instance record (bounded).
  std::map<std::string, OperationRecord> ops_;
  proto::IdempotencyCache idem_{256};
  std::uint64_t op_seq_ = 0;  // idempotency keys for proxied daemon calls
  std::uint32_t next_container_mac_ = 1;
  // Registry handles under `cloud.master.*` (never null).
  util::Counter* spawn_requests_ = nullptr;
  util::Counter* spawns_ok_ = nullptr;
  util::Counter* spawns_failed_ = nullptr;
  bool started_ = false;
};

}  // namespace picloud::cloud
