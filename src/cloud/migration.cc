#include "cloud/migration.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace picloud::cloud {

const char* address_update_name(AddressUpdateMode mode) {
  switch (mode) {
    case AddressUpdateMode::kArpConvergence: return "arp";
    case AddressUpdateMode::kSdnRedirect: return "sdn";
  }
  return "?";
}

util::Json MigrationReport::to_json() const {
  util::Json j = util::Json::object();
  j.set("instance", instance);
  j.set("from", from);
  j.set("to", to);
  j.set("live", live);
  j.set("success", success);
  if (instance_lost) j.set("instance_lost", true);
  if (!phase.empty()) j.set("phase", phase);
  j.set("address_update", address_update);
  if (!error.empty()) j.set("error", error);
  j.set("bytes", bytes_transferred);
  j.set("rounds", precopy_rounds);
  j.set("duration_s", total_duration.to_seconds());
  j.set("downtime_s", downtime.to_seconds());
  return j;
}

// No NodeDaemon* or os::Container* lives here: either endpoint can be
// crashed by chaos between any two events, which destroys its containers
// outright. Every resume point re-resolves through the coordinator instead.
struct MigrationCoordinator::Session {
  MigrationParams params;
  DoneCallback done;
  MigrationReport report;
  sim::SimTime started;
  sim::SimTime frozen_at;
  double pending_bytes = 0;  // memory image / dirty set to copy next
  double dirty_rate = 0;     // bytes/sec the app dirties while running
  bool admitted = false;     // counted in migrating_ / in_flight_
  bool frozen = false;       // source container frozen (needs thaw on abort)
};

MigrationCoordinator::MigrationCoordinator(sim::Simulation& sim,
                                           net::Fabric& fabric,
                                           NodeAccessor accessor)
    : sim_(sim), fabric_(fabric), accessor_(std::move(accessor)) {
  util::MetricsRegistry& m = sim_.metrics();
  started_ = &m.counter("cloud.migration.started");
  succeeded_ = &m.counter("cloud.migration.succeeded");
  failed_ = &m.counter("cloud.migration.failed");
  aborted_source_dead_ = &m.counter("cloud.migration.aborted_source_dead");
  aborted_dest_dead_ = &m.counter("cloud.migration.aborted_dest_dead");
  rolled_back_ = &m.counter("cloud.migration.rolled_back");
  lost_ = &m.counter("cloud.migration.lost");
  downtime_seconds_ = &m.histogram("cloud.migration.downtime_seconds");
}

NodeDaemon* MigrationCoordinator::live_node(const std::string& hostname) {
  NodeDaemon* daemon = accessor_(hostname);
  if (daemon == nullptr || !daemon->node().running()) return nullptr;
  return daemon;
}

os::Container* MigrationCoordinator::source_container(const Session& session) {
  NodeDaemon* src = live_node(session.params.from);
  if (src == nullptr) return nullptr;
  os::Container* c = src->node().find_container(session.params.instance);
  if (c == nullptr || c->state() == os::ContainerState::kDestroyed) {
    return nullptr;
  }
  return c;
}

void MigrationCoordinator::migrate(MigrationParams params, DoneCallback done) {
  auto session = std::make_shared<Session>();
  session->params = std::move(params);
  session->done = std::move(done);
  session->started = sim_.now();
  session->report.instance = session->params.instance;
  session->report.from = session->params.from;
  session->report.to = session->params.to;
  session->report.live = session->params.live;
  session->report.phase = "prepare";
  session->report.address_update =
      address_update_name(session->params.address_update);

  if (migrating_.count(session->params.instance) > 0) {
    fail(session, "instance is already migrating");
    return;
  }
  NodeDaemon* src = live_node(session->params.from);
  NodeDaemon* dst = live_node(session->params.to);
  if (accessor_(session->params.from) == nullptr ||
      accessor_(session->params.to) == nullptr) {
    fail(session, "unknown source or destination node");
    return;
  }
  if (src == nullptr) {
    fail(session, "source node is down");
    return;
  }
  if (dst == nullptr) {
    fail(session, "destination node is down");
    return;
  }
  if (src == dst) {
    fail(session, "source and destination are the same node");
    return;
  }
  os::Container* container =
      src->node().find_container(session->params.instance);
  if (container == nullptr ||
      container->state() == os::ContainerState::kDestroyed) {
    fail(session, "no such container on source node");
    return;
  }

  migrating_.insert(session->params.instance);
  ++in_flight_;
  session->admitted = true;
  started_->inc();
  PICLOUD_TRACE(sim_.trace(), "cloud.migration", "started",
                {"instance", session->params.instance},
                {"from", session->params.from}, {"to", session->params.to},
                {"mode", session->params.live ? "live" : "stop-copy"});

  session->pending_bytes = static_cast<double>(container->memory_usage());
  session->dirty_rate = container->app() != nullptr
                            ? container->app()->dirty_bytes_per_sec()
                            : 0.0;

  LOG_INFO("migrate", "%s: %s -> %s (%s, %.1f MB)",
           session->params.instance.c_str(), session->params.from.c_str(),
           session->params.to.c_str(),
           session->params.live ? "live" : "stop-copy",
           session->pending_bytes / (1 << 20));

  // Prepare phase: destination caches the rootfs layers.
  dst->prefetch_layers(
      session->params.layers.as_array(),
      [this, session](util::Status status) {
        if (source_container(*session) == nullptr) {
          abort_source_dead(session);
          return;
        }
        if (live_node(session->params.to) == nullptr) {
          abort_dest_dead(session);
          return;
        }
        if (!status.ok()) {
          fail(session, "destination prefetch failed: " +
                            status.error().message);
          return;
        }
        if (session->params.live) {
          precopy_round(session);
        } else {
          // Stop-and-copy: freeze first, move everything in one blackout.
          (void)source_container(*session)->freeze();
          session->frozen = true;
          session->frozen_at = sim_.now();
          final_copy(session);
        }
      });
}

void MigrationCoordinator::precopy_round(std::shared_ptr<Session> session) {
  session->report.phase = "pre-copy";
  NodeDaemon* src = live_node(session->params.from);
  NodeDaemon* dst = live_node(session->params.to);
  os::Container* container = source_container(*session);
  if (src == nullptr || container == nullptr) {
    abort_source_dead(session);
    return;
  }
  if (dst == nullptr) {
    abort_dest_dead(session);
    return;
  }

  // Freeze point reached? Copy the remainder under blackout.
  if (session->report.precopy_rounds >= session->params.max_precopy_rounds ||
      session->pending_bytes <= session->params.stop_threshold_bytes) {
    (void)container->freeze();
    session->frozen = true;
    session->frozen_at = sim_.now();
    final_copy(session);
    return;
  }
  ++session->report.precopy_rounds;
  double bytes = session->pending_bytes;
  sim::SimTime round_start = sim_.now();

  net::FlowSpec flow;
  flow.src = src->node().fabric_node();
  flow.dst = dst->node().fabric_node();
  flow.bytes = bytes;
  flow.on_complete = [this, session, bytes, round_start](net::FlowId,
                                                         bool success) {
    os::Container* container = source_container(*session);
    if (container == nullptr) {
      abort_source_dead(session);
      return;
    }
    if (live_node(session->params.to) == nullptr) {
      abort_dest_dead(session);
      return;
    }
    if (!success) {
      fail(session, "pre-copy transfer failed (network)");
      return;
    }
    session->report.bytes_transferred += bytes;
    // Pages dirtied while this round was copying become the next round.
    double elapsed = (sim_.now() - round_start).to_seconds();
    session->pending_bytes =
        std::min(session->dirty_rate * elapsed,
                 static_cast<double>(container->memory_usage()));
    precopy_round(session);
  };
  fabric_.start_flow(std::move(flow));
}

void MigrationCoordinator::final_copy(std::shared_ptr<Session> session) {
  session->report.phase = "final-copy";
  NodeDaemon* src = live_node(session->params.from);
  NodeDaemon* dst = live_node(session->params.to);
  if (src == nullptr || source_container(*session) == nullptr) {
    abort_source_dead(session);
    return;
  }
  if (dst == nullptr) {
    abort_dest_dead(session);
    return;
  }
  double bytes = std::max(session->pending_bytes, 1.0);
  net::FlowSpec flow;
  flow.src = src->node().fabric_node();
  flow.dst = dst->node().fabric_node();
  flow.bytes = bytes;
  flow.on_complete = [this, session, bytes](net::FlowId, bool success) {
    if (source_container(*session) == nullptr) {
      abort_source_dead(session);
      return;
    }
    if (live_node(session->params.to) == nullptr) {
      abort_dest_dead(session);
      return;
    }
    if (!success) {
      os::Container* container = source_container(*session);
      if (session->frozen && container != nullptr) {
        (void)container->thaw();
        session->frozen = false;
      }
      fail(session, "final memory copy failed (network)");
      return;
    }
    session->report.bytes_transferred += bytes;
    commit(session);
  };
  fabric_.start_flow(std::move(flow));
}

void MigrationCoordinator::commit(std::shared_ptr<Session> session) {
  session->report.phase = "commit";
  NodeDaemon* src = live_node(session->params.from);
  NodeDaemon* dst = live_node(session->params.to);
  os::Container* source = source_container(*session);
  if (src == nullptr || source == nullptr) {
    abort_source_dead(session);
    return;
  }
  if (dst == nullptr) {
    abort_dest_dead(session);
    return;
  }

  os::ContainerConfig config = source->config();
  net::Ipv4Addr ip = source->ip();
  // Quiesce the app while the frozen source still exists (it frees its
  // working set and deregisters its listeners there), then lift it out.
  std::unique_ptr<os::ContainerApp> app = source->detach_app();
  if (app) app->stop();

  // Secure a home on the destination BEFORE tearing the source down, so a
  // refused create (capacity raced away) rolls back instead of losing the
  // instance.
  auto created = dst->node().create_container(config);
  if (!created.ok()) {
    (void)source->thaw();
    session->frozen = false;
    source->set_app(std::move(app));  // restarts the app on the source
    rolled_back_->inc();
    fail(session, "destination create failed (rolled back): " +
                      created.error().message);
    return;
  }

  // Point of no return: release the source (frees its RAM and unbinds the
  // IP from the old host). The identity then stays dark while the network
  // learns its new location: a full L2 convergence under the traditional
  // scheme, or one controller round-trip under SDN redirection (the
  // paper's "IP-less routing" direction).
  (void)src->node().destroy_container(config.name);
  sim::Duration darkness =
      session->params.address_update == AddressUpdateMode::kArpConvergence
          ? kArpConvergenceDelay
          : kSdnUpdateDelay;
  // The app object rides through the closure to the deferred restart. The
  // source container no longer exists past this point; only its captured
  // name/config do — and the destination container is re-resolved after the
  // darkness window, because the destination can crash during it.
  auto shared_app =
      std::make_shared<std::unique_ptr<os::ContainerApp>>(std::move(app));
  std::string name = config.name;
  sim_.after(darkness, [this, session, ip, name, shared_app]() {
    NodeDaemon* dst = live_node(session->params.to);
    os::Container* target =
        dst != nullptr ? dst->node().find_container(name) : nullptr;
    if (target == nullptr || target->state() == os::ContainerState::kDestroyed) {
      // Past the point of no return with no surviving copy: the instance is
      // genuinely gone. Report it lost so the record is marked for respawn.
      session->report.instance_lost = true;
      lost_->inc();
      aborted_dest_dead_->inc();
      fail(session, "destination died during commit blackout");
      return;
    }
    target->set_app(std::move(*shared_app));
    util::Status started = target->start(ip);
    if (!started.ok()) {
      (void)dst->node().destroy_container(name);
      session->report.instance_lost = true;
      lost_->inc();
      fail(session, "destination start failed: " + started.error().message);
      return;
    }
    session->report.success = true;
    session->report.phase = "done";
    session->report.downtime = sim_.now() - session->frozen_at;
    succeeded_->inc();
    downtime_seconds_->observe(session->report.downtime.to_seconds());
    PICLOUD_TRACE(sim_.trace(), "cloud.migration", "succeeded",
                  {"instance", session->params.instance},
                  {"to", session->params.to});
    finish(session);
  });
}

void MigrationCoordinator::abort_source_dead(std::shared_ptr<Session> session) {
  aborted_source_dead_->inc();
  // The container died with its node; the instance record reverts to
  // "running" on the (dead) source, where the monitor-driven dead-node
  // reconciliation picks it up.
  fail(session, "source node died mid-migration (" + session->report.phase +
                    ")");
}

void MigrationCoordinator::abort_dest_dead(std::shared_ptr<Session> session) {
  aborted_dest_dead_->inc();
  // Revert: the instance keeps running on the source with its flows intact.
  os::Container* container = source_container(*session);
  if (session->frozen && container != nullptr) {
    (void)container->thaw();
    session->frozen = false;
  }
  fail(session, "destination node died mid-migration (" +
                    session->report.phase + ")");
}

void MigrationCoordinator::fail(std::shared_ptr<Session> session,
                                const std::string& error) {
  session->report.success = false;
  session->report.error = error;
  failed_->inc();
  PICLOUD_TRACE(sim_.trace(), "cloud.migration", "failed",
                {"instance", session->params.instance},
                {"phase", session->report.phase}, {"error", error});
  LOG_WARN("migrate", "%s: FAILED: %s", session->params.instance.c_str(),
           error.c_str());
  finish(session);
}

void MigrationCoordinator::finish(std::shared_ptr<Session> session) {
  if (session->admitted) {
    migrating_.erase(session->params.instance);
    --in_flight_;
    session->admitted = false;
  }
  session->report.total_duration = sim_.now() - session->started;
  history_.push_back(session->report);
  if (session->done) session->done(session->report);
}

}  // namespace picloud::cloud
