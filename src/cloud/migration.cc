#include "cloud/migration.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace picloud::cloud {

const char* address_update_name(AddressUpdateMode mode) {
  switch (mode) {
    case AddressUpdateMode::kArpConvergence: return "arp";
    case AddressUpdateMode::kSdnRedirect: return "sdn";
  }
  return "?";
}

util::Json MigrationReport::to_json() const {
  util::Json j = util::Json::object();
  j.set("instance", instance);
  j.set("from", from);
  j.set("to", to);
  j.set("live", live);
  j.set("success", success);
  j.set("address_update", address_update);
  if (!error.empty()) j.set("error", error);
  j.set("bytes", bytes_transferred);
  j.set("rounds", precopy_rounds);
  j.set("duration_s", total_duration.to_seconds());
  j.set("downtime_s", downtime.to_seconds());
  return j;
}

struct MigrationCoordinator::Session {
  MigrationParams params;
  DoneCallback done;
  MigrationReport report;
  sim::SimTime started;
  sim::SimTime frozen_at;
  NodeDaemon* src = nullptr;
  NodeDaemon* dst = nullptr;
  os::Container* container = nullptr;
  double pending_bytes = 0;  // memory image / dirty set to copy next
  double dirty_rate = 0;     // bytes/sec the app dirties while running
};

MigrationCoordinator::MigrationCoordinator(sim::Simulation& sim,
                                           net::Fabric& fabric,
                                           NodeAccessor accessor)
    : sim_(sim), fabric_(fabric), accessor_(std::move(accessor)) {}

void MigrationCoordinator::migrate(MigrationParams params, DoneCallback done) {
  auto session = std::make_shared<Session>();
  session->params = std::move(params);
  session->done = std::move(done);
  session->started = sim_.now();
  session->report.instance = session->params.instance;
  session->report.from = session->params.from;
  session->report.to = session->params.to;
  session->report.live = session->params.live;
  session->report.address_update =
      address_update_name(session->params.address_update);

  if (migrating_.count(session->params.instance) > 0) {
    fail(session, "instance is already migrating");
    return;
  }
  session->src = accessor_(session->params.from);
  session->dst = accessor_(session->params.to);
  if (session->src == nullptr || session->dst == nullptr) {
    fail(session, "unknown source or destination node");
    return;
  }
  if (session->src == session->dst) {
    fail(session, "source and destination are the same node");
    return;
  }
  session->container =
      session->src->node().find_container(session->params.instance);
  if (session->container == nullptr ||
      session->container->state() == os::ContainerState::kDestroyed) {
    fail(session, "no such container on source node");
    return;
  }
  if (!session->dst->node().running()) {
    fail(session, "destination node is down");
    return;
  }

  migrating_.insert(session->params.instance);
  ++in_flight_;

  session->pending_bytes =
      static_cast<double>(session->container->memory_usage());
  session->dirty_rate = session->container->app() != nullptr
                            ? session->container->app()->dirty_bytes_per_sec()
                            : 0.0;

  LOG_INFO("migrate", "%s: %s -> %s (%s, %.1f MB)",
           session->params.instance.c_str(), session->params.from.c_str(),
           session->params.to.c_str(),
           session->params.live ? "live" : "stop-copy",
           session->pending_bytes / (1 << 20));

  // Prepare phase: destination caches the rootfs layers.
  session->dst->prefetch_layers(
      session->params.layers.as_array(),
      [this, session](util::Status status) {
        if (!status.ok()) {
          migrating_.erase(session->params.instance);
          --in_flight_;
          fail(session, "destination prefetch failed: " +
                            status.error().message);
          return;
        }
        if (session->params.live) {
          precopy_round(session);
        } else {
          // Stop-and-copy: freeze first, move everything in one blackout.
          (void)session->container->freeze();
          session->frozen_at = sim_.now();
          final_copy(session);
        }
      });
}

void MigrationCoordinator::precopy_round(std::shared_ptr<Session> session) {
  // Freeze point reached? Copy the remainder under blackout.
  if (session->report.precopy_rounds >= session->params.max_precopy_rounds ||
      session->pending_bytes <= session->params.stop_threshold_bytes) {
    (void)session->container->freeze();
    session->frozen_at = sim_.now();
    final_copy(session);
    return;
  }
  ++session->report.precopy_rounds;
  double bytes = session->pending_bytes;
  sim::SimTime round_start = sim_.now();

  net::FlowSpec flow;
  flow.src = session->src->node().fabric_node();
  flow.dst = session->dst->node().fabric_node();
  flow.bytes = bytes;
  flow.on_complete = [this, session, bytes, round_start](net::FlowId,
                                                         bool success) {
    if (!success) {
      migrating_.erase(session->params.instance);
      --in_flight_;
      (void)session->container->thaw();  // no-op unless frozen
      fail(session, "pre-copy transfer failed (network)");
      return;
    }
    session->report.bytes_transferred += bytes;
    // Pages dirtied while this round was copying become the next round.
    double elapsed = (sim_.now() - round_start).to_seconds();
    session->pending_bytes =
        std::min(session->dirty_rate * elapsed,
                 static_cast<double>(session->container->memory_usage()));
    precopy_round(session);
  };
  fabric_.start_flow(std::move(flow));
}

void MigrationCoordinator::final_copy(std::shared_ptr<Session> session) {
  double bytes = std::max(session->pending_bytes, 1.0);
  net::FlowSpec flow;
  flow.src = session->src->node().fabric_node();
  flow.dst = session->dst->node().fabric_node();
  flow.bytes = bytes;
  flow.on_complete = [this, session, bytes](net::FlowId, bool success) {
    if (!success) {
      migrating_.erase(session->params.instance);
      --in_flight_;
      (void)session->container->thaw();
      fail(session, "final memory copy failed (network)");
      return;
    }
    session->report.bytes_transferred += bytes;
    commit(session);
  };
  fabric_.start_flow(std::move(flow));
}

void MigrationCoordinator::commit(std::shared_ptr<Session> session) {
  migrating_.erase(session->params.instance);
  --in_flight_;

  os::Container* source = session->container;
  os::ContainerConfig config = source->config();
  net::Ipv4Addr ip = source->ip();
  // Quiesce the app while the frozen source still exists (it frees its
  // working set and deregisters its listeners there), then lift it out.
  std::unique_ptr<os::ContainerApp> app = source->detach_app();
  if (app) app->stop();

  // Secure a home on the destination BEFORE tearing the source down, so a
  // refused create (capacity raced away) rolls back instead of losing the
  // instance.
  auto created = session->dst->node().create_container(config);
  if (!created.ok()) {
    (void)source->thaw();
    source->set_app(std::move(app));  // restarts the app on the source
    fail(session, "destination create failed (rolled back): " +
                      created.error().message);
    return;
  }

  // Point of no return: release the source (frees its RAM and unbinds the
  // IP from the old host). The identity then stays dark while the network
  // learns its new location: a full L2 convergence under the traditional
  // scheme, or one controller round-trip under SDN redirection (the
  // paper's "IP-less routing" direction).
  (void)session->src->node().destroy_container(config.name);
  sim::Duration darkness =
      session->params.address_update == AddressUpdateMode::kArpConvergence
          ? kArpConvergenceDelay
          : kSdnUpdateDelay;
  os::Container* target = created.value();
  // The app object rides through the closure to the deferred restart. The
  // source container object no longer exists past this point; only its
  // captured name/config do.
  auto shared_app =
      std::make_shared<std::unique_ptr<os::ContainerApp>>(std::move(app));
  std::string name = config.name;
  sim_.after(darkness, [this, session, target, ip, name, shared_app]() {
    target->set_app(std::move(*shared_app));
    util::Status started = target->start(ip);
    if (!started.ok()) {
      (void)session->dst->node().destroy_container(name);
      fail(session, "destination start failed: " + started.error().message);
      return;
    }
    session->report.success = true;
    session->report.downtime = sim_.now() - session->frozen_at;
    finish(session);
  });
}

void MigrationCoordinator::fail(std::shared_ptr<Session> session,
                                const std::string& error) {
  session->report.success = false;
  session->report.error = error;
  LOG_WARN("migrate", "%s: FAILED: %s", session->params.instance.c_str(),
           error.c_str());
  finish(session);
}

void MigrationCoordinator::finish(std::shared_ptr<Session> session) {
  session->report.total_duration = sim_.now() - session->started;
  history_.push_back(session->report);
  if (session->done) session->done(session->report);
}

}  // namespace picloud::cloud
