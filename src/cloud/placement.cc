#include "cloud/placement.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace picloud::cloud {

bool PlacementPolicy::fits(const NodeView& node,
                           const PlacementRequest& request,
                           const PlacementLimits& limits) {
  if (!node.alive) return false;
  if (node.containers >= limits.max_containers_per_node) return false;
  if (request.rack_affinity >= 0 && node.rack != request.rack_affinity) {
    return false;
  }
  double budget =
      static_cast<double>(node.mem_capacity) * limits.mem_headroom;
  return static_cast<double>(node.mem_used + request.mem_bytes) <= budget;
}

namespace {

util::Error no_capacity() {
  return util::Error::make("no_capacity", "no node can host the instance");
}

// Stable hostname order regardless of caller ordering.
std::vector<const NodeView*> sorted_by_name(const std::vector<NodeView>& nodes) {
  std::vector<const NodeView*> out;
  out.reserve(nodes.size());
  for (const auto& n : nodes) out.push_back(&n);
  std::sort(out.begin(), out.end(), [](const NodeView* a, const NodeView* b) {
    return a->hostname < b->hostname;
  });
  return out;
}

}  // namespace

util::Result<std::string> FirstFitPolicy::pick(
    const std::vector<NodeView>& nodes, const PlacementRequest& request) {
  for (const NodeView* n : sorted_by_name(nodes)) {
    if (fits(*n, request, limits_)) return n->hostname;
  }
  return no_capacity();
}

util::Result<std::string> BestFitPolicy::pick(
    const std::vector<NodeView>& nodes, const PlacementRequest& request) {
  const NodeView* best = nullptr;
  for (const NodeView* n : sorted_by_name(nodes)) {
    if (!fits(*n, request, limits_)) continue;
    if (best == nullptr || n->mem_free() < best->mem_free()) best = n;
  }
  if (best == nullptr) return no_capacity();
  return best->hostname;
}

util::Result<std::string> WorstFitPolicy::pick(
    const std::vector<NodeView>& nodes, const PlacementRequest& request) {
  const NodeView* best = nullptr;
  for (const NodeView* n : sorted_by_name(nodes)) {
    if (!fits(*n, request, limits_)) continue;
    if (best == nullptr || n->mem_free() > best->mem_free()) best = n;
  }
  if (best == nullptr) return no_capacity();
  return best->hostname;
}

util::Result<std::string> RoundRobinPolicy::pick(
    const std::vector<NodeView>& nodes, const PlacementRequest& request) {
  auto ordered = sorted_by_name(nodes);
  if (ordered.empty()) return no_capacity();
  for (size_t i = 0; i < ordered.size(); ++i) {
    const NodeView* n = ordered[(cursor_ + i) % ordered.size()];
    if (fits(*n, request, limits_)) {
      cursor_ = (cursor_ + i + 1) % ordered.size();
      return n->hostname;
    }
  }
  return no_capacity();
}

util::Result<std::string> LeastLoadedPolicy::pick(
    const std::vector<NodeView>& nodes, const PlacementRequest& request) {
  const NodeView* best = nullptr;
  for (const NodeView* n : sorted_by_name(nodes)) {
    if (!fits(*n, request, limits_)) continue;
    if (best == nullptr || n->cpu_utilization < best->cpu_utilization) {
      best = n;
    }
  }
  if (best == nullptr) return no_capacity();
  return best->hostname;
}

util::Result<std::string> RackAffinityPolicy::pick(
    const std::vector<NodeView>& nodes, const PlacementRequest& request) {
  auto ordered = sorted_by_name(nodes);
  // Prefer the rack this group already lives in.
  auto group = group_rack_.find(request.affinity_group);
  if (!request.affinity_group.empty() && group != group_rack_.end()) {
    for (const NodeView* n : ordered) {
      if (n->rack == group->second && fits(*n, request, limits_)) {
        return n->hostname;
      }
    }
    // Rack full: fall through and migrate the group's spill elsewhere.
  }
  // Pick the rack with the most free memory, then first fit inside it.
  std::map<int, std::uint64_t> rack_free;
  for (const NodeView* n : ordered) {
    if (fits(*n, request, limits_)) rack_free[n->rack] += n->mem_free();
  }
  if (rack_free.empty()) return no_capacity();
  int best_rack = rack_free.begin()->first;
  std::uint64_t best_free = rack_free.begin()->second;
  for (const auto& [rack, free] : rack_free) {
    if (free > best_free) {
      best_rack = rack;
      best_free = free;
    }
  }
  for (const NodeView* n : ordered) {
    if (n->rack != best_rack || !fits(*n, request, limits_)) continue;
    if (!request.affinity_group.empty()) {
      group_rack_[request.affinity_group] = best_rack;
    }
    return n->hostname;
  }
  return no_capacity();
}

util::Result<std::string> CongestionAwarePolicy::pick(
    const std::vector<NodeView>& nodes, const PlacementRequest& request) {
  const NodeView* best = nullptr;
  for (const NodeView* n : sorted_by_name(nodes)) {
    if (!fits(*n, request, limits_)) continue;
    if (best == nullptr ||
        n->rack_uplink_utilization < best->rack_uplink_utilization -
                                         1e-9 ||
        (std::abs(n->rack_uplink_utilization -
                  best->rack_uplink_utilization) <= 1e-9 &&
         n->cpu_utilization < best->cpu_utilization)) {
      best = n;
    }
  }
  if (best == nullptr) return no_capacity();
  return best->hostname;
}

util::Result<std::unique_ptr<PlacementPolicy>> make_policy(
    const std::string& name) {
  if (name == "first-fit") return std::unique_ptr<PlacementPolicy>(new FirstFitPolicy);
  if (name == "best-fit") return std::unique_ptr<PlacementPolicy>(new BestFitPolicy);
  if (name == "worst-fit") return std::unique_ptr<PlacementPolicy>(new WorstFitPolicy);
  if (name == "round-robin") return std::unique_ptr<PlacementPolicy>(new RoundRobinPolicy);
  if (name == "least-loaded") return std::unique_ptr<PlacementPolicy>(new LeastLoadedPolicy);
  if (name == "rack-affinity") return std::unique_ptr<PlacementPolicy>(new RackAffinityPolicy);
  if (name == "congestion-aware") return std::unique_ptr<PlacementPolicy>(new CongestionAwarePolicy);
  return util::Error::make("not_found", "unknown placement policy: " + name);
}

std::vector<std::string> policy_names() {
  return {"first-fit",   "best-fit",     "worst-fit",      "round-robin",
          "least-loaded", "rack-affinity", "congestion-aware"};
}

}  // namespace picloud::cloud
