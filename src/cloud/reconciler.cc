#include "cloud/reconciler.h"

#include <vector>

#include "cloud/pimaster.h"
#include "util/logging.h"
#include "util/strings.h"

namespace picloud::cloud {

Reconciler::Reconciler(PiMaster& master, Config config)
    : master_(master), config_(config) {
  util::MetricsRegistry& m = master_.sim_.metrics();
  sweeps_ = &m.counter("cloud.reconciler.sweeps");
  node_queries_ = &m.counter("cloud.reconciler.node_queries");
  query_failures_ = &m.counter("cloud.reconciler.query_failures");
  marked_lost_dead_node_ = &m.counter("cloud.reconciler.marked_lost_dead_node");
  marked_lost_drift_ = &m.counter("cloud.reconciler.marked_lost_drift");
  orphans_gc_ = &m.counter("cloud.reconciler.orphans_gc");
}

Reconciler::~Reconciler() { stop(); }

void Reconciler::start() {
  if (running_) return;
  running_ = true;
  task_ = sim::PeriodicTask(master_.sim_, config_.period, [this]() { sweep(); });
}

void Reconciler::stop() {
  if (!running_) return;
  running_ = false;
  task_.stop();
}

void Reconciler::sweep() {
  sweeps_->inc();

  // (1) Records in "running" on nodes that stopped heartbeating: the
  // containers died with the node — mark lost so the owning ReplicaSet (or
  // an operator delete) can act. The node may later re-register, but a
  // power-cycled Pi comes back empty, so the records stay lost.
  for (auto& [name, record] : master_.instances_) {
    if (record.state == "running" && !master_.monitor_.alive(record.hostname)) {
      record.state = "lost";
      marked_lost_dead_node_->inc();
      PICLOUD_TRACE(master_.sim_.trace(), "cloud.reconciler", "marked_lost",
                    {"instance", name}, {"node", record.hostname},
                    {"reason", "dead_node"});
      LOG_WARN("reconcile", "%s lost (node %s dead)", name.c_str(),
               record.hostname.c_str());
    }
  }

  // (2) Audit every live registered node's actual container list.
  for (const NodeRecord& rec : master_.monitor_.nodes()) {
    if (!master_.monitor_.alive(rec.hostname)) continue;
    auto ip_it = master_.node_ips_.find(rec.hostname);
    if (ip_it == master_.node_ips_.end()) continue;
    node_queries_->inc();
    std::string hostname = rec.hostname;
    proto::RetryPolicy policy = config_.rest_policy;
    master_.client_->call(
        ip_it->second, NodeDaemon::kPort, proto::Method::kGet, "/containers",
        util::Json(),
        [this, hostname](util::Result<proto::HttpResponse> result) {
          if (!result.ok() || !result.value().ok()) {
            query_failures_->inc();
            return;
          }
          if (!running_) return;
          std::set<std::string> reported;
          for (const util::Json& c : result.value().body.as_array()) {
            reported.insert(c.get_string("name"));
          }
          audit_node(hostname, reported);
        },
        policy);
  }
}

void Reconciler::audit_node(const std::string& hostname,
                            const std::set<std::string>& reported) {
  // Orphans: containers this node runs that no record claims. A spawn whose
  // response was lost, or a migration remnant. Only act after the
  // discrepancy persists `confirmations` consecutive sweeps, and never
  // while the master has an operation in flight for that name.
  for (const std::string& name : reported) {
    std::string key = "orphan/" + hostname + "/" + name;
    auto it = master_.instances_.find(name);
    bool claimed =
        it != master_.instances_.end() &&
        (it->second.hostname == hostname || it->second.state == "migrating");
    if (claimed || master_.operation_in_flight(name) ||
        deleting_.count(hostname + "/" + name) > 0) {
      strikes_.erase(key);
      continue;
    }
    if (++strikes_[key] >= config_.confirmations) {
      strikes_.erase(key);
      destroy_orphan(hostname, name);
    }
  }

  // Drift: records claiming this live node whose container it no longer
  // reports (e.g. the node power-cycled within one liveness window).
  for (auto& [name, record] : master_.instances_) {
    if (record.hostname != hostname) continue;
    std::string key = "drift/" + name;
    if (record.state != "running" || reported.count(name) > 0 ||
        master_.operation_in_flight(name)) {
      strikes_.erase(key);
      continue;
    }
    if (++strikes_[key] >= config_.confirmations) {
      strikes_.erase(key);
      record.state = "lost";
      marked_lost_drift_->inc();
      PICLOUD_TRACE(master_.sim_.trace(), "cloud.reconciler", "marked_lost",
                    {"instance", name}, {"node", hostname},
                    {"reason", "drift"});
      LOG_WARN("reconcile", "%s lost (node %s no longer reports it)",
               name.c_str(), hostname.c_str());
    }
  }

  // Forget orphan strikes for containers that vanished on their own.
  std::string prefix = "orphan/" + hostname + "/";
  std::vector<std::string> stale;
  for (auto it = strikes_.lower_bound(prefix);
       it != strikes_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    if (reported.count(it->first.substr(prefix.size())) == 0) {
      stale.push_back(it->first);
    }
  }
  for (const std::string& key : stale) strikes_.erase(key);
}

void Reconciler::destroy_orphan(const std::string& hostname,
                                const std::string& name) {
  auto ip_it = master_.node_ips_.find(hostname);
  if (ip_it == master_.node_ips_.end()) return;
  std::string tag = hostname + "/" + name;
  deleting_.insert(tag);
  ++gc_seq_;
  util::Json body = util::Json::object();
  body.set("idem", util::format("gc/%s/%llu", tag.c_str(),
                                static_cast<unsigned long long>(gc_seq_)));
  LOG_WARN("reconcile", "GC orphan container %s on %s", name.c_str(),
           hostname.c_str());
  proto::RetryPolicy policy = config_.rest_policy;
  master_.client_->call(
      ip_it->second, NodeDaemon::kPort, proto::Method::kDelete,
      "/containers/" + name, std::move(body),
      [this, tag](util::Result<proto::HttpResponse> result) {
        deleting_.erase(tag);
        // 404 counts: someone else (node crash, operator) beat us to it.
        if (result.ok() &&
            (result.value().ok() || result.value().status == 404)) {
          orphans_gc_->inc();
          PICLOUD_TRACE(master_.sim_.trace(), "cloud.reconciler", "orphan_gc",
                        {"container", tag});
        }
      },
      policy);
}

}  // namespace picloud::cloud
