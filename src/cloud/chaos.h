// Chaos — stochastic failure injection.
//
// Paper §I cites Gill et al., "Understanding network failures in data
// centers: Measurement, analysis, and implications": failures are a fact of
// DC life, and a credible scale model must produce them. ChaosMonkey
// crashes nodes and flaps links with configurable MTBF/MTTR, driven by the
// deterministic RNG, so availability experiments are reproducible.
//
// Crash recovery follows the physical reality: a "repaired" Pi is
// power-cycled (daemon restart), re-runs DHCP, and re-registers — its
// containers are gone, as they would be.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "cloud/node_daemon.h"
#include "net/fabric.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace picloud::cloud {

class ChaosMonkey {
 public:
  struct Config {
    // Node failures: each node independently fails with this MTBF; repair
    // (power-cycle) after MTTR.
    sim::Duration node_mtbf = sim::Duration::minutes(60);
    sim::Duration node_mttr = sim::Duration::minutes(5);
    // Link flaps on the ToR uplinks.
    sim::Duration link_mtbf = sim::Duration::minutes(120);
    sim::Duration link_mttr = sim::Duration::seconds(30);
    // Lossy-link mode: links enter degraded periods (MTBF/MTTR like flaps)
    // during which each crossing flow is dropped with `loss_rate`. Zero
    // loss_mtbf disables the mode entirely (no rng draws, no fabric calls).
    sim::Duration loss_mtbf = sim::Duration::zero();
    sim::Duration loss_mttr = sim::Duration::seconds(30);
    double loss_rate = 0.05;
    // Evaluation tick.
    sim::Duration tick = sim::Duration::seconds(10);
  };

  // Value snapshot of the `cloud.chaos.*` registry counters.
  struct Stats {
    std::uint64_t node_crashes = 0;
    std::uint64_t node_repairs = 0;
    std::uint64_t link_cuts = 0;
    std::uint64_t link_repairs = 0;
    std::uint64_t loss_onsets = 0;
    std::uint64_t loss_clears = 0;
  };

  ChaosMonkey(sim::Simulation& sim, net::Fabric& fabric, Config config,
              util::Rng rng);
  ~ChaosMonkey();

  ChaosMonkey(const ChaosMonkey&) = delete;
  ChaosMonkey& operator=(const ChaosMonkey&) = delete;

  // Targets. Daemons are crash/restarted; links are full-duplex pairs
  // (pass one direction's id).
  void add_node(NodeDaemon* daemon);
  void add_link(net::LinkId link);

  void start();
  void stop();

  Stats stats() const {
    Stats s;
    s.node_crashes = node_crashes_->value();
    s.node_repairs = node_repairs_->value();
    s.link_cuts = link_cuts_->value();
    s.link_repairs = link_repairs_->value();
    s.loss_onsets = loss_onsets_->value();
    s.loss_clears = loss_clears_->value();
    return s;
  }
  size_t nodes_down() const { return down_nodes_.size(); }
  size_t links_down() const { return down_links_.size(); }
  size_t links_lossy() const { return lossy_links_.size(); }

 private:
  void tick();

  sim::Simulation& sim_;
  net::Fabric& fabric_;
  Config config_;
  util::Rng rng_;
  std::vector<NodeDaemon*> nodes_;
  std::vector<net::LinkId> links_;
  std::set<size_t> down_nodes_;       // indices into nodes_
  std::set<size_t> down_links_;       // indices into links_
  std::set<size_t> lossy_links_;      // indices into links_
  // Registry counter handles under `cloud.chaos.*` (never null).
  util::Counter* node_crashes_ = nullptr;
  util::Counter* node_repairs_ = nullptr;
  util::Counter* link_cuts_ = nullptr;
  util::Counter* link_repairs_ = nullptr;
  util::Counter* loss_onsets_ = nullptr;
  util::Counter* loss_clears_ = nullptr;
  bool running_ = false;
  sim::PeriodicTask tick_task_;
};

}  // namespace picloud::cloud
