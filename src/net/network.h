// Network — datagram-style messaging over the fabric.
//
// Binds IP addresses (assigned by DHCP) to fabric nodes, registers port
// listeners, and carries every message as a real flow so that control-plane
// traffic (REST, DHCP, DNS, heartbeats) contends with data-plane traffic on
// the same links — the cross-layer coupling the paper's argument rests on.
//
// Containers are bridged (paper §II-B): a container's IP binds to its host
// device's fabric node, so all containers on one Pi share its 100 Mb NIC.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "net/addr.h"
#include "net/fabric.h"
#include "sim/simulation.h"

namespace picloud::net {

struct Message {
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::string payload;
  // Bulk body size carried on the wire but not materialised as bytes in the
  // payload string (MapReduce shuffle partitions, file chunks). The fabric
  // charges it; receivers read it as metadata.
  double padding_bytes = 0;

  // L2-L4 framing overhead charged to the fabric per message.
  static constexpr double kHeaderBytes = 64;
  double wire_bytes() const {
    return kHeaderBytes + static_cast<double>(payload.size()) + padding_bytes;
  }
};

class Network {
 public:
  Network(sim::Simulation& sim, Fabric& fabric);

  Fabric& fabric() { return fabric_; }
  sim::Simulation& simulation() { return sim_; }

  // --- Address registry -----------------------------------------------------
  // Binds an IP to a fabric node (host NIC or bridged container).
  void bind_ip(Ipv4Addr ip, NetNodeId node);
  void unbind_ip(Ipv4Addr ip);
  std::optional<NetNodeId> resolve(Ipv4Addr ip) const;
  // Number of IPs bound to `node`.
  size_t ips_on_node(NetNodeId node) const;

  // --- Sockets ----------------------------------------------------------------
  using Handler = std::function<void(const Message&)>;
  // Registers a listener on (ip, port). Replaces any existing listener.
  void listen(Ipv4Addr ip, std::uint16_t port, Handler handler);
  void unlisten(Ipv4Addr ip, std::uint16_t port);

  // Sends a message. Returns false when the source IP is unbound (caller
  // bug). Unknown destinations and unreachable paths drop the message (a
  // datagram network); reliability lives in proto::rest retries.
  // dst == broadcast delivers a copy to every listener on dst_port (except
  // the sender) — used by DHCP DISCOVER.
  bool send(Message msg);

  // --- Raw node addressing ----------------------------------------------------
  // Pre-IP traffic (the DHCP handshake happens before a node has an address)
  // addresses fabric nodes directly. A node listener receives messages sent
  // with send_to_node() on that port.
  void listen_node(NetNodeId node, std::uint16_t port, Handler handler);
  void unlisten_node(NetNodeId node, std::uint16_t port);
  // Sends from a node (src IP may be 0.0.0.0) to every listener on
  // `dst_port` when `dst_node` is nullopt (L2 broadcast), or to the node
  // listener of `dst_node`.
  void send_to_node(NetNodeId src_node, std::optional<NetNodeId> dst_node,
                    Message msg);

  // --- Counters ----------------------------------------------------------------
  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_delivered() const { return delivered_; }
  std::uint64_t messages_dropped() const { return dropped_; }

 private:
  void transmit(NetNodeId src_node, NetNodeId dst_node, Message msg);
  void transmit_to_node(NetNodeId src_node, NetNodeId dst_node, Message msg);
  void deliver(Message msg);
  void deliver_to_node(NetNodeId node, Message msg);

  sim::Simulation& sim_;
  Fabric& fabric_;
  std::map<Ipv4Addr, NetNodeId> ip_to_node_;
  std::map<std::pair<std::uint32_t, std::uint16_t>, Handler> listeners_;
  std::map<std::pair<NetNodeId, std::uint16_t>, Handler> node_listeners_;
  std::map<FlowId, sim::Duration> pending_delay_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace picloud::net
