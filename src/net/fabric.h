// The network fabric: nodes, directed links, and byte-accurate flows with
// progressive-filling max-min fair bandwidth sharing.
//
// This is the flow-level network model from DESIGN.md §6.2. Congestion is
// emergent: when many flows cross a link, each gets its fair share and
// completion events move accordingly — exactly the cross-layer behaviour the
// paper argues simulators miss (naive VM consolidation → congestion).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/time.h"
#include "util/rng.h"

namespace picloud::net {

using NetNodeId = std::uint32_t;
using LinkId = std::uint32_t;
using FlowId = std::uint64_t;

inline constexpr NetNodeId kInvalidNode = ~0u;
inline constexpr LinkId kInvalidLink = ~0u;

enum class NodeKind { kHost, kSwitch, kRouter };

struct NetNode {
  NetNodeId id = kInvalidNode;
  NodeKind kind = NodeKind::kHost;
  std::string name;
  std::vector<LinkId> out_links;  // directed links leaving this node
};

struct DirectedLink {
  LinkId id = kInvalidLink;
  NetNodeId from = kInvalidNode;
  NetNodeId to = kInvalidNode;
  double capacity_bps = 0;
  sim::Duration delay;  // propagation + store-and-forward latency
  bool up = true;
  // Probability that a flow crossing this link is dropped at admission
  // (lossy-link chaos mode). 0 = clean link.
  double loss_p = 0;

  // Live allocation state (maintained by the fair-share allocator).
  double allocated_bps = 0;
  int active_flows = 0;
  // Cumulative bytes carried (monitoring / SDN stats).
  double bytes_carried = 0;
  // Flows this link dropped at admission while lossy. Summed over all links
  // this equals the fabric's flows_lost() counter — an invariant the
  // simulation fuzzer's fabric-conservation probe checks every sweep.
  std::uint64_t flows_dropped = 0;

  double utilization() const {
    return capacity_bps > 0 ? allocated_bps / capacity_bps : 0.0;
  }
};

class Fabric;

// Computes the path a new flow takes. Implemented by the static shortest-path
// router and by the OpenFlow/SDN controller (net/sdn.h).
class RoutingProvider {
 public:
  virtual ~RoutingProvider() = default;
  // Returns directed link ids from src to dst, or empty when unreachable.
  virtual std::vector<LinkId> route(Fabric& fabric, NetNodeId src,
                                    NetNodeId dst, FlowId flow) = 0;
  // Notified when a flow finishes or is cancelled (lets SDN age rules).
  virtual void on_flow_end(FlowId /*flow*/) {}
};

// Completion callback: success=false when the flow was failed by a link cut
// with no alternative route, or cancelled.
using FlowCallback = std::function<void(FlowId, bool success)>;

struct FlowSpec {
  NetNodeId src = kInvalidNode;
  NetNodeId dst = kInvalidNode;
  double bytes = 0;
  FlowCallback on_complete;  // may be empty
};

class Fabric {
 public:
  explicit Fabric(sim::Simulation& sim);

  // --- Topology construction -----------------------------------------------
  NetNodeId add_node(NodeKind kind, std::string name);
  // Adds a full-duplex link (two directed links). Returns {a->b, b->a}.
  std::pair<LinkId, LinkId> add_link(NetNodeId a, NetNodeId b,
                                     double capacity_bps, sim::Duration delay);
  // Installs the routing provider (not owned). Defaults to static BFS
  // shortest path when none is set.
  void set_routing(RoutingProvider* routing) { routing_ = routing; }
  RoutingProvider* routing() const { return routing_; }

  // --- Introspection --------------------------------------------------------
  const NetNode& node(NetNodeId id) const { return nodes_[id]; }
  const DirectedLink& link(LinkId id) const { return links_[id]; }
  // Const view of every directed link — per-link byte/drop counters for
  // monitoring and the invariant checker.
  const std::vector<DirectedLink>& links() const { return links_; }
  size_t node_count() const { return nodes_.size(); }
  size_t link_count() const { return links_.size(); }
  std::optional<NetNodeId> find_node(const std::string& name) const;
  // The reverse direction of a directed link.
  LinkId reverse(LinkId id) const;
  size_t active_flow_count() const { return flows_.size(); }
  sim::Simulation& simulation() { return sim_; }

  // BFS shortest path over up links (deterministic neighbour order).
  // Returns directed link ids, empty if unreachable or src == dst.
  std::vector<LinkId> shortest_path(NetNodeId src, NetNodeId dst) const;
  // All equal-cost (minimum-hop) paths, up to `max_paths`, deterministic
  // order. Used by ECMP and congestion-aware SDN policies.
  std::vector<std::vector<LinkId>> equal_cost_paths(NetNodeId src,
                                                    NetNodeId dst,
                                                    size_t max_paths = 16) const;
  // Sum of link delays along a path.
  sim::Duration path_delay(const std::vector<LinkId>& path) const;
  bool path_up(const std::vector<LinkId>& path) const;

  // --- Failure injection ----------------------------------------------------
  // Takes both directions of the full-duplex pair up/down and reroutes or
  // fails the flows crossing it.
  void set_link_pair_up(LinkId id, bool up);
  // Marks both directions of the pair lossy: each new flow whose path
  // crosses the link is dropped with probability `loss_p` (the drop fires
  // the completion callback with success=false, like an unreachable path).
  // Draws come from a dedicated deterministic rng stream that is consumed
  // only when a lossy link is actually on the path, so simulations that
  // never enable loss keep bit-identical rng state.
  void set_link_pair_loss(LinkId id, double loss_p);
  // Reseeds the loss stream (chaos injectors tie it to their own seed).
  void seed_loss_rng(std::uint64_t seed) { loss_rng_ = util::Rng(seed); }

  // --- Flows -----------------------------------------------------------------
  // Starts a byte flow. Completion fires when the last byte has been
  // serialised at the fair-share rate (propagation delay is exposed via
  // path_delay() and added by the messaging layer). A flow between
  // unreachable endpoints fails immediately (callback with success=false,
  // scheduled, not inline). src == dst completes after a loopback delay.
  FlowId start_flow(FlowSpec spec);
  // Cancels a flow; its callback fires with success=false.
  void cancel_flow(FlowId id);
  // The path assigned to an active flow (empty if finished/unknown).
  std::vector<LinkId> flow_path(FlowId id) const;
  double flow_rate_bps(FlowId id) const;

  // --- Monitoring ------------------------------------------------------------
  // Instantaneous utilisation in [0,1] of the most loaded link.
  double max_link_utilization() const;
  // Total bytes carried across all links (each hop counted).
  double total_bytes_carried() const;
  // Flow accounting lives in the registry under `net.fabric.*`; these
  // accessors read the same counters.
  std::uint64_t flows_started() const { return flows_started_->value(); }
  std::uint64_t flows_completed() const { return flows_completed_->value(); }
  std::uint64_t flows_failed() const { return flows_failed_->value(); }
  // Subset of flows_failed(): dropped by a lossy link at admission.
  std::uint64_t flows_lost() const { return flows_lost_->value(); }

  static constexpr sim::Duration kLoopbackDelay = sim::Duration::micros(20);

 private:
  struct Flow {
    FlowId id = 0;
    FlowSpec spec;
    std::vector<LinkId> path;
    double remaining_bytes = 0;
    double rate_bps = 0;
    // Rate the live completion event was computed with (reschedule guard).
    double scheduled_rate = -1;
    sim::SimTime last_update;
    sim::EventId completion_event = 0;
  };

  // Charges elapsed transfer against remaining bytes and link counters.
  void settle(Flow& flow);
  // Recomputes all rates (max-min fair) and reschedules completions.
  void reallocate();
  void finish_flow(FlowId id, bool success);
  std::vector<LinkId> route_flow(NetNodeId src, NetNodeId dst, FlowId id);

  sim::Simulation& sim_;
  std::vector<NetNode> nodes_;
  std::vector<DirectedLink> links_;
  RoutingProvider* routing_ = nullptr;
  std::map<FlowId, Flow> flows_;  // ordered -> deterministic allocation
  FlowId next_flow_id_ = 1;
  // Registry counter handles under `net.fabric.*` (never null).
  util::Counter* flows_started_ = nullptr;
  util::Counter* flows_completed_ = nullptr;
  util::Counter* flows_failed_ = nullptr;
  util::Counter* flows_lost_ = nullptr;
  util::Counter* reroutes_ = nullptr;  // flows repathed after a link cut
  // Dedicated loss stream: fixed default seed (overridable via
  // seed_loss_rng) rather than a fork of the root rng, so constructing a
  // fabric never perturbs the simulation's root stream.
  util::Rng loss_rng_{0x9e3779b97f4a7c15ull};
};

}  // namespace picloud::net
