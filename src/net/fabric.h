// The network fabric: nodes, directed links, and byte-accurate flows with
// progressive-filling max-min fair bandwidth sharing.
//
// This is the flow-level network model from DESIGN.md §6.2. Congestion is
// emergent: when many flows cross a link, each gets its fair share and
// completion events move accordingly — exactly the cross-layer behaviour the
// paper argues simulators miss (naive VM consolidation → congestion).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/time.h"
#include "util/rng.h"

namespace picloud::net {

using NetNodeId = std::uint32_t;
using LinkId = std::uint32_t;
using FlowId = std::uint64_t;

inline constexpr NetNodeId kInvalidNode = ~0u;
inline constexpr LinkId kInvalidLink = ~0u;

enum class NodeKind { kHost, kSwitch, kRouter };

struct NetNode {
  NetNodeId id = kInvalidNode;
  NodeKind kind = NodeKind::kHost;
  std::string name;
  std::vector<LinkId> out_links;  // directed links leaving this node
};

struct DirectedLink {
  LinkId id = kInvalidLink;
  NetNodeId from = kInvalidNode;
  NetNodeId to = kInvalidNode;
  double capacity_bps = 0;
  sim::Duration delay;  // propagation + store-and-forward latency
  bool up = true;
  // Probability that a flow crossing this link is dropped at admission
  // (lossy-link chaos mode). 0 = clean link.
  double loss_p = 0;

  // Live allocation state (maintained by the fair-share allocator).
  double allocated_bps = 0;
  int active_flows = 0;
  // Cumulative bytes carried (monitoring / SDN stats).
  double bytes_carried = 0;
  // Flows this link dropped at admission while lossy. Summed over all links
  // this equals the fabric's flows_lost() counter — an invariant the
  // simulation fuzzer's fabric-conservation probe checks every sweep.
  std::uint64_t flows_dropped = 0;

  double utilization() const {
    return capacity_bps > 0 ? allocated_bps / capacity_bps : 0.0;
  }
};

class Fabric;

// Computes the path a new flow takes. Implemented by the static shortest-path
// router and by the OpenFlow/SDN controller (net/sdn.h).
class RoutingProvider {
 public:
  virtual ~RoutingProvider() = default;
  // Returns directed link ids from src to dst, or empty when unreachable.
  virtual std::vector<LinkId> route(Fabric& fabric, NetNodeId src,
                                    NetNodeId dst, FlowId flow) = 0;
  // Notified when a flow finishes or is cancelled (lets SDN age rules).
  virtual void on_flow_end(FlowId /*flow*/) {}
  // Notified when a directed link's properties (capacity) change so cached
  // routing state chosen under the old properties can be invalidated. Not
  // fired for up/down transitions — those are already handled lazily by the
  // providers' dead-link checks.
  virtual void on_link_changed(LinkId /*link*/) {}
};

// Completion callback: success=false when the flow was failed by a link cut
// with no alternative route, or cancelled.
using FlowCallback = std::function<void(FlowId, bool success)>;

struct FlowSpec {
  NetNodeId src = kInvalidNode;
  NetNodeId dst = kInvalidNode;
  double bytes = 0;
  FlowCallback on_complete;  // may be empty
};

// Which bandwidth solver runs on flow add/remove/link-change.
enum class SolverMode {
  // Dirty-set incremental solver (default): re-solves only the connected
  // component of links reachable from the changed links through shared
  // flows, with a constant-time fast tier for uncontended paths. Flows
  // outside the component keep their rates and completion events untouched.
  kIncremental,
  // Whole-fabric progressive filling on every change — the original
  // algorithm, kept as the in-tree reference oracle for differential tests.
  kFullOracle,
};

// Deterministic work counters for the bandwidth solver. Plain values (not
// registry counters) so they never perturb metrics snapshots or digests;
// tests use deltas of these to pin algorithmic cost without wall clocks.
struct FabricSolverStats {
  std::uint64_t solves = 0;            // solver invocations, any tier
  std::uint64_t full_solves = 0;       // whole-fabric progressive fillings
  std::uint64_t component_solves = 0;  // dirty-set component re-solves
  std::uint64_t fast_path = 0;         // uncontended-path constant-tier hits
  std::uint64_t component_links = 0;   // links swept by component re-solves
  std::uint64_t component_flows = 0;   // flows swept by component re-solves
  std::uint64_t flow_visits = 0;       // flows touched fixing bottlenecks
  std::uint64_t heap_ops = 0;          // share-heap pushes + pops
  std::uint64_t link_scans = 0;        // per-round link evaluations (oracle)
};

class Fabric {
 public:
  explicit Fabric(sim::Simulation& sim);

  // --- Topology construction -----------------------------------------------
  // Pre-sizes the node/link/flow-set arrays. Generated topologies (fat-tree
  // k=16 is ~1.3k nodes, ~6.3k directed links) call this with exact counts
  // so construction never rehashes or reallocates mid-build.
  void reserve_topology(size_t nodes, size_t link_pairs);
  NetNodeId add_node(NodeKind kind, std::string name);
  // Adds a full-duplex link (two directed links). Returns {a->b, b->a}.
  std::pair<LinkId, LinkId> add_link(NetNodeId a, NetNodeId b,
                                     double capacity_bps, sim::Duration delay);
  // Installs the routing provider (not owned). Defaults to static BFS
  // shortest path when none is set.
  void set_routing(RoutingProvider* routing) { routing_ = routing; }
  RoutingProvider* routing() const { return routing_; }

  // --- Introspection --------------------------------------------------------
  const NetNode& node(NetNodeId id) const { return nodes_[id]; }
  const DirectedLink& link(LinkId id) const { return links_[id]; }
  // Const view of every directed link — per-link byte/drop counters for
  // monitoring and the invariant checker.
  const std::vector<DirectedLink>& links() const { return links_; }
  size_t node_count() const { return nodes_.size(); }
  size_t link_count() const { return links_.size(); }
  std::optional<NetNodeId> find_node(const std::string& name) const;
  // The reverse direction of a directed link.
  LinkId reverse(LinkId id) const;
  size_t active_flow_count() const { return flows_.size(); }
  // Ids of all active flows, ascending. For invariant probes and tests.
  std::vector<FlowId> active_flow_ids() const;
  // Number of active flows whose path crosses a directed link (from the
  // solver's per-link flow sets; cross-checked against the active_flows
  // gauge by the fabric-conservation probe).
  size_t link_flow_count(LinkId id) const {
    return id < link_flows_.size() ? link_flows_[id].size() : 0;
  }
  sim::Simulation& simulation() { return sim_; }

  // BFS shortest path over up links (deterministic neighbour order).
  // Returns directed link ids, empty if unreachable or src == dst.
  std::vector<LinkId> shortest_path(NetNodeId src, NetNodeId dst) const;
  // All equal-cost (minimum-hop) paths, up to `max_paths`, deterministic
  // order. Used by ECMP and congestion-aware SDN policies.
  std::vector<std::vector<LinkId>> equal_cost_paths(NetNodeId src,
                                                    NetNodeId dst,
                                                    size_t max_paths = 16) const;
  // Sum of link delays along a path.
  sim::Duration path_delay(const std::vector<LinkId>& path) const;
  bool path_up(const std::vector<LinkId>& path) const;

  // --- Failure injection ----------------------------------------------------
  // Takes both directions of the full-duplex pair up/down and reroutes or
  // fails the flows crossing it.
  void set_link_pair_up(LinkId id, bool up);
  // Marks both directions of the pair lossy: each new flow whose path
  // crosses the link is dropped with probability `loss_p` (the drop fires
  // the completion callback with success=false, like an unreachable path).
  // Draws come from a dedicated deterministic rng stream that is consumed
  // only when a lossy link is actually on the path, so simulations that
  // never enable loss keep bit-identical rng state.
  void set_link_pair_loss(LinkId id, double loss_p);
  // Reseeds the loss stream (chaos injectors tie it to their own seed).
  void seed_loss_rng(std::uint64_t seed) { loss_rng_ = util::Rng(seed); }
  // Changes the capacity of both directions of a full-duplex pair and
  // re-solves the affected component. Notifies the routing provider via
  // on_link_changed so congestion-aware cached paths can be invalidated.
  void set_link_pair_capacity(LinkId id, double capacity_bps);

  // --- Solver ---------------------------------------------------------------
  // Switches between the incremental solver and the whole-fabric oracle.
  // Both produce bit-identical rates; the oracle exists so differential
  // tests can prove that. Switch only while no flows are active (the
  // incremental bookkeeping is maintained in both modes, so this is not
  // strictly required, but keeps comparisons clean).
  void set_solver_mode(SolverMode mode) { mode_ = mode; }
  SolverMode solver_mode() const { return mode_; }
  // Reference oracle: settles every flow and re-runs whole-fabric
  // progressive filling. Production code must not call this — the analyzer
  // flags it outside fabric.cc/tests (escape: allow(full-solve)).
  void reallocate_full();
  // Deterministic solver work counters (monotonic; never reset).
  const FabricSolverStats& solver_stats() const { return stats_; }

  // --- Flows -----------------------------------------------------------------
  // Starts a byte flow. Completion fires when the last byte has been
  // serialised at the fair-share rate (propagation delay is exposed via
  // path_delay() and added by the messaging layer). A flow between
  // unreachable endpoints fails immediately (callback with success=false,
  // scheduled, not inline). src == dst completes after a loopback delay.
  FlowId start_flow(FlowSpec spec);
  // Cancels a flow; its callback fires with success=false.
  void cancel_flow(FlowId id);
  // The path assigned to an active flow (empty if finished/unknown).
  std::vector<LinkId> flow_path(FlowId id) const;
  double flow_rate_bps(FlowId id) const;

  // --- Monitoring ------------------------------------------------------------
  // Instantaneous utilisation in [0,1] of the most loaded link.
  double max_link_utilization() const;
  // Total bytes carried across all links (each hop counted).
  double total_bytes_carried() const;
  // Flow accounting lives in the registry under `net.fabric.*`; these
  // accessors read the same counters.
  std::uint64_t flows_started() const { return flows_started_->value(); }
  std::uint64_t flows_completed() const { return flows_completed_->value(); }
  std::uint64_t flows_failed() const { return flows_failed_->value(); }
  // Subset of flows_failed(): dropped by a lossy link at admission.
  std::uint64_t flows_lost() const { return flows_lost_->value(); }

  static constexpr sim::Duration kLoopbackDelay = sim::Duration::micros(20);

 private:
  struct Flow {
    FlowId id = 0;
    FlowSpec spec;
    std::vector<LinkId> path;
    double remaining_bytes = 0;
    double rate_bps = 0;
    // Rate the live completion event was computed with (reschedule guard).
    double scheduled_rate = -1;
    sim::SimTime last_update;
    sim::EventId completion_event = 0;
    // Component-BFS visit stamp (solver scratch; see solve_component).
    std::uint32_t mark_epoch = 0;
  };

  // Charges elapsed transfer against remaining bytes and link counters.
  void settle(Flow& flow);
  // Settles every active flow to now, in flow-id order. Runs before every
  // solve, full or partial: remaining-byte rounding trajectories (and thus
  // completion times) depend on the settle cadence, so partial re-solves
  // must keep the oracle's cadence to stay bit-identical.
  void settle_all();
  // Cancels/reschedules a flow's completion event after a rate change
  // (no-op when the rate is unchanged — the reschedule guard).
  void schedule_completion(Flow& flow);
  // Merges `seed` into the pending dirty set, settles, and re-solves: the
  // dirty component under kIncremental, the whole fabric under kFullOracle.
  void resolve_after_change(const std::vector<LinkId>& seed);
  // Progressive filling restricted to the connected component of links
  // reachable from the pending dirty set through shared flows.
  void solve_component();
  // Whole-fabric progressive filling (shared by reallocate_full()).
  void run_filling_full();
  // Constant tier: true when every path link carries exactly one flow.
  bool path_uncontended(const std::vector<LinkId>& path) const;
  void finish_flow(FlowId id, bool success);
  std::vector<LinkId> route_flow(NetNodeId src, NetNodeId dst, FlowId id);

  sim::Simulation& sim_;
  std::vector<NetNode> nodes_;
  std::vector<DirectedLink> links_;
  RoutingProvider* routing_ = nullptr;
  std::map<FlowId, Flow> flows_;  // ordered -> deterministic allocation
  FlowId next_flow_id_ = 1;
  SolverMode mode_ = SolverMode::kIncremental;
  FabricSolverStats stats_;
  // flow ids crossing each directed link (ordered: bottleneck rounds fix
  // flows in ascending id, matching the oracle's whole-map scan order).
  std::vector<std::set<FlowId>> link_flows_;
  // Links whose flow sets or properties changed since the last solve.
  // Mutations (reroutes mid link-cut) accumulate here; the next solve
  // consumes it as the component seed.
  std::vector<LinkId> pending_dirty_;
  // Solver scratch, reused across solves so steady state never allocates.
  std::vector<LinkId> comp_links_;
  std::vector<Flow*> comp_flows_;
  std::vector<LinkId> bfs_stack_;
  std::vector<double> residual_;
  std::vector<int> unfixed_;
  std::vector<std::pair<double, LinkId>> share_heap_;
  std::vector<std::uint32_t> link_epoch_;
  std::uint32_t epoch_ = 0;
  // Registry counter handles under `net.fabric.*` (never null).
  util::Counter* flows_started_ = nullptr;
  util::Counter* flows_completed_ = nullptr;
  util::Counter* flows_failed_ = nullptr;
  util::Counter* flows_lost_ = nullptr;
  util::Counter* reroutes_ = nullptr;  // flows repathed after a link cut
  // Dedicated loss stream: fixed default seed (overridable via
  // seed_loss_rng) rather than a fork of the root rng, so constructing a
  // fabric never perturbs the simulation's root stream.
  util::Rng loss_rng_{0x9e3779b97f4a7c15ull};
};

}  // namespace picloud::net
