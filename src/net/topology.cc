#include "net/topology.h"

#include "net/sdn.h"

#include <algorithm>
#include <deque>

#include "util/check.h"
#include "util/strings.h"

namespace picloud::net {

std::vector<int> Topology::hosts_in_rack(int rack) const {
  std::vector<int> out;
  for (size_t i = 0; i < hosts.size(); ++i) {
    if (host_rack[i] == rack) out.push_back(static_cast<int>(i));
  }
  return out;
}

Topology build_multi_root_tree(Fabric& fabric, const MultiRootTreeConfig& cfg) {
  PICLOUD_CHECK(cfg.racks > 0 && cfg.hosts_per_rack > 0 &&
                cfg.aggregation_switches > 0)
      << "multi-root tree dimensions must be positive";
  Topology topo;
  topo.kind = "multi-root-tree";

  // Aggregation roots (the OpenFlow switches).
  for (int a = 0; a < cfg.aggregation_switches; ++a) {
    topo.agg_switches.push_back(
        fabric.add_node(NodeKind::kSwitch, util::format("agg-%d", a)));
  }
  // Gateway ("the School's university gateway, which functions as a core or
  // border router") and the Internet beyond it.
  topo.gateway = fabric.add_node(NodeKind::kRouter, "gateway");
  topo.internet = fabric.add_node(NodeKind::kHost, "internet");
  fabric.add_link(topo.gateway, topo.internet, cfg.internet_bps, cfg.link_delay);
  for (NetNodeId agg : topo.agg_switches) {
    fabric.add_link(agg, topo.gateway, cfg.agg_uplink_bps, cfg.link_delay);
  }

  // Racks: hosts behind a ToR, ToR multi-homed to every aggregation root.
  for (int r = 0; r < cfg.racks; ++r) {
    NetNodeId tor =
        fabric.add_node(NodeKind::kSwitch, util::format("rack-%d-tor", r));
    topo.tor_switches.push_back(tor);
    for (NetNodeId agg : topo.agg_switches) {
      fabric.add_link(tor, agg, cfg.tor_uplink_bps, cfg.link_delay);
    }
    for (int h = 0; h < cfg.hosts_per_rack; ++h) {
      NetNodeId host = fabric.add_node(
          NodeKind::kHost, util::format("pi-r%d-%02d", r, h));
      fabric.add_link(host, tor, cfg.host_link_bps, cfg.link_delay);
      topo.hosts.push_back(host);
      topo.host_rack.push_back(r);
    }
  }
  return topo;
}

Topology build_fat_tree(Fabric& fabric, const FatTreeConfig& cfg) {
  PICLOUD_CHECK(cfg.k >= 2 && cfg.k % 2 == 0)
      << "fat-tree k must be even and >= 2, got " << cfg.k;
  const int k = cfg.k;
  const int half = k / 2;
  Topology topo;
  topo.kind = "fat-tree";

  // Exact element counts so a k=16 build (1,346 nodes, 3,137 full-duplex
  // links) allocates each fabric array once.
  const size_t hosts = static_cast<size_t>(k) * half * half;
  const size_t switches = static_cast<size_t>(half) * half  // core
                          + static_cast<size_t>(k) * k;     // agg + edge
  const size_t pairs = static_cast<size_t>(k) * half * half  // agg-core
                       + static_cast<size_t>(k) * half * half  // edge-agg
                       + hosts;                                // host-edge
  const size_t gw_pairs = cfg.with_gateway ? half * half + 1 : 0;
  fabric.reserve_topology(hosts + switches + (cfg.with_gateway ? 2 : 0),
                          pairs + gw_pairs);
  topo.hosts.reserve(hosts);
  topo.host_rack.reserve(hosts);
  topo.core_switches.reserve(static_cast<size_t>(half) * half);
  topo.agg_switches.reserve(static_cast<size_t>(k) * half);
  topo.tor_switches.reserve(static_cast<size_t>(k) * half);

  // Core layer: (k/2)^2 switches.
  for (int c = 0; c < half * half; ++c) {
    topo.core_switches.push_back(
        fabric.add_node(NodeKind::kSwitch, util::format("core-%d", c)));
  }

  // Pods.
  for (int p = 0; p < k; ++p) {
    std::vector<NetNodeId> pod_agg;
    for (int a = 0; a < half; ++a) {
      NetNodeId agg = fabric.add_node(NodeKind::kSwitch,
                                      util::format("pod%d-agg%d", p, a));
      pod_agg.push_back(agg);
      topo.agg_switches.push_back(agg);
      // Aggregation switch a connects to core switches [a*half, (a+1)*half).
      for (int c = 0; c < half; ++c) {
        fabric.add_link(agg, topo.core_switches[a * half + c],
                        cfg.fabric_link_bps, cfg.link_delay);
      }
    }
    for (int e = 0; e < half; ++e) {
      NetNodeId edge = fabric.add_node(NodeKind::kSwitch,
                                       util::format("pod%d-edge%d", p, e));
      int rack = static_cast<int>(topo.tor_switches.size());
      topo.tor_switches.push_back(edge);
      for (NetNodeId agg : pod_agg) {
        fabric.add_link(edge, agg, cfg.fabric_link_bps, cfg.link_delay);
      }
      for (int h = 0; h < half; ++h) {
        NetNodeId host = fabric.add_node(
            NodeKind::kHost, util::format("pi-p%d-e%d-%d", p, e, h));
        fabric.add_link(host, edge, cfg.host_link_bps, cfg.link_delay);
        topo.hosts.push_back(host);
        topo.host_rack.push_back(rack);
      }
    }
  }

  if (cfg.with_gateway) {
    topo.gateway = fabric.add_node(NodeKind::kRouter, "gateway");
    topo.internet = fabric.add_node(NodeKind::kHost, "internet");
    fabric.add_link(topo.gateway, topo.internet, cfg.internet_bps,
                    cfg.link_delay);
    for (NetNodeId core : topo.core_switches) {
      fabric.add_link(core, topo.gateway, cfg.fabric_link_bps, cfg.link_delay);
    }
  }
  return topo;
}

Topology build_single_rack(Fabric& fabric, int hosts, double host_link_bps,
                           sim::Duration link_delay) {
  PICLOUD_CHECK_GT(hosts, 0) << "single-rack host count";
  Topology topo;
  topo.kind = "single-rack";
  NetNodeId tor = fabric.add_node(NodeKind::kSwitch, "rack-0-tor");
  topo.tor_switches.push_back(tor);
  topo.gateway = fabric.add_node(NodeKind::kRouter, "gateway");
  topo.internet = fabric.add_node(NodeKind::kHost, "internet");
  fabric.add_link(tor, topo.gateway, host_link_bps * 10, link_delay);
  fabric.add_link(topo.gateway, topo.internet, host_link_bps, link_delay);
  for (int h = 0; h < hosts; ++h) {
    NetNodeId host =
        fabric.add_node(NodeKind::kHost, util::format("pi-r0-%02d", h));
    fabric.add_link(host, tor, host_link_bps, link_delay);
    topo.hosts.push_back(host);
    topo.host_rack.push_back(0);
  }
  return topo;
}

TopologyAnalysis analyze_topology(Fabric& fabric, const Topology& topo) {
  TopologyAnalysis out;
  const size_t n = topo.hosts.size();
  if (n == 0) return out;

  // Hop statistics via BFS. All pairs up to 128 hosts (identical results to
  // the original exhaustive scan); above that, a deterministic evenly-strided
  // sample of sources against all destinations — a k=16 fat-tree would
  // otherwise need ~1M BFS runs. Generated topologies are layer-symmetric,
  // so strided sources cover every (pod, edge, host-slot) role class.
  out.fully_connected = true;
  double hop_sum = 0;
  size_t pair_count = 0;
  constexpr size_t kExhaustiveHostLimit = 128;
  const size_t stride = n <= kExhaustiveHostLimit
                            ? 1
                            : (n + kExhaustiveHostLimit - 1) /
                                  kExhaustiveHostLimit;
  for (size_t i = 0; i < n; i += stride) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      auto path = fabric.shortest_path(topo.hosts[i], topo.hosts[j]);
      if (path.empty()) {
        out.fully_connected = false;
        continue;
      }
      hop_sum += static_cast<double>(path.size());
      out.max_hop_count =
          std::max(out.max_hop_count, static_cast<int>(path.size()));
      ++pair_count;
    }
  }
  out.avg_hop_count = pair_count > 0 ? hop_sum / static_cast<double>(pair_count) : 0;

  // Oversubscription at the edge (ToR) layer: host-facing capacity over
  // upstream capacity, worst case across switches.
  for (NetNodeId tor : topo.tor_switches) {
    double down = 0;
    double up = 0;
    for (LinkId lid : fabric.node(tor).out_links) {
      const DirectedLink& l = fabric.link(lid);
      if (fabric.node(l.to).kind == NodeKind::kHost) {
        down += l.capacity_bps;
      } else {
        up += l.capacity_bps;
      }
    }
    if (up > 0) out.oversubscription = std::max(out.oversubscription, down / up);
  }

  // Measured bisection bandwidth: pair host i with host i + n/2 and read the
  // aggregate max-min rate the fabric allocates. Measured under a
  // congestion-aware multipath routing policy — single-path routing would
  // collapse a fat-tree's core onto one path, understating the fabric (the
  // PiCloud is SDN-ready precisely so multipath policies are possible).
  SdnController bisection_router(fabric.simulation(),
                                 SdnPolicy::kLeastCongested);
  RoutingProvider* previous_routing = fabric.routing();
  fabric.set_routing(&bisection_router);
  size_t half = n / 2;
  std::vector<FlowId> flows;
  for (size_t i = 0; i < half; ++i) {
    FlowSpec spec;
    spec.src = topo.hosts[i];
    spec.dst = topo.hosts[i + half];
    spec.bytes = 1e15;  // effectively infinite; cancelled below
    flows.push_back(fabric.start_flow(std::move(spec)));
  }
  double total_rate = 0;
  for (FlowId f : flows) total_rate += fabric.flow_rate_bps(f);
  out.bisection_bps = total_rate;
  for (FlowId f : flows) fabric.cancel_flow(f);
  fabric.set_routing(previous_routing);

  size_t switches = 0;
  for (size_t i = 0; i < fabric.node_count(); ++i) {
    if (fabric.node(static_cast<NetNodeId>(i)).kind == NodeKind::kSwitch) {
      ++switches;
    }
  }
  out.switch_count = switches;
  out.link_count = fabric.link_count() / 2;
  return out;
}

}  // namespace picloud::net
