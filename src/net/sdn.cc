#include "net/sdn.h"

#include <algorithm>
#include <cassert>


namespace picloud::net {

void FlowTable::install(NetNodeId src, NetNodeId dst, LinkId out_link,
                        sim::SimTime now) {
  FlowRule rule;
  rule.src = src;
  rule.dst = dst;
  rule.out_link = out_link;
  rule.last_used = now;
  rules_[{src, dst}] = rule;
}

std::optional<LinkId> FlowTable::lookup(NetNodeId src, NetNodeId dst,
                                        sim::SimTime now) {
  auto it = rules_.find({src, dst});
  if (it == rules_.end()) return std::nullopt;
  it->second.last_used = now;
  ++it->second.hits;
  return it->second.out_link;
}

void FlowTable::remove(NetNodeId src, NetNodeId dst) {
  rules_.erase({src, dst});
}

size_t FlowTable::remove_by_link(LinkId link) {
  size_t evicted = 0;
  for (auto it = rules_.begin(); it != rules_.end();) {
    if (it->second.out_link == link) {
      it = rules_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

size_t FlowTable::evict_idle(sim::SimTime now, sim::Duration idle_timeout) {
  size_t evicted = 0;
  for (auto it = rules_.begin(); it != rules_.end();) {
    if (now - it->second.last_used > idle_timeout) {
      it = rules_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

const char* sdn_policy_name(SdnPolicy policy) {
  switch (policy) {
    case SdnPolicy::kShortestPath: return "shortest-path";
    case SdnPolicy::kEcmp: return "ecmp";
    case SdnPolicy::kLeastCongested: return "least-congested";
  }
  return "?";
}

SdnController::SdnController(sim::Simulation& sim, SdnPolicy policy,
                             sim::Duration rule_idle_timeout)
    : sim_(sim), policy_(policy), rule_idle_timeout_(rule_idle_timeout) {
  util::MetricsRegistry& m = sim_.metrics();
  packet_ins_ = &m.counter("net.sdn.packet_ins");
  table_hits_ = &m.counter("net.sdn.table_hits");
  rules_installed_ = &m.counter("net.sdn.rules_installed");
  rules_evicted_ = &m.counter("net.sdn.rules_evicted");
  reroutes_ = &m.counter("net.sdn.reroutes");
}

std::optional<std::vector<LinkId>> SdnController::follow_rules(
    Fabric& fabric, NetNodeId src, NetNodeId dst) {
  std::vector<LinkId> path;
  // First hop: the host's access link (hosts are single-homed; pick the
  // first live uplink).
  NetNodeId current = src;
  const auto& src_links = fabric.node(src).out_links;
  LinkId access = kInvalidLink;
  for (LinkId lid : src_links) {
    if (fabric.link(lid).up) {
      access = lid;
      break;
    }
  }
  if (access == kInvalidLink) return std::nullopt;
  path.push_back(access);
  current = fabric.link(access).to;

  // Walk switch tables until the destination (bounded by the node count to
  // catch rule loops).
  for (size_t hop = 0; hop < fabric.node_count(); ++hop) {
    if (current == dst) return path;
    auto table_it = tables_.find(current);
    if (table_it == tables_.end()) return std::nullopt;
    auto out = table_it->second.lookup(src, dst, sim_.now());
    if (!out) return std::nullopt;
    const DirectedLink& l = fabric.link(*out);
    if (!l.up) {
      // Stale rule over a dead link: invalidate and miss.
      table_it->second.remove(src, dst);
      return std::nullopt;
    }
    path.push_back(*out);
    current = l.to;
  }
  return std::nullopt;  // loop
}

std::vector<LinkId> SdnController::compute_path(Fabric& fabric, NetNodeId src,
                                                NetNodeId dst) {
  switch (policy_) {
    case SdnPolicy::kShortestPath:
      return fabric.shortest_path(src, dst);
    case SdnPolicy::kEcmp: {
      auto paths = fabric.equal_cost_paths(src, dst);
      if (paths.empty()) return {};
      // Deterministic 5-tuple-style hash on the (src, dst) pair.
      std::uint64_t h = (std::uint64_t{src} << 32) | dst;
      h ^= h >> 33;
      h *= 0xFF51AFD7ED558CCDULL;
      h ^= h >> 33;
      return paths[h % paths.size()];
    }
    case SdnPolicy::kLeastCongested: {
      auto paths = fabric.equal_cost_paths(src, dst);
      if (paths.empty()) return {};
      double best_util = 2.0;
      size_t best = 0;
      for (size_t i = 0; i < paths.size(); ++i) {
        double peak = 0;
        for (LinkId lid : paths[i]) {
          peak = std::max(peak, fabric.link(lid).utilization());
        }
        if (peak < best_util) {
          best_util = peak;
          best = i;
        }
      }
      return paths[best];
    }
  }
  return {};
}

std::vector<LinkId> SdnController::route(Fabric& fabric, NetNodeId src,
                                         NetNodeId dst, FlowId /*flow*/) {
  if (auto cached = follow_rules(fabric, src, dst)) {
    table_hits_->inc();
    return *cached;
  }
  packet_ins_->inc();
  std::vector<LinkId> path = compute_path(fabric, src, dst);
  if (path.empty()) return path;
  install_path(fabric, src, dst, path);
  return path;
}

void SdnController::install_path(Fabric& fabric, NetNodeId src, NetNodeId dst,
                                 const std::vector<LinkId>& path) {
  // A rule goes on every switch the path traverses (not the end hosts).
  for (LinkId lid : path) {
    NetNodeId from = fabric.link(lid).from;
    if (fabric.node(from).kind == NodeKind::kHost) continue;
    tables_[from].install(src, dst, lid, sim_.now());
    rules_installed_->inc();
  }
}

void SdnController::on_link_changed(LinkId link) {
  for (auto& [node, table] : tables_) {
    rules_evicted_->inc(table.remove_by_link(link));
  }
}

void SdnController::flush_tables() {
  tables_.clear();
}

void SdnController::evict_idle(sim::SimTime now) {
  for (auto& [node, table] : tables_) {
    rules_evicted_->inc(table.evict_idle(now, rule_idle_timeout_));
  }
}

size_t SdnController::total_rules() const {
  size_t total = 0;
  for (const auto& [node, table] : tables_) total += table.size();
  return total;
}

void SpanningTreeRouting::rebuild(const Fabric& fabric) {
  parent_link_.assign(fabric.node_count(), kInvalidLink);
  blocked_.clear();
  if (fabric.node_count() == 0) {
    valid_ = true;
    return;
  }
  // BFS tree from the lowest node id over up links; tie-break by link id —
  // deterministic, like lowest-bridge/port-id elections.
  std::set<LinkId> tree_links;
  std::vector<bool> visited(fabric.node_count(), false);
  std::vector<NetNodeId> queue{0};
  visited[0] = true;
  for (size_t head = 0; head < queue.size(); ++head) {
    NetNodeId u = queue[head];
    for (LinkId lid : fabric.node(u).out_links) {
      const DirectedLink& l = fabric.link(lid);
      if (!l.up || visited[l.to]) continue;
      visited[l.to] = true;
      parent_link_[l.to] = fabric.reverse(lid);  // child -> parent direction
      tree_links.insert(lid);
      tree_links.insert(fabric.reverse(lid));
      queue.push_back(l.to);
    }
  }
  for (size_t lid = 0; lid < fabric.link_count(); ++lid) {
    if (tree_links.count(static_cast<LinkId>(lid)) == 0) {
      blocked_.insert(static_cast<LinkId>(lid));
    }
  }
  valid_ = true;
}

std::vector<LinkId> SpanningTreeRouting::route(Fabric& fabric, NetNodeId src,
                                               NetNodeId dst, FlowId /*flow*/) {
  if (src == dst || src >= fabric.node_count() || dst >= fabric.node_count()) {
    return {};
  }
  if (!valid_ || parent_link_.size() != fabric.node_count()) rebuild(fabric);

  // Splice the two root-ward spines at their lowest common ancestor.
  auto compute = [&]() -> std::vector<LinkId> {
    auto spine = [&](NetNodeId n) {
      std::vector<NetNodeId> chain{n};
      while (parent_link_[chain.back()] != kInvalidLink) {
        chain.push_back(fabric.link(parent_link_[chain.back()]).to);
      }
      return chain;
    };
    std::vector<NetNodeId> up_src = spine(src);
    std::vector<NetNodeId> up_dst = spine(dst);
    if (up_src.back() != up_dst.back()) return {};  // different components
    size_t i = up_src.size();
    size_t j = up_dst.size();
    while (i > 0 && j > 0 && up_src[i - 1] == up_dst[j - 1]) {
      --i;
      --j;
    }
    std::vector<LinkId> path;
    for (size_t k = 0; k < i; ++k) path.push_back(parent_link_[up_src[k]]);
    for (size_t k = j; k-- > 0;) {
      path.push_back(fabric.reverse(parent_link_[up_dst[k]]));
    }
    return path;
  };

  std::vector<LinkId> path = compute();
  if (path.empty() || !fabric.path_up(path)) {
    // A tree link died: re-converge (as real spanning tree does, slowly)
    // and try once more.
    rebuild(fabric);
    path = compute();
    if (!path.empty() && !fabric.path_up(path)) path.clear();
  }
  return path;
}

}  // namespace picloud::net
