// Network addressing: IPv4 addresses and subnets.
//
// The pimaster implements "customised IP and naming policies through DHCP
// and DNS" (paper §II-A); those services need real address arithmetic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace picloud::net {

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  static std::optional<Ipv4Addr> parse(const std::string& dotted);
  static constexpr Ipv4Addr any() { return Ipv4Addr(0); }
  static constexpr Ipv4Addr broadcast() { return Ipv4Addr(0xFFFFFFFFu); }

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool is_any() const { return value_ == 0; }
  constexpr bool is_broadcast() const { return value_ == 0xFFFFFFFFu; }

  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  // Next address (for allocator iteration).
  constexpr Ipv4Addr next() const { return Ipv4Addr(value_ + 1); }

 private:
  std::uint32_t value_ = 0;
};

// A CIDR subnet, e.g. 10.0.1.0/24.
class Subnet {
 public:
  constexpr Subnet() = default;
  constexpr Subnet(Ipv4Addr base, int prefix_len)
      : base_(Ipv4Addr(base.value() & mask_for(prefix_len))),
        prefix_len_(prefix_len) {}

  static std::optional<Subnet> parse(const std::string& cidr);  // "10.0.1.0/24"

  constexpr Ipv4Addr base() const { return base_; }
  constexpr int prefix_len() const { return prefix_len_; }
  constexpr std::uint32_t mask() const { return mask_for(prefix_len_); }

  constexpr bool contains(Ipv4Addr a) const {
    return (a.value() & mask()) == base_.value();
  }
  // First/last assignable host address (network and broadcast excluded).
  constexpr Ipv4Addr first_host() const { return Ipv4Addr(base_.value() + 1); }
  constexpr Ipv4Addr last_host() const {
    return Ipv4Addr((base_.value() | ~mask()) - 1);
  }
  constexpr std::uint32_t host_capacity() const {
    std::uint32_t size = ~mask();
    return size >= 2 ? size - 1 : 0;  // minus network & broadcast
  }
  constexpr Ipv4Addr broadcast_addr() const {
    return Ipv4Addr(base_.value() | ~mask());
  }

  std::string to_string() const;

  constexpr auto operator<=>(const Subnet&) const = default;

 private:
  static constexpr std::uint32_t mask_for(int prefix_len) {
    return prefix_len <= 0 ? 0u
         : prefix_len >= 32 ? 0xFFFFFFFFu
         : ~((1u << (32 - prefix_len)) - 1);
  }
  Ipv4Addr base_;
  int prefix_len_ = 0;
};

}  // namespace picloud::net
