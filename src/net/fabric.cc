#include "net/fabric.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/check.h"
#include "util/faults.h"
#include "util/logging.h"

namespace picloud::net {

namespace {
// Below this many remaining bytes a flow is considered drained (guards
// against floating-point residue keeping a flow alive forever).
constexpr double kDrainEpsilonBytes = 1e-6;
}  // namespace

Fabric::Fabric(sim::Simulation& sim) : sim_(sim) {
  util::MetricsRegistry& m = sim_.metrics();
  flows_started_ = &m.counter("net.fabric.flows_started");
  flows_completed_ = &m.counter("net.fabric.flows_completed");
  flows_failed_ = &m.counter("net.fabric.flows_failed");
  flows_lost_ = &m.counter("net.fabric.flows_lost");
  reroutes_ = &m.counter("net.fabric.reroutes");
}

NetNodeId Fabric::add_node(NodeKind kind, std::string name) {
  NetNodeId id = static_cast<NetNodeId>(nodes_.size());
  nodes_.push_back(NetNode{id, kind, std::move(name), {}});
  return id;
}

std::pair<LinkId, LinkId> Fabric::add_link(NetNodeId a, NetNodeId b,
                                           double capacity_bps,
                                           sim::Duration delay) {
  PICLOUD_CHECK(a < nodes_.size() && b < nodes_.size() && a != b)
      << "add_link endpoints: a=" << a << " b=" << b;
  PICLOUD_CHECK_GT(capacity_bps, 0) << "add_link capacity";
  LinkId ab = static_cast<LinkId>(links_.size());
  LinkId ba = ab + 1;
  links_.push_back(
      DirectedLink{ab, a, b, capacity_bps, delay, true, 0, 0, 0, 0, 0});
  links_.push_back(
      DirectedLink{ba, b, a, capacity_bps, delay, true, 0, 0, 0, 0, 0});
  nodes_[a].out_links.push_back(ab);
  nodes_[b].out_links.push_back(ba);
  return {ab, ba};
}

std::optional<NetNodeId> Fabric::find_node(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n.name == name) return n.id;
  }
  return std::nullopt;
}

LinkId Fabric::reverse(LinkId id) const {
  // Links are created in pairs: even id is a->b, odd id is b->a.
  return (id % 2 == 0) ? id + 1 : id - 1;
}

std::vector<LinkId> Fabric::shortest_path(NetNodeId src, NetNodeId dst) const {
  if (src == dst || src >= nodes_.size() || dst >= nodes_.size()) return {};
  std::vector<LinkId> via(nodes_.size(), kInvalidLink);
  std::vector<bool> visited(nodes_.size(), false);
  std::deque<NetNodeId> queue{src};
  visited[src] = true;
  while (!queue.empty()) {
    NetNodeId u = queue.front();
    queue.pop_front();
    if (u == dst) break;
    for (LinkId lid : nodes_[u].out_links) {
      const DirectedLink& l = links_[lid];
      if (!l.up || visited[l.to]) continue;
      visited[l.to] = true;
      via[l.to] = lid;
      queue.push_back(l.to);
    }
  }
  if (!visited[dst]) return {};
  std::vector<LinkId> path;
  for (NetNodeId u = dst; u != src; u = links_[via[u]].from) {
    path.push_back(via[u]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::vector<LinkId>> Fabric::equal_cost_paths(
    NetNodeId src, NetNodeId dst, size_t max_paths) const {
  std::vector<std::vector<LinkId>> out;
  if (src == dst || src >= nodes_.size() || dst >= nodes_.size()) return out;
  // BFS levels from src.
  constexpr int kUnreached = std::numeric_limits<int>::max();
  std::vector<int> dist(nodes_.size(), kUnreached);
  std::deque<NetNodeId> queue{src};
  dist[src] = 0;
  while (!queue.empty()) {
    NetNodeId u = queue.front();
    queue.pop_front();
    for (LinkId lid : nodes_[u].out_links) {
      const DirectedLink& l = links_[lid];
      if (!l.up || dist[l.to] != kUnreached) continue;
      dist[l.to] = dist[u] + 1;
      queue.push_back(l.to);
    }
  }
  if (dist[dst] == kUnreached) return out;
  // DFS over the shortest-path DAG, deterministic link order.
  std::vector<LinkId> current;
  std::function<void(NetNodeId)> dfs = [&](NetNodeId u) {
    if (out.size() >= max_paths) return;
    if (u == dst) {
      out.push_back(current);
      return;
    }
    for (LinkId lid : nodes_[u].out_links) {
      const DirectedLink& l = links_[lid];
      if (!l.up || dist[l.to] != dist[u] + 1) continue;
      current.push_back(lid);
      dfs(l.to);
      current.pop_back();
      if (out.size() >= max_paths) return;
    }
  };
  dfs(src);
  return out;
}

sim::Duration Fabric::path_delay(const std::vector<LinkId>& path) const {
  sim::Duration total = sim::Duration::zero();
  for (LinkId lid : path) total += links_[lid].delay;
  return total;
}

bool Fabric::path_up(const std::vector<LinkId>& path) const {
  for (LinkId lid : path) {
    if (!links_[lid].up) return false;
  }
  return true;
}

std::vector<LinkId> Fabric::route_flow(NetNodeId src, NetNodeId dst,
                                       FlowId id) {
  if (routing_ != nullptr) return routing_->route(*this, src, dst, id);
  return shortest_path(src, dst);
}

FlowId Fabric::start_flow(FlowSpec spec) {
  PICLOUD_CHECK(spec.src < nodes_.size() && spec.dst < nodes_.size())
      << "start_flow endpoints: src=" << spec.src << " dst=" << spec.dst;
  PICLOUD_CHECK_GE(spec.bytes, 0) << "start_flow size";
  FlowId id = next_flow_id_++;
  flows_started_->inc();

  if (spec.src == spec.dst) {
    // Loopback: no fabric involvement.
    FlowCallback cb = spec.on_complete;
    sim_.after(kLoopbackDelay, [cb, id]() {
      if (cb) cb(id, true);
    });
    flows_completed_->inc();
    return id;
  }

  std::vector<LinkId> path = route_flow(spec.src, spec.dst, id);
  if (path.empty()) {
    FlowCallback cb = spec.on_complete;
    sim_.after(sim::Duration::zero(), [cb, id]() {
      if (cb) cb(id, false);
    });
    flows_failed_->inc();
    if (routing_ != nullptr) routing_->on_flow_end(id);
    return id;
  }

  // Lossy-link chaos: each lossy hop gets an independent chance to drop the
  // flow at admission. The rng is consumed only when a lossy link is on the
  // path, so loss-free simulations keep bit-identical streams.
  for (LinkId lid : path) {
    double p = links_[lid].loss_p;
    if (p > 0 && loss_rng_.chance(p)) {
      FlowCallback cb = spec.on_complete;
      sim_.after(links_[lid].delay, [cb, id]() {
        if (cb) cb(id, false);
      });
      flows_failed_->inc();
      flows_lost_->inc();
      // Per-link drop odometer; sum(links.flows_dropped) == flows_lost is a
      // fuzzer invariant. The fault knob plants exactly that bug for the
      // harness's self-check.
      if (!util::FaultInjection::instance().skip_link_drop_accounting) {
        ++links_[lid].flows_dropped;
      }
      if (routing_ != nullptr) routing_->on_flow_end(id);
      return id;
    }
  }

  Flow flow;
  flow.id = id;
  flow.spec = std::move(spec);
  flow.path = std::move(path);
  flow.remaining_bytes = std::max(flow.spec.bytes, kDrainEpsilonBytes);
  flow.last_update = sim_.now();
  flows_.emplace(id, std::move(flow));
  reallocate();
  return id;
}

void Fabric::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  finish_flow(id, /*success=*/false);
}

std::vector<LinkId> Fabric::flow_path(FlowId id) const {
  auto it = flows_.find(id);
  return it != flows_.end() ? it->second.path : std::vector<LinkId>{};
}

double Fabric::flow_rate_bps(FlowId id) const {
  auto it = flows_.find(id);
  return it != flows_.end() ? it->second.rate_bps : 0.0;
}

// Runs once per flow per rate change — the fabric's hottest path.
// picloud-hot
void Fabric::settle(Flow& flow) {
  sim::Duration elapsed = sim_.now() - flow.last_update;
  if (elapsed > sim::Duration::zero() && flow.rate_bps > 0) {
    double sent = flow.rate_bps / 8.0 * elapsed.to_seconds();
    sent = std::min(sent, flow.remaining_bytes);
    flow.remaining_bytes -= sent;
    for (LinkId lid : flow.path) links_[lid].bytes_carried += sent;
  }
  flow.last_update = sim_.now();
}

void Fabric::reallocate() {
  // 1. Settle all flows to now.
  for (auto& [id, flow] : flows_) settle(flow);

  // 2. Progressive-filling max-min fair share.
  std::vector<double> residual(links_.size());
  std::vector<int> unfixed_count(links_.size(), 0);
  for (const auto& l : links_) residual[l.id] = l.capacity_bps;
  for (auto& [id, flow] : flows_) {
    flow.rate_bps = -1;  // unfixed marker
    for (LinkId lid : flow.path) ++unfixed_count[lid];
  }

  size_t unfixed = flows_.size();
  while (unfixed > 0) {
    // Find the bottleneck link: minimum fair share among loaded links.
    double best = std::numeric_limits<double>::infinity();
    LinkId best_link = kInvalidLink;
    for (const auto& l : links_) {
      if (unfixed_count[l.id] == 0) continue;
      double share = residual[l.id] / unfixed_count[l.id];
      if (share < best) {
        best = share;
        best_link = l.id;
      }
    }
    if (best_link == kInvalidLink) break;  // defensive; cannot happen
    // Floating-point residue can drive a residual slightly negative; a fixed
    // rate must never be, or the flow would look unfixed to later rounds.
    best = std::max(best, 0.0);
    // Fix every unfixed flow crossing the bottleneck at the fair share.
    for (auto& [id, flow] : flows_) {
      if (flow.rate_bps >= 0) continue;
      bool crosses = std::find(flow.path.begin(), flow.path.end(),
                               best_link) != flow.path.end();
      if (!crosses) continue;
      flow.rate_bps = best;
      --unfixed;
      for (LinkId lid : flow.path) {
        residual[lid] -= best;
        --unfixed_count[lid];
      }
    }
  }

  // 3. Refresh link allocation gauges.
  for (auto& l : links_) {
    l.allocated_bps = 0;
    l.active_flows = 0;
  }
  for (const auto& [id, flow] : flows_) {
    for (LinkId lid : flow.path) {
      links_[lid].allocated_bps += flow.rate_bps;
      links_[lid].active_flows += 1;
    }
  }

  // 4. Reschedule completion events. When a flow's rate is unchanged its
  // projected finish time is unchanged too (settle() moved last_update and
  // remaining consistently), so the existing event stays — this keeps event
  // churn proportional to the flows a change actually touched.
  for (auto& [id, flow] : flows_) {
    if (flow.completion_event != 0 && flow.rate_bps == flow.scheduled_rate) {
      continue;
    }
    if (flow.completion_event != 0) {
      sim_.cancel(flow.completion_event);
      flow.completion_event = 0;
    }
    flow.scheduled_rate = flow.rate_bps;
    if (flow.rate_bps <= 0) {
      // No capacity at all (fully saturated zero-residual path after a cut);
      // leave the flow parked — the next reallocate will retry.
      continue;
    }
    double seconds = flow.remaining_bytes * 8.0 / flow.rate_bps;
    FlowId fid = id;
    flow.completion_event =
        sim_.after(sim::Duration::seconds(seconds),
                   [this, fid]() { finish_flow(fid, /*success=*/true); });
  }
}

void Fabric::finish_flow(FlowId id, bool success) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  settle(flow);
  if (flow.completion_event != 0) sim_.cancel(flow.completion_event);
  FlowCallback cb = std::move(flow.spec.on_complete);
  flows_.erase(it);
  if (success) {
    flows_completed_->inc();
  } else {
    flows_failed_->inc();
  }
  if (routing_ != nullptr) routing_->on_flow_end(id);
  reallocate();
  if (cb) cb(id, success);
}

void Fabric::set_link_pair_loss(LinkId id, double loss_p) {
  PICLOUD_CHECK(loss_p >= 0 && loss_p <= 1) << "loss probability " << loss_p;
  LinkId a = id;
  LinkId b = reverse(id);
  links_[a].loss_p = loss_p;
  links_[b].loss_p = loss_p;
  PICLOUD_TRACE(sim_.trace(), "net.fabric",
                loss_p > 0 ? "link_loss_on" : "link_loss_off",
                {"from", nodes_[links_[a].from].name},
                {"to", nodes_[links_[a].to].name});
  if (loss_p > 0) {
    LOG_INFO("fabric", "link %s <-> %s lossy p=%.3f",
             nodes_[links_[a].from].name.c_str(),
             nodes_[links_[a].to].name.c_str(), loss_p);
  }
}

void Fabric::set_link_pair_up(LinkId id, bool up) {
  LinkId a = id;
  LinkId b = reverse(id);
  links_[a].up = up;
  links_[b].up = up;
  PICLOUD_TRACE(sim_.trace(), "net.fabric", up ? "link_up" : "link_down",
                {"from", nodes_[links_[a].from].name},
                {"to", nodes_[links_[a].to].name});
  LOG_INFO("fabric", "link %s <-> %s %s", nodes_[links_[a].from].name.c_str(),
           nodes_[links_[a].to].name.c_str(), up ? "up" : "DOWN");
  if (up) {
    reallocate();
    return;
  }
  // Reroute or fail the flows that crossed the dead pair.
  std::vector<FlowId> affected;
  for (const auto& [fid, flow] : flows_) {
    for (LinkId lid : flow.path) {
      if (lid == a || lid == b) {
        affected.push_back(fid);
        break;
      }
    }
  }
  for (FlowId fid : affected) {
    auto it = flows_.find(fid);
    if (it == flows_.end()) continue;
    Flow& flow = it->second;
    settle(flow);
    std::vector<LinkId> new_path =
        route_flow(flow.spec.src, flow.spec.dst, fid);
    if (new_path.empty()) {
      finish_flow(fid, /*success=*/false);
    } else {
      flow.path = std::move(new_path);
      reroutes_->inc();
    }
  }
  reallocate();
}

double Fabric::max_link_utilization() const {
  double max_util = 0;
  for (const auto& l : links_) max_util = std::max(max_util, l.utilization());
  return max_util;
}

double Fabric::total_bytes_carried() const {
  double total = 0;
  for (const auto& l : links_) total += l.bytes_carried;
  return total;
}

}  // namespace picloud::net
