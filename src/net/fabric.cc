#include "net/fabric.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/check.h"
#include "util/faults.h"
#include "util/logging.h"

namespace picloud::net {

namespace {
// Below this many remaining bytes a flow is considered drained (guards
// against floating-point residue keeping a flow alive forever).
constexpr double kDrainEpsilonBytes = 1e-6;
}  // namespace

Fabric::Fabric(sim::Simulation& sim) : sim_(sim) {
  util::MetricsRegistry& m = sim_.metrics();
  flows_started_ = &m.counter("net.fabric.flows_started");
  flows_completed_ = &m.counter("net.fabric.flows_completed");
  flows_failed_ = &m.counter("net.fabric.flows_failed");
  flows_lost_ = &m.counter("net.fabric.flows_lost");
  reroutes_ = &m.counter("net.fabric.reroutes");
}

void Fabric::reserve_topology(size_t nodes, size_t link_pairs) {
  nodes_.reserve(nodes_.size() + nodes);
  links_.reserve(links_.size() + 2 * link_pairs);
  link_flows_.reserve(links_.size() + 2 * link_pairs);
}

NetNodeId Fabric::add_node(NodeKind kind, std::string name) {
  NetNodeId id = static_cast<NetNodeId>(nodes_.size());
  nodes_.push_back(NetNode{id, kind, std::move(name), {}});
  return id;
}

std::pair<LinkId, LinkId> Fabric::add_link(NetNodeId a, NetNodeId b,
                                           double capacity_bps,
                                           sim::Duration delay) {
  PICLOUD_CHECK(a < nodes_.size() && b < nodes_.size() && a != b)
      << "add_link endpoints: a=" << a << " b=" << b;
  PICLOUD_CHECK_GT(capacity_bps, 0) << "add_link capacity";
  LinkId ab = static_cast<LinkId>(links_.size());
  LinkId ba = ab + 1;
  links_.push_back(
      DirectedLink{ab, a, b, capacity_bps, delay, true, 0, 0, 0, 0, 0});
  links_.push_back(
      DirectedLink{ba, b, a, capacity_bps, delay, true, 0, 0, 0, 0, 0});
  nodes_[a].out_links.push_back(ab);
  nodes_[b].out_links.push_back(ba);
  link_flows_.resize(links_.size());
  return {ab, ba};
}

std::optional<NetNodeId> Fabric::find_node(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n.name == name) return n.id;
  }
  return std::nullopt;
}

LinkId Fabric::reverse(LinkId id) const {
  // Links are created in pairs: even id is a->b, odd id is b->a.
  return (id % 2 == 0) ? id + 1 : id - 1;
}

std::vector<LinkId> Fabric::shortest_path(NetNodeId src, NetNodeId dst) const {
  if (src == dst || src >= nodes_.size() || dst >= nodes_.size()) return {};
  std::vector<LinkId> via(nodes_.size(), kInvalidLink);
  std::vector<bool> visited(nodes_.size(), false);
  std::deque<NetNodeId> queue{src};
  visited[src] = true;
  while (!queue.empty()) {
    NetNodeId u = queue.front();
    queue.pop_front();
    if (u == dst) break;
    for (LinkId lid : nodes_[u].out_links) {
      const DirectedLink& l = links_[lid];
      if (!l.up || visited[l.to]) continue;
      visited[l.to] = true;
      via[l.to] = lid;
      queue.push_back(l.to);
    }
  }
  if (!visited[dst]) return {};
  std::vector<LinkId> path;
  for (NetNodeId u = dst; u != src; u = links_[via[u]].from) {
    path.push_back(via[u]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::vector<LinkId>> Fabric::equal_cost_paths(
    NetNodeId src, NetNodeId dst, size_t max_paths) const {
  std::vector<std::vector<LinkId>> out;
  if (src == dst || src >= nodes_.size() || dst >= nodes_.size()) return out;
  // BFS levels from src.
  constexpr int kUnreached = std::numeric_limits<int>::max();
  std::vector<int> dist(nodes_.size(), kUnreached);
  std::deque<NetNodeId> queue{src};
  dist[src] = 0;
  while (!queue.empty()) {
    NetNodeId u = queue.front();
    queue.pop_front();
    for (LinkId lid : nodes_[u].out_links) {
      const DirectedLink& l = links_[lid];
      if (!l.up || dist[l.to] != kUnreached) continue;
      dist[l.to] = dist[u] + 1;
      queue.push_back(l.to);
    }
  }
  if (dist[dst] == kUnreached) return out;
  // DFS over the shortest-path DAG, deterministic link order.
  std::vector<LinkId> current;
  std::function<void(NetNodeId)> dfs = [&](NetNodeId u) {
    if (out.size() >= max_paths) return;
    if (u == dst) {
      out.push_back(current);
      return;
    }
    for (LinkId lid : nodes_[u].out_links) {
      const DirectedLink& l = links_[lid];
      if (!l.up || dist[l.to] != dist[u] + 1) continue;
      current.push_back(lid);
      dfs(l.to);
      current.pop_back();
      if (out.size() >= max_paths) return;
    }
  };
  dfs(src);
  return out;
}

sim::Duration Fabric::path_delay(const std::vector<LinkId>& path) const {
  sim::Duration total = sim::Duration::zero();
  for (LinkId lid : path) total += links_[lid].delay;
  return total;
}

bool Fabric::path_up(const std::vector<LinkId>& path) const {
  for (LinkId lid : path) {
    if (!links_[lid].up) return false;
  }
  return true;
}

std::vector<LinkId> Fabric::route_flow(NetNodeId src, NetNodeId dst,
                                       FlowId id) {
  if (routing_ != nullptr) return routing_->route(*this, src, dst, id);
  return shortest_path(src, dst);
}

FlowId Fabric::start_flow(FlowSpec spec) {
  PICLOUD_CHECK(spec.src < nodes_.size() && spec.dst < nodes_.size())
      << "start_flow endpoints: src=" << spec.src << " dst=" << spec.dst;
  PICLOUD_CHECK_GE(spec.bytes, 0) << "start_flow size";
  FlowId id = next_flow_id_++;
  flows_started_->inc();

  if (spec.src == spec.dst) {
    // Loopback: no fabric involvement.
    FlowCallback cb = spec.on_complete;
    sim_.after(kLoopbackDelay, [cb, id]() {
      if (cb) cb(id, true);
    });
    flows_completed_->inc();
    return id;
  }

  std::vector<LinkId> path = route_flow(spec.src, spec.dst, id);
  if (path.empty()) {
    FlowCallback cb = spec.on_complete;
    sim_.after(sim::Duration::zero(), [cb, id]() {
      if (cb) cb(id, false);
    });
    flows_failed_->inc();
    if (routing_ != nullptr) routing_->on_flow_end(id);
    return id;
  }

  // Lossy-link chaos: each lossy hop gets an independent chance to drop the
  // flow at admission. The rng is consumed only when a lossy link is on the
  // path, so loss-free simulations keep bit-identical streams.
  for (LinkId lid : path) {
    double p = links_[lid].loss_p;
    if (p > 0 && loss_rng_.chance(p)) {
      FlowCallback cb = spec.on_complete;
      sim_.after(links_[lid].delay, [cb, id]() {
        if (cb) cb(id, false);
      });
      flows_failed_->inc();
      flows_lost_->inc();
      // Per-link drop odometer; sum(links.flows_dropped) == flows_lost is a
      // fuzzer invariant. The fault knob plants exactly that bug for the
      // harness's self-check.
      if (!util::FaultInjection::instance().skip_link_drop_accounting) {
        ++links_[lid].flows_dropped;
      }
      if (routing_ != nullptr) routing_->on_flow_end(id);
      return id;
    }
  }

  Flow flow;
  flow.id = id;
  flow.spec = std::move(spec);
  flow.path = std::move(path);
  flow.remaining_bytes = std::max(flow.spec.bytes, kDrainEpsilonBytes);
  flow.last_update = sim_.now();
  Flow& stored = flows_.emplace(id, std::move(flow)).first->second;
  for (LinkId lid : stored.path) link_flows_[lid].insert(id);

  if (mode_ == SolverMode::kIncremental && pending_dirty_.empty() &&
      path_uncontended(stored.path)) {
    // Constant tier: no link on the path carries another flow, so the new
    // flow runs at the path's narrowest capacity and nothing else moves.
    // This equals what progressive filling computes for a singleton
    // component (first bottleneck round fixes the flow at min capacity),
    // so rates stay bit-identical to the oracle.
    ++stats_.solves;
    ++stats_.fast_path;
    settle_all();
    double rate = std::numeric_limits<double>::infinity();
    for (LinkId lid : stored.path) {
      rate = std::min(rate, links_[lid].capacity_bps);
    }
    stored.rate_bps = std::max(rate, 0.0);
    for (LinkId lid : stored.path) {
      links_[lid].allocated_bps = stored.rate_bps;
      links_[lid].active_flows = 1;
    }
    schedule_completion(stored);
  } else {
    resolve_after_change(stored.path);
  }
  return id;
}

void Fabric::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  finish_flow(id, /*success=*/false);
}

std::vector<LinkId> Fabric::flow_path(FlowId id) const {
  auto it = flows_.find(id);
  return it != flows_.end() ? it->second.path : std::vector<LinkId>{};
}

double Fabric::flow_rate_bps(FlowId id) const {
  auto it = flows_.find(id);
  return it != flows_.end() ? it->second.rate_bps : 0.0;
}

// Runs once per flow per rate change — the fabric's hottest path.
// picloud-hot
void Fabric::settle(Flow& flow) {
  sim::Duration elapsed = sim_.now() - flow.last_update;
  if (elapsed > sim::Duration::zero() && flow.rate_bps > 0) {
    double sent = flow.rate_bps / 8.0 * elapsed.to_seconds();
    sent = std::min(sent, flow.remaining_bytes);
    flow.remaining_bytes -= sent;
    for (LinkId lid : flow.path) links_[lid].bytes_carried += sent;
  }
  flow.last_update = sim_.now();
}

void Fabric::settle_all() {
  for (auto& [id, flow] : flows_) settle(flow);
}

bool Fabric::path_uncontended(const std::vector<LinkId>& path) const {
  for (LinkId lid : path) {
    if (link_flows_[lid].size() != 1) return false;
  }
  return true;
}

void Fabric::schedule_completion(Flow& flow) {
  // When a flow's rate is unchanged its projected finish time is unchanged
  // too (settle() moved last_update and remaining consistently), so the
  // existing event stays — this keeps event churn proportional to the flows
  // a change actually touched.
  if (flow.completion_event != 0 && flow.rate_bps == flow.scheduled_rate) {
    return;
  }
  if (flow.completion_event != 0) {
    sim_.cancel(flow.completion_event);
    flow.completion_event = 0;
  }
  flow.scheduled_rate = flow.rate_bps;
  if (flow.rate_bps <= 0) {
    // No capacity at all (fully saturated zero-residual path after a cut);
    // leave the flow parked — the next solve will retry.
    return;
  }
  double seconds = flow.remaining_bytes * 8.0 / flow.rate_bps;
  FlowId fid = flow.id;
  flow.completion_event =
      sim_.after(sim::Duration::seconds(seconds),
                 [this, fid]() { finish_flow(fid, /*success=*/true); });
}

void Fabric::resolve_after_change(const std::vector<LinkId>& seed) {
  pending_dirty_.insert(pending_dirty_.end(), seed.begin(), seed.end());
  ++stats_.solves;
  settle_all();
  if (mode_ == SolverMode::kFullOracle) {
    pending_dirty_.clear();
    run_filling_full();
  } else {
    solve_component();
    pending_dirty_.clear();
  }
}

void Fabric::reallocate_full() {
  ++stats_.solves;
  pending_dirty_.clear();
  settle_all();
  run_filling_full();
}

// Incremental max-min: progressive filling restricted to the connected
// component of links reachable from the dirty set through shared flows.
// Components share no links or flows, so a component-local fill computes
// exactly the values a whole-fabric fill would (same divisions on the same
// operands, same ascending-id tie-breaks) — flows outside keep their rates
// and their scheduled completion events bit-for-bit.
// picloud-hot
void Fabric::solve_component() {
  ++stats_.component_solves;
  if (++epoch_ == 0) {
    // Stamp wrap (once per 2^32 solves): clear stale marks and restart.
    std::fill(link_epoch_.begin(), link_epoch_.end(), 0u);
    for (auto& [id, flow] : flows_) flow.mark_epoch = 0;
    epoch_ = 1;
  }
  link_epoch_.resize(links_.size(), 0u);
  residual_.resize(links_.size());
  unfixed_.resize(links_.size());
  comp_links_.clear();
  comp_flows_.clear();
  bfs_stack_.clear();

  // Closure: alternate links -> flows crossing them -> those flows' links.
  for (LinkId lid : pending_dirty_) {
    if (link_epoch_[lid] == epoch_) continue;
    link_epoch_[lid] = epoch_;
    comp_links_.push_back(lid);
    bfs_stack_.push_back(lid);
  }
  while (!bfs_stack_.empty()) {
    LinkId lid = bfs_stack_.back();
    bfs_stack_.pop_back();
    for (FlowId fid : link_flows_[lid]) {
      Flow& flow = flows_.find(fid)->second;
      if (flow.mark_epoch == epoch_) continue;
      flow.mark_epoch = epoch_;
      comp_flows_.push_back(&flow);
      for (LinkId pl : flow.path) {
        if (link_epoch_[pl] == epoch_) continue;
        link_epoch_[pl] = epoch_;
        comp_links_.push_back(pl);
        bfs_stack_.push_back(pl);
      }
    }
  }
  // Ascending flow id everywhere below, matching the oracle's map order.
  std::sort(comp_flows_.begin(), comp_flows_.end(),
            [](const Flow* a, const Flow* b) { return a->id < b->id; });
  stats_.component_links += comp_links_.size();
  stats_.component_flows += comp_flows_.size();

  for (LinkId lid : comp_links_) {
    residual_[lid] = links_[lid].capacity_bps;
    unfixed_[lid] = 0;
  }
  for (Flow* flow : comp_flows_) {
    flow->rate_bps = -1;  // unfixed marker
    for (LinkId lid : flow->path) ++unfixed_[lid];
  }

  // Bottleneck search via a lazy-invalidation min-heap: every time a link's
  // (residual, unfixed) pair changes we push a fresh (share, id) entry; a
  // popped entry is discarded unless it still equals the live share. The
  // live minimum is always present, so pops surface the same
  // (min share, min id) the oracle's whole-table scan selects.
  share_heap_.clear();
  auto heap_push = [this](LinkId lid) {
    share_heap_.emplace_back(residual_[lid] / unfixed_[lid], lid);
    std::push_heap(share_heap_.begin(), share_heap_.end(), std::greater<>{});
    ++stats_.heap_ops;
  };
  for (LinkId lid : comp_links_) {
    if (unfixed_[lid] > 0) heap_push(lid);
  }
  size_t unfixed_flows = comp_flows_.size();
  while (unfixed_flows > 0) {
    LinkId best_link = kInvalidLink;
    double best = 0;
    while (!share_heap_.empty()) {
      auto [share, lid] = share_heap_.front();
      std::pop_heap(share_heap_.begin(), share_heap_.end(), std::greater<>{});
      share_heap_.pop_back();
      ++stats_.heap_ops;
      if (unfixed_[lid] == 0) continue;  // fully fixed since pushed
      if (residual_[lid] / unfixed_[lid] != share) continue;  // stale entry
      best_link = lid;
      best = share;
      break;
    }
    if (best_link == kInvalidLink) break;  // defensive; cannot happen
    // Floating-point residue can drive a residual slightly negative; a fixed
    // rate must never be, or the flow would look unfixed to later rounds.
    best = std::max(best, 0.0);
    // Fix every unfixed flow crossing the bottleneck at the fair share.
    for (FlowId fid : link_flows_[best_link]) {
      ++stats_.flow_visits;
      Flow& flow = flows_.find(fid)->second;
      if (flow.rate_bps >= 0) continue;
      flow.rate_bps = best;
      --unfixed_flows;
      for (LinkId lid : flow.path) {
        residual_[lid] -= best;
        if (--unfixed_[lid] > 0) heap_push(lid);
      }
    }
  }

  // Refresh gauges on component links only (closure: every flow crossing a
  // component link is a component flow, so the sums are complete).
  for (LinkId lid : comp_links_) {
    links_[lid].allocated_bps = 0;
    links_[lid].active_flows = 0;
  }
  for (Flow* flow : comp_flows_) {
    for (LinkId lid : flow->path) {
      links_[lid].allocated_bps += flow->rate_bps;
      links_[lid].active_flows += 1;
    }
  }
  for (Flow* flow : comp_flows_) schedule_completion(*flow);
}

// The reference oracle: whole-fabric progressive-filling max-min fair share.
// Kept verbatim from the original eager solver, except bottleneck rounds fix
// flows via the per-link flow sets instead of an O(flows) path scan (same
// flows, same ascending-id order, same arithmetic — bit-identical rates).
void Fabric::run_filling_full() {
  ++stats_.full_solves;
  residual_.assign(links_.size(), 0.0);
  unfixed_.assign(links_.size(), 0);
  for (const auto& l : links_) residual_[l.id] = l.capacity_bps;
  for (auto& [id, flow] : flows_) {
    flow.rate_bps = -1;  // unfixed marker
    for (LinkId lid : flow.path) ++unfixed_[lid];
  }

  size_t unfixed_flows = flows_.size();
  while (unfixed_flows > 0) {
    // Find the bottleneck link: minimum fair share among loaded links.
    double best = std::numeric_limits<double>::infinity();
    LinkId best_link = kInvalidLink;
    for (const auto& l : links_) {
      if (unfixed_[l.id] == 0) continue;
      ++stats_.link_scans;
      double share = residual_[l.id] / unfixed_[l.id];
      if (share < best) {
        best = share;
        best_link = l.id;
      }
    }
    if (best_link == kInvalidLink) break;  // defensive; cannot happen
    best = std::max(best, 0.0);
    for (FlowId fid : link_flows_[best_link]) {
      ++stats_.flow_visits;
      Flow& flow = flows_.find(fid)->second;
      if (flow.rate_bps >= 0) continue;
      flow.rate_bps = best;
      --unfixed_flows;
      for (LinkId lid : flow.path) {
        residual_[lid] -= best;
        --unfixed_[lid];
      }
    }
  }

  // Refresh link allocation gauges.
  for (auto& l : links_) {
    l.allocated_bps = 0;
    l.active_flows = 0;
  }
  for (const auto& [id, flow] : flows_) {
    for (LinkId lid : flow.path) {
      links_[lid].allocated_bps += flow.rate_bps;
      links_[lid].active_flows += 1;
    }
  }

  for (auto& [id, flow] : flows_) schedule_completion(flow);
}

void Fabric::finish_flow(FlowId id, bool success) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  settle(flow);
  if (flow.completion_event != 0) sim_.cancel(flow.completion_event);
  FlowCallback cb = std::move(flow.spec.on_complete);
  std::vector<LinkId> path = std::move(flow.path);
  flows_.erase(it);
  for (LinkId lid : path) link_flows_[lid].erase(id);
  if (success) {
    flows_completed_->inc();
  } else {
    flows_failed_->inc();
  }
  if (routing_ != nullptr) routing_->on_flow_end(id);

  bool links_now_idle = true;
  for (LinkId lid : path) {
    if (!link_flows_[lid].empty()) {
      links_now_idle = false;
      break;
    }
  }
  if (mode_ == SolverMode::kIncremental && pending_dirty_.empty() &&
      links_now_idle) {
    // Constant tier: the departed flow shared no link with anyone, so no
    // other rate can move — just settle and zero the path's gauges.
    ++stats_.solves;
    ++stats_.fast_path;
    settle_all();
    for (LinkId lid : path) {
      links_[lid].allocated_bps = 0;
      links_[lid].active_flows = 0;
    }
  } else {
    resolve_after_change(path);
  }
  if (cb) cb(id, success);
}

void Fabric::set_link_pair_loss(LinkId id, double loss_p) {
  PICLOUD_CHECK(loss_p >= 0 && loss_p <= 1) << "loss probability " << loss_p;
  LinkId a = id;
  LinkId b = reverse(id);
  links_[a].loss_p = loss_p;
  links_[b].loss_p = loss_p;
  PICLOUD_TRACE(sim_.trace(), "net.fabric",
                loss_p > 0 ? "link_loss_on" : "link_loss_off",
                {"from", nodes_[links_[a].from].name},
                {"to", nodes_[links_[a].to].name});
  if (loss_p > 0) {
    LOG_INFO("fabric", "link %s <-> %s lossy p=%.3f",
             nodes_[links_[a].from].name.c_str(),
             nodes_[links_[a].to].name.c_str(), loss_p);
  }
}

void Fabric::set_link_pair_up(LinkId id, bool up) {
  LinkId a = id;
  LinkId b = reverse(id);
  links_[a].up = up;
  links_[b].up = up;
  PICLOUD_TRACE(sim_.trace(), "net.fabric", up ? "link_up" : "link_down",
                {"from", nodes_[links_[a].from].name},
                {"to", nodes_[links_[a].to].name});
  LOG_INFO("fabric", "link %s <-> %s %s", nodes_[links_[a].from].name.c_str(),
           nodes_[links_[a].to].name.c_str(), up ? "up" : "DOWN");
  if (up) {
    resolve_after_change({a, b});
    return;
  }
  // Reroute or fail the flows that crossed the dead pair. The per-link flow
  // sets give the affected set directly; merged ascending it matches the
  // flow-id order the original whole-map scan produced.
  std::vector<FlowId> affected(link_flows_[a].begin(), link_flows_[a].end());
  affected.insert(affected.end(), link_flows_[b].begin(),
                  link_flows_[b].end());
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  for (FlowId fid : affected) {
    auto it = flows_.find(fid);
    if (it == flows_.end()) continue;
    Flow& flow = it->second;
    settle(flow);
    std::vector<LinkId> new_path =
        route_flow(flow.spec.src, flow.spec.dst, fid);
    if (new_path.empty()) {
      finish_flow(fid, /*success=*/false);
    } else {
      // Both the abandoned and the adopted links feed the dirty set; the
      // next solve (possibly a finish_flow-triggered one mid-loop) folds
      // them into its component.
      for (LinkId lid : flow.path) {
        link_flows_[lid].erase(fid);
        pending_dirty_.push_back(lid);
      }
      for (LinkId lid : new_path) {
        link_flows_[lid].insert(fid);
        pending_dirty_.push_back(lid);
      }
      flow.path = std::move(new_path);
      reroutes_->inc();
    }
  }
  resolve_after_change({a, b});
}

void Fabric::set_link_pair_capacity(LinkId id, double capacity_bps) {
  PICLOUD_CHECK_GT(capacity_bps, 0) << "set_link_pair_capacity";
  LinkId a = id;
  LinkId b = reverse(id);
  links_[a].capacity_bps = capacity_bps;
  links_[b].capacity_bps = capacity_bps;
  PICLOUD_TRACE(sim_.trace(), "net.fabric", "link_capacity",
                {"from", nodes_[links_[a].from].name},
                {"to", nodes_[links_[a].to].name});
  if (routing_ != nullptr) {
    routing_->on_link_changed(a);
    routing_->on_link_changed(b);
  }
  resolve_after_change({a, b});
}

std::vector<FlowId> Fabric::active_flow_ids() const {
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (const auto& [id, flow] : flows_) ids.push_back(id);
  return ids;
}

double Fabric::max_link_utilization() const {
  double max_util = 0;
  for (const auto& l : links_) max_util = std::max(max_util, l.utilization());
  return max_util;
}

double Fabric::total_bytes_carried() const {
  double total = 0;
  for (const auto& l : links_) total += l.bytes_carried;
  return total;
}

}  // namespace picloud::net
