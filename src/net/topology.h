// Topology builders for the PiCloud network (paper Fig. 2).
//
// The physical build: "Machines in the same rack are connected to the same
// Top of Rack (ToR) switch, which in turn connect to the rest of the topology
// through an OpenFlow-enabled aggregation switch" — a canonical multi-root
// tree — and "the PiCloud clusters can easily be re-cabled to form a fat-tree
// topology". Both cablings are provided, plus a single-rack layout for tests.
#pragma once

#include <string>
#include <vector>

#include "net/fabric.h"
#include "sim/time.h"

namespace picloud::net {

// The built topology: fabric node handles for every layer of Fig. 2.
struct Topology {
  std::string kind;  // "multi-root-tree", "fat-tree", "single-rack"

  std::vector<NetNodeId> hosts;     // index = host index, dense
  std::vector<int> host_rack;       // rack index per host
  std::vector<NetNodeId> tor_switches;   // edge layer, one per rack
  std::vector<NetNodeId> agg_switches;   // aggregation (OpenFlow) layer
  std::vector<NetNodeId> core_switches;  // fat-tree core (empty otherwise)
  NetNodeId gateway = kInvalidNode;   // university gateway / border router
  NetNodeId internet = kInvalidNode;  // the world beyond the gateway

  int rack_count() const { return static_cast<int>(tor_switches.size()); }
  std::vector<int> hosts_in_rack(int rack) const;
};

struct MultiRootTreeConfig {
  int racks = 4;           // the Glasgow build
  int hosts_per_rack = 14;
  int aggregation_switches = 2;  // multi-root: every ToR uplinks to each root
  double host_link_bps = 100e6;  // Pi Model B Ethernet
  double tor_uplink_bps = 1e9;
  double agg_uplink_bps = 1e9;   // aggregation -> gateway
  double internet_bps = 100e6;   // the School's uplink
  sim::Duration link_delay = sim::Duration::micros(50);
};

// Builds the paper's topology: hosts -> ToR -> aggregation roots -> gateway
// -> Internet.
Topology build_multi_root_tree(Fabric& fabric, const MultiRootTreeConfig& cfg);

struct FatTreeConfig {
  int k = 4;  // pods; k^3/4 hosts, full bisection bandwidth
  double host_link_bps = 100e6;
  double fabric_link_bps = 100e6;  // uniform fabric links (re-cabled PiCloud)
  sim::Duration link_delay = sim::Duration::micros(50);
  bool with_gateway = true;  // hang the gateway + Internet off the core
  double internet_bps = 100e6;
};

// Canonical k-ary fat-tree (Al-Fares et al.): k pods of k/2 edge and k/2
// aggregation switches, (k/2)^2 core switches, k/2 hosts per edge switch.
// Each edge switch is reported as one "rack". Requires even k >= 2.
Topology build_fat_tree(Fabric& fabric, const FatTreeConfig& cfg);

// One rack behind a single switch wired to a gateway — unit-test scale.
Topology build_single_rack(Fabric& fabric, int hosts,
                           double host_link_bps = 100e6,
                           sim::Duration link_delay = sim::Duration::micros(50));

// --- Topology analysis (Fig. 2 bench) ---------------------------------------

struct TopologyAnalysis {
  bool fully_connected = false;   // every host pair reachable
  double avg_hop_count = 0;       // mean shortest-path hops, host pairs
  int max_hop_count = 0;
  // Worst-case ratio of downstream host bandwidth to uplink capacity at any
  // switch layer (1.0 = non-blocking).
  double oversubscription = 0;
  // Capacity crossing a host bisection (min over sampled balanced cuts of
  // the aggregate rate achievable between the halves).
  double bisection_bps = 0;
  size_t switch_count = 0;
  size_t link_count = 0;  // full-duplex pairs
};

// Computes the analysis on the built topology. `bisection_pairs` host pairs
// are loaded simultaneously to measure achievable bisection throughput.
TopologyAnalysis analyze_topology(Fabric& fabric, const Topology& topo);

}  // namespace picloud::net
