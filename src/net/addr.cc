#include "net/addr.h"

#include "util/strings.h"

namespace picloud::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(const std::string& dotted) {
  auto parts = util::split(dotted, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& p : parts) {
    unsigned long long octet = 0;
    if (!util::parse_u64(p, &octet) || octet > 255) return std::nullopt;
    value = (value << 8) | static_cast<std::uint32_t>(octet);
  }
  return Ipv4Addr(value);
}

std::string Ipv4Addr::to_string() const {
  return util::format("%u.%u.%u.%u", (value_ >> 24) & 0xff,
                      (value_ >> 16) & 0xff, (value_ >> 8) & 0xff,
                      value_ & 0xff);
}

std::optional<Subnet> Subnet::parse(const std::string& cidr) {
  auto parts = util::split(cidr, '/');
  if (parts.size() != 2) return std::nullopt;
  auto base = Ipv4Addr::parse(parts[0]);
  unsigned long long prefix = 0;
  if (!base || !util::parse_u64(parts[1], &prefix) || prefix > 32) {
    return std::nullopt;
  }
  return Subnet(*base, static_cast<int>(prefix));
}

std::string Subnet::to_string() const {
  return util::format("%s/%d", base_.to_string().c_str(), prefix_len_);
}

}  // namespace picloud::net
