#include "net/network.h"

#include <string>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/logging.h"

namespace picloud::net {

Network::Network(sim::Simulation& sim, Fabric& fabric)
    : sim_(sim), fabric_(fabric) {}

void Network::bind_ip(Ipv4Addr ip, NetNodeId node) {
  PICLOUD_CHECK(!ip.is_any() && !ip.is_broadcast())
      << "bind_ip to reserved address " << ip.to_string();
  ip_to_node_[ip] = node;
}

void Network::unbind_ip(Ipv4Addr ip) { ip_to_node_.erase(ip); }

std::optional<NetNodeId> Network::resolve(Ipv4Addr ip) const {
  auto it = ip_to_node_.find(ip);
  if (it == ip_to_node_.end()) return std::nullopt;
  return it->second;
}

size_t Network::ips_on_node(NetNodeId node) const {
  size_t n = 0;
  for (const auto& [ip, nid] : ip_to_node_) {
    if (nid == node) ++n;
  }
  return n;
}

void Network::listen(Ipv4Addr ip, std::uint16_t port, Handler handler) {
  listeners_[{ip.value(), port}] = std::move(handler);
}

void Network::unlisten(Ipv4Addr ip, std::uint16_t port) {
  listeners_.erase({ip.value(), port});
}

bool Network::send(Message msg) {
  auto src_node = resolve(msg.src);
  if (!src_node) return false;
  ++sent_;

  if (msg.dst.is_broadcast()) {
    // Deliver a copy to every listener on the port, except the sender.
    // Collect first: transmit() may mutate listener state via callbacks.
    std::vector<Ipv4Addr> targets;
    for (const auto& [key, handler] : listeners_) {
      if (key.second != msg.dst_port) continue;
      Ipv4Addr ip(key.first);
      if (ip == msg.src) continue;
      targets.push_back(ip);
    }
    if (targets.empty()) {
      ++dropped_;
      return true;
    }
    for (Ipv4Addr target : targets) {
      auto dst_node = resolve(target);
      if (!dst_node) continue;
      Message copy = msg;
      copy.dst = target;
      transmit(*src_node, *dst_node, std::move(copy));
    }
    return true;
  }

  auto dst_node = resolve(msg.dst);
  if (!dst_node) {
    ++dropped_;
    LOG_DEBUG("net", "no route to host %s", msg.dst.to_string().c_str());
    return true;
  }
  transmit(*src_node, *dst_node, std::move(msg));
  return true;
}

void Network::transmit(NetNodeId src_node, NetNodeId dst_node, Message msg) {
  FlowSpec spec;
  spec.src = src_node;
  spec.dst = dst_node;
  spec.bytes = msg.wire_bytes();
  spec.on_complete = [this, msg = std::move(msg)](FlowId id, bool success) {
    auto delay_it = pending_delay_.find(id);
    sim::Duration delay = delay_it != pending_delay_.end()
                              ? delay_it->second
                              : Fabric::kLoopbackDelay;
    if (delay_it != pending_delay_.end()) pending_delay_.erase(delay_it);
    if (!success) {
      ++dropped_;
      return;
    }
    sim_.after(delay, [this, msg]() {
      // Delivery schedule point (DESIGN.md §13): in a default run the hub is
      // empty and the message is handed to its listener right here, exactly
      // where it always was. Under a model-checking strategy the delivery is
      // parked and the strategy picks its place in the interleaving.
      if (!sim_.schedule_points().active()) {
        deliver(msg);
        return;
      }
      sim::SchedulePoint point;
      point.kind = sim::SchedulePointKind::kDelivery;
      point.label = "deliver:" + msg.src.to_string() + ":" +
                    std::to_string(msg.src_port) + ">" + msg.dst.to_string() +
                    ":" + std::to_string(msg.dst_port);
      point.object = msg.dst.to_string();
      point.src_ip = msg.src.to_string();
      point.dst_ip = msg.dst.to_string();
      point.src_port = msg.src_port;
      point.dst_port = msg.dst_port;
      sim_.schedule_points().intercept(std::move(point),
                                       [this, msg]() { deliver(msg); });
    });
  };
  FlowId id = fabric_.start_flow(std::move(spec));
  // The flow is still registered until its completion event fires, so the
  // assigned path (and its propagation delay) is observable here.
  std::vector<LinkId> path = fabric_.flow_path(id);
  if (!path.empty()) pending_delay_[id] = fabric_.path_delay(path);
}

void Network::listen_node(NetNodeId node, std::uint16_t port, Handler handler) {
  node_listeners_[{node, port}] = std::move(handler);
}

void Network::unlisten_node(NetNodeId node, std::uint16_t port) {
  node_listeners_.erase({node, port});
}

void Network::send_to_node(NetNodeId src_node, std::optional<NetNodeId> dst_node,
                           Message msg) {
  ++sent_;
  if (dst_node) {
    transmit_to_node(src_node, *dst_node, std::move(msg));
    return;
  }
  // L2 broadcast to every node listener on the port.
  std::vector<NetNodeId> targets;
  for (const auto& [key, handler] : node_listeners_) {
    if (key.second == msg.dst_port && key.first != src_node) {
      targets.push_back(key.first);
    }
  }
  if (targets.empty()) {
    ++dropped_;
    return;
  }
  for (NetNodeId target : targets) {
    transmit_to_node(src_node, target, msg);
  }
}

void Network::transmit_to_node(NetNodeId src_node, NetNodeId dst_node,
                               Message msg) {
  FlowSpec spec;
  spec.src = src_node;
  spec.dst = dst_node;
  spec.bytes = msg.wire_bytes();
  spec.on_complete = [this, dst_node, msg = std::move(msg)](FlowId id,
                                                            bool success) {
    auto delay_it = pending_delay_.find(id);
    sim::Duration delay = delay_it != pending_delay_.end()
                              ? delay_it->second
                              : Fabric::kLoopbackDelay;
    if (delay_it != pending_delay_.end()) pending_delay_.erase(delay_it);
    if (!success) {
      ++dropped_;
      return;
    }
    sim_.after(delay, [this, dst_node, msg]() {
      // Delivery schedule point — see transmit() above.
      if (!sim_.schedule_points().active()) {
        deliver_to_node(dst_node, msg);
        return;
      }
      sim::SchedulePoint point;
      point.kind = sim::SchedulePointKind::kDelivery;
      point.label = "deliver-l2:node" + std::to_string(dst_node) + ":" +
                    std::to_string(msg.dst_port);
      point.object = "node" + std::to_string(dst_node);
      point.src_ip = msg.src.to_string();
      point.dst_ip = msg.dst.to_string();
      point.src_port = msg.src_port;
      point.dst_port = msg.dst_port;
      sim_.schedule_points().intercept(
          std::move(point),
          [this, dst_node, msg]() { deliver_to_node(dst_node, msg); });
    });
  };
  FlowId id = fabric_.start_flow(std::move(spec));
  std::vector<LinkId> path = fabric_.flow_path(id);
  if (!path.empty()) pending_delay_[id] = fabric_.path_delay(path);
}

void Network::deliver_to_node(NetNodeId node, Message msg) {
  auto it = node_listeners_.find({node, msg.dst_port});
  if (it == node_listeners_.end()) {
    ++dropped_;
    return;
  }
  ++delivered_;
  Handler handler = it->second;
  handler(msg);
}

void Network::deliver(Message msg) {
  auto it = listeners_.find({msg.dst.value(), msg.dst_port});
  if (it == listeners_.end()) {
    ++dropped_;
    LOG_DEBUG("net", "port unreachable %s:%u", msg.dst.to_string().c_str(),
              msg.dst_port);
    return;
  }
  ++delivered_;
  // Copy the handler: it may unlisten itself while running.
  Handler handler = it->second;
  handler(msg);
}

}  // namespace picloud::net
