// OpenFlow-style SDN control plane (paper §II-A, §IV).
//
// "The benefit of using OpenFlow is to make the topology fully programmable
// ... SDN is a fairly recent concept of logically centralising the network's
// control plane so that network-wide management can be programmed in software
// and subsequently enforced through the centrally-controlled installation of
// rules on the switches along the path."
//
// The model follows the reactive OpenFlow workflow: the first flow between a
// node pair misses in the switch flow table, raises a packet-in at the
// controller, which computes a path under the active policy and installs an
// exact-match rule on every switch along it. Later flows between the same
// pair hit the cached rules. Rules age out after an idle timeout; link
// failures invalidate the rules that cross them.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <optional>
#include <vector>

#include "net/fabric.h"
#include "sim/simulation.h"

namespace picloud::net {

// An exact-match match-action rule: (src node, dst node) -> output link.
struct FlowRule {
  NetNodeId src = kInvalidNode;
  NetNodeId dst = kInvalidNode;
  LinkId out_link = kInvalidLink;
  sim::SimTime last_used;
  std::uint64_t hits = 0;
};

// Per-switch OpenFlow table.
class FlowTable {
 public:
  void install(NetNodeId src, NetNodeId dst, LinkId out_link, sim::SimTime now);
  // Exact-match lookup; updates hit counters on success.
  std::optional<LinkId> lookup(NetNodeId src, NetNodeId dst, sim::SimTime now);
  void remove(NetNodeId src, NetNodeId dst);
  // Drops every rule whose action forwards out of `link`. Returns evicted
  // count. Used when a link's properties change under installed rules.
  size_t remove_by_link(LinkId link);
  // Drops rules idle for longer than `idle_timeout`. Returns evicted count.
  size_t evict_idle(sim::SimTime now, sim::Duration idle_timeout);
  size_t size() const { return rules_.size(); }

 private:
  std::map<std::pair<NetNodeId, NetNodeId>, FlowRule> rules_;
};

enum class SdnPolicy {
  kShortestPath,    // deterministic first shortest path
  kEcmp,            // hash (src, dst) across equal-cost shortest paths
  kLeastCongested,  // pick the equal-cost path with the lowest peak
                    // utilisation at install time
};

const char* sdn_policy_name(SdnPolicy policy);

// Value snapshot of the controller's `net.sdn.*` registry counters.
struct SdnStats {
  std::uint64_t packet_ins = 0;        // table misses raised to the controller
  std::uint64_t table_hits = 0;        // flows served from installed rules
  std::uint64_t rules_installed = 0;   // per-switch rule installations
  std::uint64_t rules_evicted = 0;
  std::uint64_t reroutes = 0;          // paths recomputed after link failure
};

// The logically-centralised controller. Install as the fabric's routing
// provider: fabric.set_routing(&controller).
class SdnController : public RoutingProvider {
 public:
  SdnController(sim::Simulation& sim, SdnPolicy policy,
                sim::Duration rule_idle_timeout = sim::Duration::seconds(30));

  std::vector<LinkId> route(Fabric& fabric, NetNodeId src, NetNodeId dst,
                            FlowId flow) override;

  // Link property change (capacity): evicts every rule forwarding over the
  // link, so paths picked under the old capacity (kLeastCongested) get
  // recomputed on the next packet-in instead of lingering until idle-out.
  void on_link_changed(LinkId link) override;

  void set_policy(SdnPolicy policy) { policy_ = policy; }
  SdnPolicy policy() const { return policy_; }

  // Administrative rule injection (the "fully programmable" topology):
  // pins src->dst traffic to an explicit path until evicted or invalidated.
  void install_path(Fabric& fabric, NetNodeId src, NetNodeId dst,
                    const std::vector<LinkId>& path);
  // Clears every rule on every switch.
  void flush_tables();

  // Ages idle rules out of all tables.
  void evict_idle(sim::SimTime now);

  SdnStats stats() const {
    SdnStats s;
    s.packet_ins = packet_ins_->value();
    s.table_hits = table_hits_->value();
    s.rules_installed = rules_installed_->value();
    s.rules_evicted = rules_evicted_->value();
    s.reroutes = reroutes_->value();
    return s;
  }
  size_t total_rules() const;

 private:
  // Follows installed rules hop by hop; nullopt on any miss or dead link.
  std::optional<std::vector<LinkId>> follow_rules(Fabric& fabric,
                                                  NetNodeId src, NetNodeId dst);
  std::vector<LinkId> compute_path(Fabric& fabric, NetNodeId src,
                                   NetNodeId dst);

  sim::Simulation& sim_;
  SdnPolicy policy_;
  sim::Duration rule_idle_timeout_;
  std::map<NetNodeId, FlowTable> tables_;  // per switch
  // Registry counter handles under `net.sdn.*` (never null).
  util::Counter* packet_ins_ = nullptr;
  util::Counter* table_hits_ = nullptr;
  util::Counter* rules_installed_ = nullptr;
  util::Counter* rules_evicted_ = nullptr;
  util::Counter* reroutes_ = nullptr;
};

// The pre-SDN baseline: classic L2 spanning-tree forwarding. Redundant
// links (the second aggregation root, the extra equal-cost paths) are
// BLOCKED to avoid loops, so only the tree carries traffic — exactly the
// capacity the paper buys back by making the aggregation layer OpenFlow
// ("the benefit of using OpenFlow is to make the topology fully
// programmable", SII-A). Routes are paths within the spanning tree rooted
// at the lowest node id (the standard lowest-bridge-id election).
class SpanningTreeRouting : public RoutingProvider {
 public:
  // Computes the tree lazily on first route() and after any topology or
  // link-state change signalled via invalidate().
  SpanningTreeRouting() = default;

  std::vector<LinkId> route(Fabric& fabric, NetNodeId src, NetNodeId dst,
                            FlowId flow) override;

  // Links NOT in the tree (blocked ports). Valid after the first route().
  const std::set<LinkId>& blocked_links() const { return blocked_; }
  void invalidate() { valid_ = false; }

 private:
  void rebuild(const Fabric& fabric);

  bool valid_ = false;
  // parent_link_[n] = directed link from n toward the root (kInvalidLink at
  // the root / unreachable nodes).
  std::vector<LinkId> parent_link_;
  std::set<LinkId> blocked_;
};

}  // namespace picloud::net
