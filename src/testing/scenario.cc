#include "testing/scenario.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"
#include "util/rng.h"

namespace picloud::testing {

namespace {

using util::Error;

struct KindName {
  ChaosKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {ChaosKind::kNodeCrash, "node-crash"},
    {ChaosKind::kNodeRestart, "node-restart"},
    {ChaosKind::kLinkDown, "link-down"},
    {ChaosKind::kLinkUp, "link-up"},
    {ChaosKind::kLinkLossOn, "link-loss-on"},
    {ChaosKind::kLinkLossOff, "link-loss-off"},
    {ChaosKind::kRackPartition, "rack-partition"},
    {ChaosKind::kRackHeal, "rack-heal"},
    {ChaosKind::kMasterBlipStart, "master-blip-start"},
    {ChaosKind::kMasterBlipEnd, "master-blip-end"},
};

// Durations serialize as integer nanosecond counts: ns is the Duration's
// native unit and stays exactly representable in a JSON double (< 2^53),
// so repro files round-trip bit-identically — fractional milliseconds
// would not.
sim::Duration duration_from_ns(double ns) {
  return sim::Duration::nanos(static_cast<std::int64_t>(ns));
}

}  // namespace

const char* chaos_kind_name(ChaosKind kind) {
  for (const auto& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  PICLOUD_CHECK(false) << "unknown ChaosKind";
  return "?";
}

util::Result<ChaosKind> chaos_kind_from_name(const std::string& name) {
  for (const auto& kn : kKindNames) {
    if (name == kn.name) return kn.kind;
  }
  return Error::make("bad_chaos_kind", "unknown chaos kind: " + name);
}

util::Json ChaosEvent::to_json() const {
  util::Json j = util::Json::object();
  j.set("at_ns", static_cast<double>(at.ns()));
  j.set("kind", std::string(chaos_kind_name(kind)));
  j.set("target", target);
  j.set("param", param);
  j.set("pair", pair);
  return j;
}

util::Result<ChaosEvent> ChaosEvent::from_json(const util::Json& j) {
  ChaosEvent e;
  e.at = duration_from_ns(j.get_number("at_ns", 0));
  auto kind = chaos_kind_from_name(j.get_string("kind", ""));
  if (!kind.ok()) return kind.error();
  e.kind = kind.value();
  e.target = static_cast<int>(j.get_number("target", 0));
  e.param = j.get_number("param", 0);
  e.pair = static_cast<int>(j.get_number("pair", 0));
  return e;
}

util::Json WorkloadSpec::to_json() const {
  util::Json j = util::Json::object();
  j.set("app_kind", app_kind);
  j.set("replicas", replicas);
  j.set("load_rps", load_rps);
  j.set("lb", lb);
  j.set("traffic", traffic.to_json());
  return j;
}

util::Result<WorkloadSpec> WorkloadSpec::from_json(const util::Json& j) {
  WorkloadSpec w;
  w.app_kind = j.get_string("app_kind", "");
  if (w.app_kind.empty())
    return Error::make("bad_workload", "workload missing app_kind");
  w.replicas = static_cast<int>(j.get_number("replicas", 1));
  w.load_rps = j.get_number("load_rps", 0);
  w.lb = j.get_bool("lb", false);
  if (j.get("traffic").is_object()) {
    w.traffic = apps::TrafficShape::from_json(j.get("traffic"));
  }
  return w;
}

int Scenario::node_count() const { return racks * hosts_per_rack; }

int Scenario::total_replicas() const {
  int n = 0;
  for (const auto& w : workloads) n += w.replicas;
  return n;
}

util::Json Scenario::to_json() const {
  util::Json j = util::Json::object();
  j.set("seed", static_cast<double>(seed));
  j.set("racks", racks);
  j.set("hosts_per_rack", hosts_per_rack);
  j.set("topology", topology);
  j.set("fat_tree_k", fat_tree_k);
  j.set("placement_policy", placement_policy);
  j.set("chaos_window_ns", static_cast<double>(chaos_window.ns()));
  j.set("settle_budget_ns", static_cast<double>(settle_budget.ns()));
  j.set("sweep_period_ns", static_cast<double>(sweep_period.ns()));
  util::Json ws = util::Json::array();
  for (const auto& w : workloads) ws.push_back(w.to_json());
  j.set("workloads", std::move(ws));
  util::Json cs = util::Json::array();
  for (const auto& e : chaos) cs.push_back(e.to_json());
  j.set("chaos", std::move(cs));
  return j;
}

util::Result<Scenario> Scenario::from_json(const util::Json& j) {
  Scenario s;
  s.seed = static_cast<std::uint64_t>(j.get_number("seed", 1));
  s.racks = static_cast<int>(j.get_number("racks", 2));
  s.hosts_per_rack = static_cast<int>(j.get_number("hosts_per_rack", 4));
  s.topology = j.get_string("topology", "multi-root-tree");
  s.fat_tree_k = static_cast<int>(j.get_number("fat_tree_k", 4));
  s.placement_policy = j.get_string("placement_policy", "first-fit");
  s.chaos_window = duration_from_ns(j.get_number("chaos_window_ns", 0));
  s.settle_budget = duration_from_ns(j.get_number("settle_budget_ns", 0));
  s.sweep_period = duration_from_ns(j.get_number("sweep_period_ns", 5e9));
  if (s.racks < 1 || s.hosts_per_rack < 1)
    return Error::make("bad_scenario", "scenario has an empty cluster");
  if (j.get("workloads").is_array()) {
    for (const auto& wj : j.get("workloads").as_array()) {
      auto w = WorkloadSpec::from_json(wj);
      if (!w.ok()) return w.error();
      s.workloads.push_back(w.value());
    }
  }
  if (j.get("chaos").is_array()) {
    for (const auto& cj : j.get("chaos").as_array()) {
      auto e = ChaosEvent::from_json(cj);
      if (!e.ok()) return e.error();
      s.chaos.push_back(e.value());
    }
  }
  return s;
}

std::string Scenario::repro_command() const {
  std::ostringstream out;
  out << "PICLOUD_FUZZ_SEED_LIST=" << seed
      << " ./tests/scenario_fuzz_test --gtest_filter=ScenarioFuzzTest.Sweep";
  return out.str();
}

ScenarioGenerator::ScenarioGenerator(GeneratorLimits limits)
    : limits_(limits) {}

Scenario ScenarioGenerator::generate(std::uint64_t seed) const {
  const GeneratorLimits& lim = limits_;
  // Private stream: scenario shape must not perturb (or be perturbed by) the
  // simulation's own rng. Offset the seed so scenario draws and sim draws
  // differ even for the same seed value.
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eed);

  Scenario s;
  s.seed = seed;
  s.racks = static_cast<int>(rng.uniform_int(lim.min_racks, lim.max_racks));
  s.hosts_per_rack = static_cast<int>(
      rng.uniform_int(lim.min_hosts_per_rack, lim.max_hosts_per_rack));
  if (rng.next_double() < lim.fat_tree_p) {
    // The re-cabled fat-tree variant has a fixed k=4 shape (16 hosts in 4
    // racks); PiCloud ignores the generated rack/host counts then, so pin
    // them to the real values for node_count() and chaos targeting.
    s.topology = "fat-tree";
    s.fat_tree_k = 4;
    s.racks = 4;
    s.hosts_per_rack = 4;
  }
  static const char* kPolicies[] = {"first-fit",    "best-fit",
                                    "worst-fit",    "round-robin",
                                    "least-loaded", "rack-affinity"};
  s.placement_policy = kPolicies[rng.uniform_int(
      0, static_cast<std::int64_t>(std::size(kPolicies)) - 1)];

  s.chaos_window = sim::Duration::nanos(
      rng.uniform_int(lim.min_window.ns(), lim.max_window.ns()));
  s.settle_budget = sim::Duration::minutes(12);
  s.sweep_period = sim::Duration::seconds(5);

  // Workload mix. Replica totals are capped below the cluster's node count
  // so chaos-induced migrations always have somewhere to land.
  const int n_workloads = static_cast<int>(
      rng.uniform_int(lim.min_workloads, lim.max_workloads));
  int budget = std::max(1, s.node_count() - 1);
  for (int i = 0; i < n_workloads && budget > 0; ++i) {
    WorkloadSpec w;
    // httpd tiers dominate so most scenarios exercise the data path
    // end-to-end (loadgen -> fabric -> containers) under chaos.
    const double pick = rng.next_double();
    if (pick < 0.55) {
      w.app_kind = "httpd";
      w.load_rps = rng.uniform(5.0, 30.0);
    } else if (pick < 0.85) {
      w.app_kind = "kvstore";
    } else {
      w.app_kind = "batch";
    }
    w.replicas = static_cast<int>(
        rng.uniform_int(1, std::min(lim.max_replicas, budget)));
    budget -= w.replicas;
    if (w.app_kind == "httpd" && w.load_rps > 0) {
      // Traffic shape: the nightly fuzz job wants >= 20% of scenarios to
      // carry a traffic-shape event, so per loaded httpd tier the flash +
      // diurnal picks alone clear that (tested in scenario_fuzz_test).
      const double shape_pick = rng.next_double();
      if (shape_pick < 0.20) {
        w.traffic.kind = apps::TrafficShape::Kind::kFlashCrowd;
        w.traffic.at = sim::Duration::nanos(
            rng.uniform_int(0, s.chaos_window.ns() / 2));
        w.traffic.duration =
            sim::Duration::seconds(rng.uniform(10.0, 30.0));
        w.traffic.multiplier = rng.uniform(5.0, 12.0);
      } else if (shape_pick < 0.35) {
        w.traffic.kind = apps::TrafficShape::Kind::kDiurnal;
        w.traffic.period = sim::Duration::seconds(rng.uniform(60.0, 180.0));
        w.traffic.amplitude = rng.uniform(0.3, 0.8);
      }
      if (rng.chance(0.30)) {
        w.traffic.cost_alpha = rng.uniform(1.5, 3.0);
        w.traffic.cost_mean = 1.0;
      }
      // Front the tier with an L7 LB when the replica budget allows the
      // extra instance (the LB itself is spawned through the control
      // plane, so it occupies a slot like any replica).
      if (budget > 0 && rng.chance(0.5)) {
        w.lb = true;
        budget -= 1;
      }
    }
    s.workloads.push_back(w);
  }

  // Chaos schedule: paired fault/recovery events. Recovery always lands
  // inside the window so every scenario is expected to converge afterwards.
  const int n_faults =
      static_cast<int>(rng.uniform_int(lim.min_faults, lim.max_faults));
  for (int pair = 0; pair < n_faults; ++pair) {
    const std::int64_t window_ns = s.chaos_window.ns();
    const std::int64_t start_ns = rng.uniform_int(0, window_ns * 3 / 4);
    const std::int64_t repair_ns =
        rng.uniform_int(lim.min_repair.ns(), lim.max_repair.ns());
    const std::int64_t end_ns = std::min(window_ns - 1, start_ns + repair_ns);

    ChaosEvent fault, heal;
    fault.at = sim::Duration::nanos(start_ns);
    heal.at = sim::Duration::nanos(end_ns);
    fault.pair = heal.pair = pair;

    const double kind_pick = rng.next_double();
    if (kind_pick < 0.40) {
      fault.kind = ChaosKind::kNodeCrash;
      heal.kind = ChaosKind::kNodeRestart;
      fault.target = heal.target = static_cast<int>(
          rng.uniform_int(0, std::max(0, s.node_count() - 1)));
    } else if (kind_pick < 0.60) {
      fault.kind = ChaosKind::kLinkDown;
      heal.kind = ChaosKind::kLinkUp;
      fault.target = heal.target =
          static_cast<int>(rng.uniform_int(0, 7));  // mod uplink count
    } else if (kind_pick < 0.80) {
      fault.kind = ChaosKind::kLinkLossOn;
      heal.kind = ChaosKind::kLinkLossOff;
      fault.target = heal.target = static_cast<int>(rng.uniform_int(0, 7));
      fault.param = rng.uniform(0.05, 0.5);
    } else if (kind_pick < 0.92) {
      fault.kind = ChaosKind::kRackPartition;
      heal.kind = ChaosKind::kRackHeal;
      fault.target = heal.target =
          static_cast<int>(rng.uniform_int(0, std::max(0, s.racks - 1)));
    } else {
      fault.kind = ChaosKind::kMasterBlipStart;
      heal.kind = ChaosKind::kMasterBlipEnd;
    }
    s.chaos.push_back(fault);
    s.chaos.push_back(heal);
  }
  std::stable_sort(s.chaos.begin(), s.chaos.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at.ns() < b.at.ns();
                   });
  return s;
}

}  // namespace picloud::testing
