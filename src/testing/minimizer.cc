#include "testing/minimizer.h"

#include <algorithm>
#include <set>
#include <vector>

namespace picloud::testing {

namespace {

// Removes every chaos event belonging to a pair id in `gone`, then tightens
// the chaos window to just past the last remaining event (an empty schedule
// keeps a short token window so the scenario shape stays valid).
Scenario drop_pairs(const Scenario& s, const std::set<int>& gone) {
  Scenario out = s;
  out.chaos.clear();
  std::int64_t last_ns = 0;
  for (const ChaosEvent& e : s.chaos) {
    if (gone.count(e.pair) > 0) continue;
    out.chaos.push_back(e);
    last_ns = std::max(last_ns, e.at.ns());
  }
  if (out.chaos.size() < s.chaos.size()) {
    const std::int64_t floor_ns = sim::Duration::seconds(30).ns();
    out.chaos_window = sim::Duration::nanos(
        std::max(floor_ns, last_ns + sim::Duration::seconds(10).ns()));
  }
  return out;
}

std::vector<int> pair_ids(const Scenario& s) {
  std::set<int> ids;
  for (const ChaosEvent& e : s.chaos) ids.insert(e.pair);
  return std::vector<int>(ids.begin(), ids.end());
}

}  // namespace

SeedMinimizer::SeedMinimizer(RunFn run, int max_runs)
    : run_(std::move(run)), max_runs_(max_runs) {}

int SeedMinimizer::size(const Scenario& s) {
  return s.node_count() + static_cast<int>(s.chaos.size()) +
         s.total_replicas();
}

bool SeedMinimizer::still_fails(const Scenario& candidate,
                                const std::string& signature,
                                int* runs_left) {
  if (*runs_left <= 0) return false;
  --*runs_left;
  RunReport r = run_(candidate);
  return r.failed() && r.signature() == signature;
}

SeedMinimizer::Outcome SeedMinimizer::minimize(const Scenario& start) {
  Outcome out;
  out.minimal = start;
  int runs_left = max_runs_;

  --runs_left;
  RunReport original = run_(start);
  out.runs = 1;
  out.original_failed = original.failed();
  if (!out.original_failed) return out;
  out.signature = original.signature();

  Scenario best = start;

  // 1. Chaos reduction, ddmin-style: try dropping halves of the pair set,
  //    then quarters, then individual pairs. After an accepted reduction the
  //    scan restarts over the smaller pair set at the same granularity.
  for (int granularity = 2; granularity <= 8; granularity *= 2) {
    bool progressed = true;
    while (progressed && runs_left > 0) {
      progressed = false;
      const std::vector<int> ids = pair_ids(best);
      if (ids.empty()) break;
      const size_t chunk =
          std::max<size_t>(1, ids.size() / static_cast<size_t>(granularity));
      for (size_t lo = 0; lo < ids.size(); lo += chunk) {
        std::set<int> gone(
            ids.begin() + static_cast<std::ptrdiff_t>(lo),
            ids.begin() +
                static_cast<std::ptrdiff_t>(std::min(lo + chunk, ids.size())));
        Scenario candidate = drop_pairs(best, gone);
        if (candidate.chaos.size() == best.chaos.size()) continue;
        if (still_fails(candidate, out.signature, &runs_left)) {
          best = candidate;
          progressed = true;
          break;
        }
      }
    }
    if (pair_ids(best).size() <= 1) break;
  }

  // 2. Workload reduction: drop whole tiers, then shed replicas.
  for (size_t i = 0; i < best.workloads.size();) {
    Scenario candidate = best;
    candidate.workloads.erase(candidate.workloads.begin() +
                              static_cast<std::ptrdiff_t>(i));
    if (still_fails(candidate, out.signature, &runs_left)) {
      best = candidate;
    } else {
      ++i;
    }
  }
  for (size_t i = 0; i < best.workloads.size(); ++i) {
    while (best.workloads[i].replicas > 1) {
      Scenario candidate = best;
      --candidate.workloads[i].replicas;
      if (!still_fails(candidate, out.signature, &runs_left)) break;
      best = candidate;
    }
  }

  // 3. Cluster reduction. The fat-tree shape is fixed at k=4, so first try
  //    trading it for the shrinkable multi-root tree, then shed Pis and
  //    racks while the workload still fits.
  if (best.topology == "fat-tree") {
    Scenario candidate = best;
    candidate.topology = "multi-root-tree";
    if (still_fails(candidate, out.signature, &runs_left)) best = candidate;
  }
  if (best.topology != "fat-tree") {
    auto fits = [](const Scenario& s) {
      return s.total_replicas() < s.node_count();
    };
    while (best.hosts_per_rack > 1) {
      Scenario candidate = best;
      --candidate.hosts_per_rack;
      if (!fits(candidate)) break;
      if (!still_fails(candidate, out.signature, &runs_left)) break;
      best = candidate;
    }
    while (best.racks > 1) {
      Scenario candidate = best;
      --candidate.racks;
      if (!fits(candidate)) break;
      if (!still_fails(candidate, out.signature, &runs_left)) break;
      best = candidate;
    }
  }

  out.minimal = best;
  out.runs = max_runs_ - runs_left;
  out.shrank = size(best) < size(start);
  return out;
}

}  // namespace picloud::testing
