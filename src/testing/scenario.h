// Scenario — the declarative unit of simulation fuzzing (DESIGN.md §10).
//
// The paper's whole argument is that a scale model lets you exercise cloud
// behaviours cheaply and repeatably; our deterministic emulation goes
// further: from a single 64-bit seed, ScenarioGenerator derives a random
// cluster (rack count, Pis per rack, topology variant), a workload mix
// (replicated app tiers + an HTTP load generator) and a chaos schedule
// (node crashes, link cuts, lossy periods, rack partitions, management-plane
// blips) as one printable, re-loadable Scenario value. The same seed always
// yields the same scenario, and running the same scenario is bit-identical,
// so "fuzz seed 4711 fails" is a complete bug report.
//
// Chaos is a *schedule*, not a stochastic process (contrast
// cloud::ChaosMonkey): every fault is an explicit (time, kind, target) tuple
// paired with its recovery event, which is what makes failing scenarios
// shrinkable — the SeedMinimizer removes fault/recovery pairs wholesale and
// re-runs, instead of perturbing an RNG stream it cannot reason about.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/loadgen.h"
#include "sim/time.h"
#include "util/json.h"
#include "util/result.h"

namespace picloud::testing {

// One scheduled chaos action. `at` is the offset from the start of the chaos
// window (the cluster is booted and the workload healthy by then).
enum class ChaosKind {
  kNodeCrash,       // target: host index (mod node count)
  kNodeRestart,     //   …its paired power-cycle
  kLinkDown,        // target: ToR-uplink index (mod uplink count)
  kLinkUp,          //   …its paired repair
  kLinkLossOn,      // target: ToR-uplink index; param: drop probability
  kLinkLossOff,     //   …its paired clearing
  kRackPartition,   // target: rack index (mod rack count); all uplinks cut
  kRackHeal,        //   …its paired healing
  kMasterBlipStart, // the pimaster's uplink goes dark (management outage)
  kMasterBlipEnd,   //   …and comes back
};

const char* chaos_kind_name(ChaosKind kind);
util::Result<ChaosKind> chaos_kind_from_name(const std::string& name);

struct ChaosEvent {
  sim::Duration at;
  ChaosKind kind = ChaosKind::kNodeCrash;
  int target = 0;
  double param = 0;  // loss probability for kLinkLossOn
  // Fault and recovery share a pair id; the minimizer removes whole pairs so
  // a shrunk schedule never strands a node in the crashed state.
  int pair = 0;

  util::Json to_json() const;
  static util::Result<ChaosEvent> from_json(const util::Json& j);
};

// One replicated app tier, spawned through the real control plane (a
// cloud::ReplicaSet driving POST /instances on the pimaster).
struct WorkloadSpec {
  std::string app_kind = "httpd";  // httpd | kvstore | batch | ...
  int replicas = 1;
  // For httpd tiers: offered HTTP load in requests/sec from the admin
  // workstation (0 = no load generator on this tier).
  double load_rps = 0;
  // Front the tier with an L7 load balancer (a one-replica "lb" tier the
  // generator's clients target instead of the backends).
  bool lb = false;
  // Time-varying open-loop shape for the tier's load generator (steady,
  // diurnal, flash crowd + heavy-tailed request cost); see apps/loadgen.h.
  apps::TrafficShape traffic;

  // True when the spec carries a traffic-shape event (non-steady curve or a
  // heavy-tailed cost) — the nightly fuzz job's coverage criterion.
  bool has_traffic_event() const {
    return traffic.kind != apps::TrafficShape::Kind::kSteady ||
           traffic.cost_alpha > 1.0;
  }

  util::Json to_json() const;
  static util::Result<WorkloadSpec> from_json(const util::Json& j);
};

struct Scenario {
  // The seed everything derives from: the generator's draws, the
  // simulation's root RNG, and the repro command line.
  std::uint64_t seed = 1;

  // --- Cluster shape ---------------------------------------------------------
  int racks = 2;
  int hosts_per_rack = 4;
  std::string topology = "multi-root-tree";  // or "fat-tree"
  int fat_tree_k = 4;
  std::string placement_policy = "first-fit";

  // --- Phases ----------------------------------------------------------------
  sim::Duration chaos_window = sim::Duration::minutes(4);
  sim::Duration settle_budget = sim::Duration::minutes(12);
  sim::Duration sweep_period = sim::Duration::seconds(5);

  std::vector<WorkloadSpec> workloads;
  std::vector<ChaosEvent> chaos;  // sorted by `at`

  int node_count() const;
  int total_replicas() const;

  // Full round-trip serialization: to_json() output re-loads with
  // from_json() into an identical scenario — the repro-file format the fuzz
  // test writes on failure and PICLOUD_FUZZ_SCENARIO loads back.
  util::Json to_json() const;
  static util::Result<Scenario> from_json(const util::Json& j);

  // One-line repro recipe for a failing seed.
  std::string repro_command() const;
};

// Bounds on what generate() may produce; the defaults keep one scenario in
// the low seconds of host time so a 25-seed sweep fits the tier-1 budget.
struct GeneratorLimits {
  int min_racks = 1, max_racks = 3;
  int min_hosts_per_rack = 2, max_hosts_per_rack = 5;
  double fat_tree_p = 0.15;  // probability of the re-cabled fat-tree variant
  int min_workloads = 1, max_workloads = 3;
  int max_replicas = 3;
  int min_faults = 1, max_faults = 6;
  sim::Duration min_window = sim::Duration::minutes(2);
  sim::Duration max_window = sim::Duration::minutes(5);
  sim::Duration min_repair = sim::Duration::seconds(15);
  sim::Duration max_repair = sim::Duration::seconds(90);
};

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(GeneratorLimits limits = {});

  // Deterministic: the scenario is a pure function of `seed` (and the
  // limits). Draws come from a private Rng stream, never the simulation's.
  Scenario generate(std::uint64_t seed) const;

 private:
  GeneratorLimits limits_;
};

}  // namespace picloud::testing
