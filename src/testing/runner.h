// ScenarioRunner — executes one Scenario end to end and reports the verdict
// (DESIGN.md §10).
//
// run_scenario() builds a fresh Simulation + PiCloud from the scenario's
// cluster shape, boots the fleet, starts the workload (ReplicaSets through
// the real control plane, an HTTP load generator for web tiers), arms the
// InvariantChecker on a sim-time sweep cadence, plays the chaos schedule,
// then demands convergence and runs the quiesce probes. The returned digest
// is an FNV-1a hash over the end state (event count, final sim time, the
// full metrics snapshot, every instance record and node) — the witness that
// the same scenario reproduces bit-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "testing/invariants.h"
#include "testing/scenario.h"

namespace picloud::testing {

struct RunReport {
  std::uint64_t seed = 0;
  bool ready = false;      // the fleet registered within the boot budget
  bool converged = false;  // workloads healthy post-chaos, in the budget
  std::vector<Violation> violations;
  std::uint64_t digest = 0;  // determinism witness over the end state
  std::uint64_t events = 0;  // simulation events executed
  std::uint64_t sweeps = 0;  // invariant sweeps performed
  // Human-readable failure report (violations + trace tail + repro
  // command); empty on success.
  std::string summary;

  bool failed() const { return !ready || !converged || !violations.empty(); }
  // Stable identifier for "the same failure": the first violated probe, or
  // the lifecycle stage that did not complete. The minimizer only accepts a
  // reduction that preserves this signature.
  std::string signature() const;
};

RunReport run_scenario(const Scenario& scenario);

}  // namespace picloud::testing
