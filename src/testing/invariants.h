// InvariantChecker — cluster-wide correctness probes for simulation fuzzing
// (DESIGN.md §10).
//
// A probe is a named predicate over the whole cloud (every node's OS, the
// master's instance registry, the fabric's accounting, the metrics spine)
// that must hold either continuously (Phase::kSweep — evaluated at a
// sim-time cadence while chaos is running) or once the cluster has
// converged (Phase::kQuiesce — stronger claims like "registry agrees with
// reality" that are legitimately false mid-migration or mid-crash).
//
// Probes live in the central catalogue (install_builtin_probes) or are
// registered by the runner for scenario-specific state (e.g. the load
// generator's histogram accounting); picloud_analyze's invariant-catalogue
// rule enforces that every probe_* factory in src/testing/ is actually
// registered somewhere — an unreferenced probe is dead checking code.
//
// Determinism contract: probes only *read* simulation state. They never
// draw from any rng stream and never schedule events, so an instrumented
// run digests bit-identically to a bare one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cloud/cloud.h"
#include "sim/simulation.h"

namespace picloud::testing {

enum class Phase {
  kSweep,    // must hold at every sweep while the scenario runs
  kQuiesce,  // must hold after convergence (also evaluated at quiesce)
};

struct Violation {
  std::string probe;
  std::int64_t t_ns = 0;  // sim time the probe fired
  std::string message;
};

class InvariantChecker {
 public:
  // A probe calls `fail(message)` once per violated condition.
  using FailFn = std::function<void(const std::string&)>;
  using Probe = std::function<void(const FailFn&)>;

  InvariantChecker(sim::Simulation& sim, cloud::PiCloud& cloud);

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  // Adds a probe to the catalogue. Names are stable identifiers that show
  // up in violation reports and repro files.
  void register_probe(std::string name, Phase phase, Probe probe);

  // The built-in catalogue: memory accounting, instance-record legality,
  // registry<->daemon agreement, metrics consistency, fabric conservation,
  // post-chaos convergence.
  void install_builtin_probes();

  // Evaluates every kSweep probe at the current sim time.
  void sweep();
  // Evaluates the full catalogue (sweep + quiesce probes) — call once the
  // scenario believes the cluster has converged.
  void run_quiesce();

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t sweeps() const { return sweeps_; }

  // Human-readable failure report: each violation with its sim time, plus
  // the tail of the sim-time trace ring for causal context.
  std::string report(std::uint64_t seed, std::size_t trace_tail = 25) const;

 private:
  struct Entry {
    std::string name;
    Phase phase;
    Probe probe;
  };

  void run_phase(bool include_quiesce);

  sim::Simulation& sim_;
  cloud::PiCloud& cloud_;
  // Registry handles resolved once at construction (never null): sweeps run
  // at a sim-time cadence, so per-sweep name lookups are avoidable work.
  util::Counter* probe_runs_;
  util::Counter* violation_count_;
  util::Counter* sweep_count_;
  util::Counter* quiesce_count_;
  std::vector<Entry> probes_;
  std::vector<Violation> violations_;
  std::uint64_t sweeps_ = 0;
  // A probe that fails every sweep would flood the report; identical
  // (probe, message) pairs are recorded once and counted.
  std::vector<std::uint64_t> repeat_counts_;
};

}  // namespace picloud::testing
