#include "testing/runner.h"

#include <bit>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "apps/lb.h"
#include "apps/loadgen.h"
#include "cloud/replicaset.h"
#include "net/fabric.h"
#include "os/node_os.h"
#include "util/check.h"

namespace picloud::testing {

namespace {

// FNV-1a end-state digest (same construction as tests/cloud_soak_test.cc):
// any divergence between two runs of the same scenario shows up here.
class Digest {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ULL;
    }
  }
  void add(double v) { add(std::bit_cast<std::uint64_t>(v)); }
  void add(const std::string& s) {
    for (unsigned char c : s) {
      hash_ ^= c;
      hash_ *= 0x100000001B3ULL;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

// Scenario-specific probe: the load generator's latency histogram must
// record exactly one sample per completed request, every arrival must be
// accounted exactly once, and client-side retries must stay inside the
// token-bucket budget (metrics consistency for the data path).
InvariantChecker::Probe probe_loadgen_accounting(
    const apps::HttpLoadGen& gen, int index) {
  return [&gen, index](const InvariantChecker::FailFn& fail) {
    if (gen.latencies().count() != gen.completed()) {
      std::ostringstream msg;
      msg << "loadgen " << index << ": histogram count "
          << gen.latencies().count() << " != completed " << gen.completed();
      fail(msg.str());
    }
    const std::uint64_t accounted = gen.completed() + gen.failed() +
                                    gen.timed_out() + gen.breaker_rejected() +
                                    gen.in_flight();
    if (gen.arrivals() != accounted) {
      std::ostringstream msg;
      msg << "loadgen " << index << ": arrivals " << gen.arrivals()
          << " != accounted " << accounted << " (completed "
          << gen.completed() << " failed " << gen.failed() << " timed_out "
          << gen.timed_out() << " rejected " << gen.breaker_rejected()
          << " in_flight " << gen.in_flight() << ")";
      fail(msg.str());
    }
    const double budget =
        gen.params().retry_budget_ratio * static_cast<double>(gen.sent()) +
        gen.params().retry_budget_burst;
    const std::uint64_t extra = gen.attempts_sent() - gen.sent();
    if (static_cast<double>(extra) > budget + 1e-6 ||
        gen.retries() != extra) {
      std::ostringstream msg;
      msg << "loadgen " << index << ": retries " << extra << " (counter "
          << gen.retries() << ") exceed budget " << budget;
      fail(msg.str());
    }
  };
}

// Resolves the (single) LB instance of tier `name` to its app object, via
// the registry -> daemon -> container chain. Returns nullptr while the LB is
// respawning after churn — callers re-resolve on every endpoint change
// instead of caching an app pointer that migration would invalidate.
apps::LbApp* find_lb_app(cloud::PiCloud& cloud, const std::string& name) {
  auto record = std::as_const(cloud).master().instance(name);
  if (!record.ok()) return nullptr;
  cloud::NodeDaemon* daemon =
      cloud.daemon_by_hostname(record.value().hostname);
  if (daemon == nullptr || !daemon->node().running()) return nullptr;
  os::Container* c = daemon->node().find_container(name);
  if (c == nullptr || c->app() == nullptr || c->app()->kind() != "lb") {
    return nullptr;
  }
  return static_cast<apps::LbApp*>(c->app());
}

// Resolves the ToR uplink list (rack -> aggregation links) the chaos
// schedule's link targets index into, in deterministic topology order.
std::vector<net::LinkId> tor_uplinks(cloud::PiCloud& cloud) {
  std::vector<net::LinkId> uplinks;
  for (net::NetNodeId tor : cloud.topology().tor_switches) {
    for (net::LinkId lid : cloud.fabric().node(tor).out_links) {
      if (cloud.fabric().node(cloud.fabric().link(lid).to).kind ==
          net::NodeKind::kSwitch) {
        uplinks.push_back(lid);
      }
    }
  }
  return uplinks;
}

std::vector<net::LinkId> rack_uplinks(cloud::PiCloud& cloud, int rack) {
  std::vector<net::LinkId> uplinks;
  const auto& tors = cloud.topology().tor_switches;
  if (tors.empty()) return uplinks;
  net::NetNodeId tor = tors[static_cast<size_t>(rack) % tors.size()];
  for (net::LinkId lid : cloud.fabric().node(tor).out_links) {
    if (cloud.fabric().node(cloud.fabric().link(lid).to).kind ==
        net::NodeKind::kSwitch) {
      uplinks.push_back(lid);
    }
  }
  return uplinks;
}

void apply_chaos_event(cloud::PiCloud& cloud,
                       const std::vector<net::LinkId>& uplinks,
                       net::LinkId master_uplink, const ChaosEvent& e) {
  net::Fabric& fabric = cloud.fabric();
  switch (e.kind) {
    case ChaosKind::kNodeCrash: {
      cloud::NodeDaemon& d = cloud.daemon(
          static_cast<size_t>(e.target) % cloud.node_count());
      // Crashing an already-dead node (two pairs picked the same target)
      // would be a no-op anyway; the guard keeps trace output clean.
      if (d.node().running()) d.crash();
      break;
    }
    case ChaosKind::kNodeRestart:
      // start() is idempotent, so overlapping pairs heal safely.
      cloud.daemon(static_cast<size_t>(e.target) % cloud.node_count())
          .start();
      break;
    case ChaosKind::kLinkDown:
      if (!uplinks.empty()) {
        fabric.set_link_pair_up(
            uplinks[static_cast<size_t>(e.target) % uplinks.size()], false);
      }
      break;
    case ChaosKind::kLinkUp:
      if (!uplinks.empty()) {
        fabric.set_link_pair_up(
            uplinks[static_cast<size_t>(e.target) % uplinks.size()], true);
      }
      break;
    case ChaosKind::kLinkLossOn:
      if (!uplinks.empty()) {
        fabric.set_link_pair_loss(
            uplinks[static_cast<size_t>(e.target) % uplinks.size()],
            e.param);
      }
      break;
    case ChaosKind::kLinkLossOff:
      if (!uplinks.empty()) {
        fabric.set_link_pair_loss(
            uplinks[static_cast<size_t>(e.target) % uplinks.size()], 0.0);
      }
      break;
    case ChaosKind::kRackPartition:
      for (net::LinkId lid : rack_uplinks(cloud, e.target)) {
        fabric.set_link_pair_up(lid, false);
      }
      break;
    case ChaosKind::kRackHeal:
      for (net::LinkId lid : rack_uplinks(cloud, e.target)) {
        fabric.set_link_pair_up(lid, true);
      }
      break;
    case ChaosKind::kMasterBlipStart:
      fabric.set_link_pair_up(master_uplink, false);
      break;
    case ChaosKind::kMasterBlipEnd:
      fabric.set_link_pair_up(master_uplink, true);
      break;
  }
}

}  // namespace

std::string RunReport::signature() const {
  if (!ready) return "boot";
  if (!violations.empty()) return "probe:" + violations.front().probe;
  if (!converged) return "converge";
  return "ok";
}

RunReport run_scenario(const Scenario& scenario) {
  RunReport report;
  report.seed = scenario.seed;

  sim::Simulation sim(scenario.seed);
  cloud::PiCloudConfig config;
  config.racks = scenario.racks;
  config.hosts_per_rack = scenario.hosts_per_rack;
  config.topology = scenario.topology == "fat-tree"
                        ? cloud::PiCloudConfig::Topo::kFatTree
                        : cloud::PiCloudConfig::Topo::kMultiRootTree;
  config.fat_tree_k = scenario.fat_tree_k;
  config.placement_policy = scenario.placement_policy;
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  report.ready = cloud.await_ready();

  InvariantChecker checker(sim, cloud);
  checker.install_builtin_probes();

  auto finalize = [&](bool converged) {
    report.converged = converged;
    report.violations = checker.violations();
    report.sweeps = checker.sweeps();
    report.events = sim.events_executed();
    Digest d;
    d.add(sim.events_executed());
    d.add(static_cast<std::uint64_t>(sim.now().ns()));
    d.add(sim.metrics().snapshot().dump());
    for (const auto& [name, rec] :
         std::as_const(cloud).master().instance_records()) {
      d.add(name);
      d.add(rec.state);
      d.add(rec.hostname);
      d.add(rec.mem_reserved);
      d.add(static_cast<std::uint64_t>(rec.ip.value()));
    }
    for (size_t i = 0; i < cloud.node_count(); ++i) {
      const os::NodeOs& node = std::as_const(cloud).node(i);
      d.add(node.hostname());
      d.add(static_cast<std::uint64_t>(node.running() ? 1 : 0));
      d.add(node.running() ? node.memory().used() : 0);
    }
    report.digest = d.value();
    if (report.failed()) {
      std::ostringstream out;
      out << "scenario seed=" << scenario.seed
          << " failed (signature=" << report.signature() << ")\n"
          << "  ready=" << report.ready << " converged=" << report.converged
          << " violations=" << report.violations.size() << "\n"
          << checker.report(scenario.seed) << "repro: "
          << scenario.repro_command() << "\n";
      report.summary = out.str();
    }
  };

  if (!report.ready) {
    finalize(false);
    return report;
  }
  cloud.run_for(sim::Duration::seconds(5));

  // --- Workload --------------------------------------------------------------
  std::vector<std::unique_ptr<cloud::ReplicaSet>> tiers;
  std::vector<std::unique_ptr<apps::HttpLoadGen>> loadgens;
  // Healthy-baseline bookkeeping covers backend AND lb tiers, so indices
  // into `tiers` no longer align with scenario.workloads.
  struct TierExpect {
    cloud::ReplicaSet* rs;
    int want;
  };
  std::vector<TierExpect> expected;
  for (size_t i = 0; i < scenario.workloads.size(); ++i) {
    const WorkloadSpec& w = scenario.workloads[i];
    cloud::ReplicaSet::Config rs;
    rs.name_prefix = "w" + std::to_string(i);
    rs.replicas = w.replicas;
    rs.spec.app_kind = w.app_kind;
    tiers.push_back(
        std::make_unique<cloud::ReplicaSet>(sim, cloud.master(), rs));
    cloud::ReplicaSet* tier = tiers.back().get();
    expected.push_back({tier, w.replicas});
    const bool loaded = w.app_kind == "httpd" && w.load_rps > 0;
    const bool fronted = loaded && w.lb;
    cloud::ReplicaSet* lb_tier = nullptr;
    std::string lb_name;
    if (fronted) {
      cloud::ReplicaSet::Config lbc;
      lbc.name_prefix = rs.name_prefix + "-lb";
      lbc.replicas = 1;
      lbc.spec.app_kind = "lb";
      tiers.push_back(
          std::make_unique<cloud::ReplicaSet>(sim, cloud.master(), lbc));
      lb_tier = tiers.back().get();
      expected.push_back({lb_tier, 1});
      lb_name = lbc.name_prefix + "-0";
    }
    if (loaded) {
      apps::HttpLoadGen::Params load;
      load.requests_per_sec = w.load_rps;
      load.request_timeout = sim::Duration::seconds(1);
      load.shape = w.traffic;
      loadgens.push_back(std::make_unique<apps::HttpLoadGen>(
          cloud.network(), cloud.admin_ip(), std::vector<net::Ipv4Addr>{},
          load, sim.rng().fork(),
          static_cast<std::uint16_t>(40080 + i)));
      apps::HttpLoadGen* gen = loadgens.back().get();
      if (fronted) {
        // Backend churn re-pushes the endpoint set into the LB; LB churn
        // re-targets the generator AND refreshes the (possibly freshly
        // respawned) LB's backends. The LB app is re-resolved on every fire
        // because respawn/migration moves the container.
        auto push_backends = [&cloud, tier, lb_name]() {
          if (apps::LbApp* lb = find_lb_app(cloud, lb_name)) {
            lb->set_backends(tier->endpoints());
          }
        };
        tier->set_on_change(push_backends);
        lb_tier->set_on_change([gen, lb_tier, push_backends]() {
          push_backends();
          gen->set_targets(lb_tier->endpoints());
        });
      } else {
        tier->set_on_change(
            [gen, tier]() { gen->set_targets(tier->endpoints()); });
      }
      checker.register_probe(
          "loadgen-accounting", Phase::kSweep,
          probe_loadgen_accounting(*gen,
                                   static_cast<int>(loadgens.size()) - 1));
    }
    tier->start();
    if (lb_tier != nullptr) lb_tier->start();
  }
  auto workloads_healthy = [&]() {
    for (const TierExpect& e : expected) {
      if (e.rs->healthy_replicas() != static_cast<size_t>(e.want)) {
        return false;
      }
    }
    return true;
  };
  if (!cloud.run_until(sim::Duration::seconds(300), workloads_healthy)) {
    report.ready = false;  // never reached a healthy baseline
    finalize(false);
    return report;
  }
  for (auto& gen : loadgens) gen->start();

  // --- Chaos window, with the checker sweeping throughout --------------------
  sim::PeriodicTask sweeper(sim, scenario.sweep_period,
                            [&checker]() { checker.sweep(); });
  const std::vector<net::LinkId> uplinks = tor_uplinks(cloud);
  // The pimaster's only uplink: first directed link out of its fabric node.
  const net::NetNodeId master_node = cloud.master().fabric_node();
  PICLOUD_CHECK(!cloud.fabric().node(master_node).out_links.empty());
  const net::LinkId master_uplink =
      cloud.fabric().node(master_node).out_links.front();
  for (const ChaosEvent& e : scenario.chaos) {
    sim.after(e.at, [&cloud, &uplinks, master_uplink, e]() {
      apply_chaos_event(cloud, uplinks, master_uplink, e);
    });
  }
  cloud.run_for(scenario.chaos_window);

  // --- Convergence + quiesce --------------------------------------------------
  const bool converged =
      cloud.run_until(scenario.settle_budget, [&]() {
        return workloads_healthy() &&
               cloud.master().migrations().in_flight() == 0;
      });
  for (auto& gen : loadgens) gen->stop();
  // Two reconciler generations so orphan/drift strikes mature and the
  // registry-agreement probe sees the settled registry.
  const sim::Duration generation =
      cloud.master().master_config().reconcile.period;
  cloud.run_for(generation + generation + sim::Duration::seconds(10));
  sweeper.stop();
  if (converged) checker.run_quiesce();
  finalize(converged);
  return report;
}

}  // namespace picloud::testing
