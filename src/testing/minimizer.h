// SeedMinimizer — greedy shrinking of failing scenarios (DESIGN.md §10).
//
// A fuzzer-found failure at 15 nodes / 6 fault pairs / 3 app tiers is a
// miserable debugging artifact. The minimizer repeatedly proposes smaller
// scenarios — fewer chaos pairs (ddmin-style chunk removal), fewer
// workloads and replicas, fewer Pis — re-runs each candidate, and accepts a
// reduction only when the run still fails *with the same signature* (same
// first violated probe, or same lifecycle stage), so it never wanders onto
// a different bug. The result is the smallest scenario found within the run
// budget plus a one-line repro command.
//
// The run function is injected so unit tests can minimize against a cheap
// synthetic oracle instead of booting real clouds.
#pragma once

#include <cstdint>
#include <functional>

#include "testing/runner.h"
#include "testing/scenario.h"

namespace picloud::testing {

class SeedMinimizer {
 public:
  using RunFn = std::function<RunReport(const Scenario&)>;

  struct Outcome {
    Scenario minimal;            // smallest still-failing scenario found
    std::string signature;       // the failure it preserves
    int runs = 0;                // scenario executions spent
    bool original_failed = false;
    bool shrank = false;         // minimal is strictly smaller than start
  };

  // `run` executes a candidate; `max_runs` bounds total executions
  // (the original counts as one).
  explicit SeedMinimizer(RunFn run, int max_runs = 48);

  // Size metric the minimizer drives down: nodes + chaos events + replicas.
  static int size(const Scenario& s);

  Outcome minimize(const Scenario& start);

 private:
  bool still_fails(const Scenario& candidate, const std::string& signature,
                   int* runs_left);

  RunFn run_;
  int max_runs_;
};

}  // namespace picloud::testing
