#include "testing/invariants.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "apps/httpd.h"
#include "apps/kvstore.h"
#include "apps/lb.h"
#include "net/fabric.h"
#include "os/container.h"
#include "os/node_os.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace picloud::testing {

namespace {

// ---------------------------------------------------------------------------
// Built-in probe catalogue. Each factory closes over the cloud and returns
// the probe; install_builtin_probes() registers every one of them — the
// picloud_analyze invariant-catalogue rule fails the build if a probe_* factory
// is defined here but never registered.
// ---------------------------------------------------------------------------

// No double memory accounting on any node: Raspbian's own footprint plus
// the sum of container cgroup charges must equal the memory manager's used
// bytes exactly. A leaked group (container destroyed without uncharge) or a
// double charge (spawn retry charging twice) breaks the equality.
InvariantChecker::Probe probe_memory_accounting(cloud::PiCloud& cloud) {
  return [&cloud](const InvariantChecker::FailFn& fail) {
    for (size_t i = 0; i < cloud.node_count(); ++i) {
      const os::NodeOs& node = std::as_const(cloud).node(i);
      if (!node.running()) continue;
      std::uint64_t expected = os::NodeOs::kSystemRamBytes;
      for (const os::Container* c : node.containers()) {
        expected += c->memory_usage();
      }
      const std::uint64_t used = node.memory().used();
      if (used != expected) {
        std::ostringstream msg;
        msg << node.hostname() << ": memory used " << used
            << " != system + containers " << expected;
        fail(msg.str());
      }
    }
  };
}

// Instance-record state machine legality: every record carries a known
// state, a name, a host, and a positive admission reservation.
InvariantChecker::Probe probe_instance_record_legality(cloud::PiCloud& cloud) {
  return [&cloud](const InvariantChecker::FailFn& fail) {
    const sim::SimTime now = cloud.simulation().now();
    for (const auto& [name, rec] :
         std::as_const(cloud).master().instance_records()) {
      if (rec.state != "running" && rec.state != "migrating" &&
          rec.state != "lost") {
        fail(name + ": illegal state '" + rec.state + "'");
      }
      if (rec.name != name) {
        fail(name + ": record name '" + rec.name + "' disagrees with key");
      }
      if (rec.hostname.empty()) {
        fail(name + ": record has no hostname");
      }
      if (rec.mem_reserved == 0) {
        fail(name + ": zero memory reservation");
      }
      if (rec.created_at > now) {
        fail(name + ": created in the future");
      }
    }
  };
}

// Registry <-> daemon agreement (quiesce only — legitimately false while a
// migration holds two copies or a crash has not yet been reconciled):
// every "running" record maps to a live container, every live container
// maps to a record, and no container name exists twice in the fleet.
InvariantChecker::Probe probe_registry_agreement(cloud::PiCloud& cloud) {
  return [&cloud](const InvariantChecker::FailFn& fail) {
    std::map<std::string, int> live;
    for (size_t i = 0; i < cloud.node_count(); ++i) {
      const os::NodeOs& node = std::as_const(cloud).node(i);
      if (!node.running()) continue;
      for (const os::Container* c : node.containers()) {
        if (c->state() == os::ContainerState::kRunning ||
            c->state() == os::ContainerState::kFrozen) {
          ++live[c->name()];
        }
      }
    }
    for (const auto& [name, count] : live) {
      if (count > 1) {
        fail("container '" + name + "' exists on " + std::to_string(count) +
             " nodes");
      }
    }
    const auto& records = std::as_const(cloud).master().instance_records();
    for (const auto& [name, rec] : records) {
      if (rec.state != "running") continue;
      cloud::NodeDaemon* host = cloud.daemon_by_hostname(rec.hostname);
      if (host == nullptr || !host->node().running()) {
        fail("record '" + name + "' running on dead node " + rec.hostname);
        continue;
      }
      if (live.find(name) == live.end()) {
        fail("record '" + name + "' running on " + rec.hostname +
             " but no such container in the fleet");
      }
    }
    for (const auto& [name, count] : live) {
      auto it = records.find(name);
      if (it == records.end()) {
        fail("container '" + name + "' has no instance record (orphan)");
      } else if (it->second.state == "lost") {
        fail("container '" + name + "' alive but recorded lost");
      }
    }
  };
}

// Metrics consistency on the master's spawn pipeline: every terminal
// outcome was admitted exactly once, so ok + failed can never exceed
// requests (the double_count_spawn_ok fault knob breaks exactly this).
InvariantChecker::Probe probe_spawn_accounting(cloud::PiCloud& cloud) {
  return [&cloud](const InvariantChecker::FailFn& fail) {
    const util::MetricsRegistry& m = cloud.simulation().metrics();
    const std::uint64_t requests =
        m.counter_value("cloud.master.spawn_requests");
    const std::uint64_t ok = m.counter_value("cloud.master.spawns_ok");
    const std::uint64_t failed = m.counter_value("cloud.master.spawns_failed");
    if (ok + failed > requests) {
      std::ostringstream msg;
      msg << "spawn outcomes exceed admissions: ok " << ok << " + failed "
          << failed << " > requests " << requests;
      fail(msg.str());
    }
  };
}

// Conservation of flows and bytes in the fabric: every started flow is
// completed, failed, or still active; lossy-link drops are a subset of
// failures and sum per-link to the global counter; no link is allocated
// past capacity; per-link byte odometers never run backwards.
InvariantChecker::Probe probe_fabric_conservation(cloud::PiCloud& cloud) {
  auto last_bytes = std::make_shared<std::vector<double>>();
  return [&cloud, last_bytes](const InvariantChecker::FailFn& fail) {
    const net::Fabric& fabric = std::as_const(cloud).fabric();
    const std::uint64_t started = fabric.flows_started();
    const std::uint64_t completed = fabric.flows_completed();
    const std::uint64_t failed = fabric.flows_failed();
    const std::uint64_t active = fabric.active_flow_count();
    if (started != completed + failed + active) {
      std::ostringstream msg;
      msg << "flow conservation: started " << started << " != completed "
          << completed << " + failed " << failed << " + active " << active;
      fail(msg.str());
    }
    if (fabric.flows_lost() > failed) {
      fail("lossy drops " + std::to_string(fabric.flows_lost()) +
           " exceed total failures " + std::to_string(failed));
    }
    std::uint64_t link_drops = 0;
    last_bytes->resize(fabric.links().size(), 0.0);
    for (const net::DirectedLink& link : fabric.links()) {
      link_drops += link.flows_dropped;
      if (link.active_flows < 0) {
        fail("link " + std::to_string(link.id) + " negative active flows");
      }
      if (link.allocated_bps > link.capacity_bps * (1 + 1e-6)) {
        std::ostringstream msg;
        msg << "link " << link.id << " allocated " << link.allocated_bps
            << " bps over capacity " << link.capacity_bps;
        fail(msg.str());
      }
      double& prev = (*last_bytes)[link.id];
      if (link.bytes_carried + 1e-9 < prev) {
        std::ostringstream msg;
        msg << "link " << link.id << " bytes_carried went backwards: "
            << prev << " -> " << link.bytes_carried;
        fail(msg.str());
      }
      prev = link.bytes_carried;
    }
    if (link_drops != fabric.flows_lost()) {
      std::ostringstream msg;
      msg << "per-link drop accounting: sum " << link_drops
          << " != fabric flows_lost " << fabric.flows_lost();
      fail(msg.str());
    }
    // Incremental-solver bookkeeping: the per-link flow sets, active_flows
    // gauges and allocated_bps gauges must agree with a from-scratch
    // recomputation over the active flows. A partial re-solve that forgets
    // to refresh a touched link — or refreshes one it shouldn't — breaks
    // one of these equalities at the next sweep.
    std::vector<int> flow_counts(fabric.links().size(), 0);
    std::vector<double> rate_sums(fabric.links().size(), 0.0);
    for (net::FlowId fid : fabric.active_flow_ids()) {
      const double rate = fabric.flow_rate_bps(fid);
      for (net::LinkId lid : fabric.flow_path(fid)) {
        flow_counts[lid] += 1;
        rate_sums[lid] += rate;
      }
    }
    for (const net::DirectedLink& link : fabric.links()) {
      if (link.active_flows != flow_counts[link.id]) {
        std::ostringstream msg;
        msg << "link " << link.id << " active_flows gauge "
            << link.active_flows << " != recomputed flow count "
            << flow_counts[link.id];
        fail(msg.str());
      }
      if (fabric.link_flow_count(link.id) !=
          static_cast<size_t>(flow_counts[link.id])) {
        std::ostringstream msg;
        msg << "link " << link.id << " solver flow set size "
            << fabric.link_flow_count(link.id)
            << " != recomputed flow count " << flow_counts[link.id];
        fail(msg.str());
      }
      const double tol = std::max(1.0, std::abs(link.allocated_bps)) * 1e-6;
      if (std::abs(link.allocated_bps - rate_sums[link.id]) > tol) {
        std::ostringstream msg;
        msg << "link " << link.id << " allocated gauge " << link.allocated_bps
            << " bps != recomputed rate sum " << rate_sums[link.id];
        fail(msg.str());
      }
    }
  };
}

// Every request a serving app admits is accounted exactly once (DESIGN.md
// §11): received must equal the sum of terminal outcomes plus work still
// queued or in service, at any instant — on every httpd, kvstore and lb
// instance in the fleet. A lost update anywhere in the admission queue,
// brownout path or shed path breaks the equality.
InvariantChecker::Probe probe_app_conservation(cloud::PiCloud& cloud) {
  return [&cloud](const InvariantChecker::FailFn& fail) {
    for (size_t i = 0; i < cloud.node_count(); ++i) {
      const os::NodeOs& node = std::as_const(cloud).node(i);
      if (!node.running()) continue;
      for (const os::Container* c : node.containers()) {
        const os::ContainerApp* app = c->app();
        if (app == nullptr) continue;
        const std::string kind = app->kind();
        std::ostringstream msg;
        if (kind == "httpd") {
          const auto* h = static_cast<const apps::HttpdApp*>(app);
          const std::uint64_t accounted =
              h->served_ok() + h->served_brownout() + h->shed_admission() +
              h->shed_deadline() + h->refused_at_start() + h->queue_depth() +
              static_cast<std::uint64_t>(h->in_service());
          if (h->requests_received() != accounted) {
            msg << c->name() << ": httpd received " << h->requests_received()
                << " != accounted " << accounted;
            fail(msg.str());
          }
        } else if (kind == "kvstore") {
          const auto* k = static_cast<const apps::KvStoreApp*>(app);
          const std::uint64_t accounted =
              k->ops_served() + k->ops_rejected() + k->shed_admission() +
              k->shed_deadline() + k->refused_at_start() + k->queue_depth() +
              static_cast<std::uint64_t>(k->in_service());
          if (k->ops_received() != accounted) {
            msg << c->name() << ": kvstore received " << k->ops_received()
                << " != accounted " << accounted;
            fail(msg.str());
          }
        } else if (kind == "lb") {
          const auto* lb = static_cast<const apps::LbApp*>(app);
          const std::uint64_t accounted =
              lb->responses_ok() + lb->responses_error() +
              lb->dropped_in_flight() + lb->in_flight();
          if (lb->requests_received() != accounted) {
            msg << c->name() << ": lb received " << lb->requests_received()
                << " != accounted " << accounted;
            fail(msg.str());
          }
        }
      }
    }
  };
}

// Retry amplification stays inside the budget: a load balancer may send at
// most ratio * requests + burst retries on top of the original attempts.
// If this fails, failover is amplifying an overload (retry storm).
InvariantChecker::Probe probe_lb_retry_budget(cloud::PiCloud& cloud) {
  return [&cloud](const InvariantChecker::FailFn& fail) {
    for (size_t i = 0; i < cloud.node_count(); ++i) {
      const os::NodeOs& node = std::as_const(cloud).node(i);
      if (!node.running()) continue;
      for (const os::Container* c : node.containers()) {
        const os::ContainerApp* app = c->app();
        if (app == nullptr || app->kind() != "lb") continue;
        const auto* lb = static_cast<const apps::LbApp*>(app);
        const double budget =
            lb->params().retry_budget_ratio *
                static_cast<double>(lb->requests_forwarded()) +
            lb->params().retry_budget_burst;
        const std::uint64_t extra =
            lb->attempts_forwarded() - lb->requests_forwarded();
        if (static_cast<double>(extra) > budget + 1e-6 ||
            lb->retries_attempted() != extra) {
          std::ostringstream msg;
          msg << c->name() << ": lb retries " << extra << " (counter "
              << lb->retries_attempted() << ") exceed budget " << budget;
          fail(msg.str());
        }
      }
    }
  };
}

// At quiesce every backend a load balancer still considers healthy must be
// a live, running container at that address — the LB never routes into the
// void once churn has settled (ejected-and-dead backends must have been
// dropped by the endpoint hook or the breaker).
InvariantChecker::Probe probe_lb_routing(cloud::PiCloud& cloud) {
  return [&cloud](const InvariantChecker::FailFn& fail) {
    std::set<std::uint32_t> live_ips;
    for (size_t i = 0; i < cloud.node_count(); ++i) {
      const os::NodeOs& node = std::as_const(cloud).node(i);
      if (!node.running()) continue;
      for (const os::Container* c : node.containers()) {
        if (c->state() == os::ContainerState::kRunning) {
          live_ips.insert(c->ip().value());
        }
      }
    }
    for (size_t i = 0; i < cloud.node_count(); ++i) {
      const os::NodeOs& node = std::as_const(cloud).node(i);
      if (!node.running()) continue;
      for (const os::Container* c : node.containers()) {
        const os::ContainerApp* app = c->app();
        if (app == nullptr || app->kind() != "lb") continue;
        const auto* lb = static_cast<const apps::LbApp*>(app);
        for (net::Ipv4Addr ip : lb->healthy_backends()) {
          if (live_ips.count(ip.value()) == 0) {
            fail(c->name() + ": healthy rotation contains dead backend " +
                 ip.to_string());
          }
        }
      }
    }
  };
}

// Post-chaos convergence (quiesce only): every fault in a scenario is
// paired with a recovery, so by quiesce the whole fleet must be powered,
// registered, heartbeating within the liveness window, with no migration
// still in flight.
InvariantChecker::Probe probe_convergence(cloud::PiCloud& cloud) {
  return [&cloud](const InvariantChecker::FailFn& fail) {
    for (size_t i = 0; i < cloud.node_count(); ++i) {
      cloud::NodeDaemon& daemon = cloud.daemon(i);
      if (!daemon.node().running()) {
        fail("node " + daemon.hostname() + " still down at quiesce");
        continue;
      }
      if (!daemon.registered()) {
        fail("node " + daemon.hostname() + " not registered at quiesce");
      }
      if (!cloud.master().monitor().alive(daemon.hostname())) {
        fail("node " + daemon.hostname() + " not heartbeating at quiesce");
      }
    }
    const std::uint64_t in_flight = cloud.master().migrations().in_flight();
    if (in_flight != 0) {
      fail(std::to_string(in_flight) + " migrations still in flight");
    }
  };
}

}  // namespace

InvariantChecker::InvariantChecker(sim::Simulation& sim,
                                   cloud::PiCloud& cloud)
    : sim_(sim),
      cloud_(cloud),
      probe_runs_(&sim.metrics().counter("testing.invariants.probe_runs")),
      violation_count_(&sim.metrics().counter("testing.invariants.violations")),
      sweep_count_(&sim.metrics().counter("testing.invariants.sweeps")),
      quiesce_count_(
          &sim.metrics().counter("testing.invariants.quiesce_runs")) {}

void InvariantChecker::register_probe(std::string name, Phase phase,
                                      Probe probe) {
  probes_.push_back(Entry{std::move(name), phase, std::move(probe)});
}

void InvariantChecker::install_builtin_probes() {
  register_probe("memory-accounting", Phase::kSweep,
                 probe_memory_accounting(cloud_));
  register_probe("instance-record-legality", Phase::kSweep,
                 probe_instance_record_legality(cloud_));
  register_probe("spawn-accounting", Phase::kSweep,
                 probe_spawn_accounting(cloud_));
  register_probe("fabric-conservation", Phase::kSweep,
                 probe_fabric_conservation(cloud_));
  register_probe("app-conservation", Phase::kSweep,
                 probe_app_conservation(cloud_));
  register_probe("lb-retry-budget", Phase::kSweep,
                 probe_lb_retry_budget(cloud_));
  register_probe("registry-agreement", Phase::kQuiesce,
                 probe_registry_agreement(cloud_));
  register_probe("lb-routing", Phase::kQuiesce, probe_lb_routing(cloud_));
  register_probe("post-chaos-convergence", Phase::kQuiesce,
                 probe_convergence(cloud_));
}

void InvariantChecker::run_phase(bool include_quiesce) {
  util::Counter& probe_runs = *probe_runs_;
  util::Counter& violation_count = *violation_count_;
  const std::int64_t now_ns = sim_.now().ns();
  for (const Entry& entry : probes_) {
    if (entry.phase == Phase::kQuiesce && !include_quiesce) continue;
    probe_runs.inc();
    const std::string& probe_name = entry.name;
    auto fail = [this, &violation_count, &probe_name,
                 now_ns](const std::string& message) {
      // Dedup: a continuously-violated invariant records once per distinct
      // message, with a repeat count, so reports stay readable.
      for (size_t i = 0; i < violations_.size(); ++i) {
        if (violations_[i].probe == probe_name &&
            violations_[i].message == message) {
          ++repeat_counts_[i];
          return;
        }
      }
      violation_count.inc();
      violations_.push_back(Violation{probe_name, now_ns, message});
      repeat_counts_.push_back(1);
      PICLOUD_TRACE(sim_.trace(), "testing.invariants", "violation",
                    {"probe", probe_name}, {"message", message});
    };
    entry.probe(fail);
  }
}

void InvariantChecker::sweep() {
  ++sweeps_;
  sweep_count_->inc();
  run_phase(/*include_quiesce=*/false);
}

void InvariantChecker::run_quiesce() {
  quiesce_count_->inc();
  run_phase(/*include_quiesce=*/true);
}

std::string InvariantChecker::report(std::uint64_t seed,
                                     std::size_t trace_tail) const {
  std::ostringstream out;
  out << "invariant report: seed=" << seed << " t="
      << sim_.now().to_seconds() << "s sweeps=" << sweeps_ << " violations="
      << violations_.size() << "\n";
  for (size_t i = 0; i < violations_.size(); ++i) {
    const Violation& v = violations_[i];
    out << "  [t=" << static_cast<double>(v.t_ns) * 1e-9 << "s] " << v.probe
        << ": " << v.message;
    if (repeat_counts_[i] > 1) out << " (x" << repeat_counts_[i] << ")";
    out << "\n";
  }
  const auto events = sim_.trace().events();
  if (!events.empty() && !violations_.empty()) {
    out << "  trace tail (" << std::min(trace_tail, events.size()) << " of "
        << events.size() << " retained):\n";
    const size_t start =
        events.size() > trace_tail ? events.size() - trace_tail : 0;
    for (size_t i = start; i < events.size(); ++i) {
      out << "    " << events[i].to_string() << "\n";
    }
  }
  return out.str();
}

}  // namespace picloud::testing
