#include "mc/harness.h"

#include <map>
#include <memory>
#include <utility>

#include "cloud/cloud.h"
#include "cloud/node_daemon.h"
#include "net/fabric.h"
#include "proto/rest.h"
#include "sim/simulation.h"
#include "util/check.h"

namespace picloud::mc {

namespace {

// FNV-1a end-state digest — the same construction testing/runner.cc uses
// (DESIGN.md §10), so explorer digests and fuzz digests speak one language.
class Digest {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ULL;
    }
  }
  void add(const std::string& s) {
    for (unsigned char c : s) {
      hash_ ^= c;
      hash_ *= 0x100000001B3ULL;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

std::uint64_t end_state_digest(sim::Simulation& sim, cloud::PiCloud& cloud) {
  Digest d;
  d.add(sim.events_executed());
  d.add(static_cast<std::uint64_t>(sim.now().ns()));
  d.add(sim.metrics().snapshot().dump());
  for (const auto& [name, rec] :
       std::as_const(cloud).master().instance_records()) {
    d.add(name);
    d.add(rec.state);
    d.add(rec.hostname);
    d.add(rec.mem_reserved);
    d.add(static_cast<std::uint64_t>(rec.ip.value()));
  }
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    const os::NodeOs& node = std::as_const(cloud).node(i);
    d.add(node.hostname());
    d.add(static_cast<std::uint64_t>(node.running() ? 1 : 0));
    d.add(node.running() ? node.memory().used() : 0);
  }
  return d.value();
}

// The parking strategy: control-plane schedule points are held in a ready
// vector (offer order == the event queue's documented (time, seq) order);
// everything else — node heartbeats, registration, data-plane chatter —
// runs inline, exactly as in a default run, to keep the decision tree about
// the operations under test rather than the periodic background storm.
class ParkStrategy final : public sim::ScheduleStrategy {
 public:
  struct Parked {
    sim::SchedulePoint point;
    std::function<void()> run;
    std::string label;  // point.label + "#<per-episode occurrence>"
    std::int64_t offered_ns = 0;
  };

  ParkStrategy(sim::Simulation& sim, const std::string& master_ip,
               const std::string& admin_ip)
      : sim_(sim), master_ip_(master_ip), admin_ip_(admin_ip) {}

  void offer(const sim::SchedulePoint& point,
             std::function<void()> run) override {
    if (!should_park(point)) {
      run();
      return;
    }
    Parked p;
    p.point = point;
    p.run = std::move(run);
    p.label = point.label + "#" + std::to_string(++occurrence_[point.label]);
    p.offered_ns = sim_.now().ns();
    parked_.push_back(std::move(p));
  }

  bool empty() const { return parked_.empty(); }
  const std::vector<Parked>& parked() const { return parked_; }
  std::int64_t first_offer_ns() const { return parked_.front().offered_ns; }

  // Removes and returns parked action `i`.
  Parked take(std::size_t i) {
    PICLOUD_CHECK_LT(i, parked_.size());
    Parked p = std::move(parked_[i]);
    parked_.erase(parked_.begin() + static_cast<std::ptrdiff_t>(i));
    return p;
  }

 private:
  bool should_park(const sim::SchedulePoint& point) const {
    switch (point.kind) {
      case sim::SchedulePointKind::kFault:
        return true;
      case sim::SchedulePointKind::kTimeout:
        // Master proxy/audit attempts and admin calls; node-daemon client
        // timeouts (heartbeats) stay on the default path.
        return point.src_ip == master_ip_ || point.src_ip == admin_ip_;
      case sim::SchedulePointKind::kDelivery:
        // Control-plane RPCs: anything to or from a node daemon's REST
        // server, plus admin-workstation traffic. Heartbeats/registration
        // (node client -> master server) are background noise.
        return point.src_port == cloud::NodeDaemon::kPort ||
               point.dst_port == cloud::NodeDaemon::kPort ||
               point.src_ip == admin_ip_ || point.dst_ip == admin_ip_;
    }
    return false;
  }

  sim::Simulation& sim_;
  std::string master_ip_;
  std::string admin_ip_;
  std::vector<Parked> parked_;
  std::map<std::string, int> occurrence_;
};

// Mutable flags the canned operations flip as they complete.
struct OpsState {
  int spawns_pending = 0;
  bool migration_done = false;
  bool crash_done = false;
  bool blip_applied = false;
  bool heal_done = false;
  std::uint64_t sweeps_target = 0;
  std::unique_ptr<proto::RestClient> admin;
};

void start_ops(const McConfig& config, sim::Simulation& sim,
               cloud::PiCloud& cloud, OpsState& state) {
  switch (config.kind) {
    case McConfig::Kind::kDuplicateSpawn: {
      // Two concurrent POST /instances with one idempotency key: the
      // interleaving of their deliveries against the proxied daemon spawn
      // exercises the admit/replay/coalesce paths of both caches.
      state.spawns_pending = 2;
      state.admin = std::make_unique<proto::RestClient>(
          cloud.network(), cloud.admin_ip(), 49400, "mc.admin.rest");
      for (int i = 0; i < 2; ++i) {
        util::Json body = util::Json::object();
        body.set("name", "dup-0");
        body.set("idem", "mc/dup-0");
        state.admin->call(cloud.master_ip(), cloud::PiMaster::kPort,
                          proto::Method::kPost, "/instances", body,
                          [&state](util::Result<proto::HttpResponse>) {
                            --state.spawns_pending;
                          });
      }
      break;
    }
    case McConfig::Kind::kMigrationVsSourceCrash: {
      // Drive the migration through the admin REST route rather than
      // calling PiMaster::migrate_instance() directly: the coordinator's
      // own node access is in-process, so the request/response deliveries
      // on the wire are what gives the crash fault something to race.
      state.admin = std::make_unique<proto::RestClient>(
          cloud.network(), cloud.admin_ip(), 49400, "mc.admin.rest");
      util::Json body = util::Json::object();
      body.set("to", "pi-r0-01");
      body.set("live", true);
      body.set("idem", "mc/migrate-web-0");
      // Sent twice with one idempotency key: the duplicate exercises the
      // idem admit/coalesce path while the crash races both deliveries.
      state.spawns_pending = 2;
      for (int i = 0; i < 2; ++i) {
        state.admin->call(cloud.master_ip(), cloud::PiMaster::kPort,
                          proto::Method::kPost, "/instances/web-0/migrate",
                          body, [&state](util::Result<proto::HttpResponse>) {
                            --state.spawns_pending;
                            if (state.spawns_pending == 0) {
                              state.migration_done = true;
                            }
                          });
      }
      // The crash is offered while the migrate request is still on the
      // wire, so the explorer decides whether the source dies before the
      // master even hears about the migration or only once it is underway.
      cloud.schedule_fault(sim::Duration::millis(1), "crash-pi-r0-00",
                           [&cloud, &state]() {
                             cloud.daemon(0).crash();
                             state.crash_done = true;
                           });
      // The crashed source comes back during settle so the convergence
      // probes can demand a fully-healthy cluster at quiesce. Plain timer:
      // restart/heal ordering is not part of the explored race.
      sim.after(sim::Duration::seconds(40),
                [&cloud]() { cloud.daemon(0).start(); });
      break;
    }
    case McConfig::Kind::kReconcilerVsMasterBlip: {
      const net::NetNodeId master_node = cloud.master().fabric_node();
      PICLOUD_CHECK(!cloud.fabric().node(master_node).out_links.empty());
      const net::LinkId uplink =
          cloud.fabric().node(master_node).out_links.front();
      state.sweeps_target = cloud.master().reconciler().stats().sweeps + 2;
      cloud.schedule_fault(sim::Duration::millis(500), "master-blip",
                           [&cloud, uplink, &state]() {
                             cloud.fabric().set_link_pair_up(uplink, false);
                             state.blip_applied = true;
                           });
      sim.after(sim::Duration::seconds(8), [&cloud, uplink, &state]() {
        cloud.fabric().set_link_pair_up(uplink, true);
        state.heal_done = true;
      });
      break;
    }
  }
}

bool ops_done(const McConfig& config, cloud::PiCloud& cloud,
              const OpsState& state) {
  switch (config.kind) {
    case McConfig::Kind::kDuplicateSpawn:
      return state.spawns_pending == 0;
    case McConfig::Kind::kMigrationVsSourceCrash:
      return state.migration_done && state.crash_done;
    case McConfig::Kind::kReconcilerVsMasterBlip:
      return state.blip_applied && state.heal_done &&
             cloud.master().reconciler().stats().sweeps >=
                 state.sweeps_target;
  }
  return true;
}

// Runaway guard: no canned config legitimately needs this many decisions.
constexpr std::size_t kMaxSteps = 512;

}  // namespace

std::string EpisodeResult::violation_signature() const {
  if (violations.empty()) return "";
  return "probe:" + violations.front().probe;
}

util::Result<McConfig> mc_config(const std::string& name) {
  McConfig config;
  config.name = name;
  if (name == "duplicate-spawn") {
    config.kind = McConfig::Kind::kDuplicateSpawn;
    config.settle = sim::Duration::seconds(30);
    return config;
  }
  if (name == "migration-vs-source-crash") {
    config.kind = McConfig::Kind::kMigrationVsSourceCrash;
    config.settle = sim::Duration::seconds(90);
    return config;
  }
  if (name == "reconciler-vs-master-blip") {
    config.kind = McConfig::Kind::kReconcilerVsMasterBlip;
    config.settle = sim::Duration::seconds(60);
    return config;
  }
  return util::Error::make("bad_config", "unknown mc config: " + name);
}

std::vector<std::string> list_mc_configs() {
  return {"duplicate-spawn", "migration-vs-source-crash",
          "reconciler-vs-master-blip"};
}

EpisodeResult run_episode(const McConfig& config,
                          const std::vector<std::string>& choices) {
  EpisodeResult result;

  sim::Simulation sim(config.seed);
  cloud::PiCloudConfig cloud_config;
  cloud_config.racks = 1;
  cloud_config.hosts_per_rack = config.hosts;
  if (config.kind == McConfig::Kind::kReconcilerVsMasterBlip) {
    // The 8s blip must always contain an anti-entropy sweep.
    cloud_config.reconcile.period = sim::Duration::seconds(5);
  }
  cloud::PiCloud cloud(sim, cloud_config);
  cloud.power_on();
  PICLOUD_CHECK(cloud.await_ready()) << "mc cluster failed to boot";
  cloud.run_for(sim::Duration::seconds(2));

  testing::InvariantChecker checker(sim, cloud);
  checker.install_builtin_probes();

  // Baseline workload (un-intercepted — identical across every episode).
  if (config.kind != McConfig::Kind::kDuplicateSpawn) {
    cloud::PiMaster::SpawnSpec spec;
    spec.name = "web-0";
    spec.memory_limit = 32ull << 20;
    spec.hostname = "pi-r0-00";
    auto rec = cloud.spawn_and_wait(spec);
    PICLOUD_CHECK(rec.ok()) << "mc baseline spawn failed: "
                            << rec.error().message;
  }

  OpsState state;
  ParkStrategy strategy(sim, cloud.master_ip().to_string(),
                        cloud.admin_ip().to_string());
  sim.schedule_points().install(&strategy);
  start_ops(config, sim, cloud, state);

  const std::int64_t horizon_ns = (sim.now() + config.horizon).ns();
  std::size_t next_choice = 0;
  bool hit_horizon = false;

  while (true) {
    // Drive the simulation until the episode is over or a parked action
    // cannot be deferred past its reorder window any longer.
    bool decision = false;
    while (true) {
      if (strategy.empty() && ops_done(config, cloud, state)) break;
      if (!strategy.empty()) {
        const std::int64_t deadline =
            strategy.first_offer_ns() + config.window.ns();
        if (!sim.has_events() || sim.next_event_time().ns() > deadline) {
          decision = true;
          break;
        }
      }
      if (!sim.has_events() || sim.now().ns() > horizon_ns) {
        hit_horizon = true;
        break;
      }
      sim.step();
    }
    if (!decision) break;

    if (ops_done(config, cloud, state)) {
      // The racing operations finished while actions were still parked
      // (trailing responses, stale expiries). Nothing is left to explore:
      // drain them in offer order — still a deterministic function of the
      // choices made — without recording further decisions.
      while (!strategy.empty()) {
        ParkStrategy::Parked p = strategy.take(0);
        p.run();
        checker.sweep();
      }
      break;
    }

    EpisodeStep step;
    for (const ParkStrategy::Parked& p : strategy.parked()) {
      step.ready.push_back(p.label);
      step.objects.push_back(p.point.object);
      step.kinds.push_back(p.point.kind);
    }
    std::size_t pick = 0;
    if (next_choice < choices.size()) {
      pick = step.ready.size();
      for (std::size_t i = 0; i < step.ready.size(); ++i) {
        if (step.ready[i] == choices[next_choice]) {
          pick = i;
          break;
        }
      }
      PICLOUD_CHECK_LT(pick, step.ready.size())
          << "schedule choice '" << choices[next_choice]
          << "' is not in the ready set at decision " << result.steps.size();
      ++next_choice;
    }
    step.chosen = step.ready[pick];
    result.steps.push_back(std::move(step));

    ParkStrategy::Parked action = strategy.take(pick);
    action.run();
    checker.sweep();

    PICLOUD_CHECK_LE(result.steps.size(), kMaxSteps)
        << "mc episode runaway: over " << kMaxSteps << " decisions";
  }

  sim.schedule_points().uninstall();
  cloud.run_for(config.settle);
  checker.run_quiesce();

  result.completed = !hit_horizon && next_choice == choices.size();
  result.violations = checker.violations();
  result.digest = end_state_digest(sim, cloud);
  result.events = sim.events_executed();
  return result;
}

util::Result<EpisodeResult> replay_schedule(const Schedule& schedule) {
  auto config = mc_config(schedule.config);
  if (!config.ok()) return config.error();
  config.value().seed = schedule.seed;
  return run_episode(config.value(), schedule.choices);
}

}  // namespace picloud::mc
