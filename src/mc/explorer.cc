#include "mc/explorer.h"

#include <algorithm>
#include <set>

#include "util/check.h"
#include "util/logging.h"

namespace picloud::mc {

namespace {

// Two actions are dependent when reordering them can change the outcome:
// conservatively, any fault against anything, otherwise same dependence
// object (same destination for deliveries, same client for timeouts).
bool dependent(sim::SchedulePointKind kind_a, const std::string& object_a,
               sim::SchedulePointKind kind_b, const std::string& object_b) {
  if (kind_a == sim::SchedulePointKind::kFault ||
      kind_b == sim::SchedulePointKind::kFault) {
    return true;
  }
  return object_a == object_b;
}

// One frame of the DFS: a decision point along the current schedule prefix.
struct StackNode {
  std::vector<std::string> ready;
  std::vector<std::string> objects;
  std::vector<sim::SchedulePointKind> kinds;
  std::string chosen;
  std::set<std::string> done;       // fully-explored choices
  std::set<std::string> backtrack;  // scheduled choices
  std::set<std::string> sleep;      // redundant here (explored by a sibling)

  std::size_t index_of(const std::string& label) const {
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (ready[i] == label) return i;
    }
    return ready.size();
  }
};

}  // namespace

Explorer::Explorer(McConfig config, ExplorerOptions options)
    : config_(std::move(config)), options_(options) {}

ExploreResult Explorer::run() {
  ExploreResult result;
  util::Counter& episodes_c = metrics_.counter("mc.episodes");
  util::Counter& transitions_c = metrics_.counter("mc.transitions");
  util::Counter& sleep_skips_c = metrics_.counter("mc.sleep_skips");
  util::Counter& prunes_c = metrics_.counter("mc.state_prunes");
  util::Counter& violations_c = metrics_.counter("mc.violations");
  util::Gauge& depth_g = metrics_.gauge("mc.max_depth");

  std::vector<StackNode> stack;
  std::vector<std::string> prefix;
  std::set<std::uint64_t> digests_seen;

  while (true) {
    if (result.episodes >= options_.max_episodes ||
        result.transitions >= options_.max_transitions) {
      result.exhausted = false;
      break;
    }

    EpisodeResult episode = run_episode(config_, prefix);
    ++result.episodes;
    episodes_c.inc();
    result.transitions += episode.steps.size();
    transitions_c.inc(episode.steps.size());
    result.max_depth = std::max(result.max_depth,
                                static_cast<std::uint64_t>(
                                    episode.steps.size()));
    depth_g.set(static_cast<double>(result.max_depth));
    const bool new_digest = digests_seen.insert(episode.digest).second;

    const std::string signature = episode.violation_signature();
    if (!signature.empty()) {
      violations_c.inc();
      result.found_violation = true;
      result.violation_signature = signature;
      result.counterexample.config = config_.name;
      result.counterexample.seed = config_.seed;
      for (const EpisodeStep& step : episode.steps) {
        result.counterexample.choices.push_back(step.chosen);
      }
      result.counterexample.violation = signature;
      result.counterexample.digest = episode.digest;
      result.exhausted = false;
      break;
    }

    // Fold the episode into the stack: verify the replayed prefix, then push
    // a frame per fresh decision. Sleep sets are recomputed top-down so a
    // sibling switch deeper in the tree sees its ancestors' current done
    // sets.
    PICLOUD_CHECK_GE(episode.steps.size(), stack.size())
        << "mc episode diverged: shorter than its forced prefix";
    for (std::size_t i = 0; i < episode.steps.size(); ++i) {
      const EpisodeStep& step = episode.steps[i];
      if (i < stack.size()) {
        PICLOUD_CHECK(stack[i].ready == step.ready &&
                      stack[i].chosen == step.chosen)
            << "mc determinism breach: replayed decision " << i
            << " produced a different ready set";
        continue;
      }
      StackNode node;
      node.ready = step.ready;
      node.objects = step.objects;
      node.kinds = step.kinds;
      node.chosen = step.chosen;
      node.backtrack.insert(step.chosen);
      if (!options_.dpor) {
        // Naive enumeration: every ready action is a scheduled branch.
        for (const std::string& label : step.ready) {
          node.backtrack.insert(label);
        }
      }
      stack.push_back(std::move(node));
    }
    // Sleep propagation: sleep(i+1) = {b in sleep(i) ∪ (done(i) \ chosen) :
    // independent(b, chosen(i))}.
    if (options_.dpor) {
      for (std::size_t i = 0; i + 1 < stack.size(); ++i) {
        const StackNode& n = stack[i];
        const std::size_t ci = n.index_of(n.chosen);
        std::set<std::string> carried = n.sleep;
        for (const std::string& d : n.done) {
          if (d != n.chosen) carried.insert(d);
        }
        std::set<std::string> child_sleep;
        for (const std::string& b : carried) {
          const std::size_t bi = n.index_of(b);
          if (bi >= n.ready.size() || ci >= n.ready.size()) continue;
          if (!dependent(n.kinds[bi], n.objects[bi], n.kinds[ci],
                         n.objects[ci])) {
            child_sleep.insert(b);
          }
        }
        stack[i + 1].sleep = std::move(child_sleep);
      }
    }

    // DPOR race analysis over the executed trace: seed backtrack points.
    const bool analyze =
        options_.dpor && (!options_.state_prune || new_digest);
    if (options_.state_prune && !new_digest) {
      ++result.state_prunes;
      prunes_c.inc();
    }
    if (analyze) {
      const std::size_t n = stack.size();
      // hb[i][j]: transitive closure of the dependence relation over the
      // executed order (i ran before j). Traces are tens of steps; O(n^3)
      // over bools is noise next to an episode's simulation cost.
      std::vector<std::vector<bool>> hb(n, std::vector<bool>(n, false));
      auto dep_steps = [&](std::size_t i, std::size_t j) {
        const std::size_t ii = stack[i].index_of(stack[i].chosen);
        const std::size_t jj = stack[j].index_of(stack[j].chosen);
        return dependent(stack[i].kinds[ii], stack[i].objects[ii],
                         stack[j].kinds[jj], stack[j].objects[jj]);
      };
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < j; ++i) {
          if (!dep_steps(i, j)) continue;
          hb[i][j] = true;
          for (std::size_t k = 0; k < i; ++k) {
            if (hb[k][i]) hb[k][j] = true;
          }
        }
      }
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < j; ++i) {
          if (!dep_steps(i, j)) continue;
          // A race needs no causal chain through an intermediate step.
          bool chained = false;
          for (std::size_t k = i + 1; k < j && !chained; ++k) {
            chained = hb[i][k] && hb[k][j];
          }
          if (chained) continue;
          // Schedule the later racer before step i. If it was not yet
          // parked at i, conservatively schedule every alternative.
          StackNode& site = stack[i];
          const std::string& racer = stack[j].chosen;
          if (site.index_of(racer) < site.ready.size()) {
            site.backtrack.insert(racer);
          } else {
            for (const std::string& label : site.ready) {
              site.backtrack.insert(label);
            }
          }
        }
      }
    }

    // Backtrack: deepest frame with an unexplored, not-asleep candidate.
    bool advanced = false;
    while (!stack.empty()) {
      StackNode& top = stack.back();
      top.done.insert(top.chosen);
      std::string next;
      for (const std::string& c : top.backtrack) {
        if (top.done.count(c) > 0) continue;
        if (top.sleep.count(c) > 0) {
          // Explored from an equivalent sibling ordering.
          top.done.insert(c);
          ++result.sleep_skips;
          sleep_skips_c.inc();
          continue;
        }
        next = c;
        break;
      }
      if (next.empty()) {
        stack.pop_back();
        continue;
      }
      top.chosen = next;
      advanced = true;
      break;
    }
    if (!advanced) {
      result.exhausted = true;
      break;
    }
    prefix.clear();
    for (const StackNode& node : stack) prefix.push_back(node.chosen);
  }

  result.end_digests.assign(digests_seen.begin(), digests_seen.end());
  return result;
}

Schedule minimize_schedule(const Schedule& schedule) {
  auto config = mc_config(schedule.config);
  PICLOUD_CHECK(config.ok()) << "minimize: " << config.error().message;
  config.value().seed = schedule.seed;
  for (std::size_t k = 0; k <= schedule.choices.size(); ++k) {
    std::vector<std::string> prefix(schedule.choices.begin(),
                                    schedule.choices.begin() +
                                        static_cast<std::ptrdiff_t>(k));
    EpisodeResult episode = run_episode(config.value(), prefix);
    if (episode.violation_signature() == schedule.violation) {
      Schedule minimized = schedule;
      minimized.choices = std::move(prefix);
      minimized.digest = episode.digest;
      return minimized;
    }
  }
  // Unreachable when the input schedule itself reproduces (k == n re-runs
  // it); return it unchanged as a defensive fallback.
  LOG_WARN("mc", "minimize: schedule no longer reproduces %s",
           schedule.violation.c_str());
  return schedule;
}

}  // namespace picloud::mc
