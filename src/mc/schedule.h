// mc::Schedule — a serialized control-plane interleaving (DESIGN.md §13).
//
// A schedule is the explorer's counterexample format: the canned config it
// ran, the seed, and the ordered list of decision labels it forced at each
// schedule point. Past the recorded prefix the episode continues under the
// default (FIFO offer-order) strategy, so a short prefix fully determines a
// run. replay_schedule() (mc/harness.h) re-executes one bit-identically:
// same violation signature, same end-state digest.
//
// JSON round-trip mirrors testing/scenario.h: integers that must not lose
// precision (the digest) travel as hex strings, everything else as plain
// JSON values, so a schedule file is diffable and hand-editable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/result.h"

namespace picloud::mc {

struct Schedule {
  std::string config;                 // canned config name (mc/harness.h)
  std::uint64_t seed = 1;
  std::vector<std::string> choices;   // decision labels, in decision order
  // What the recorded run produced — replay asserts both.
  std::string violation;              // failure signature ("" = clean run)
  std::uint64_t digest = 0;           // FNV-1a end-state digest

  util::Json to_json() const;
  static util::Result<Schedule> from_json(const util::Json& json);

  std::string dump() const;  // pretty JSON
  static util::Result<Schedule> parse(const std::string& text);
};

}  // namespace picloud::mc
