// mc harness — runs ONE control-plane episode under a forced schedule prefix
// (DESIGN.md §13).
//
// An episode boots a small PiCloud, lets it reach steady state, installs a
// parking ScheduleStrategy on the simulation's SchedulePoint hub and then
// launches the config's racing operations (a migration against a source
// crash, a reconciler sweep against a master uplink blip, two idempotent
// spawns of the same instance). From that moment the harness single-steps
// the simulation: hooked actions (control-plane deliveries, REST timeouts,
// faults) park in a ready set instead of firing, and whenever letting the
// clock advance further would push a parked action past its reorder window
// the harness stops and makes a *decision* — it picks one parked action and
// executes it at the current instant. The sequence of decisions is the
// schedule; everything between decisions is the ordinary deterministic
// event loop.
//
// Decisions are identified by stable labels: the SchedulePoint label plus a
// per-episode FIFO occurrence counter ("deliver:10.0.0.2:9000>...#2"), so a
// recorded choice list replays exactly (run_episode PICLOUD_CHECKs that the
// ready set at each replayed decision matches the recording). Invariant
// probes (testing::InvariantChecker) sweep after every decision and the
// full catalogue runs at quiesce; the end state is digested with the same
// FNV-1a construction as testing/runner.cc, so "bit-identical replay" is a
// single uint64 comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mc/schedule.h"
#include "sim/schedule_point.h"
#include "sim/time.h"
#include "testing/invariants.h"
#include "util/result.h"

namespace picloud::mc {

// A canned small configuration. All three ship 1 rack x 2 hosts; they differ
// in which racing operations start once the strategy is installed.
struct McConfig {
  enum class Kind {
    kDuplicateSpawn,          // two POST /instances with one idempotency key
    kMigrationVsSourceCrash,  // live migration racing a source-node crash
    kReconcilerVsMasterBlip,  // anti-entropy sweep racing a master blip
  };

  std::string name;
  Kind kind = Kind::kDuplicateSpawn;
  std::uint64_t seed = 1;
  int hosts = 2;
  // Reorder window: a parked action may be deferred until (first parked
  // offer time + window). Bounds the ready set — and the search space —
  // while still letting causally-close actions commute.
  sim::Duration window = sim::Duration::millis(200);
  // How long the episode runs after the last decision before quiesce probes.
  sim::Duration settle = sim::Duration::seconds(90);
  // Safety horizon for the decision phase (sim time, from ops start).
  sim::Duration horizon = sim::Duration::seconds(300);
};

// Lookup by name ("duplicate-spawn", "migration-vs-source-crash",
// "reconciler-vs-master-blip"); list_mc_configs() returns the valid names.
util::Result<McConfig> mc_config(const std::string& name);
std::vector<std::string> list_mc_configs();

// One decision the episode made: the parked actions that were ready (in
// offer order — the EventQueue's documented (time, seq) order makes this
// deterministic) and which label was executed.
struct EpisodeStep {
  std::vector<std::string> ready;             // occurrence-suffixed labels
  std::vector<std::string> objects;           // dependence object per entry
  std::vector<sim::SchedulePointKind> kinds;  // kind per entry
  std::string chosen;
};

struct EpisodeResult {
  bool completed = false;  // ops finished inside the horizon
  std::vector<EpisodeStep> steps;
  std::vector<testing::Violation> violations;
  std::uint64_t digest = 0;  // FNV-1a end state (same fields as runner.cc)
  std::uint64_t events = 0;  // sim events executed
  // "probe:<name>" for the first violation, "" for a clean episode.
  std::string violation_signature() const;
};

// Runs one episode of `config`, forcing `choices` at the first decisions and
// the default (first-offered) action past the end of the list. Deterministic:
// same config + same choices => bit-identical EpisodeResult.
EpisodeResult run_episode(const McConfig& config,
                          const std::vector<std::string>& choices);

// Re-executes a serialized counterexample: resolves the config by name and
// replays its recorded choices. The caller compares digest / signature
// against the schedule's recorded values.
util::Result<EpisodeResult> replay_schedule(const Schedule& schedule);

}  // namespace picloud::mc
