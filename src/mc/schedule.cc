#include "mc/schedule.h"

#include <cstdio>
#include <cstdlib>

namespace picloud::mc {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

util::Json Schedule::to_json() const {
  util::Json j = util::Json::object();
  j.set("config", config);
  j.set("seed", static_cast<unsigned long long>(seed));
  util::Json arr = util::Json::array();
  for (const std::string& c : choices) arr.push_back(c);
  j.set("choices", std::move(arr));
  j.set("violation", violation);
  // Hex string: a JSON number is a double and would shear 64-bit digests.
  j.set("digest", hex64(digest));
  return j;
}

util::Result<Schedule> Schedule::from_json(const util::Json& json) {
  if (!json.is_object()) {
    return util::Error::make("bad_schedule", "schedule is not a JSON object");
  }
  Schedule s;
  s.config = json.get_string("config");
  if (s.config.empty()) {
    return util::Error::make("bad_schedule", "schedule names no config");
  }
  s.seed = static_cast<std::uint64_t>(json.get_number("seed", 1));
  if (json.get("choices").is_array()) {
    for (const auto& c : json.get("choices").as_array()) {
      if (!c.is_string()) {
        return util::Error::make("bad_schedule", "non-string choice label");
      }
      s.choices.push_back(c.as_string());
    }
  }
  s.violation = json.get_string("violation");
  const std::string digest = json.get_string("digest");
  if (!digest.empty()) {
    s.digest = std::strtoull(digest.c_str(), nullptr, 16);
  }
  return s;
}

std::string Schedule::dump() const { return to_json().pretty(); }

util::Result<Schedule> Schedule::parse(const std::string& text) {
  auto j = util::Json::parse(text);
  if (!j.ok()) return j.error();
  return from_json(j.value());
}

}  // namespace picloud::mc
