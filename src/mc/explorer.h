// mc::Explorer — stateless-search model checking over control-plane
// interleavings with dynamic partial-order reduction (DESIGN.md §13).
//
// The explorer does iterative depth-first search over schedule prefixes: it
// re-runs whole episodes (mc/harness.h) from a clean simulation each time —
// stateless search in the SimGrid/VeriSoft tradition, no snapshotting —
// extending a stack of decision nodes and backtracking through it until
// every node's backtrack set is exhausted.
//
//   naive mode:  every ready action at every decision joins the backtrack
//                set — full enumeration of the bounded-window interleavings.
//   DPOR mode:   only the chosen action is scheduled initially; after each
//                episode a happens-before analysis over the executed trace
//                finds *racing* pairs (dependent actions with no causal
//                chain between them — dependence is same-object or
//                either-is-a-fault) and seeds backtrack points just before
//                the earlier member of each race. Sleep sets carry already-
//                explored actions across commuting siblings so equivalent
//                interleavings are skipped instead of re-run.
//
// Properties come from testing::InvariantChecker (swept at every decision,
// full catalogue at each episode's quiesce). The first violating episode
// stops the search; its full decision list becomes a Schedule counterexample
// that minimize_schedule() shrinks to the shortest reproducing prefix and
// replay_schedule() re-executes bit-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mc/harness.h"
#include "mc/schedule.h"
#include "util/metrics.h"

namespace picloud::mc {

struct ExplorerOptions {
  // Dynamic partial-order reduction (sleep sets + happens-before races).
  // Off = naive full enumeration, the baseline DPOR is measured against.
  bool dpor = true;
  // End-state digest pruning: when an episode reaches an end state already
  // seen, skip seeding new backtrack points from its trace (its reorderings
  // converge with an explored branch). Heuristic — leave off when exact
  // naive/DPOR equivalence matters; used by the CLI for big sweeps.
  bool state_prune = false;
  // Transition budget: the search reports exhausted=false when it runs out.
  std::uint64_t max_episodes = 20000;
  std::uint64_t max_transitions = 200000;
};

struct ExploreResult {
  bool exhausted = false;       // search space fully covered within budget
  bool found_violation = false;
  std::string violation_signature;
  Schedule counterexample;      // populated when found_violation
  std::uint64_t episodes = 0;     // full episode executions
  std::uint64_t transitions = 0;  // decisions executed across all episodes
  std::uint64_t sleep_skips = 0;  // backtrack candidates skipped asleep
  std::uint64_t state_prunes = 0;
  std::uint64_t max_depth = 0;    // deepest decision stack seen
  // Sorted distinct end-state digests over all episodes: DPOR's set must be
  // a subset of naive's on the same config (asserted in tests/mc_test.cc).
  std::vector<std::uint64_t> end_digests;
};

class Explorer {
 public:
  explicit Explorer(McConfig config, ExplorerOptions options = {});

  // Runs the search to exhaustion, first violation, or budget. Deterministic.
  ExploreResult run();

  // Progress stats ("mc.episodes", "mc.transitions", "mc.sleep_skips",
  // "mc.state_prunes", "mc.violations", "mc.max_depth"), updated as the
  // search runs — a CLI can snapshot mid-flight from another thread-free
  // vantage (the explorer is single-threaded; read between episodes).
  util::MetricsRegistry& metrics() { return metrics_; }

 private:
  McConfig config_;
  ExplorerOptions options_;
  util::MetricsRegistry metrics_;
};

// Shrinks a counterexample to the shortest choice prefix that still
// reproduces the same violation signature (the tail re-runs under the
// default strategy), re-recording the minimized run's digest so replays
// assert bit-identity against the committed file.
Schedule minimize_schedule(const Schedule& schedule);

}  // namespace picloud::mc
