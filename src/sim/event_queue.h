// Deterministic discrete-event queue.
//
// Events are (time, sequence, callback) triples ordered by time with FIFO
// tie-break on the monotonically increasing sequence number, so two events
// scheduled for the same instant always fire in scheduling order — the
// property that makes whole-cloud runs bit-reproducible (DESIGN.md §6.1).
//
// Cancellation is lazy (dead entries are skipped at pop time) with periodic
// compaction: rate-rescheduling workloads (the fair-share allocators cancel
// and re-arm completion events on every change) would otherwise grow the
// heap without bound.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace picloud::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  // Schedules `fn` at absolute time `t`. Returns an id usable with cancel().
  EventId schedule(SimTime t, EventFn fn);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op (the common "timer raced with completion" pattern).
  void cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  // Time of the earliest pending event. Requires !empty().
  SimTime next_time() const;

  // Pops and runs the earliest event. Requires !empty().
  // Returns the time the event fired at.
  SimTime run_next();

 private:
  struct Entry {
    SimTime time;
    EventId id;  // doubles as the FIFO sequence number
    EventFn fn;
    // Min-heap via std::*_heap with greater-than comparison.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  bool is_cancelled(EventId id) const {
    return id < cancelled_.size() && cancelled_[id];
  }
  void drop_cancelled() const;
  void compact();

  mutable std::vector<Entry> heap_;
  std::uint64_t next_id_ = 1;
  std::size_t live_count_ = 0;
  std::size_t dead_in_heap_ = 0;
  // Cancelled/fired ids, marked true; indexed by id.
  mutable std::vector<bool> cancelled_;
};

}  // namespace picloud::sim
