// Deterministic discrete-event queue — the simulator's hot loop.
//
// Tie-break contract (load-bearing, locked by tests/sim_test.cc
// EventQueue.TieBreakIsStableAcrossTiers): events are (time, sequence,
// closure) triples ordered by time with FIFO tie-break on the monotonically
// increasing sequence number, so two events scheduled for the same instant
// always fire in scheduling order — the property that makes whole-cloud
// runs bit-reproducible (DESIGN.md §6.1, §12.4) and that the model
// checker's schedule replay (DESIGN.md §13) leans on for deterministic
// ready-set enumeration. The contract is independent of the representation
// below: whether a same-instant event was parked in the singleton buffer,
// the binary heap, or a wheel bucket (and later cascaded) is invisible to
// firing order.
//
// Representation (DESIGN.md §12):
//  * Pooled slots. Every pending event lives in one 48-byte slot in a slab
//    vector. Closures are built in place: trivially-copyable captures up to
//    16 bytes (8 for periodic events — the other 8 hold the period) are
//    stored inline; larger or non-trivial closures spill into a size-classed
//    freelist arena. No per-event std::function, no per-event heap churn.
//  * Generation-tagged ids. EventId packs (generation << 32) | (slot + 1);
//    cancel() is O(1) and cancelling a fired/recycled id is a safe no-op —
//    the generation no longer matches (the "timer raced with completion"
//    pattern).
//  * Hierarchical timer wheel fronting the binary heap. Far events hash into
//    a 4-level × 64-slot wheel (granule 2^20 ns ≈ 1.05 ms, span ≈ 4.9 h)
//    chained through the slots themselves (zero extra bytes per pending
//    event); near events go to the near tier — a one-entry singleton buffer
//    backed by the heap, so the common serial chain never touches the heap
//    vector at all. Buckets cascade into the near tier as the cursor
//    advances, so every event still *fires* in exact (time, seq) order, but
//    the periodic storm (heartbeats, health probes, monitor scans) pays O(1)
//    amortised instead of O(log n) against the whole pending set.
//  * First-class periodic events. schedule_periodic() re-arms the same slot
//    after each firing — one pool slot and zero allocations for the lifetime
//    of a PeriodicTask. The re-arm sequence number is allocated after the
//    callback runs, exactly where the old re-scheduling implementation
//    allocated it, so same-instant ordering (and digests) are unchanged.
//
// Cancellation stays lazy (a cancelled slot's closure is destroyed
// immediately, but the heap entry / wheel chain link is reaped when popped,
// cascaded, or compacted); compaction bounds corpse memory under the
// cancel/re-arm churn the fair-share allocators produce.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/check.h"

namespace picloud::sim {

// 0 is never a valid id, so value-initialised ids are inert with cancel().
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` at absolute time `t`. Returns an id usable with cancel().
  template <typename F>
  EventId schedule(SimTime t, F&& fn) {
    const std::uint32_t s = acquire_slot();
    Slot& slot = slots_[s];
    slot.time_ns = t.ns();
    slot.seq = next_seq_++;
    install_closure<false>(slot, std::forward<F>(fn));
    ++live_count_;
    if (live_count_ > live_highwater_) live_highwater_ = live_count_;
    insert(s);
    return make_id(s);
  }

  // Schedules `fn` to fire at `first` and then every `period` after each
  // firing, all from a single recycled slot. The returned id stays valid
  // across re-arms; cancel() stops the series (including from inside the
  // callback itself).
  template <typename F>
  EventId schedule_periodic(SimTime first, Duration period, F&& fn) {
    const std::uint32_t s = acquire_slot();
    Slot& slot = slots_[s];
    slot.time_ns = first.ns();
    slot.seq = next_seq_++;
    install_closure<true>(slot, std::forward<F>(fn));
    std::memcpy(slot.payload + kPeriodOffset, &period, sizeof(std::int64_t));
    ++live_count_;
    if (live_count_ > live_highwater_) live_highwater_ = live_count_;
    insert(s);
    return make_id(s);
  }

  // Cancels a pending event in O(1). Cancelling an already-fired, recycled,
  // or unknown id is a no-op.
  void cancel(EventId id);

  // True while `id` refers to a pending (or currently-firing periodic)
  // event. Fired one-shots and recycled slots report false.
  bool is_pending(EventId id) const;

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  // Number of events that have fired, derived from accounting the hot loop
  // already does: every schedule / periodic re-arm consumes one sequence
  // number, and a consumed sequence number is either still pending (live),
  // was destroyed by cancel(), or fired. Counting this way costs the run
  // loop nothing — a dedicated per-event counter increment measurably slows
  // the dispatch chain (DESIGN.md §12.3).
  std::uint64_t executed() const {
    return (next_seq_ - 1) - live_count_ - cancelled_count_;
  }

  // Time of the earliest pending event. Requires !empty(). May cascade
  // wheel buckets into the heap to find it.
  SimTime next_time() {
    prepare();
    return SimTime::from_ns(next_is_top_ ? top_time_
                                         : heap_.front().time_ns);
  }

  // Pops and runs the earliest event. Requires !empty().
  // Returns the time the event fired at.
  // Field-wise loads (not a whole-entry copy): the entry was often stored a
  // few dozen instructions ago by the previous event's callback, and a wide
  // load spanning the narrow stores would stall store-to-load forwarding.
  SimTime run_next() {
    prepare();
    std::int64_t t;
    std::uint32_t s;
    if (next_is_top_) {
      t = top_time_;
      s = top_slot_;
      top_slot_ = kNil;
    } else {
      t = heap_.front().time_ns;
      s = heap_.front().slot;
      heap_pop();
    }
    ready_ = false;
    fire(s, t);
    return SimTime::from_ns(t);
  }

  // Fused peek + pop + dispatch for the run loop: stores the event's time to
  // *now BEFORE invoking the closure (handlers must observe the advanced
  // clock) with a single prepare() instead of the next_time()/run_next()
  // pair.
  void run_next_into(SimTime* now) {
    prepare();
    std::int64_t t;
    std::uint32_t s;
    if (next_is_top_) {
      t = top_time_;
      s = top_slot_;
      top_slot_ = kNil;
    } else {
      t = heap_.front().time_ns;
      s = heap_.front().slot;
      heap_pop();
    }
    ready_ = false;
    *now = SimTime::from_ns(t);
    fire(s, t);
  }

  // Pool / wheel instrumentation (DESIGN.md §12.2). Values are published to
  // the metrics registry on demand (Simulation::publish_queue_stats) so
  // steady-state runs — and their digests — are unaffected. That on-demand
  // publication is the registry tie; the queue itself must not depend on
  // util/metrics.h (registering gauges from the hot loop would perturb
  // snapshots and digests).
  // picloud-lint: allow(metrics-registry)
  struct Stats {
    std::size_t slots = 0;            // pool capacity (high-water by design)
    std::size_t live_highwater = 0;   // max simultaneously pending events
    std::uint64_t spill_allocs = 0;   // closures that didn't fit inline
    std::uint64_t spill_bytes_in_use = 0;
    std::uint64_t arena_bytes_reserved = 0;
    std::uint64_t wheel_inserts = 0;
    std::uint64_t heap_inserts = 0;
    std::uint64_t cascades = 0;       // bucket cascade operations
    std::uint64_t compactions = 0;
  };
  Stats stats() const;

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr int kGranuleBits = 20;  // 2^20 ns ≈ 1.05 ms per granule
  static constexpr int kLevelBits = 6;     // 64 buckets per level
  static constexpr int kLevels = 4;        // span ≈ 63 * 2^18 granules ≈ 4.9 h
  static constexpr int kBuckets = 1 << kLevelBits;
  static constexpr std::size_t kInlineBytes = 16;
  static constexpr std::size_t kPeriodOffset = 8;

  struct Ops {
    // Fused per-type dispatch: copies the closure out, releases/re-arms the
    // slot, and invokes the callback with a direct (inlinable) call — the
    // event loop's single indirect call per event. Splitting dispatch into
    // invoke/destroy pointers plus a periodic flag cost a load, a test and a
    // branch per event on top of the call; fusing lets the compiler inline
    // the closure body (and any reschedule it does) into the thunk.
    void (*fire)(EventQueue& q, std::uint32_t s, std::int64_t time_ns);
    // Destroys the closure (and returns spilled storage to the arena).
    // Null for inline trivially-copyable closures. Used by cancel() and the
    // queue destructor, never on the fire path.
    void (*destroy)(EventQueue& q, void* payload);
  };

  struct alignas(8) Slot {
    std::int64_t time_ns;
    std::uint64_t seq;
    // Inline closure bytes, or {spill pointer, period} for spilled /
    // periodic events. 8-byte aligned (offset 16 in a 48-byte record).
    unsigned char payload[kInlineBytes];
    const Ops* ops;      // null => no closure here (free or awaiting reap)
    std::uint32_t gen;   // bumped when the slot is recycled
    std::uint32_t next;  // wheel bucket chain / freelist link
  };
  static_assert(sizeof(Slot) == 48, "hot-loop slot layout");

  struct HeapEntry {
    std::int64_t time_ns;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t pad = 0;
    // Min-heap via std::*_heap with greater-than comparison.
    bool operator<(const HeapEntry& o) const {
      if (time_ns != o.time_ns) return time_ns > o.time_ns;
      return seq > o.seq;
    }
  };

  template <typename D>
  static constexpr bool inline_eligible(std::size_t budget) {
    return sizeof(D) <= budget && alignof(D) <= 8 &&
           std::is_trivially_copyable_v<D>;
  }

  template <typename D>
  struct InlineOps {
    // One-shot: free the slot BEFORE invoking (a late cancel() from inside
    // the callback is a stale-generation no-op and the slot is immediately
    // reusable), and call from a local copy — the slab may move if the
    // callback grows the pool.
    static void fire_one_shot(EventQueue& q, std::uint32_t s, std::int64_t) {
      Slot& slot = q.slots_[s];
      alignas(8) unsigned char local[kInlineBytes];
      std::memcpy(local, slot.payload, kInlineBytes);
      slot.ops = nullptr;
      q.release_slot(s);
      (*reinterpret_cast<D*>(local))();
    }
    static void fire_periodic(EventQueue& q, std::uint32_t s,
                              std::int64_t time_ns) {
      alignas(8) unsigned char local[kInlineBytes];
      std::memcpy(local, q.slots_[s].payload, kInlineBytes);
      q.firing_slot_ = s;
      q.firing_cancelled_ = false;
      (*reinterpret_cast<D*>(local))();
      q.firing_slot_ = kNil;
      Slot& after = q.slots_[s];  // re-fetch: the callback may grow the pool
      if (q.firing_cancelled_) {
        after.ops = nullptr;
        q.release_slot(s);
        return;
      }
      std::memcpy(after.payload, local, kInlineBytes);  // mutated captures
      q.rearm(s, time_ns);
    }
    static constexpr Ops one_shot{&fire_one_shot, nullptr};
    static constexpr Ops periodic{&fire_periodic, nullptr};
  };

  template <typename D>
  struct SpillOps {
    static D* target(const void* p) {
      void* ptr;
      std::memcpy(&ptr, p, sizeof(ptr));
      return static_cast<D*>(ptr);
    }
    static void dispose(EventQueue& q, D* f) {
      f->~D();
      q.spill_free(f, sizeof(D), alignof(D));
    }
    static void fire_one_shot(EventQueue& q, std::uint32_t s, std::int64_t) {
      Slot& slot = q.slots_[s];
      D* f = target(slot.payload);
      slot.ops = nullptr;
      q.release_slot(s);
      (*f)();
      dispose(q, f);
    }
    static void fire_periodic(EventQueue& q, std::uint32_t s,
                              std::int64_t time_ns) {
      // The payload {spill pointer, period} is immutable during the
      // callback (captures mutate through the pointer), so no copy-back.
      alignas(8) unsigned char local[kInlineBytes];
      std::memcpy(local, q.slots_[s].payload, kInlineBytes);
      q.firing_slot_ = s;
      q.firing_cancelled_ = false;
      (*target(local))();
      q.firing_slot_ = kNil;
      Slot& after = q.slots_[s];  // re-fetch: the callback may grow the pool
      if (q.firing_cancelled_) {
        dispose(q, target(local));
        after.ops = nullptr;
        q.release_slot(s);
        return;
      }
      q.rearm(s, time_ns);
    }
    static void destroy(EventQueue& q, void* p) { dispose(q, target(p)); }
    static constexpr Ops one_shot{&fire_one_shot, &destroy};
    static constexpr Ops periodic{&fire_periodic, &destroy};
  };

  template <bool Periodic, typename F>
  void install_closure(Slot& slot, F&& fn) {
    using D = std::decay_t<F>;
    constexpr std::size_t budget =
        Periodic ? kPeriodOffset : kInlineBytes;  // periodic keeps the period
    if constexpr (inline_eligible<D>(budget)) {
      ::new (static_cast<void*>(slot.payload)) D(std::forward<F>(fn));
      slot.ops = Periodic ? &InlineOps<D>::periodic : &InlineOps<D>::one_shot;
    } else {
      void* mem = spill_alloc(sizeof(D), alignof(D));
      ::new (mem) D(std::forward<F>(fn));
      std::memcpy(slot.payload, &mem, sizeof(mem));
      slot.ops = Periodic ? &SpillOps<D>::periodic : &SpillOps<D>::one_shot;
    }
  }

  EventId make_id(std::uint32_t s) const {
    return (static_cast<EventId>(slots_[s].gen) << 32) |
           (static_cast<EventId>(s) + 1);
  }
  // Returns the slot index for `id`, or kNil if the id is stale/invalid.
  std::uint32_t resolve(EventId id) const {
    if (id == 0) return kNil;
    const std::uint32_t s = static_cast<std::uint32_t>(id & 0xFFFFFFFFu) - 1;
    if (s >= slots_.size()) return kNil;
    const Slot& slot = slots_[s];
    if (slot.gen != static_cast<std::uint32_t>(id >> 32)) return kNil;
    if (slot.ops == nullptr) return kNil;  // fired / cancelled, not reaped yet
    return s;
  }

  // The per-event paths below are defined inline: the hot loop (schedule →
  // prepare → fire → re-schedule) must not pay a cross-TU call per step.
  //
  // A one-entry hot-slot cache fronts the freelist: the fire-then-reschedule
  // pattern reuses the slot it just released through a single member instead
  // of the two dependent loads (free_head_, then slot.next) a freelist pop
  // costs. Slot *identity* is internal — which index an event lands in is
  // unobservable as long as ids resolve consistently — so the cache does not
  // affect event ordering.
  std::uint32_t acquire_slot() {
    const std::uint32_t h = hot_free_;
    if (h != kNil) {
      hot_free_ = kNil;
      return h;
    }
    if (free_head_ != kNil) {
      const std::uint32_t s = free_head_;
      free_head_ = slots_[s].next;
      return s;
    }
    return acquire_slot_grow();
  }
  std::uint32_t acquire_slot_grow();
  void release_slot(std::uint32_t s) {
    Slot& slot = slots_[s];
    PICLOUD_DCHECK(slot.ops == nullptr)
        << "releasing a slot with a live closure";
    ++slot.gen;  // stale EventIds stop resolving
    if (hot_free_ == kNil) {
      hot_free_ = s;
      return;
    }
    slot.next = free_head_;
    free_head_ = s;
  }
  void destroy_closure(Slot& slot);

  // Strict total order (seq is unique): true iff `a` dispatches before `b`.
  static bool fires_before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time_ns != b.time_ns) return a.time_ns < b.time_ns;
    return a.seq < b.seq;
  }
  // Hand-rolled sift-down keeps the in-flight entry in registers (the std
  // algorithms round-trip it through memory, stalling store-to-load
  // forwarding on the back-to-back schedule/dispatch pattern). Pop order is
  // decided by fires_before alone (a total order — each pop removes the
  // unique minimum), so the array layout differences vs the std algorithms
  // are unobservable.
  void heap_pop() {
    const std::size_t n = heap_.size() - 1;
    if (n > 0) {
      const HeapEntry e = heap_[n];  // relocate the last entry
      std::size_t i = 0;
      for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n) break;
        const std::size_t right = child + 1;
        if (right < n && fires_before(heap_[right], heap_[child])) {
          child = right;
        }
        if (!fires_before(heap_[child], e)) break;
        heap_[i] = heap_[child];
        i = child;
      }
      heap_[i] = e;
    }
    heap_.pop_back();
  }

  void insert(std::uint32_t s) {
    const std::int64_t g = slots_[s].time_ns >> kGranuleBits;
    if (g - cursor_granule_ <= 0) {
      // Singleton inserts are deliberately uncounted: stats_.heap_inserts
      // measures binary-heap pressure, and total near-tier traffic is
      // recoverable as events_executed - wheel_inserts.
      if (top_slot_ == kNil) {
        top_slot_ = s;
        top_time_ = slots_[s].time_ns;
        top_seq_ = slots_[s].seq;
        // Sole-event fast path: an empty heap and wheel hold no other event
        // (live or dead), so this one is provably next and the per-event
        // prepare() collapses to its ready_ test. No cursor catch-up is
        // needed — a near insert already satisfies g <= cursor_granule_.
        ready_ = wheel_count_ == 0 && heap_.empty();
        next_is_top_ = true;
      } else {
        // The memoized next_is_top_ choice may be stale now.
        ready_ = false;
        heap_insert(s);
      }
      return;
    }
    insert_far(s, g);
  }
  void heap_insert(std::uint32_t s) {
    const Slot& slot = slots_[s];
    heap_.push_back(HeapEntry{slot.time_ns, slot.seq, s});
    std::push_heap(heap_.begin(), heap_.end());
    ++stats_.heap_inserts;
  }
  void insert_far(std::uint32_t s, std::int64_t g);
  void wheel_insert(int level, std::uint32_t s, std::int64_t pos);
  // Dispatch: one indirect call into the event's fused per-type thunk,
  // which inlines the closure invocation, slot release / periodic re-arm,
  // and spill disposal (InlineOps / SpillOps above).
  void fire(std::uint32_t s, std::int64_t time_ns) {
    const Ops* const ops = slots_[s].ops;
    PICLOUD_DCHECK(ops != nullptr) << "firing a dead slot";
    --live_count_;
    ops->fire(*this, s, time_ns);
  }
  // Shared periodic re-arm tail: allocates the fresh sequence number AFTER
  // the callback ran (bit-compatible with the re-scheduling PeriodicTask the
  // first-class slots replaced) and re-inserts the same slot.
  void rearm(std::uint32_t s, std::int64_t fired_at_ns);
  // Identifies the globally earliest live event (singleton buffer or heap
  // front, recorded in next_is_top_), dropping dead entries and cascading
  // due wheel buckets as needed. Requires !empty() — checked in prepare_slow
  // (ready_ and the live-candidate fast paths below all imply nonempty, so
  // misuse always falls through to the check).
  void prepare() {
    if (ready_) return;
    // Fast path: pick between the singleton (always live — cancel() repairs
    // it eagerly) and the heap front, then let the cached wheel bound (or an
    // empty wheel) prove no parked bucket can beat the choice. Dead heap
    // fronts and stale bounds fall through to prepare_slow().
    std::int64_t t;
    bool use_top;
    if (top_slot_ != kNil) {
      if (heap_.empty()) {
        use_top = true;
        t = top_time_;
      } else {
        const HeapEntry& f = heap_.front();
        if (slots_[f.slot].ops == nullptr) {
          prepare_slow();
          return;
        }
        use_top = f.time_ns > top_time_ ||
                  (f.time_ns == top_time_ && f.seq > top_seq_);
        t = use_top ? top_time_ : f.time_ns;
      }
    } else if (!heap_.empty() && slots_[heap_.front().slot].ops != nullptr) {
      use_top = false;
      t = heap_.front().time_ns;
    } else {
      prepare_slow();
      return;
    }
    if (wheel_count_ != 0 && !(bound_valid_ && t < bound_cache_)) {
      prepare_slow();
      return;
    }
    const std::int64_t g = t >> kGranuleBits;
    if (g > cursor_granule_) cursor_granule_ = g;
    next_is_top_ = use_top;
    ready_ = true;
  }
  void prepare_slow();
  // Smallest bucket start time across the wheel, or INT64_MAX when empty.
  std::int64_t wheel_bound(int* level, int* bucket) const;
  void cascade(int level, int bucket);
  void compact();

  void* spill_alloc(std::size_t bytes, std::size_t align);
  void spill_free(void* p, std::size_t bytes, std::size_t align);
  static int spill_class(std::size_t bytes);

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNil;
  std::uint32_t hot_free_ = kNil;  // one-entry cache in front of free_head_
  std::uint64_t next_seq_ = 1;

  std::vector<HeapEntry> heap_;
  std::uint32_t buckets_[kLevels][kBuckets];
  std::uint64_t occupied_[kLevels] = {};
  std::int64_t cursor_granule_ = 0;
  std::size_t wheel_count_ = 0;  // live + dead slots chained in the wheel
  // Cached wheel_bound() (INT64_MAX when the wheel is empty / cache stale →
  // recompute). Keeps the per-event prepare() to a couple of compares.
  std::int64_t bound_cache_ = 0;
  bool bound_valid_ = false;

  // Singleton buffer in front of the heap: with one pending event (the
  // serial self-scheduling chain that dominates app workloads) the hot loop
  // runs entirely through these three scalars and never touches the heap
  // vector — no push_back, no sift, no size arithmetic. top_slot_ == kNil
  // means empty; a non-nil singleton is always live (cancel() frees it
  // eagerly instead of leaving a corpse, so prepare() never tests it).
  std::uint32_t top_slot_ = kNil;
  std::int64_t top_time_ = 0;
  std::uint64_t top_seq_ = 0;

  std::size_t live_count_ = 0;
  // On the same hot line as live_count_ — tracking it against the cold
  // stats_ block cost ~2% of kernel throughput.
  std::size_t live_highwater_ = 0;
  std::size_t dead_count_ = 0;     // cancelled, still referenced by heap/wheel
  std::uint64_t cancelled_count_ = 0;  // closures destroyed before firing
  bool ready_ = false;        // the next_is_top_ choice below is the earliest
  bool next_is_top_ = false;  // valid while ready_: singleton fires next

  // Deferred-cancel guard for a periodic event cancelled mid-callback.
  std::uint32_t firing_slot_ = kNil;
  bool firing_cancelled_ = false;

  // Spill arena: 8 size classes (32..4096 bytes) of freelisted blocks carved
  // from 64 KiB slabs; larger closures fall back to operator new. Memory is
  // retained until the queue is destroyed.
  static constexpr int kSpillClasses = 8;
  struct FreeNode {
    FreeNode* next;
  };
  FreeNode* spill_free_[kSpillClasses] = {};
  std::vector<void*> slabs_;
  unsigned char* slab_bump_ = nullptr;
  std::size_t slab_left_ = 0;

  mutable Stats stats_;
};

}  // namespace picloud::sim
