// SchedulePoint — the decision-point hook the model checker steers through
// (DESIGN.md §13).
//
// A schedule point is a place where the control plane commits to an ordering
// the real world does not guarantee: a message delivery coming off the
// fabric, a REST attempt timeout firing, a fault being applied. In a default
// run these actions execute exactly where the event queue put them — the
// hub is empty and intercept() is never reached, so behaviour (and every
// golden digest in tests/golden_digests.h) is bit-identical to a build
// without this header. When a ScheduleStrategy is installed (mc::Explorer,
// mc::replay_schedule), hook sites hand the action to the strategy instead,
// which may park it and fire ready actions in any order it chooses.
//
// Hook-site contract (enforced by picloud_analyze's schedule-point rule):
// an event-queue callback that performs a delivery or applies a fault must
// first check `sim.schedule_points().active()` and route the action through
// intercept() when a strategy is installed. The default path costs one
// predictable branch; the std::function materialises only in MC mode.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "util/check.h"

namespace picloud::sim {

enum class SchedulePointKind {
  kDelivery,  // a Network message handed to its listener
  kTimeout,   // a RestClient attempt timeout expiring
  kFault,     // an injected fault (crash, blip) being applied
};

inline const char* schedule_point_kind_name(SchedulePointKind kind) {
  switch (kind) {
    case SchedulePointKind::kDelivery:
      return "delivery";
    case SchedulePointKind::kTimeout:
      return "timeout";
    case SchedulePointKind::kFault:
      return "fault";
  }
  return "?";
}

struct SchedulePoint {
  SchedulePointKind kind = SchedulePointKind::kDelivery;
  // Stable identity of the hook site + payload (e.g. "deliver:10.0.0.2:80").
  // The explorer derives replayable action labels from it.
  std::string label;
  // Coarse dependence object for partial-order reduction: two actions with
  // different objects (and neither a fault) are treated as independent.
  // Deliveries use the destination address, timeouts the client address.
  std::string object;
  // Transport endpoints: filled for deliveries ("10.0.0.2"); timeouts carry
  // the client address in src_ip. Empty/zero for faults. A strategy uses
  // these to scope which points it parks (e.g. only control-plane traffic).
  std::string src_ip;
  std::string dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
};

// Interface an exploration/replay engine implements. offer() takes ownership
// of the action; the strategy decides when (at what sim time, in what order
// relative to other parked actions) to invoke it. Actions must be invoked at
// most once, on the same simulation, and never after it is destroyed.
class ScheduleStrategy {
 public:
  virtual ~ScheduleStrategy() = default;
  // MC-mode only: type erasure is off the default hot path by construction.
  // picloud-lint: allow(hot-path-alloc)
  virtual void offer(const SchedulePoint& point, std::function<void()> run) = 0;
};

// Per-simulation registry of the installed strategy. Default-constructed
// empty: active() is false and every hook site runs its action inline,
// preserving EventQueue (time, seq) order exactly.
class SchedulePointHub {
 public:
  bool active() const { return strategy_ != nullptr; }

  // Installs `strategy` (not owned; must outlive the run). Install/uninstall
  // only while no hooked actions are in flight — i.e. from the explorer's
  // episode boundary, never from inside an event callback.
  void install(ScheduleStrategy* strategy) { strategy_ = strategy; }
  void uninstall() { strategy_ = nullptr; }

  // Hands one ready action to the installed strategy. Hook sites must only
  // call this when active() — the inline default path skips the closure
  // materialisation entirely.
  // picloud-lint: allow(hot-path-alloc)
  void intercept(SchedulePoint point, std::function<void()> run) {
    PICLOUD_CHECK(strategy_ != nullptr)
        << "SchedulePointHub::intercept without an installed strategy";
    strategy_->offer(point, std::move(run));
  }

 private:
  ScheduleStrategy* strategy_ = nullptr;
};

}  // namespace picloud::sim
