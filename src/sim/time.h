// Simulated time.
//
// SimTime is a strong wrapper over int64 nanoseconds since simulation start.
// Nanosecond resolution covers the scales the model spans: CPU scheduling
// quanta (ms), network serialization on 100 Mb links (µs per KB), and
// multi-hour experiment horizons (fits comfortably in 63 bits ≈ 292 years).
#pragma once

#include <cstdint>
#include <string>

namespace picloud::sim {

class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t ns) { return Duration(ns); }
  static constexpr Duration micros(std::int64_t us) { return Duration(us * 1000); }
  static constexpr Duration millis(std::int64_t ms) { return Duration(ms * 1000000); }
  static constexpr Duration seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr Duration minutes(double m) { return seconds(m * 60.0); }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() { return Duration(INT64_MAX); }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double to_micros() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr bool is_zero() const { return ns_ == 0; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr Duration operator/(double k) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(ns_) / k));
  }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  constexpr auto operator<=>(const Duration&) const = default;

  std::string to_string() const;  // "12.345ms", "3.2s"

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime from_ns(std::int64_t ns) { return SimTime(ns); }
  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() { return SimTime(INT64_MAX); }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr SimTime operator+(Duration d) const { return SimTime(ns_ + d.ns()); }
  constexpr SimTime operator-(Duration d) const { return SimTime(ns_ - d.ns()); }
  constexpr Duration operator-(SimTime o) const {
    return Duration::nanos(ns_ - o.ns_);
  }
  constexpr auto operator<=>(const SimTime&) const = default;

  std::string to_string() const;  // "[ 12.345678s]"

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace picloud::sim
