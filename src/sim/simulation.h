// Simulation — the deterministic event loop every other module hangs off.
//
// Single-threaded by design: determinism is worth more to a research testbed
// than parallel speed (a full 56-node PiCloud day simulates in seconds).
// Components receive a Simulation& at construction and use after()/at() to
// schedule their behaviour; nothing in the codebase reads wall-clock time.
//
// after()/at() are templated so closures are built directly into the event
// queue's pooled slots (DESIGN.md §12) — passing a lambda costs no
// std::function and, for small trivially-copyable captures, no allocation.
#pragma once

#include <concepts>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>

#include "sim/event_queue.h"
#include "sim/schedule_point.h"
#include "sim/time.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/trace.h"

namespace picloud::sim {

class Simulation {
 public:
  // `seed` feeds the root RNG; fork per-component streams from rng().
  explicit Simulation(std::uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run after `delay` (>= 0) from now.
  template <typename F>
  EventId after(Duration delay, F&& fn) {
    PICLOUD_CHECK_GE(delay.ns(), 0) << "after() with negative delay";
    return queue_.schedule(now_ + delay, std::forward<F>(fn));
  }

  // Schedules `fn` at absolute time `t` (>= now).
  template <typename F>
  EventId at(SimTime t, F&& fn) {
    PICLOUD_CHECK(t >= now_) << "at() in the past: t=" << t.ns()
                             << "ns now=" << now_.ns() << "ns";
    return queue_.schedule(t, std::forward<F>(fn));
  }

  // Schedules `fn` every `period` (> 0), first firing one period from now.
  // One pooled slot for the series' lifetime; cancel(id) stops it.
  template <typename F>
  EventId schedule_periodic(Duration period, F&& fn) {
    PICLOUD_CHECK_GT(period.ns(), 0) << "PeriodicTask period";
    return queue_.schedule_periodic(now_ + period, period,
                                    std::forward<F>(fn));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  // True while `id` is pending (for periodic series: not yet stopped).
  bool event_pending(EventId id) const { return queue_.is_pending(id); }

  // Runs events until the queue drains or `horizon` is passed (events at
  // exactly `horizon` still run). Advances now() to `horizon` if the queue
  // drained earlier, so time-weighted metrics integrate over the full window.
  void run_until(SimTime horizon);

  // Runs until the event queue is empty.
  void run();

  // Convenience: run_until(now + d).
  void run_for(Duration d) { run_until(now_ + d); }

  // --- Single-stepping (model checker driver, DESIGN.md §13) -----------------
  // True while at least one event is pending.
  bool has_events() const { return !queue_.empty(); }
  // Absolute time of the earliest pending event. Requires has_events().
  // Non-const: may cascade timer-wheel buckets to locate the head.
  SimTime next_event_time() { return queue_.next_time(); }
  // Executes exactly one event (the earliest), advancing now() to its fire
  // time first. Requires has_events(). The mc::Explorer drives the clock
  // with this instead of run_until() so it can interpose schedule decisions
  // between any two events.
  void step() { queue_.run_next_into(&now_); }

  // Decision-point hook registry (sim/schedule_point.h): empty — and
  // digest-invisible — unless a model-checking strategy is installed.
  SchedulePointHub& schedule_points() { return schedule_points_; }
  const SchedulePointHub& schedule_points() const { return schedule_points_; }

  // Stops the current run_*() call after the in-flight event completes.
  void stop() { stop_requested_ = true; }

  // Root RNG for this simulation; components should fork() their own stream.
  util::Rng& rng() { return rng_; }

  // The telemetry spine (DESIGN.md §9): every layer registers its counters,
  // gauges and histograms here under hierarchical dotted names, and the
  // management plane serves snapshots over GET /metrics.
  util::MetricsRegistry& metrics() { return metrics_; }
  const util::MetricsRegistry& metrics() const { return metrics_; }

  // Sim-time structured event trace (ring buffer + optional sink); the
  // clock is pre-wired to this simulation's now().
  util::TraceBuffer& trace() { return trace_; }

  // Number of events executed so far (for bench reporting). Derived from
  // queue accounting (EventQueue::executed()) rather than counted in the run
  // loop — a per-event counter increment cost ~15% of kernel throughput
  // (DESIGN.md §12.3). The "sim.events_executed" metrics series reads the
  // same derivation through a registry-linked counter, so snapshots are
  // unchanged.
  std::uint64_t events_executed() const { return queue_.executed(); }

  // Event-pool / timer-wheel instrumentation (DESIGN.md §12.2).
  EventQueue::Stats queue_stats() const { return queue_.stats(); }

  // Publishes queue_stats() as sim.queue.* gauges. On demand only (bench
  // teardown, tests): steady-state runs never register these series, so
  // metrics snapshots — and run digests — are unchanged unless asked for.
  void publish_queue_stats();

  // Installs a log sink that prefixes the simulated clock, e.g.
  // "[   1.250000s] [INFO ] dhcp: OFFER 10.0.1.17 to b8:27:eb:...".
  void install_clock_log_sink();

 private:
  EventQueue queue_;
  SimTime now_;
  // Declared next to now_ so the run loop's per-iteration stop test shares
  // the clock's (always-hot) cache line instead of touching a line of its
  // own past the registry and trace ring.
  bool stop_requested_ = false;
  util::Rng rng_;
  util::MetricsRegistry metrics_;
  util::TraceBuffer trace_;
  SchedulePointHub schedule_points_;
};

// A repeating timer with RAII / explicit-stop semantics. Used by monitoring
// daemons (stat sampling), DHCP lease refresh, workload generators.
//
// The callback fires every `period`, first firing one period after start().
// Destroying or stop()ping the task cancels future firings. Movable.
//
// A thin handle over a first-class periodic pool slot: construction does no
// heap allocation for small trivially-copyable callbacks (e.g. capturing
// `this`), and each firing recycles the same slot instead of re-scheduling
// through std::function.
class PeriodicTask {
 public:
  PeriodicTask() = default;

  template <typename F>
    requires std::invocable<std::decay_t<F>&>
  PeriodicTask(Simulation& sim, Duration period, F&& fn)
      : sim_(&sim), id_(sim.schedule_periodic(period, std::forward<F>(fn))) {}

  ~PeriodicTask() { stop(); }

  PeriodicTask(PeriodicTask&& other) noexcept
      : sim_(other.sim_), id_(other.id_) {
    other.sim_ = nullptr;
    other.id_ = 0;
  }
  PeriodicTask& operator=(PeriodicTask&& other) noexcept {
    if (this != &other) {
      stop();
      sim_ = other.sim_;
      id_ = other.id_;
      other.sim_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop() {
    if (sim_ != nullptr) {
      sim_->cancel(id_);
      sim_ = nullptr;
      id_ = 0;
    }
  }
  bool active() const { return sim_ != nullptr && sim_->event_pending(id_); }

 private:
  Simulation* sim_ = nullptr;
  EventId id_ = 0;
};

}  // namespace picloud::sim
