// Simulation — the deterministic event loop every other module hangs off.
//
// Single-threaded by design: determinism is worth more to a research testbed
// than parallel speed (a full 56-node PiCloud day simulates in seconds).
// Components receive a Simulation& at construction and use after()/at() to
// schedule their behaviour; nothing in the codebase reads wall-clock time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/trace.h"

namespace picloud::sim {

class Simulation {
 public:
  // `seed` feeds the root RNG; fork per-component streams from rng().
  explicit Simulation(std::uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run after `delay` (>= 0) from now.
  EventId after(Duration delay, EventFn fn);

  // Schedules `fn` at absolute time `t` (>= now).
  EventId at(SimTime t, EventFn fn);

  void cancel(EventId id) { queue_.cancel(id); }

  // Runs events until the queue drains or `horizon` is passed (events at
  // exactly `horizon` still run). Advances now() to `horizon` if the queue
  // drained earlier, so time-weighted metrics integrate over the full window.
  void run_until(SimTime horizon);

  // Runs until the event queue is empty.
  void run();

  // Convenience: run_until(now + d).
  void run_for(Duration d) { run_until(now_ + d); }

  // Stops the current run_*() call after the in-flight event completes.
  void stop() { stop_requested_ = true; }

  // Root RNG for this simulation; components should fork() their own stream.
  util::Rng& rng() { return rng_; }

  // The telemetry spine (DESIGN.md §9): every layer registers its counters,
  // gauges and histograms here under hierarchical dotted names, and the
  // management plane serves snapshots over GET /metrics.
  util::MetricsRegistry& metrics() { return metrics_; }
  const util::MetricsRegistry& metrics() const { return metrics_; }

  // Sim-time structured event trace (ring buffer + optional sink); the
  // clock is pre-wired to this simulation's now().
  util::TraceBuffer& trace() { return trace_; }

  // Number of events executed so far (for bench reporting).
  std::uint64_t events_executed() const { return events_executed_; }

  // Installs a log sink that prefixes the simulated clock, e.g.
  // "[   1.250000s] [INFO ] dhcp: OFFER 10.0.1.17 to b8:27:eb:...".
  void install_clock_log_sink();

 private:
  EventQueue queue_;
  SimTime now_;
  util::Rng rng_;
  util::MetricsRegistry metrics_;
  util::TraceBuffer trace_;
  bool stop_requested_ = false;
  std::uint64_t events_executed_ = 0;
  util::Counter* events_counter_ = nullptr;  // mirrors events_executed_
};

// A repeating timer with RAII / explicit-stop semantics. Used by monitoring
// daemons (stat sampling), DHCP lease refresh, workload generators.
//
// The callback fires every `period`, first firing one period after start().
// Destroying or stop()ping the task cancels future firings. Movable.
class PeriodicTask {
 public:
  PeriodicTask() = default;
  PeriodicTask(Simulation& sim, Duration period, std::function<void()> fn);
  ~PeriodicTask();

  PeriodicTask(PeriodicTask&&) noexcept = default;
  PeriodicTask& operator=(PeriodicTask&&) noexcept;
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool active() const { return state_ != nullptr && state_->alive; }

 private:
  struct State {
    Simulation* sim;
    Duration period;
    std::function<void()> fn;
    EventId pending = 0;
    bool alive = true;
  };
  static void arm(const std::shared_ptr<State>& state);
  std::shared_ptr<State> state_;
};

}  // namespace picloud::sim
