#include "sim/time.h"

#include "util/strings.h"

namespace picloud::sim {

std::string Duration::to_string() const {
  double ns = static_cast<double>(ns_);
  if (ns_ < 0) return "-" + Duration::nanos(-ns_).to_string();
  if (ns < 1e3) return util::format("%ldns", static_cast<long>(ns_));
  if (ns < 1e6) return util::format("%.3fus", ns / 1e3);
  if (ns < 1e9) return util::format("%.3fms", ns / 1e6);
  return util::format("%.3fs", ns / 1e9);
}

std::string SimTime::to_string() const {
  return util::format("[%12.6fs]", to_seconds());
}

}  // namespace picloud::sim
