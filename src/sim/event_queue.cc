#include "sim/event_queue.h"

#include <algorithm>

#include "util/check.h"

namespace picloud::sim {

EventId EventQueue::schedule(SimTime t, EventFn fn) {
  EventId id = next_id_++;
  heap_.push_back(Entry{t, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end());
  if (cancelled_.size() <= id) cancelled_.resize(id + 1, false);
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == 0 || id >= cancelled_.size() || cancelled_[id]) return;
  cancelled_[id] = true;
  PICLOUD_DCHECK_GT(live_count_, 0u) << "cancel() live-count underflow";
  --live_count_;
  ++dead_in_heap_;
  // Rebuild once the majority of the heap is corpses (amortised O(1)).
  if (dead_in_heap_ > live_count_ + 1024) compact();
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const Entry& e) { return is_cancelled(e.id); });
  std::make_heap(heap_.begin(), heap_.end());
  dead_in_heap_ = 0;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && is_cancelled(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  PICLOUD_CHECK(!heap_.empty()) << "next_time() on empty EventQueue";
  return heap_.front().time;
}

SimTime EventQueue::run_next() {
  drop_cancelled();
  // drop_cancelled popped an unknown number of corpses; the counter only
  // tracks those still buried mid-heap, so clamp rather than decrement.
  dead_in_heap_ = std::min(dead_in_heap_, heap_.size());
  PICLOUD_CHECK(!heap_.empty()) << "run_next() on empty EventQueue";
  std::pop_heap(heap_.begin(), heap_.end());
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  cancelled_[entry.id] = true;  // mark fired so late cancel() is a no-op
  PICLOUD_DCHECK_GT(live_count_, 0u) << "run_next() live-count underflow";
  --live_count_;
  entry.fn();
  return entry.time;
}

}  // namespace picloud::sim
