#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace picloud::sim {

namespace {
constexpr std::size_t kSlabBytes = 64 * 1024;
constexpr std::size_t kMinSpillBlock = 32;
}  // namespace

EventQueue::EventQueue() {
  for (auto& level : buckets_) {
    for (std::uint32_t& head : level) head = kNil;
  }
}

EventQueue::~EventQueue() {
  // Pending closures still own resources (captured strings, shared_ptrs);
  // run their destructors before the slabs go away.
  for (Slot& slot : slots_) {
    if (slot.ops != nullptr) destroy_closure(slot);
  }
  for (void* slab : slabs_) ::operator delete(slab);
}

std::uint32_t EventQueue::acquire_slot_grow() {
  PICLOUD_CHECK_LT(slots_.size(), static_cast<std::size_t>(kNil))
      << "event pool exhausted";
  slots_.emplace_back();
  slots_.back().ops = nullptr;
  slots_.back().gen = 0;
  stats_.slots = slots_.size();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::destroy_closure(Slot& slot) {
  if (slot.ops->destroy != nullptr) slot.ops->destroy(*this, slot.payload);
  slot.ops = nullptr;
}

void EventQueue::cancel(EventId id) {
  const std::uint32_t s = resolve(id);
  if (s == kNil) return;
  if (s == firing_slot_) {
    // A periodic event cancelling itself from inside its own callback: the
    // closure is executing, so defer teardown to fire().
    firing_cancelled_ = true;
    return;
  }
  destroy_closure(slots_[s]);
  PICLOUD_DCHECK_GT(live_count_, 0u) << "cancel() live-count underflow";
  --live_count_;
  ++cancelled_count_;  // keeps executed() exact off the hot path
  if (s == top_slot_) {
    // Eager repair: the singleton is referenced by nothing else, so free it
    // right here. This keeps the invariant "top_slot_ != kNil implies the
    // slot is live", which lets the per-event prepare() fast path skip the
    // liveness load for the singleton entirely.
    top_slot_ = kNil;
    release_slot(s);
    ready_ = false;
    return;
  }
  ++dead_count_;
  if (ready_ && !heap_.empty() && heap_.front().slot == s) ready_ = false;
  // Reap corpses once they outnumber the live set (amortised O(1)) so the
  // cancel/re-arm churn of the fair-share allocators can't grow the
  // containers without bound.
  if (dead_count_ > live_count_ + 1024) compact();
}

bool EventQueue::is_pending(EventId id) const {
  const std::uint32_t s = resolve(id);
  if (s == kNil) return false;
  return !(s == firing_slot_ && firing_cancelled_);
}

void EventQueue::insert_far(std::uint32_t s, std::int64_t g) {
  for (int k = 0; k < kLevels; ++k) {
    const std::int64_t pos = g >> (kLevelBits * k);
    if (pos - (cursor_granule_ >> (kLevelBits * k)) < kBuckets) {
      wheel_insert(k, s, pos);
      return;
    }
  }
  heap_insert(s);  // beyond the wheel span (~4.9 h): rare, O(log n) is fine
}

void EventQueue::wheel_insert(int level, std::uint32_t s, std::int64_t pos) {
  const int idx = static_cast<int>(pos & (kBuckets - 1));
  Slot& slot = slots_[s];
  slot.next = buckets_[level][idx];
  buckets_[level][idx] = s;
  occupied_[level] |= 1ULL << idx;
  ++wheel_count_;
  ++stats_.wheel_inserts;
  if (bound_valid_) {
    const std::int64_t start = pos << (kLevelBits * level + kGranuleBits);
    if (start < bound_cache_) bound_cache_ = start;
  }
  // ready_ stays valid: wheel granules are strictly beyond the prepared
  // heap top's granule (the cursor caught up to it in prepare()).
}

std::int64_t EventQueue::wheel_bound(int* level, int* bucket) const {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (int k = 0; k < kLevels; ++k) {
    const std::uint64_t occ = occupied_[k];
    if (occ == 0) continue;
    const std::int64_t base = cursor_granule_ >> (kLevelBits * k);
    const int pb = static_cast<int>(base & (kBuckets - 1));
    // Rotate so bit j corresponds to bucket (pb + j) & 63: the first set
    // bit is the soonest bucket at this level. Positions live in
    // [base, base + 63] by the insert rule, so the reconstruction is exact.
    const int delta = std::countr_zero(std::rotr(occ, pb));
    const std::int64_t start = (base + delta)
                               << (kLevelBits * k + kGranuleBits);
    if (start < best) {
      best = start;
      *level = k;
      *bucket = (pb + delta) & (kBuckets - 1);
    }
  }
  return best;
}

void EventQueue::cascade(int level, int bucket) {
  ++stats_.cascades;
  bound_valid_ = false;  // the soonest bucket is being emptied
  std::uint32_t s = buckets_[level][bucket];
  buckets_[level][bucket] = kNil;
  occupied_[level] &= ~(1ULL << bucket);
  // Advance the cursor to the bucket's start before re-routing: every
  // event's remaining delta is then under one bucket span, so it lands at a
  // strictly lower level or in the heap — never back here.
  const std::int64_t base = cursor_granule_ >> (kLevelBits * level);
  const int pb = static_cast<int>(base & (kBuckets - 1));
  const std::int64_t start =
      (base + ((bucket - pb) & (kBuckets - 1))) << (kLevelBits * level);
  cursor_granule_ = std::max(cursor_granule_, start);
  while (s != kNil) {
    Slot& slot = slots_[s];
    const std::uint32_t next = slot.next;
    --wheel_count_;
    if (slot.ops == nullptr) {  // cancelled while parked: reap
      --dead_count_;
      release_slot(s);
    } else {
      insert(s);
    }
    s = next;
  }
}

void EventQueue::prepare_slow() {
  PICLOUD_CHECK_GT(live_count_, 0u) << "next on empty EventQueue";
  for (;;) {
    // The singleton is always live (cancel() repairs it eagerly).
    PICLOUD_DCHECK(top_slot_ == kNil || slots_[top_slot_].ops != nullptr)
        << "dead singleton";
    // Drop dead heap tops.
    while (!heap_.empty() && slots_[heap_.front().slot].ops == nullptr) {
      --dead_count_;
      release_slot(heap_.front().slot);
      heap_pop();
    }
    // Near-tier minimum across the singleton and the heap front.
    bool use_top = top_slot_ != kNil;
    bool have = use_top;
    std::int64_t t = use_top ? top_time_ : 0;
    std::uint64_t q = use_top ? top_seq_ : 0;
    if (!heap_.empty()) {
      const HeapEntry& f = heap_.front();
      if (!have || f.time_ns < t || (f.time_ns == t && f.seq < q)) {
        have = true;
        use_top = false;
        t = f.time_ns;
        q = f.seq;
      }
    }
    if (wheel_count_ != 0) {
      if (!bound_valid_) {
        int l = 0;
        int b = 0;
        bound_cache_ = wheel_bound(&l, &b);
        bound_valid_ = true;
      }
      // Strict <: a wheel event at exactly the near-tier minimum's time may
      // carry a smaller sequence number, so ties must cascade before firing.
      if (!(have && t < bound_cache_)) {
        int level = 0;
        int bucket = 0;
        wheel_bound(&level, &bucket);
        bound_valid_ = false;
        cascade(level, bucket);  // re-routed events may refill the singleton
        continue;
      }
    } else {
      PICLOUD_CHECK(have) << "event accounting desync";
    }
    // All buckets at or before the minimum's granule have cascaded; catching
    // the cursor up keeps near reschedules on the near-tier fast path.
    cursor_granule_ = std::max(cursor_granule_, t >> kGranuleBits);
    next_is_top_ = use_top;
    ready_ = true;
    return;
  }
}

void EventQueue::rearm(std::uint32_t s, std::int64_t fired_at_ns) {
  // The fresh sequence number is allocated *after* the callback ran, so
  // events the callback scheduled fire ahead of the next occurrence at a
  // shared instant — bit-compatible with the re-scheduling PeriodicTask the
  // first-class slots replaced.
  Slot& slot = slots_[s];
  std::int64_t period = 0;
  std::memcpy(&period, slot.payload + kPeriodOffset, sizeof(period));
  slot.time_ns = fired_at_ns + period;
  slot.seq = next_seq_++;
  ++live_count_;
  insert(s);
}

void EventQueue::compact() {
  ++stats_.compactions;
  std::erase_if(heap_, [this](const HeapEntry& e) {
    if (slots_[e.slot].ops != nullptr) return false;
    --dead_count_;
    release_slot(e.slot);
    return true;
  });
  std::make_heap(heap_.begin(), heap_.end());
  for (int k = 0; k < kLevels; ++k) {
    std::uint64_t occ = occupied_[k];
    while (occ != 0) {
      const int idx = std::countr_zero(occ);
      occ &= occ - 1;
      std::uint32_t* link = &buckets_[k][idx];
      while (*link != kNil) {
        const std::uint32_t s = *link;
        Slot& slot = slots_[s];
        if (slot.ops == nullptr) {
          *link = slot.next;
          --wheel_count_;
          --dead_count_;
          release_slot(s);
        } else {
          link = &slot.next;
        }
      }
      if (buckets_[k][idx] == kNil) occupied_[k] &= ~(1ULL << idx);
    }
  }
  ready_ = false;
  bound_valid_ = false;
  PICLOUD_DCHECK_EQ(dead_count_, 0u) << "corpses outside heap and wheel";
}

int EventQueue::spill_class(std::size_t bytes) {
  std::size_t block = kMinSpillBlock;
  for (int k = 0; k < kSpillClasses; ++k, block <<= 1) {
    if (bytes <= block) return k;
  }
  return -1;
}

void* EventQueue::spill_alloc(std::size_t bytes, std::size_t align) {
  ++stats_.spill_allocs;
  stats_.spill_bytes_in_use += bytes;
  const int k = align <= 16 ? spill_class(bytes) : -1;
  if (k < 0) {
    if (align > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      return ::operator new(bytes, std::align_val_t{align});
    }
    return ::operator new(bytes);
  }
  if (spill_free_[k] != nullptr) {
    FreeNode* node = spill_free_[k];
    spill_free_[k] = node->next;
    return node;
  }
  const std::size_t block = kMinSpillBlock << k;
  if (slab_left_ < block) {
    slabs_.push_back(::operator new(kSlabBytes));
    slab_bump_ = static_cast<unsigned char*>(slabs_.back());
    slab_left_ = kSlabBytes;
    stats_.arena_bytes_reserved += kSlabBytes;
  }
  void* p = slab_bump_;
  slab_bump_ += block;
  slab_left_ -= block;
  return p;
}

void EventQueue::spill_free(void* p, std::size_t bytes, std::size_t align) {
  stats_.spill_bytes_in_use -= bytes;
  const int k = align <= 16 ? spill_class(bytes) : -1;
  if (k < 0) {
    if (align > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      ::operator delete(p, std::align_val_t{align});
    } else {
      ::operator delete(p);
    }
    return;
  }
  FreeNode* node = static_cast<FreeNode*>(p);
  node->next = spill_free_[k];
  spill_free_[k] = node;
}

EventQueue::Stats EventQueue::stats() const {
  stats_.slots = slots_.size();
  stats_.live_highwater = live_highwater_;
  return stats_;
}

}  // namespace picloud::sim
