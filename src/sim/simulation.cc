#include "sim/simulation.h"

#include <cstdio>

#include "util/logging.h"

namespace picloud::sim {

Simulation::Simulation(std::uint64_t seed) : now_(SimTime::zero()), rng_(seed) {
  trace_.set_clock([this]() { return now_.ns(); });
  // The canonical "sim.events_executed" series is a linked counter: reads
  // pull EventQueue::executed() on demand, so the run loop below carries no
  // per-event increment (worth ~15% of kernel throughput) and snapshots
  // still see the exact count at any event boundary.
  metrics_.link_counter(
      metrics_.name_symbol("sim.events_executed"),
      [](const void* q) {
        return static_cast<const EventQueue*>(q)->executed();
      },
      &queue_);
}

void Simulation::run_until(SimTime horizon) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    const SimTime next = queue_.next_time();
    if (next > horizon) break;
    // Advance the clock BEFORE the callback runs so now() is the event time
    // inside handlers.
    now_ = next;
    queue_.run_next();
  }
  if (!stop_requested_ && now_ < horizon) now_ = horizon;
}

void Simulation::run() {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    // run_next_into stores the event time to now_ before dispatching, so
    // handlers observe the advanced clock.
    queue_.run_next_into(&now_);
  }
}

void Simulation::publish_queue_stats() {
  const EventQueue::Stats s = queue_.stats();
  metrics_.gauge("sim.queue.pool_slots").set(static_cast<double>(s.slots));
  metrics_.gauge("sim.queue.live_highwater")
      .set(static_cast<double>(s.live_highwater));
  metrics_.gauge("sim.queue.spill_allocs")
      .set(static_cast<double>(s.spill_allocs));
  metrics_.gauge("sim.queue.spill_bytes_in_use")
      .set(static_cast<double>(s.spill_bytes_in_use));
  metrics_.gauge("sim.queue.arena_bytes_reserved")
      .set(static_cast<double>(s.arena_bytes_reserved));
  metrics_.gauge("sim.queue.wheel_inserts")
      .set(static_cast<double>(s.wheel_inserts));
  metrics_.gauge("sim.queue.heap_inserts")
      .set(static_cast<double>(s.heap_inserts));
  metrics_.gauge("sim.queue.cascades").set(static_cast<double>(s.cascades));
  metrics_.gauge("sim.queue.compactions")
      .set(static_cast<double>(s.compactions));
}

void Simulation::install_clock_log_sink() {
  util::Logging::set_sink([this](util::LogLevel level,
                                 const std::string& component,
                                 const std::string& message) {
    // This IS the log spine's terminal sink.
    // picloud-lint: allow(metrics-registry)
    std::fprintf(stderr, "%s [%-5s] %s: %s\n", now().to_string().c_str(),
                 util::log_level_name(level), component.c_str(),
                 message.c_str());
  });
}

}  // namespace picloud::sim
