#include "sim/simulation.h"

#include <cstdio>

#include "util/check.h"
#include "util/logging.h"

namespace picloud::sim {

Simulation::Simulation(std::uint64_t seed) : now_(SimTime::zero()), rng_(seed) {
  trace_.set_clock([this]() { return now_.ns(); });
  events_counter_ = &metrics_.counter("sim.events_executed");
}

EventId Simulation::after(Duration delay, EventFn fn) {
  PICLOUD_CHECK_GE(delay.ns(), 0) << "after() with negative delay";
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulation::at(SimTime t, EventFn fn) {
  PICLOUD_CHECK(t >= now_) << "at() in the past: t=" << t.ns()
                           << "ns now=" << now_.ns() << "ns";
  return queue_.schedule(t, std::move(fn));
}

void Simulation::run_until(SimTime horizon) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > horizon) break;
    // Advance the clock BEFORE the callback runs so now() is the event time
    // inside handlers.
    now_ = queue_.next_time();
    queue_.run_next();
    ++events_executed_;
    events_counter_->inc();
  }
  if (!stop_requested_ && now_ < horizon) now_ = horizon;
}

void Simulation::run() {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++events_executed_;
    events_counter_->inc();
  }
}

void Simulation::install_clock_log_sink() {
  util::Logging::set_sink([this](util::LogLevel level,
                                 const std::string& component,
                                 const std::string& message) {
    // This IS the log spine's terminal sink.
    // picloud-lint: allow(metrics-registry)
    std::fprintf(stderr, "%s [%-5s] %s: %s\n", now().to_string().c_str(),
                 util::log_level_name(level), component.c_str(),
                 message.c_str());
  });
}

PeriodicTask::PeriodicTask(Simulation& sim, Duration period,
                           std::function<void()> fn) {
  PICLOUD_CHECK_GT(period.ns(), 0) << "PeriodicTask period";
  state_ = std::make_shared<State>();
  state_->sim = &sim;
  state_->period = period;
  state_->fn = std::move(fn);
  arm(state_);
}

void PeriodicTask::arm(const std::shared_ptr<State>& state) {
  std::weak_ptr<State> weak = state;
  state->pending = state->sim->after(state->period, [weak]() {
    auto self = weak.lock();
    if (!self || !self->alive) return;
    self->fn();
    if (self->alive) arm(self);  // fn() may have stopped the task
  });
}

PeriodicTask::~PeriodicTask() { stop(); }

PeriodicTask& PeriodicTask::operator=(PeriodicTask&& other) noexcept {
  if (this != &other) {
    stop();
    state_ = std::move(other.state_);
  }
  return *this;
}

void PeriodicTask::stop() {
  if (!state_) return;
  state_->alive = false;
  state_->sim->cancel(state_->pending);
  state_.reset();
}

}  // namespace picloud::sim
