#include "hw/power.h"

#include <algorithm>

namespace picloud::hw {

PowerMeter::PowerMeter(std::string label, double idle_watts, double peak_watts)
    : label_(std::move(label)), idle_watts_(idle_watts), peak_watts_(peak_watts) {}

double PowerMeter::current_watts() const {
  if (!powered_) return 0.0;
  return idle_watts_ + (peak_watts_ - idle_watts_) * utilization_;
}

void PowerMeter::set_utilization(sim::SimTime t, double utilization) {
  utilization_ = std::clamp(utilization, 0.0, 1.0);
  update(t);
}

void PowerMeter::set_powered(sim::SimTime t, bool on) {
  powered_ = on;
  update(t);
}

void PowerMeter::update(sim::SimTime t) {
  watts_signal_.set(t.to_seconds(), current_watts());
}

void PowerDistributionBoard::attach(const PowerMeter* meter) {
  meters_.push_back(meter);
}

double PowerDistributionBoard::current_watts() const {
  double total = 0;
  for (const auto* m : meters_) total += m->current_watts();
  return total;
}

double PowerDistributionBoard::joules(sim::SimTime t) const {
  double total = 0;
  for (const auto* m : meters_) total += m->joules(t);
  return total;
}

double PowerDistributionBoard::kwh(sim::SimTime t) const {
  return joules(t) / 3.6e6;
}

std::vector<PowerDistributionBoard::Reading> PowerDistributionBoard::readings(
    sim::SimTime t) const {
  std::vector<Reading> out;
  out.reserve(meters_.size());
  for (const auto* m : meters_) {
    out.push_back(Reading{m->label(), m->current_watts(), m->kwh(t)});
  }
  return out;
}

}  // namespace picloud::hw
