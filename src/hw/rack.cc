#include "hw/rack.h"

#include "util/strings.h"

namespace picloud::hw {

Rack::Rack(int index, RackGeometry geometry)
    : index_(index),
      name_(util::format("rack-%d", index)),
      geometry_(geometry) {}

bool Rack::install(Device* device) {
  if (free_slots() <= 0) return false;
  devices_.push_back(device);
  return true;
}

double Rack::nameplate_watts() const {
  double total = 0;
  for (const auto* d : devices_) total += d->spec().peak_watts;
  return total;
}

double Rack::current_watts() const {
  double total = 0;
  for (const auto* d : devices_) total += d->power().current_watts();
  return total;
}

double Rack::device_cost_usd() const {
  double total = 0;
  for (const auto* d : devices_) total += d->spec().unit_cost_usd;
  return total;
}

double MachineRoom::total_nameplate_watts() const {
  double total = 0;
  for (const auto& r : racks) total += r->nameplate_watts();
  return total;
}

double MachineRoom::total_footprint_cm2() const {
  double total = 0;
  for (const auto& r : racks) {
    total += r->geometry().width_cm * r->geometry().depth_cm;
  }
  return total;
}

}  // namespace picloud::hw
