// Hardware specifications for the device classes the paper discusses.
//
// Numbers come from the paper itself where given (Table I: $35 and 3.5 W per
// Pi, $2,000 and 180 W per x86 server; §II-A: 256 MB RAM, 16 GB SanDisk SD
// card; §IV: BCM2835, ARMv6) and from public Raspberry Pi Model A/B specs
// otherwise (700 MHz ARM1176JZF-S, 100 Mb/s Ethernet on Model B, Model A has
// no Ethernet and 256 MB; the 2012 RAM doubling to 512 MB is exposed as the
// `rev2` spec — paper §IV "recently ... doubled the RAM ... same price").
#pragma once

#include <cstdint>
#include <string>

namespace picloud::hw {

// What kind of machine a spec describes; drives cost/cooling accounting.
enum class DeviceClass { kRaspberryPi, kX86Server };

struct DeviceSpec {
  std::string name;            // "raspberry-pi-model-b"
  DeviceClass device_class = DeviceClass::kRaspberryPi;

  // Compute: a single scalar core frequency. The scheduler hands out
  // cycle budgets, so heterogeneous clusters (Pi + x86 gateway) mix cleanly.
  int cores = 1;
  double core_hz = 700e6;

  // Memory.
  std::uint64_t ram_bytes = 256ull << 20;

  // Network interface (0 for Model A which has no Ethernet port).
  double nic_bits_per_sec = 100e6;

  // Local storage (SD card for Pis, disk for servers).
  std::uint64_t storage_bytes = 16ull << 30;
  double storage_read_bps = 20e6 * 8;   // 20 MB/s sequential read (class-10 SD)
  double storage_write_bps = 10e6 * 8;  // 10 MB/s sequential write

  // Power envelope (paper Table I rates are peak/nameplate per unit).
  double idle_watts = 2.0;
  double peak_watts = 3.5;
  bool needs_cooling = false;

  // Unit cost in USD.
  double unit_cost_usd = 35.0;

  // Total CPU capacity in cycles/second.
  double cycles_per_sec() const { return core_hz * cores; }
};

// Raspberry Pi Model B (the 56 PiCloud nodes): 256 MB, 100 Mb Ethernet.
DeviceSpec pi_model_b();

// Raspberry Pi Model B rev2: RAM doubled to 512 MB at the same price
// (paper §IV).
DeviceSpec pi_model_b_rev2();

// Raspberry Pi Model A: 256 MB, no Ethernet, $25 (paper §IV "as little as
// $25"). Included for completeness; cannot join the network fabric.
DeviceSpec pi_model_a();

// Commodity x86 server from Table I: $2,000, 180 W, needs cooling.
DeviceSpec x86_server();

}  // namespace picloud::hw
