// Racks and the physical build of the PiCloud (paper Fig. 1).
//
// The Glasgow build houses 14 Model B devices per Lego-brick rack, 4 racks
// total. Rack captures the physical grouping (it also names the ToR switch
// the net layer attaches these devices to) plus the "Lego" geometry used for
// the Fig. 1 inventory bench: footprint, weight and power budget per rack —
// enough to validate the paper's claims that the PiCloud needs no special
// space, cooling, or power infrastructure.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hw/device.h"

namespace picloud::hw {

// Physical constants of the Lego rack build. Rough but honest figures for a
// 14-slot Lego enclosure with a 16-port ToR switch on top.
struct RackGeometry {
  double width_cm = 26.0;
  double depth_cm = 13.0;
  double height_cm = 30.0;
  double weight_kg = 1.8;  // bricks + boards + cables
  int slots = 14;
};

class Rack {
 public:
  Rack(int index, RackGeometry geometry = RackGeometry{});

  int index() const { return index_; }
  // Rack name, e.g. "rack-0"; the ToR switch is named "<rack>-tor".
  const std::string& name() const { return name_; }
  std::string tor_switch_name() const { return name_ + "-tor"; }
  const RackGeometry& geometry() const { return geometry_; }

  // Installs a device into the next free slot. Returns false if full.
  bool install(Device* device);

  const std::vector<Device*>& devices() const { return devices_; }
  int free_slots() const { return geometry_.slots - static_cast<int>(devices_.size()); }

  // Peak (nameplate) power draw of everything in the rack, in watts.
  double nameplate_watts() const;
  // Live draw at this instant.
  double current_watts() const;
  // Purchase cost of the installed devices.
  double device_cost_usd() const;

 private:
  int index_;
  std::string name_;
  RackGeometry geometry_;
  std::vector<Device*> devices_;  // non-owning; cluster owns devices
};

// The machine-room view: all racks plus the head node and the power board.
// "we can run the PiCloud from a single trailing power socket board" —
// modelled as a socket board with a current limit (UK 13 A * 230 V).
struct MachineRoom {
  std::vector<std::unique_ptr<Rack>> racks;
  double socket_board_limit_watts = 13.0 * 230.0;

  double total_nameplate_watts() const;
  bool fits_single_socket_board() const {
    return total_nameplate_watts() <= socket_board_limit_watts;
  }
  double total_footprint_cm2() const;
};

}  // namespace picloud::hw
