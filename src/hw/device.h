// A physical machine in the scale model: identity + spec + power rail.
//
// Devices are inert hardware; behaviour lives above them (os::NodeOs runs
// *on* a Device, net::Topology wires its NIC into the fabric). This mirrors
// the paper's Fig. 3 stack where "ARM System on Chip" is the bottom layer.
#pragma once

#include <cstdint>
#include <string>

#include "hw/power.h"
#include "hw/spec.h"
#include "sim/time.h"

namespace picloud::hw {

// Stable device identifier, dense from 0 (index into cluster tables).
using DeviceId = std::uint32_t;
inline constexpr DeviceId kInvalidDevice = ~0u;

class Device {
 public:
  Device(DeviceId id, std::string hostname, DeviceSpec spec);

  DeviceId id() const { return id_; }
  const std::string& hostname() const { return hostname_; }
  const DeviceSpec& spec() const { return spec_; }

  // Canonical Raspberry Pi MAC prefix b8:27:eb followed by the device id.
  std::string mac_address() const;

  PowerMeter& power() { return power_; }
  const PowerMeter& power() const { return power_; }

  // Powers the board on/off at time `t`; off devices draw 0 W and the OS
  // layer above is expected to halt.
  void set_powered(sim::SimTime t, bool on) { power_.set_powered(t, on); }
  bool powered() const { return power_.powered(); }

 private:
  DeviceId id_;
  std::string hostname_;
  DeviceSpec spec_;
  PowerMeter power_;
};

}  // namespace picloud::hw
