// Power and energy accounting.
//
// Paper §III: "The PiCloud allows us to both isolate individual components
// to measure their power consumption characteristics, or instrument directly
// across the whole Cloud: we can run the PiCloud from a single trailing
// power socket board." PowerMeter is the per-component instrument;
// PowerDistributionBoard aggregates meters like that trailing socket board.
#pragma once

#include <string>
#include <vector>

#include "sim/time.h"
#include "util/stats.h"

namespace picloud::hw {

// Linear idle→peak power model driven by a utilisation signal in [0, 1].
// P(u) = idle + (peak - idle) * u. Energy is integrated over simulated time.
class PowerMeter {
 public:
  PowerMeter() = default;
  PowerMeter(std::string label, double idle_watts, double peak_watts);

  // Reports a utilisation change at simulated time `t`.
  void set_utilization(sim::SimTime t, double utilization);

  // Marks the device off (draws 0 W) / on (draws >= idle) from time `t`.
  void set_powered(sim::SimTime t, bool on);

  const std::string& label() const { return label_; }
  bool powered() const { return powered_; }
  double current_watts() const;
  double peak_watts() const { return peak_watts_; }
  double idle_watts() const { return idle_watts_; }

  // Energy drawn up to time `t`, in joules / kWh.
  double joules(sim::SimTime t) const { return watts_signal_.integral(t.to_seconds()); }
  double kwh(sim::SimTime t) const { return joules(t) / 3.6e6; }
  // Time-average power over the metered interval.
  double average_watts(sim::SimTime t) const { return watts_signal_.average(t.to_seconds()); }

 private:
  void update(sim::SimTime t);

  std::string label_;
  double idle_watts_ = 0.0;
  double peak_watts_ = 0.0;
  double utilization_ = 0.0;
  bool powered_ = true;
  util::TimeWeighted watts_signal_;
};

// Aggregates many meters: whole-rack or whole-cloud draw, like the paper's
// single trailing power socket board.
class PowerDistributionBoard {
 public:
  void attach(const PowerMeter* meter);

  double current_watts() const;
  double joules(sim::SimTime t) const;
  double kwh(sim::SimTime t) const;
  size_t meter_count() const { return meters_.size(); }

  // Per-meter breakdown rows: (label, current W, kWh so far).
  struct Reading {
    std::string label;
    double watts;
    double kwh;
  };
  std::vector<Reading> readings(sim::SimTime t) const;

 private:
  std::vector<const PowerMeter*> meters_;
};

}  // namespace picloud::hw
