#include "hw/spec.h"

namespace picloud::hw {

DeviceSpec pi_model_b() {
  DeviceSpec s;
  s.name = "raspberry-pi-model-b";
  s.device_class = DeviceClass::kRaspberryPi;
  s.cores = 1;
  s.core_hz = 700e6;
  s.ram_bytes = 256ull << 20;
  s.nic_bits_per_sec = 100e6;
  s.storage_bytes = 16ull << 30;  // SanDisk 16 GB SD card (paper §II-A)
  s.idle_watts = 2.0;
  s.peak_watts = 3.5;  // Table I rate
  s.needs_cooling = false;
  s.unit_cost_usd = 35.0;  // Table I rate
  return s;
}

DeviceSpec pi_model_b_rev2() {
  DeviceSpec s = pi_model_b();
  s.name = "raspberry-pi-model-b-rev2";
  s.ram_bytes = 512ull << 20;  // 2012 RAM doubling, same price (paper §IV)
  return s;
}

DeviceSpec pi_model_a() {
  DeviceSpec s = pi_model_b();
  s.name = "raspberry-pi-model-a";
  s.nic_bits_per_sec = 0;  // no Ethernet port
  s.idle_watts = 1.2;
  s.peak_watts = 2.5;
  s.unit_cost_usd = 25.0;  // paper §IV
  return s;
}

DeviceSpec x86_server() {
  DeviceSpec s;
  s.name = "commodity-x86-server";
  s.device_class = DeviceClass::kX86Server;
  s.cores = 8;
  s.core_hz = 2.5e9;
  s.ram_bytes = 16ull << 30;
  s.nic_bits_per_sec = 1e9;
  s.storage_bytes = 1ull << 40;
  s.storage_read_bps = 120e6 * 8;
  s.storage_write_bps = 120e6 * 8;
  s.idle_watts = 90.0;
  s.peak_watts = 180.0;  // Table I rate
  s.needs_cooling = true;
  s.unit_cost_usd = 2000.0;  // Table I rate
  return s;
}

}  // namespace picloud::hw
