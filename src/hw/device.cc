#include "hw/device.h"

#include "util/strings.h"

namespace picloud::hw {

Device::Device(DeviceId id, std::string hostname, DeviceSpec spec)
    : id_(id),
      hostname_(std::move(hostname)),
      spec_(std::move(spec)),
      power_(hostname_, spec_.idle_watts, spec_.peak_watts) {}

std::string Device::mac_address() const {
  // b8:27:eb is the Raspberry Pi Foundation OUI.
  const char* oui =
      spec_.device_class == DeviceClass::kRaspberryPi ? "b8:27:eb" : "00:1a:2b";
  return util::format("%s:%02x:%02x:%02x", oui, (id_ >> 16) & 0xff,
                      (id_ >> 8) & 0xff, id_ & 0xff);
}

}  // namespace picloud::hw
