// SD-card storage model.
//
// Each Pi "runs Linux from a Sandisk 16GB SD card storage" (paper §II-A).
// The card serves IO requests sequentially from a FIFO queue at its
// class-10-ish sequential bandwidth — the storage bottleneck that shapes
// container spawn times and image patching on a real PiCloud.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/simulation.h"

namespace picloud::storage {

class SdCard {
 public:
  SdCard(sim::Simulation& sim, std::uint64_t capacity_bytes,
         double read_bytes_per_sec, double write_bytes_per_sec);

  std::uint64_t capacity_bytes() const { return capacity_; }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t free_bytes() const { return capacity_ - used_; }

  // Space accounting (separate from IO time): returns false when full.
  bool reserve(std::uint64_t bytes);
  void release(std::uint64_t bytes);

  // Queues an IO request; `on_done` fires when the transfer has been
  // serviced (after everything queued ahead of it).
  using IoCallback = std::function<void()>;
  void read(std::uint64_t bytes, IoCallback on_done);
  void write(std::uint64_t bytes, IoCallback on_done);

  size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }
  double total_bytes_read() const { return bytes_read_; }
  double total_bytes_written() const { return bytes_written_; }

 private:
  struct IoRequest {
    std::uint64_t bytes;
    bool is_write;
    IoCallback on_done;
  };

  void enqueue(IoRequest req);
  void service_next();

  sim::Simulation& sim_;
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  double read_bps_;   // bytes/sec
  double write_bps_;  // bytes/sec
  std::deque<IoRequest> queue_;
  bool busy_ = false;
  double bytes_read_ = 0;
  double bytes_written_ = 0;
};

}  // namespace picloud::storage
