#include "storage/image.h"

#include <algorithm>

#include "util/strings.h"

namespace picloud::storage {

std::string ImageLayer::id() const {
  return util::format("%s:%d", name.c_str(), version);
}

util::Result<std::string> ImageStore::add_base(const std::string& name,
                                               std::uint64_t bytes,
                                               const std::string& note) {
  if (latest_version_.count(name) > 0) {
    return util::Error::make("exists", "image name already registered: " + name);
  }
  ImageLayer layer;
  layer.name = name;
  layer.version = 1;
  layer.layer_bytes = bytes;
  layer.note = note;
  std::string id = layer.id();
  layers_[id] = layer;
  latest_version_[name] = 1;
  return id;
}

util::Result<std::string> ImageStore::patch(const std::string& name,
                                            std::uint64_t delta_bytes,
                                            const std::string& note) {
  auto it = latest_version_.find(name);
  if (it == latest_version_.end()) {
    return util::Error::make("not_found", "no such image: " + name);
  }
  ImageLayer layer;
  layer.name = name;
  layer.version = it->second + 1;
  layer.layer_bytes = delta_bytes;
  layer.parent_id = util::format("%s:%d", name.c_str(), it->second);
  layer.note = note;
  std::string id = layer.id();
  layers_[id] = layer;
  it->second = layer.version;
  return id;
}

util::Result<std::string> ImageStore::upgrade(const std::string& name,
                                              std::uint64_t bytes,
                                              const std::string& note) {
  auto it = latest_version_.find(name);
  if (it == latest_version_.end()) {
    return util::Error::make("not_found", "no such image: " + name);
  }
  ImageLayer layer;
  layer.name = name;
  layer.version = it->second + 1;
  layer.layer_bytes = bytes;
  layer.note = note;  // no parent: self-contained release
  std::string id = layer.id();
  layers_[id] = layer;
  it->second = layer.version;
  return id;
}

util::Result<ImageLayer> ImageStore::get(const std::string& id) const {
  auto it = layers_.find(id);
  if (it == layers_.end()) {
    return util::Error::make("not_found", "no such image id: " + id);
  }
  return it->second;
}

util::Result<std::string> ImageStore::latest(const std::string& name) const {
  auto it = latest_version_.find(name);
  if (it == latest_version_.end()) {
    return util::Error::make("not_found", "no such image: " + name);
  }
  return util::format("%s:%d", name.c_str(), it->second);
}

util::Result<std::vector<ImageLayer>> ImageStore::chain(
    const std::string& id) const {
  std::vector<ImageLayer> out;
  std::string current = id;
  while (true) {
    auto layer = get(current);
    if (!layer.ok()) return layer.error();
    out.push_back(layer.value());
    if (!layer.value().parent_id) break;
    current = *layer.value().parent_id;
    if (out.size() > layers_.size()) {
      return util::Error::make("cycle", "image layer chain has a cycle");
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

util::Result<std::uint64_t> ImageStore::installed_bytes(
    const std::string& id) const {
  auto layers = chain(id);
  if (!layers.ok()) return layers.error();
  std::uint64_t total = 0;
  for (const auto& l : layers.value()) total += l.layer_bytes;
  return total;
}

util::Result<std::uint64_t> ImageStore::transfer_bytes(
    const std::string& id, const std::vector<std::string>& cached) const {
  auto layers = chain(id);
  if (!layers.ok()) return layers.error();
  std::uint64_t total = 0;
  for (const auto& l : layers.value()) {
    bool have = std::find(cached.begin(), cached.end(), l.id()) != cached.end();
    if (!have) total += l.layer_bytes;
  }
  return total;
}

std::vector<std::string> ImageStore::list() const {
  std::vector<std::string> out;
  out.reserve(layers_.size());
  for (const auto& [id, layer] : layers_) out.push_back(id);
  return out;
}

}  // namespace picloud::storage
