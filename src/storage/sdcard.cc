#include "storage/sdcard.h"

#include "util/check.h"

namespace picloud::storage {

SdCard::SdCard(sim::Simulation& sim, std::uint64_t capacity_bytes,
               double read_bytes_per_sec, double write_bytes_per_sec)
    : sim_(sim),
      capacity_(capacity_bytes),
      read_bps_(read_bytes_per_sec),
      write_bps_(write_bytes_per_sec) {
  PICLOUD_CHECK(read_bps_ > 0 && write_bps_ > 0) << "SD card throughput spec";
}

bool SdCard::reserve(std::uint64_t bytes) {
  if (used_ + bytes > capacity_) return false;
  used_ += bytes;
  return true;
}

void SdCard::release(std::uint64_t bytes) {
  PICLOUD_CHECK_LE(bytes, used_) << "SdCard::release more than reserved";
  used_ -= bytes;
}

void SdCard::read(std::uint64_t bytes, IoCallback on_done) {
  enqueue(IoRequest{bytes, /*is_write=*/false, std::move(on_done)});
}

void SdCard::write(std::uint64_t bytes, IoCallback on_done) {
  enqueue(IoRequest{bytes, /*is_write=*/true, std::move(on_done)});
}

void SdCard::enqueue(IoRequest req) {
  queue_.push_back(std::move(req));
  if (!busy_) service_next();
}

void SdCard::service_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  IoRequest req = std::move(queue_.front());
  queue_.pop_front();
  double bps = req.is_write ? write_bps_ : read_bps_;
  double seconds = static_cast<double>(req.bytes) / bps;
  if (req.is_write) {
    bytes_written_ += static_cast<double>(req.bytes);
  } else {
    bytes_read_ += static_cast<double>(req.bytes);
  }
  sim_.after(sim::Duration::seconds(seconds),
             [this, cb = std::move(req.on_done)]() {
               if (cb) cb();
               service_next();
             });
}

}  // namespace picloud::storage
