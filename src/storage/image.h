// Container image model: layered, content-addressed-ish images with
// upgrade / patch / spawn operations.
//
// Paper §II-A: the pimaster "hosts image management tools providing image
// upgrading, patching, and spawning". Images form layer chains (a patch is a
// delta layer on a parent), so nodes that already cache the parent only
// transfer the delta — the behaviour that makes mass-patching a 56-node
// cloud tractable over 100 Mb links.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"

namespace picloud::storage {

// An immutable image layer. `id` is "name:version".
struct ImageLayer {
  std::string name;          // e.g. "raspbian-lxc"
  int version = 1;
  std::uint64_t layer_bytes = 0;   // bytes added by this layer alone
  std::optional<std::string> parent_id;  // layer below, if any
  std::string note;          // human description ("security patch CVE-…")

  std::string id() const;
};

// The pimaster-side registry of images.
class ImageStore {
 public:
  // Registers a fresh base image (version 1, no parent).
  util::Result<std::string> add_base(const std::string& name,
                                     std::uint64_t bytes,
                                     const std::string& note = "");

  // Creates version N+1 of `name` as a delta layer of `delta_bytes` on the
  // current latest version. Returns the new image id.
  util::Result<std::string> patch(const std::string& name,
                                  std::uint64_t delta_bytes,
                                  const std::string& note = "");

  // Full upgrade: new self-contained version (no parent chain), e.g. a new
  // Raspbian release.
  util::Result<std::string> upgrade(const std::string& name,
                                    std::uint64_t bytes,
                                    const std::string& note = "");

  util::Result<ImageLayer> get(const std::string& id) const;
  // Latest version id for a name.
  util::Result<std::string> latest(const std::string& name) const;

  // The layer chain for an image, base first.
  util::Result<std::vector<ImageLayer>> chain(const std::string& id) const;

  // Total bytes a node must hold to run this image (whole chain).
  util::Result<std::uint64_t> installed_bytes(const std::string& id) const;

  // Bytes that must be transferred to a node already caching `cached`
  // layer ids (missing layers only).
  util::Result<std::uint64_t> transfer_bytes(
      const std::string& id, const std::vector<std::string>& cached) const;

  std::vector<std::string> list() const;
  size_t count() const { return layers_.size(); }

 private:
  std::map<std::string, ImageLayer> layers_;  // by id
  std::map<std::string, int> latest_version_;  // by name
};

}  // namespace picloud::storage
