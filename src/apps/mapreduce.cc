#include "apps/mapreduce.h"

#include <cassert>


namespace picloud::apps {

using util::Json;

// ---------------------------------------------------------------------------
// Worker

void MapReduceWorkerApp::start(os::Container& container) {
  container_ = &container;
  container.listen(kMapReducePort,
                   [this](const net::Message& msg) { on_message(msg); });
}

void MapReduceWorkerApp::stop() {
  if (container_ == nullptr) return;
  container_->unlisten(kMapReducePort);
  container_ = nullptr;
}

util::Json MapReduceWorkerApp::status() const {
  Json j = Json::object();
  j.set("maps_done", static_cast<unsigned long long>(maps_done_));
  j.set("reduces_done", static_cast<unsigned long long>(reduces_done_));
  return j;
}

void MapReduceWorkerApp::on_message(const net::Message& msg) {
  if (container_ == nullptr) return;
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  const Json& request = parsed.value();
  std::string op = request.get_string("op");
  if (op == "map") {
    handle_map(request, msg.src, msg.src_port);
  } else if (op == "partition") {
    handle_partition(request, msg.padding_bytes);
  } else if (op == "reduce") {
    handle_reduce_order(request, msg.src, msg.src_port);
  }
}

void MapReduceWorkerApp::handle_map(const Json& request, net::Ipv4Addr from,
                                    std::uint16_t from_port) {
  double bytes = request.get_number("bytes");
  double cycles = bytes * request.get_number("cpb", 1.0);
  std::string job = request.get_string("job");
  double shuffle_frac = request.get_number("shuffle_frac", 0.4);
  // Copy the reducer list out of the request.
  std::vector<net::Ipv4Addr> reducers;
  for (const Json& r : request.get("reducers").as_array()) {
    auto ip = net::Ipv4Addr::parse(r.as_string());
    if (ip) reducers.push_back(*ip);
  }
  Json done = Json::object();
  done.set("op", "map_done");
  done.set("job", job);
  done.set("task", request.get_number("task"));
  done.set("id", request.get_number("id"));

  container_->run_cpu(cycles, [this, bytes, shuffle_frac, job, reducers, from,
                               from_port, done](bool completed) {
    if (!completed || container_ == nullptr) return;
    ++maps_done_;
    // Push one partition of the map output to every reducer. The bulk bytes
    // ride as padding — this is the shuffle crossing the fabric.
    if (!reducers.empty()) {
      double partition = bytes * shuffle_frac /
                         static_cast<double>(reducers.size());
      for (net::Ipv4Addr reducer : reducers) {
        Json part = Json::object();
        part.set("op", "partition");
        part.set("job", job);
        part.set("bytes", partition);
        container_->send(reducer, kMapReducePort, part.dump(), kMapReducePort,
                         partition);
      }
    }
    container_->send(from, from_port, done.dump(), kMapReducePort);
  });
}

void MapReduceWorkerApp::handle_partition(const Json& request,
                                          double /*padding*/) {
  std::string job = request.get_string("job");
  ReduceState& state = reduce_jobs_[job];
  state.received_bytes += request.get_number("bytes");
  state.received_parts += 1;
  maybe_run_reduce(job);
}

void MapReduceWorkerApp::handle_reduce_order(const Json& request,
                                             net::Ipv4Addr from,
                                             std::uint16_t from_port) {
  std::string job = request.get_string("job");
  ReduceState& state = reduce_jobs_[job];
  state.ordered = true;
  state.expect_bytes = request.get_number("expect_bytes");
  state.expect_parts = static_cast<int>(request.get_number("expect_parts"));
  state.cycles_per_byte = request.get_number("cpb", 0.5);
  state.driver = from;
  state.driver_port = from_port;
  state.request_id = request.get_number("id");
  maybe_run_reduce(job);
}

void MapReduceWorkerApp::maybe_run_reduce(const std::string& job) {
  ReduceState& state = reduce_jobs_[job];
  if (!state.ordered || state.running) return;
  if (state.received_parts < state.expect_parts) return;
  state.running = true;
  double cycles = state.received_bytes * state.cycles_per_byte;
  net::Ipv4Addr driver = state.driver;
  std::uint16_t driver_port = state.driver_port;
  Json done = Json::object();
  done.set("op", "reduce_done");
  done.set("job", job);
  done.set("id", state.request_id);
  container_->run_cpu(cycles,
                      [this, job, driver, driver_port, done](bool completed) {
                        if (!completed || container_ == nullptr) return;
                        ++reduces_done_;
                        reduce_jobs_.erase(job);
                        container_->send(driver, driver_port, done.dump(),
                                         kMapReducePort);
                      });
}

// ---------------------------------------------------------------------------
// Driver

MapReduceDriver::MapReduceDriver(net::Network& network, net::Ipv4Addr self,
                                 std::uint16_t port)
    : network_(network),
      sim_(network.simulation()),
      self_(self),
      port_(port) {
  network_.listen(self_, port_,
                  [this](const net::Message& msg) { on_message(msg); });
}

MapReduceDriver::~MapReduceDriver() { network_.unlisten(self_, port_); }

void MapReduceDriver::send(net::Ipv4Addr to, Json body) {
  net::Message msg;
  msg.src = self_;
  msg.dst = to;
  msg.src_port = port_;
  msg.dst_port = kMapReducePort;
  msg.payload = body.dump();
  network_.send(std::move(msg));
}

void MapReduceDriver::run(MapReduceJobSpec spec, JobCallback cb,
                          sim::Duration timeout) {
  MapReduceJobResult bad;
  if (spec.workers.empty() || spec.reducers.empty() || spec.map_tasks <= 0) {
    bad.error = "job needs workers, reducers and map tasks";
    cb(bad);
    return;
  }
  if (jobs_.count(spec.job_id) > 0) {
    bad.error = "job id in use";
    cb(bad);
    return;
  }
  JobState& job = jobs_[spec.job_id];
  job.spec = spec;
  job.cb = std::move(cb);
  job.started = sim_.now();
  job.maps_pending = spec.map_tasks;
  job.reduces_pending = static_cast<int>(spec.reducers.size());
  job.timeout_event = sim_.after(timeout, [this, id = spec.job_id]() {
    finish(id, false, "job timed out");
  });

  double split = spec.input_bytes / spec.map_tasks;
  for (int task = 0; task < spec.map_tasks; ++task) {
    net::Ipv4Addr worker = spec.workers[task % spec.workers.size()];
    Json map = Json::object();
    map.set("op", "map");
    map.set("job", spec.job_id);
    map.set("task", task);
    map.set("bytes", split);
    map.set("cpb", spec.map_cycles_per_byte);
    map.set("shuffle_frac", spec.shuffle_fraction);
    map.set("id", task);
    Json reducers = Json::array();
    for (net::Ipv4Addr r : spec.reducers) reducers.push_back(r.to_string());
    map.set("reducers", std::move(reducers));
    send(worker, std::move(map));
  }
}

void MapReduceDriver::order_reduces(JobState& job) {
  job.reduces_ordered = true;
  const MapReduceJobSpec& spec = job.spec;
  double shuffle_total = spec.input_bytes * spec.shuffle_fraction;
  double per_reducer = shuffle_total / spec.reducers.size();
  for (size_t i = 0; i < spec.reducers.size(); ++i) {
    Json reduce = Json::object();
    reduce.set("op", "reduce");
    reduce.set("job", spec.job_id);
    reduce.set("expect_bytes", per_reducer);
    reduce.set("expect_parts", spec.map_tasks);
    reduce.set("cpb", spec.reduce_cycles_per_byte);
    reduce.set("id", static_cast<double>(i));
    send(spec.reducers[i], std::move(reduce));
  }
}

void MapReduceDriver::on_message(const net::Message& msg) {
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  const Json& body = parsed.value();
  std::string job_id = body.get_string("job");
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  JobState& job = it->second;

  std::string op = body.get_string("op");
  if (op == "map_done") {
    if (job.maps_pending > 0) --job.maps_pending;
    if (job.maps_pending == 0 && !job.reduces_ordered) order_reduces(job);
    return;
  }
  if (op == "reduce_done") {
    if (job.reduces_pending > 0) --job.reduces_pending;
    if (job.reduces_pending == 0) finish(job_id, true, "");
  }
}

void MapReduceDriver::finish(const std::string& job_id, bool success,
                             const std::string& error) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  JobState job = std::move(it->second);
  jobs_.erase(it);
  if (job.timeout_event != 0) sim_.cancel(job.timeout_event);
  MapReduceJobResult result;
  result.success = success;
  result.error = error;
  result.duration = sim_.now() - job.started;
  result.shuffle_bytes = job.spec.input_bytes * job.spec.shuffle_fraction;
  result.map_tasks = job.spec.map_tasks;
  result.reduce_tasks = static_cast<int>(job.spec.reducers.size());
  if (job.cb) job.cb(result);
}

}  // namespace picloud::apps
