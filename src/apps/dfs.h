// PiFS — a replicated distributed file store over the Pis' SD cards.
//
// Paper §III: "by operating an actual infrastructure, we can empirically
// evaluate improvements to file management and migration techniques." PiFS
// is that infrastructure piece, HDFS-shaped and PiCloud-sized: files split
// into fixed blocks; each block stored on `replication` datanodes with
// rack-aware placement (replicas land in different racks when possible, so
// a ToR or rack-power failure cannot take all copies); a namenode tracks
// the block map, detects dead datanodes, and re-replicates from survivors.
//
// Every stored byte pays twice: once on the fabric (the transfer contends
// with all other traffic) and once on the destination SD card's FIFO write
// queue — the two bottlenecks that shape file management on real Pis.
//
// Wire protocol (JSON datagrams on port 7400; block payloads as padding):
//   namenode -> datanode: {"op":"store","block":b,"bytes":n,"id":i}
//                         {"op":"fetch","block":b,"id":i}
//                         {"op":"drop","block":b,"id":i}
//                         {"op":"push","block":b,"to":ip,"id":i}   (re-replication)
//   datanode -> namenode: {"ok":bool,"id":i[,"bytes":n]}
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/network.h"
#include "os/container.h"
#include "sim/simulation.h"
#include "util/json.h"
#include "util/result.h"

namespace picloud::apps {

inline constexpr std::uint16_t kDfsPort = 7400;

// The datanode: runs inside a container, stores block bytes on the host's
// SD card (space reserved, writes serviced through the card's FIFO queue).
class DfsNodeApp : public os::ContainerApp {
 public:
  std::string kind() const override { return "dfs-node"; }
  void start(os::Container& container) override;
  void stop() override;
  util::Json status() const override;
  double dirty_bytes_per_sec() const override { return 256.0 * 1024; }

  size_t block_count() const { return blocks_.size(); }
  std::uint64_t stored_bytes() const { return stored_bytes_; }

 private:
  void on_message(const net::Message& msg);
  void reply(net::Ipv4Addr to, std::uint16_t port, util::Json body,
             double padding = 0);

  os::Container* container_ = nullptr;
  std::map<std::string, std::uint64_t> blocks_;  // block id -> bytes
  std::uint64_t stored_bytes_ = 0;
};

// The namenode: file metadata, block placement, health, re-replication.
// Runs at the management side (pimaster or admin workstation), like the
// paper's head-node services.
class DfsNamenode {
 public:
  struct Config {
    std::uint64_t block_bytes = 4ull << 20;
    int replication = 2;
    // Datanodes silent on a fetch/store for this long are declared dead by
    // the caller (health is probe-driven; see handle_datanode_death).
    sim::Duration request_timeout = sim::Duration::seconds(30);
  };

  // Per-DFS-instance bookkeeping, returned by value to callers; cluster
  // telemetry flows through the app's node gauges.
  // picloud-lint: allow(metrics-registry)
  struct Stats {
    std::uint64_t blocks_written = 0;
    std::uint64_t blocks_read = 0;
    std::uint64_t replicas_lost = 0;
    std::uint64_t re_replications = 0;
    std::uint64_t failed_ops = 0;
  };

  DfsNamenode(net::Network& network, net::Ipv4Addr self, Config config,
              std::uint16_t client_port = 47400);
  ~DfsNamenode();

  DfsNamenode(const DfsNamenode&) = delete;
  DfsNamenode& operator=(const DfsNamenode&) = delete;

  // Registers a datanode (its container IP) and the rack it lives in.
  void add_datanode(net::Ipv4Addr ip, int rack);

  // --- File operations --------------------------------------------------------
  using StatusCallback = std::function<void(util::Status)>;
  using ReadCallback = std::function<void(util::Result<std::uint64_t>)>;
  // Writes `bytes` as ceil(bytes/block) blocks, each to `replication`
  // rack-diverse datanodes. The callback fires once all replicas ack.
  void write(const std::string& file, std::uint64_t bytes, StatusCallback cb);
  // Reads every block (one replica each); yields total bytes delivered.
  void read(const std::string& file, ReadCallback cb);
  void remove(const std::string& file, StatusCallback cb);

  // --- Health -------------------------------------------------------------------
  // Declares a datanode dead: its replicas are lost; under-replicated
  // blocks are re-replicated from surviving copies onto other datanodes.
  void handle_datanode_death(net::Ipv4Addr ip);

  // Blocks currently below the replication target.
  size_t under_replicated() const;
  size_t file_count() const { return files_.size(); }
  std::uint64_t file_bytes(const std::string& file) const;
  std::vector<net::Ipv4Addr> block_replicas(const std::string& file,
                                            size_t index) const;
  const Stats& stats() const { return stats_; }

 private:
  struct Block {
    std::string id;
    std::uint64_t bytes = 0;
    std::vector<net::Ipv4Addr> replicas;
  };
  struct File {
    std::vector<Block> blocks;
    std::uint64_t bytes = 0;
  };
  struct Datanode {
    net::Ipv4Addr ip;
    int rack = 0;
    bool alive = true;
    std::uint64_t assigned_bytes = 0;  // namenode-side usage estimate
  };

  using AckCallback = std::function<void(bool ok, double bytes)>;
  void send_op(net::Ipv4Addr datanode, util::Json body, double padding,
               AckCallback cb);
  void on_message(const net::Message& msg);
  // Rack-aware replica choice: spread racks first, then least-assigned.
  std::vector<net::Ipv4Addr> pick_replicas(std::uint64_t bytes,
                                           const std::set<std::uint32_t>& avoid);
  Datanode* node_by_ip(net::Ipv4Addr ip);

  net::Network& network_;
  sim::Simulation& sim_;
  net::Ipv4Addr self_;
  Config config_;
  std::uint16_t port_;
  std::vector<Datanode> datanodes_;
  std::map<std::string, File> files_;
  std::map<std::uint64_t, AckCallback> pending_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_block_ = 1;
  Stats stats_;
};

}  // namespace picloud::apps
