#include "apps/httpd.h"

#include "util/logging.h"

namespace picloud::apps {

using util::Json;

HttpdParams HttpdParams::from_json(const Json& j) {
  HttpdParams p;
  p.port = static_cast<std::uint16_t>(j.get_number("port", 80));
  p.cycles_per_request = j.get_number("cycles_per_request", 2e6);
  p.response_bytes =
      static_cast<std::uint64_t>(j.get_number("response_bytes", 8192));
  p.working_set_bytes = static_cast<std::uint64_t>(
      j.get_number("working_set_bytes", 10.0 * (1 << 20)));
  return p;
}

Json HttpdParams::to_json() const {
  Json j = Json::object();
  j.set("port", port);
  j.set("cycles_per_request", cycles_per_request);
  j.set("response_bytes", static_cast<unsigned long long>(response_bytes));
  j.set("working_set_bytes",
        static_cast<unsigned long long>(working_set_bytes));
  return j;
}

HttpdApp::HttpdApp(HttpdParams params) : params_(params) {}

void HttpdApp::start(os::Container& container) {
  container_ = &container;
  // Page cache / doc root resident set.
  working_set_resident_ =
      container.alloc_memory(params_.working_set_bytes).ok();
  if (!working_set_resident_) {
    LOG_WARN("httpd", "%s: working set does not fit; serving degraded",
             container.name().c_str());
  }
  container.listen(params_.port,
                   [this](const net::Message& msg) { on_request(msg); });
}

void HttpdApp::stop() {
  if (container_ == nullptr) return;
  container_->unlisten(params_.port);
  if (working_set_resident_) {
    container_->free_memory(params_.working_set_bytes);
    working_set_resident_ = false;
  }
  container_ = nullptr;
}

void HttpdApp::on_request(const net::Message& msg) {
  if (container_ == nullptr) return;
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  // Copy what the reply needs; the request message dies with this handler.
  net::Ipv4Addr reply_to = msg.src;
  std::uint16_t reply_port = msg.src_port;
  Json request = std::move(parsed).value();

  container_->run_cpu(params_.cycles_per_request, [this, reply_to, reply_port,
                                                   request](bool completed) {
    if (!completed || container_ == nullptr) {
      ++requests_dropped_;
      return;
    }
    ++requests_served_;
    Json body = Json::object();
    body.set("id", request.get_number("id"));
    body.set("status", 200);
    body.set("path", request.get_string("path", "/"));
    container_->send(reply_to, reply_port, body.dump(), params_.port,
                     static_cast<double>(params_.response_bytes));
  });
}

util::Json HttpdApp::status() const {
  Json j = Json::object();
  j.set("requests", static_cast<unsigned long long>(requests_served_));
  j.set("dropped", static_cast<unsigned long long>(requests_dropped_));
  j.set("port", params_.port);
  return j;
}

}  // namespace picloud::apps
