#include "apps/httpd.h"

#include "os/node_os.h"
#include "util/logging.h"

namespace picloud::apps {

using util::Json;

HttpdParams HttpdParams::from_json(const Json& j) {
  HttpdParams p;
  p.port = static_cast<std::uint16_t>(j.get_number("port", 80));
  p.cycles_per_request = j.get_number("cycles_per_request", 2e6);
  p.response_bytes =
      static_cast<std::uint64_t>(j.get_number("response_bytes", 8192));
  p.working_set_bytes = static_cast<std::uint64_t>(
      j.get_number("working_set_bytes", 10.0 * (1 << 20)));
  p.admission_control = j.get_number("admission_control", 1) != 0;
  p.queue_capacity = static_cast<int>(j.get_number("queue_capacity", 64));
  p.service_concurrency =
      static_cast<int>(j.get_number("service_concurrency", 4));
  p.queue_deadline = sim::Duration::nanos(static_cast<std::int64_t>(
      j.get_number("queue_deadline_ns", 750.0 * 1e6)));
  p.brownout_enter_fill = j.get_number("brownout_enter_fill", 0.75);
  p.brownout_exit_fill = j.get_number("brownout_exit_fill", 0.25);
  p.brownout_cycles_factor = j.get_number("brownout_cycles_factor", 0.25);
  p.brownout_bytes_factor = j.get_number("brownout_bytes_factor", 0.125);
  return p;
}

Json HttpdParams::to_json() const {
  Json j = Json::object();
  j.set("port", port);
  j.set("cycles_per_request", cycles_per_request);
  j.set("response_bytes", static_cast<unsigned long long>(response_bytes));
  j.set("working_set_bytes",
        static_cast<unsigned long long>(working_set_bytes));
  j.set("admission_control", admission_control ? 1 : 0);
  j.set("queue_capacity", queue_capacity);
  j.set("service_concurrency", service_concurrency);
  j.set("queue_deadline_ns", static_cast<double>(queue_deadline.ns()));
  j.set("brownout_enter_fill", brownout_enter_fill);
  j.set("brownout_exit_fill", brownout_exit_fill);
  j.set("brownout_cycles_factor", brownout_cycles_factor);
  j.set("brownout_bytes_factor", brownout_bytes_factor);
  return j;
}

HttpdApp::HttpdApp(HttpdParams params) : params_(params) {}

void HttpdApp::bind_metrics(os::Container& container) {
  if (m_received_ != nullptr) return;
  util::MetricsRegistry& reg = container.node().simulation().metrics();
  m_received_ = &reg.counter("apps.httpd.requests_received");
  m_served_ok_ = &reg.counter("apps.httpd.served_ok");
  m_served_brownout_ = &reg.counter("apps.httpd.served_brownout");
  m_shed_admission_ = &reg.counter("apps.httpd.shed_admission");
  m_shed_deadline_ = &reg.counter("apps.httpd.shed_deadline");
  m_refused_at_start_ = &reg.counter("apps.httpd.refused_at_start");
  m_brownout_entered_ = &reg.counter("apps.httpd.brownout_entered");
  m_queue_depth_ = &reg.gauge("apps.httpd.queue_depth");
}

void HttpdApp::set_queue_gauge(double delta) {
  if (m_queue_depth_ != nullptr) m_queue_depth_->add(delta);
}

void HttpdApp::start(os::Container& container) {
  container_ = &container;
  sim_ = &container.node().simulation();
  bind_metrics(container);
  // Page cache / doc root resident set.
  working_set_resident_ =
      container.alloc_memory(params_.working_set_bytes).ok();
  if (!working_set_resident_) {
    LOG_WARN("httpd", "%s: working set does not fit; serving degraded",
             container.name().c_str());
  }
  container.listen(params_.port,
                   [this](const net::Message& msg) { on_request(msg); });
}

void HttpdApp::stop() {
  if (container_ == nullptr) return;
  container_->unlisten(params_.port);
  // Queued-but-unserved requests die with the listener; account them so the
  // conservation invariant survives a stop (migration freeze, node drain).
  while (!queue_.empty()) {
    ++refused_at_start_;
    if (m_refused_at_start_ != nullptr) m_refused_at_start_->inc();
    queue_.pop_front();
    set_queue_gauge(-1);
  }
  if (working_set_resident_) {
    container_->free_memory(params_.working_set_bytes);
    working_set_resident_ = false;
  }
  container_ = nullptr;
}

void HttpdApp::shed(const QueueEntry& entry, const char* cause) {
  // A shed response is deliberately cheap: no cycles, a header-sized body —
  // fast feedback is what lets client breakers and retry budgets react.
  Json body = Json::object();
  body.set("id", entry.id);
  body.set("status", 503);
  body.set("shed", std::string(cause));
  container_->send(entry.reply_to, entry.reply_port, body.dump(),
                   params_.port, 128);
}

void HttpdApp::update_brownout() {
  const double fill = params_.queue_capacity > 0
                          ? static_cast<double>(queue_.size()) /
                                static_cast<double>(params_.queue_capacity)
                          : 0.0;
  if (!brownout_ && fill >= params_.brownout_enter_fill) {
    brownout_ = true;
    if (m_brownout_entered_ != nullptr) m_brownout_entered_->inc();
  } else if (brownout_ && fill <= params_.brownout_exit_fill) {
    brownout_ = false;
  }
}

void HttpdApp::on_request(const net::Message& msg) {
  if (container_ == nullptr) return;
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  Json request = std::move(parsed).value();

  // Liveness probes (LB health checks) bypass admission: a loaded-but-alive
  // server must keep answering them or the LB would eject it exactly when
  // shedding is doing its job.
  if (request.get_string("op") == "health") {
    ++health_probes_;
    Json body = Json::object();
    body.set("id", request.get_number("id"));
    body.set("status", 200);
    body.set("health", true);
    container_->send(msg.src, msg.src_port, body.dump(), params_.port, 64);
    return;
  }

  ++requests_received_;
  if (m_received_ != nullptr) m_received_->inc();

  QueueEntry entry;
  entry.reply_to = msg.src;
  entry.reply_port = msg.src_port;
  entry.id = request.get_number("id");
  entry.path = request.get_string("path", "/");
  entry.cost = request.get_number("cost", 1.0);
  if (entry.cost < 1e-3) entry.cost = 1.0;
  entry.deadline = sim_->now() + params_.queue_deadline;

  if (!params_.admission_control) {
    // Pre-resilience behaviour: unbounded concurrency, no shedding — the
    // baseline that collapses under a flash crowd.
    ++in_service_;
    serve(std::move(entry));
    return;
  }

  if (static_cast<int>(queue_.size()) >= params_.queue_capacity) {
    ++shed_admission_;
    if (m_shed_admission_ != nullptr) m_shed_admission_->inc();
    shed(entry, "admission");
    return;
  }
  queue_.push_back(std::move(entry));
  set_queue_gauge(1);
  update_brownout();
  pump();
}

void HttpdApp::pump() {
  while (container_ != nullptr && in_service_ < params_.service_concurrency &&
         !queue_.empty()) {
    QueueEntry entry = std::move(queue_.front());
    queue_.pop_front();
    set_queue_gauge(-1);
    if (sim_->now() > entry.deadline) {
      ++shed_deadline_;
      if (m_shed_deadline_ != nullptr) m_shed_deadline_->inc();
      shed(entry, "deadline");
      continue;
    }
    ++in_service_;
    serve(std::move(entry));
  }
  update_brownout();
}

void HttpdApp::serve(QueueEntry entry) {
  const bool degraded = params_.admission_control && brownout_;
  const double cycles =
      params_.cycles_per_request * entry.cost *
      (degraded ? params_.brownout_cycles_factor : 1.0);
  const double bytes =
      static_cast<double>(params_.response_bytes) *
      (degraded ? params_.brownout_bytes_factor : 1.0);
  container_->run_cpu(cycles, [this, entry = std::move(entry), degraded,
                               bytes](bool completed) {
    --in_service_;
    if (!completed || container_ == nullptr) {
      ++refused_at_start_;
      if (m_refused_at_start_ != nullptr) m_refused_at_start_->inc();
      return;
    }
    if (degraded) {
      ++served_brownout_;
      if (m_served_brownout_ != nullptr) m_served_brownout_->inc();
    } else {
      ++served_ok_;
      if (m_served_ok_ != nullptr) m_served_ok_->inc();
    }
    Json body = Json::object();
    body.set("id", entry.id);
    body.set("status", 200);
    body.set("path", entry.path);
    if (degraded) body.set("brownout", true);
    container_->send(entry.reply_to, entry.reply_port, body.dump(),
                     params_.port, bytes);
    if (params_.admission_control) pump();
  });
}

util::Json HttpdApp::status() const {
  Json j = Json::object();
  j.set("requests", static_cast<unsigned long long>(requests_received_));
  j.set("served_ok", static_cast<unsigned long long>(served_ok_));
  j.set("served_brownout",
        static_cast<unsigned long long>(served_brownout_));
  j.set("shed_admission", static_cast<unsigned long long>(shed_admission_));
  j.set("shed_deadline", static_cast<unsigned long long>(shed_deadline_));
  j.set("refused_at_start",
        static_cast<unsigned long long>(refused_at_start_));
  j.set("dropped", static_cast<unsigned long long>(requests_dropped()));
  j.set("queue_depth", static_cast<unsigned long long>(queue_.size()));
  j.set("brownout", brownout_);
  j.set("port", params_.port);
  return j;
}

}  // namespace picloud::apps
