// Batch compute tenant — a CPU-bound workload ("computation-intensive jobs
// are often divided into several small tasks which are in turn distributed
// over many servers", paper §IV).
//
// The app burns CPU continuously in chunks (optionally with a duty cycle),
// counting the cycles it is actually granted. Because it always has work
// queued, the ratio of delivered cycles to entitled cycles is a direct SLO
// measurement under oversubscription — the economics bench's instrument.
#pragma once

#include <cstdint>

#include "os/container.h"
#include "util/json.h"

namespace picloud::apps {

struct BatchParams {
  double chunk_cycles = 10e6;  // work unit between scheduler decisions
  // Fraction of time the tenant wants CPU (1.0 = always hungry).
  double duty = 1.0;
  std::uint64_t working_set_bytes = 5ull << 20;

  static BatchParams from_json(const util::Json& j);
};

class BatchApp : public os::ContainerApp {
 public:
  explicit BatchApp(BatchParams params = {});

  std::string kind() const override { return "batch"; }
  void start(os::Container& container) override;
  void stop() override;
  util::Json status() const override;
  double dirty_bytes_per_sec() const override {
    return static_cast<double>(params_.working_set_bytes) * 0.1;
  }

  double cycles_completed() const { return cycles_completed_; }

 private:
  void next_chunk();

  BatchParams params_;
  os::Container* container_ = nullptr;
  bool working_set_resident_ = false;
  double cycles_completed_ = 0;
  os::CpuTaskId current_task_ = 0;
};

}  // namespace picloud::apps
