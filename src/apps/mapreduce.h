// Hadoop-style MapReduce over PiCloud containers (the "Hadoop Container" of
// Fig. 3; §IV names hadoop as an emulatable DC workload).
//
// Roles:
//   * MapReduceWorkerApp — runs inside a container; executes map tasks
//     (CPU proportional to split size), pushes shuffle partitions to every
//     reducer over the fabric, executes reduce tasks once all expected
//     partitions arrive.
//   * MapReduceDriver   — the job client (runs at the admin workstation or
//     any host): splits the input, assigns map tasks round-robin over the
//     workers, designates reducers, and reports job metrics.
//
// The shuffle is the point: map outputs cross ToR and aggregation links as
// real flows, producing the all-to-all traffic pattern whose interaction
// with placement the paper wants observable.
//
// Wire protocol (port 7070, JSON datagrams; bulk bytes ride as padding):
//   driver -> worker : {"op":"map","job":J,"task":T,"bytes":B,
//                       "reducers":[ips],"cpb":c,"shuffle_frac":f,"id":i}
//   worker -> reducer: {"op":"partition","job":J,"bytes":P}
//   driver -> reducer: {"op":"reduce","job":J,"expect_bytes":E,
//                       "expect_parts":N,"cpb":c,"id":i}
//   worker -> driver : {"op":"map_done","job":J,"task":T,"id":i}
//   reducer -> driver: {"op":"reduce_done","job":J,"id":i}
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/network.h"
#include "os/container.h"
#include "sim/simulation.h"
#include "util/json.h"

namespace picloud::apps {

inline constexpr std::uint16_t kMapReducePort = 7070;

class MapReduceWorkerApp : public os::ContainerApp {
 public:
  std::string kind() const override { return "mr-worker"; }
  void start(os::Container& container) override;
  void stop() override;
  util::Json status() const override;
  double dirty_bytes_per_sec() const override { return 512.0 * 1024; }

  std::uint64_t map_tasks_done() const { return maps_done_; }
  std::uint64_t reduce_tasks_done() const { return reduces_done_; }

 private:
  struct ReduceState {
    double received_bytes = 0;
    int received_parts = 0;
    // Set once the driver's reduce order arrives.
    bool ordered = false;
    double expect_bytes = 0;
    int expect_parts = 0;
    double cycles_per_byte = 0;
    net::Ipv4Addr driver;
    std::uint16_t driver_port = 0;
    double request_id = 0;
    bool running = false;
  };

  void on_message(const net::Message& msg);
  void handle_map(const util::Json& request, net::Ipv4Addr from,
                  std::uint16_t from_port);
  void handle_partition(const util::Json& request, double padding);
  void handle_reduce_order(const util::Json& request, net::Ipv4Addr from,
                           std::uint16_t from_port);
  void maybe_run_reduce(const std::string& job);

  os::Container* container_ = nullptr;
  std::map<std::string, ReduceState> reduce_jobs_;
  std::uint64_t maps_done_ = 0;
  std::uint64_t reduces_done_ = 0;
};

// Job description + result, driver side.
struct MapReduceJobSpec {
  std::string job_id;
  double input_bytes = 64ull << 20;  // total dataset
  int map_tasks = 8;
  std::vector<net::Ipv4Addr> workers;   // all run map tasks
  std::vector<net::Ipv4Addr> reducers;  // subset receiving the shuffle
  double map_cycles_per_byte = 1.0;
  double reduce_cycles_per_byte = 0.5;
  double shuffle_fraction = 0.4;  // map output / input ratio (wordcount-ish)
};

struct MapReduceJobResult {
  bool success = false;
  std::string error;
  sim::Duration duration;
  double shuffle_bytes = 0;
  int map_tasks = 0;
  int reduce_tasks = 0;
};

class MapReduceDriver {
 public:
  MapReduceDriver(net::Network& network, net::Ipv4Addr self,
                  std::uint16_t port = 7071);
  ~MapReduceDriver();

  using JobCallback = std::function<void(const MapReduceJobResult&)>;
  // Runs the job; the callback fires once on completion or timeout.
  void run(MapReduceJobSpec spec, JobCallback cb,
           sim::Duration timeout = sim::Duration::minutes(30));

 private:
  struct JobState {
    MapReduceJobSpec spec;
    JobCallback cb;
    sim::SimTime started;
    int maps_pending = 0;
    int reduces_pending = 0;
    bool reduces_ordered = false;
    sim::EventId timeout_event = 0;
  };

  void on_message(const net::Message& msg);
  void order_reduces(JobState& job);
  void finish(const std::string& job_id, bool success,
              const std::string& error);
  void send(net::Ipv4Addr to, util::Json body);

  net::Network& network_;
  sim::Simulation& sim_;
  net::Ipv4Addr self_;
  std::uint16_t port_;
  std::map<std::string, JobState> jobs_;
};

}  // namespace picloud::apps
