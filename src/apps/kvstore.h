// In-memory key-value database container (the "Database Container" of the
// paper's Fig. 3 software stack).
//
// Values are charged to the container's memory cgroup, so a store that
// outgrows its limit sees real insertion failures — the per-VM soft limit
// behaviour the management API controls. The dataset survives migration:
// stop() keeps the map, start() re-charges it on the destination node.
//
// Wire protocol (JSON datagrams on port 6379):
//   {"op":"put","key":k,"bytes":n,"id":i}   -> {"ok":true,"id":i}
//   {"op":"get","key":k,"id":i}             -> {"ok":true,"bytes":n,"id":i}
//   {"op":"del","key":k,"id":i}             -> {"ok":true,"id":i}
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "os/container.h"
#include "util/json.h"

namespace picloud::apps {

struct KvStoreParams {
  std::uint16_t port = 6379;
  double cycles_per_op = 0.5e6;

  static KvStoreParams from_json(const util::Json& j);
};

class KvStoreApp : public os::ContainerApp {
 public:
  explicit KvStoreApp(KvStoreParams params = {});

  std::string kind() const override { return "kvstore"; }
  void start(os::Container& container) override;
  void stop() override;
  util::Json status() const override;
  double dirty_bytes_per_sec() const override {
    // Write-heavy stores dirty pages fast; scale with stored bytes.
    return 128.0 * 1024 + static_cast<double>(stored_bytes_) * 0.05;
  }

  size_t key_count() const { return values_.size(); }
  std::uint64_t stored_bytes() const { return stored_bytes_; }
  std::uint64_t ops_served() const { return ops_served_; }
  std::uint64_t ops_rejected() const { return ops_rejected_; }

 private:
  void on_request(const net::Message& msg);
  void reply(net::Ipv4Addr to, std::uint16_t port, util::Json body,
             double padding = 0);

  KvStoreParams params_;
  os::Container* container_ = nullptr;
  std::map<std::string, std::uint64_t> values_;  // key -> value size
  std::uint64_t stored_bytes_ = 0;
  std::uint64_t ops_served_ = 0;
  std::uint64_t ops_rejected_ = 0;
};

}  // namespace picloud::apps
