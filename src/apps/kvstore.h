// In-memory key-value database container (the "Database Container" of the
// paper's Fig. 3 software stack).
//
// Values are charged to the container's memory cgroup, so a store that
// outgrows its limit sees real insertion failures — the per-VM soft limit
// behaviour the management API controls. The dataset survives migration:
// stop() keeps the map, start() re-charges it on the destination node.
//
// Wire protocol (JSON datagrams on port 6379):
//   {"op":"put","key":k,"bytes":n,"id":i}   -> {"ok":true,"id":i}
//   {"op":"get","key":k,"id":i}             -> {"ok":true,"bytes":n,"id":i}
//   {"op":"del","key":k,"id":i}             -> {"ok":true,"id":i}
//
// Overload resilience (DESIGN.md §11): ops are admitted into a bounded
// queue served at fixed concurrency; a full queue or an expired queue
// deadline sheds the op with {"ok":false,"shed":...}. Under sustained
// pressure the store browns out: gets return metadata only (no value bytes
// on the wire) at a fraction of the cycles.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "os/container.h"
#include "sim/simulation.h"
#include "util/json.h"
#include "util/metrics.h"

namespace picloud::apps {

struct KvStoreParams {
  std::uint16_t port = 6379;
  double cycles_per_op = 0.5e6;

  // Admission control (same model as HttpdParams; see DESIGN.md §11).
  bool admission_control = true;
  int queue_capacity = 128;
  int service_concurrency = 4;
  sim::Duration queue_deadline = sim::Duration::millis(750);
  double brownout_enter_fill = 0.75;
  double brownout_exit_fill = 0.25;
  double brownout_cycles_factor = 0.25;

  static KvStoreParams from_json(const util::Json& j);
};

class KvStoreApp : public os::ContainerApp {
 public:
  explicit KvStoreApp(KvStoreParams params = {});

  std::string kind() const override { return "kvstore"; }
  void start(os::Container& container) override;
  void stop() override;
  util::Json status() const override;
  double dirty_bytes_per_sec() const override {
    // Write-heavy stores dirty pages fast; scale with stored bytes.
    return 128.0 * 1024 + static_cast<double>(stored_bytes_) * 0.05;
  }

  size_t key_count() const { return values_.size(); }
  std::uint64_t stored_bytes() const { return stored_bytes_; }

  // --- Accounting (conservation probe: see invariants.cc) --------------------
  // received == served + rejected + shed_admission + shed_deadline
  //             + refused_at_start + queue_depth + in_service, at any instant.
  std::uint64_t ops_received() const { return ops_received_; }
  std::uint64_t ops_served() const { return ops_served_; }
  std::uint64_t served_brownout() const { return served_brownout_; }
  std::uint64_t ops_rejected() const { return ops_rejected_; }
  std::uint64_t shed_admission() const { return shed_admission_; }
  std::uint64_t shed_deadline() const { return shed_deadline_; }
  std::uint64_t refused_at_start() const { return refused_at_start_; }
  std::size_t queue_depth() const { return queue_.size(); }
  int in_service() const { return in_service_; }
  bool brownout_active() const { return brownout_; }

 private:
  struct QueueEntry {
    net::Ipv4Addr reply_to;
    std::uint16_t reply_port = 0;
    util::Json request;
    sim::SimTime deadline;
  };

  void on_request(const net::Message& msg);
  void pump();
  void serve(QueueEntry entry);
  void execute(const QueueEntry& entry, bool degraded);
  void update_brownout();
  void bind_metrics(os::Container& container);
  void reply(net::Ipv4Addr to, std::uint16_t port, util::Json body,
             double padding = 0);

  KvStoreParams params_;
  os::Container* container_ = nullptr;
  sim::Simulation* sim_ = nullptr;
  std::map<std::string, std::uint64_t> values_;  // key -> value size
  std::uint64_t stored_bytes_ = 0;

  std::deque<QueueEntry> queue_;  // bounded by params_.queue_capacity
  int in_service_ = 0;
  bool brownout_ = false;

  std::uint64_t ops_received_ = 0;
  std::uint64_t ops_served_ = 0;        // includes served_brownout_
  std::uint64_t served_brownout_ = 0;
  std::uint64_t ops_rejected_ = 0;      // bad op / OOM put
  std::uint64_t shed_admission_ = 0;
  std::uint64_t shed_deadline_ = 0;
  std::uint64_t refused_at_start_ = 0;  // cancelled mid-service / on stop

  util::Counter* m_received_ = nullptr;
  util::Counter* m_served_ = nullptr;
  util::Counter* m_served_brownout_ = nullptr;
  util::Counter* m_shed_admission_ = nullptr;
  util::Counter* m_shed_deadline_ = nullptr;
  util::Counter* m_refused_at_start_ = nullptr;
  util::Gauge* m_queue_depth_ = nullptr;
};

}  // namespace picloud::apps
