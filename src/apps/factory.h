// App factory: builds ContainerApp instances from the "app" / "app_params"
// fields of a spawn request. Wired into every NodeDaemon by the PiCloud
// facade, mirroring how the paper's image carries a fixed set of runnable
// services (webserver / database / hadoop, Fig. 3).
#pragma once

#include <memory>
#include <string>

#include "os/container.h"
#include "util/json.h"
#include "util/result.h"

namespace picloud::apps {

// Known kinds: "httpd", "kvstore", "mr-worker", "batch", "dfs-node".
util::Result<std::unique_ptr<os::ContainerApp>> make_app(
    const std::string& kind, const util::Json& params);

}  // namespace picloud::apps
