#include "apps/lb.h"

#include <algorithm>

#include "os/node_os.h"
#include "util/logging.h"

namespace picloud::apps {

using util::Json;

namespace {

const char* policy_name(LbPolicy p) {
  return p == LbPolicy::kLeastOutstanding ? "least_outstanding" : "round_robin";
}

const char* backend_state_name(LbApp::BackendState s) {
  switch (s) {
    case LbApp::BackendState::kHealthy: return "healthy";
    case LbApp::BackendState::kEjected: return "ejected";
    case LbApp::BackendState::kHalfOpen: return "half_open";
  }
  return "?";
}

}  // namespace

LbParams LbParams::from_json(const Json& j) {
  LbParams p;
  p.port = static_cast<std::uint16_t>(j.get_number("port", 80));
  p.upstream_port =
      static_cast<std::uint16_t>(j.get_number("upstream_port", 8081));
  p.backend_port =
      static_cast<std::uint16_t>(j.get_number("backend_port", 80));
  p.policy = j.get_string("policy", "round_robin") == "least_outstanding"
                 ? LbPolicy::kLeastOutstanding
                 : LbPolicy::kRoundRobin;
  p.health_period = sim::Duration::nanos(static_cast<std::int64_t>(
      j.get_number("health_period_ns", 500.0 * 1e6)));
  p.health_timeout = sim::Duration::nanos(static_cast<std::int64_t>(
      j.get_number("health_timeout_ns", 250.0 * 1e6)));
  p.unhealthy_threshold =
      static_cast<int>(j.get_number("unhealthy_threshold", 3));
  p.ejection_period = sim::Duration::nanos(static_cast<std::int64_t>(
      j.get_number("ejection_period_ns", 5.0 * 1e9)));
  p.proxy_timeout = sim::Duration::nanos(static_cast<std::int64_t>(
      j.get_number("proxy_timeout_ns", 2.0 * 1e9)));
  p.max_attempts = static_cast<int>(j.get_number("max_attempts", 2));
  p.retry_budget_ratio = j.get_number("retry_budget_ratio", 0.1);
  p.retry_budget_burst = j.get_number("retry_budget_burst", 10.0);
  return p;
}

Json LbParams::to_json() const {
  Json j = Json::object();
  j.set("port", port);
  j.set("upstream_port", upstream_port);
  j.set("backend_port", backend_port);
  j.set("policy", std::string(policy_name(policy)));
  j.set("health_period_ns", static_cast<double>(health_period.ns()));
  j.set("health_timeout_ns", static_cast<double>(health_timeout.ns()));
  j.set("unhealthy_threshold", unhealthy_threshold);
  j.set("ejection_period_ns", static_cast<double>(ejection_period.ns()));
  j.set("proxy_timeout_ns", static_cast<double>(proxy_timeout.ns()));
  j.set("max_attempts", max_attempts);
  j.set("retry_budget_ratio", retry_budget_ratio);
  j.set("retry_budget_burst", retry_budget_burst);
  return j;
}

LbApp::LbApp(LbParams params) : params_(params) {
  retry_tokens_ = params_.retry_budget_burst;
}

void LbApp::bind_metrics(os::Container& container) {
  if (m_received_ != nullptr) return;
  util::MetricsRegistry& reg = container.node().simulation().metrics();
  m_received_ = &reg.counter("apps.lb.requests_received");
  m_retries_ = &reg.counter("apps.lb.retries");
  m_retries_denied_ = &reg.counter("apps.lb.retries_denied");
  m_upstream_timeouts_ = &reg.counter("apps.lb.upstream_timeouts");
  m_ejected_ = &reg.counter("apps.lb.backends_ejected");
  m_readmitted_ = &reg.counter("apps.lb.backends_readmitted");
  m_no_backend_ = &reg.counter("apps.lb.no_backend");
  m_healthy_ = &reg.gauge("apps.lb.healthy_backends");
  m_upstream_latency_ = &reg.histogram("apps.lb.upstream_latency_ms");
}

void LbApp::start(os::Container& container) {
  container_ = &container;
  sim_ = &container.node().simulation();
  bind_metrics(container);
  container.listen(params_.port,
                   [this](const net::Message& msg) { on_client(msg); });
  container.listen(params_.upstream_port,
                   [this](const net::Message& msg) { on_upstream(msg); });
  health_task_ = sim::PeriodicTask(*sim_, params_.health_period,
                                   [this]() { run_health_checks(); });
}

void LbApp::stop() {
  if (container_ == nullptr) return;
  health_task_.stop();
  container_->unlisten(params_.port);
  container_->unlisten(params_.upstream_port);
  for (auto& [pid, proxy] : proxies_) {
    if (proxy.timeout_event != 0) sim_->cancel(proxy.timeout_event);
    ++dropped_in_flight_;
  }
  proxies_.clear();
  for (auto& [pid, probe] : probes_) {
    if (probe.timeout_event != 0) sim_->cancel(probe.timeout_event);
  }
  probes_.clear();
  for (auto& [ip, backend] : backends_) {
    if (backend.reopen_event != 0) {
      sim_->cancel(backend.reopen_event);
      backend.reopen_event = 0;
    }
    backend.outstanding = 0;
  }
  container_ = nullptr;
}

void LbApp::set_backends(std::vector<net::Ipv4Addr> backends) {
  // Remember which backend the cursor points at so rotation stays
  // deterministic across pool changes (same fix as HttpLoadGen::set_targets).
  net::Ipv4Addr cursor_ip;
  bool have_cursor = false;
  if (!rotation_.empty()) {
    cursor_ip = rotation_[rr_cursor_ % rotation_.size()];
    have_cursor = true;
  }

  std::map<net::Ipv4Addr, Backend> next;
  for (net::Ipv4Addr ip : backends) {
    auto it = backends_.find(ip);
    if (it != backends_.end()) {
      next.emplace(ip, it->second);
      it->second.reopen_event = 0;  // ownership moved to `next`
    } else {
      next.emplace(ip, Backend{});
    }
  }
  // Cancel reopen timers of backends that left the pool.
  for (auto& [ip, backend] : backends_) {
    if (backend.reopen_event != 0 && sim_ != nullptr) {
      sim_->cancel(backend.reopen_event);
    }
  }
  backends_ = std::move(next);
  rotation_ = std::move(backends);

  rr_cursor_ = 0;
  if (have_cursor) {
    auto at = std::find(rotation_.begin(), rotation_.end(), cursor_ip);
    if (at != rotation_.end()) {
      rr_cursor_ = static_cast<std::size_t>(at - rotation_.begin());
    }
  }
  if (m_healthy_ != nullptr) {
    m_healthy_->set(static_cast<double>(healthy_backends().size()));
  }
}

std::vector<net::Ipv4Addr> LbApp::healthy_backends() const {
  std::vector<net::Ipv4Addr> out;
  for (net::Ipv4Addr ip : rotation_) {
    auto it = backends_.find(ip);
    if (it != backends_.end() && it->second.state == BackendState::kHealthy) {
      out.push_back(ip);
    }
  }
  return out;
}

LbApp::BackendState LbApp::backend_state(net::Ipv4Addr ip) const {
  auto it = backends_.find(ip);
  return it != backends_.end() ? it->second.state : BackendState::kEjected;
}

// Runs per proxied request (plus per retry) — keep allocation-free.
// picloud-hot
bool LbApp::choose_backend(net::Ipv4Addr exclude, bool use_exclude,
                           net::Ipv4Addr* out) {
  if (rotation_.empty()) return false;
  auto eligible = [&](net::Ipv4Addr ip) {
    auto it = backends_.find(ip);
    if (it == backends_.end()) return false;
    if (it->second.state != BackendState::kHealthy) return false;
    return !(use_exclude && ip == exclude);
  };

  if (params_.policy == LbPolicy::kLeastOutstanding) {
    bool found = false;
    net::Ipv4Addr best;
    int best_outstanding = 0;
    for (net::Ipv4Addr ip : rotation_) {  // rotation order breaks ties
      if (!eligible(ip)) continue;
      int outstanding = backends_[ip].outstanding;
      if (!found || outstanding < best_outstanding) {
        found = true;
        best = ip;
        best_outstanding = outstanding;
      }
    }
    if (!found && use_exclude) return choose_backend({}, false, out);
    if (!found) return false;
    *out = best;
    return true;
  }

  for (std::size_t i = 0; i < rotation_.size(); ++i) {
    net::Ipv4Addr ip = rotation_[rr_cursor_ % rotation_.size()];
    ++rr_cursor_;
    if (eligible(ip)) {
      *out = ip;
      return true;
    }
  }
  // Everything healthy was excluded; fall back to allowing the excluded one.
  if (use_exclude) return choose_backend({}, false, out);
  return false;
}

void LbApp::on_client(const net::Message& msg) {
  if (container_ == nullptr) return;
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  Json request = std::move(parsed).value();

  ++requests_received_;
  if (m_received_ != nullptr) m_received_->inc();

  std::uint64_t pid = next_pid_++;
  Proxy proxy;
  proxy.client = msg.src;
  proxy.client_port = msg.src_port;
  proxy.client_id = request.get_number("id");
  request.set("id", static_cast<unsigned long long>(pid));
  proxy.payload = request.dump();
  proxy.padding = msg.padding_bytes;

  net::Ipv4Addr target;
  if (!choose_backend({}, false, &target)) {
    ++no_backend_;
    if (m_no_backend_ != nullptr) m_no_backend_->inc();
    ++responses_error_;
    Json body = Json::object();
    body.set("id", proxy.client_id);
    body.set("status", 503);
    body.set("lb_error", std::string("no_backend"));
    container_->send(proxy.client, proxy.client_port, body.dump(),
                     params_.port, 128);
    return;
  }

  ++requests_forwarded_;
  retry_tokens_ = std::min(retry_tokens_ + params_.retry_budget_ratio,
                           params_.retry_budget_burst);
  proxy.backend = target;
  proxies_.emplace(pid, std::move(proxy));
  forward(pid);
}

void LbApp::forward(std::uint64_t pid) {
  auto it = proxies_.find(pid);
  if (it == proxies_.end()) return;
  Proxy& proxy = it->second;
  ++proxy.attempts;
  ++attempts_forwarded_;
  proxy.attempt_at = sim_->now();
  auto backend_it = backends_.find(proxy.backend);
  if (backend_it != backends_.end()) ++backend_it->second.outstanding;
  proxy.timeout_event = sim_->after(params_.proxy_timeout, [this, pid]() {
    auto at = proxies_.find(pid);
    if (at == proxies_.end()) return;
    at->second.timeout_event = 0;
    ++upstream_timeouts_;
    if (m_upstream_timeouts_ != nullptr) m_upstream_timeouts_->inc();
    attempt_failed(pid);
  });
  bool sent = container_->send(proxy.backend, params_.backend_port,
                               proxy.payload, params_.upstream_port,
                               proxy.padding);
  if (!sent) {
    // No route (backend's node is gone): fail fast instead of waiting out
    // the proxy timeout.
    if (proxy.timeout_event != 0) {
      sim_->cancel(proxy.timeout_event);
      proxy.timeout_event = 0;
    }
    attempt_failed(pid);
  }
}

void LbApp::attempt_failed(std::uint64_t pid) {
  auto it = proxies_.find(pid);
  if (it == proxies_.end()) return;
  Proxy& proxy = it->second;
  net::Ipv4Addr failed = proxy.backend;
  auto backend_it = backends_.find(failed);
  if (backend_it != backends_.end() && backend_it->second.outstanding > 0) {
    --backend_it->second.outstanding;
  }
  backend_failure(failed);

  if (proxy.attempts < params_.max_attempts && retry_tokens_ >= 1.0) {
    net::Ipv4Addr target;
    if (choose_backend(failed, true, &target)) {
      retry_tokens_ -= 1.0;
      ++retries_attempted_;
      if (m_retries_ != nullptr) m_retries_->inc();
      proxy.backend = target;
      forward(pid);
      return;
    }
  } else if (proxy.attempts < params_.max_attempts) {
    ++retries_denied_;
    if (m_retries_denied_ != nullptr) m_retries_denied_->inc();
  }

  Json body = Json::object();
  body.set("id", proxy.client_id);
  body.set("status", 503);
  body.set("lb_error", std::string("upstream_failed"));
  finish(pid, body.dump(), 128, /*ok=*/false);
}

void LbApp::finish(std::uint64_t pid, const std::string& payload,
                   double padding, bool ok) {
  auto it = proxies_.find(pid);
  if (it == proxies_.end()) return;
  Proxy proxy = std::move(it->second);
  proxies_.erase(it);
  if (proxy.timeout_event != 0) sim_->cancel(proxy.timeout_event);
  if (ok) {
    ++responses_ok_;
  } else {
    ++responses_error_;
  }
  container_->send(proxy.client, proxy.client_port, payload, params_.port,
                   padding);
}

void LbApp::on_upstream(const net::Message& msg) {
  if (container_ == nullptr) return;
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  Json reply = std::move(parsed).value();
  auto id = static_cast<std::uint64_t>(reply.get_number("id"));

  if (reply.has("health")) {
    auto probe_it = probes_.find(id);
    if (probe_it == probes_.end()) return;  // late probe reply
    if (probe_it->second.timeout_event != 0) {
      sim_->cancel(probe_it->second.timeout_event);
    }
    net::Ipv4Addr backend = probe_it->second.backend;
    probes_.erase(probe_it);
    on_health_reply(backend);
    return;
  }

  auto it = proxies_.find(id);
  if (it == proxies_.end()) return;  // reply after timeout/retry settled
  Proxy& proxy = it->second;
  if (msg.src != proxy.backend) return;  // stale attempt's reply
  if (proxy.timeout_event != 0) {
    sim_->cancel(proxy.timeout_event);
    proxy.timeout_event = 0;
  }
  auto backend_it = backends_.find(proxy.backend);
  if (backend_it != backends_.end() && backend_it->second.outstanding > 0) {
    --backend_it->second.outstanding;
  }
  if (m_upstream_latency_ != nullptr) {
    m_upstream_latency_->observe((sim_->now() - proxy.attempt_at).to_millis());
  }

  const double status = reply.get_number("status", 200);
  const bool shed = !reply.get_string("shed", "").empty();
  if (status >= 500 || shed) {
    // Fast-fail from an overloaded backend. Count it against the breaker and
    // let the retry budget decide whether to try a sibling.
    attempt_failed(id);
    return;
  }
  backend_success(proxy.backend);
  reply.set("id", proxy.client_id);
  finish(id, reply.dump(), msg.padding_bytes, /*ok=*/true);
}

void LbApp::on_health_reply(net::Ipv4Addr backend) {
  // A successful probe clears the failure streak and re-admits a half-open
  // backend; ejected backends stay out until their period elapses.
  backend_success(backend);
}

void LbApp::backend_failure(net::Ipv4Addr ip) {
  auto it = backends_.find(ip);
  if (it == backends_.end()) return;
  Backend& backend = it->second;
  if (backend.state == BackendState::kHalfOpen) {
    // Failed its trial: back to ejected for another period.
    eject(ip);
    return;
  }
  if (backend.state != BackendState::kHealthy) return;
  if (++backend.consecutive_failures >= params_.unhealthy_threshold) {
    eject(ip);
  }
}

void LbApp::backend_success(net::Ipv4Addr ip) {
  auto it = backends_.find(ip);
  if (it == backends_.end()) return;
  Backend& backend = it->second;
  backend.consecutive_failures = 0;
  if (backend.state == BackendState::kHalfOpen) {
    backend.state = BackendState::kHealthy;
    ++backends_readmitted_;
    if (m_readmitted_ != nullptr) m_readmitted_->inc();
    if (m_healthy_ != nullptr) m_healthy_->add(1);
    LOG_INFO("lb", "backend %s re-admitted", ip.to_string().c_str());
  }
}

void LbApp::eject(net::Ipv4Addr ip) {
  auto it = backends_.find(ip);
  if (it == backends_.end()) return;
  Backend& backend = it->second;
  const bool was_healthy = backend.state == BackendState::kHealthy;
  backend.state = BackendState::kEjected;
  backend.consecutive_failures = 0;
  ++backends_ejected_;
  if (m_ejected_ != nullptr) m_ejected_->inc();
  if (was_healthy && m_healthy_ != nullptr) m_healthy_->add(-1);
  if (backend.reopen_event != 0) sim_->cancel(backend.reopen_event);
  backend.reopen_event = sim_->after(params_.ejection_period, [this, ip]() {
    auto at = backends_.find(ip);
    if (at == backends_.end()) return;
    at->second.reopen_event = 0;
    if (at->second.state == BackendState::kEjected) {
      at->second.state = BackendState::kHalfOpen;
      probe(ip);  // immediate trial instead of waiting for the next sweep
    }
  });
  LOG_INFO("lb", "backend %s ejected", ip.to_string().c_str());
}

void LbApp::run_health_checks() {
  if (container_ == nullptr) return;
  for (net::Ipv4Addr ip : rotation_) {
    auto it = backends_.find(ip);
    if (it == backends_.end()) continue;
    if (it->second.state == BackendState::kEjected) continue;  // waiting out
    probe(ip);
  }
}

void LbApp::probe(net::Ipv4Addr ip) {
  if (container_ == nullptr) return;
  std::uint64_t hid = next_pid_++;
  Json body = Json::object();
  body.set("op", std::string("health"));
  body.set("id", static_cast<unsigned long long>(hid));
  PendingProbe pending;
  pending.backend = ip;
  pending.timeout_event = sim_->after(params_.health_timeout, [this, hid]() {
    auto it = probes_.find(hid);
    if (it == probes_.end()) return;
    net::Ipv4Addr backend = it->second.backend;
    probes_.erase(it);
    backend_failure(backend);
  });
  probes_.emplace(hid, pending);
  bool sent = container_->send(ip, params_.backend_port, body.dump(),
                               params_.upstream_port, 64);
  if (!sent) {
    auto it = probes_.find(hid);
    if (it != probes_.end()) {
      sim_->cancel(it->second.timeout_event);
      probes_.erase(it);
    }
    backend_failure(ip);
  }
}

util::Json LbApp::status() const {
  Json j = Json::object();
  j.set("policy", std::string(policy_name(params_.policy)));
  j.set("requests", static_cast<unsigned long long>(requests_received_));
  j.set("responses_ok", static_cast<unsigned long long>(responses_ok_));
  j.set("responses_error",
        static_cast<unsigned long long>(responses_error_));
  j.set("in_flight", static_cast<unsigned long long>(proxies_.size()));
  j.set("retries", static_cast<unsigned long long>(retries_attempted_));
  j.set("retries_denied", static_cast<unsigned long long>(retries_denied_));
  j.set("upstream_timeouts",
        static_cast<unsigned long long>(upstream_timeouts_));
  j.set("ejected", static_cast<unsigned long long>(backends_ejected_));
  j.set("readmitted", static_cast<unsigned long long>(backends_readmitted_));
  Json pool = Json::object();
  for (net::Ipv4Addr ip : rotation_) {
    auto it = backends_.find(ip);
    if (it == backends_.end()) continue;
    pool.set(ip.to_string(),
             std::string(backend_state_name(it->second.state)));
  }
  j.set("backends", std::move(pool));
  return j;
}

}  // namespace picloud::apps
