// Workload and traffic generation.
//
// The paper's core critique of simulators is unrealistic traffic: "Traffic
// patterns in operational Cloud DC networks constantly change over time and
// are generally unpredictable" (§I, citing Gill et al. and VL2). Two
// generators reproduce the relevant behaviours:
//
//   * HttpLoadGen — open-loop Poisson request stream against a pool of web
//     instances (the "public website hosting" use case), measuring
//     end-to-end latency (CPU contention + fabric congestion).
//   * BackgroundTraffic — VL2-style machine-to-machine flows: Poisson
//     arrivals, Pareto (heavy-tailed) sizes, tunable rack locality.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/fabric.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulation.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/rng.h"

namespace picloud::apps {

// Time-varying open-loop arrival process (DESIGN.md §11). The shape
// modulates a base rate as a pure function of sim time, so same-seed runs
// see identical offered load:
//   * steady      — constant base rate;
//   * diurnal     — sinusoid: base * (1 + amplitude * sin(2π t / period));
//   * flash_crowd — base rate stepped to base * multiplier inside
//                   [at, at + duration) — the 10× spike of the acceptance
//                   scenario.
// Independently, `cost_alpha > 1` gives each request a Pareto-distributed
// work multiplier (mean `cost_mean`) that servers apply to their per-request
// cycles — the heavy-tailed request cost of real traffic.
struct TrafficShape {
  enum class Kind { kSteady, kDiurnal, kFlashCrowd };
  Kind kind = Kind::kSteady;
  double amplitude = 0.5;                                  // diurnal
  sim::Duration period = sim::Duration::seconds(120);      // diurnal
  sim::Duration at = sim::Duration::seconds(30);           // flash crowd
  sim::Duration duration = sim::Duration::seconds(20);     // flash crowd
  double multiplier = 10.0;                                // flash crowd
  double cost_mean = 1.0;   // heavy-tailed request cost (any kind)
  double cost_alpha = 0.0;  // <= 1 disables (constant cost 1)

  // Rate multiplier at time `t` since the generator started.
  double factor(sim::Duration t) const;

  static TrafficShape from_json(const util::Json& j);
  util::Json to_json() const;
};

class HttpLoadGen {
 public:
  struct Params {
    double requests_per_sec = 20;
    std::uint16_t server_port = 80;
    sim::Duration request_timeout = sim::Duration::seconds(10);
    std::uint64_t request_bytes = 256;  // GET + headers
    TrafficShape shape;

    // --- Client-side protection (DESIGN.md §11) ------------------------------
    // Retries per request beyond the first attempt are additionally capped
    // by a token bucket: `retry_budget_ratio` tokens accrue per original
    // request (bucket starts and caps at `retry_budget_burst`), a retry
    // spends one. Keeps failover from amplifying a flash crowd.
    int max_attempts = 2;
    double retry_budget_ratio = 0.1;
    double retry_budget_burst = 10.0;
    // Per-target breaker: this many consecutive failures opens the breaker
    // for `breaker_open_duration`; after that one trial request is let
    // through (half-open) and its outcome closes or re-opens the breaker.
    int breaker_failure_threshold = 5;
    sim::Duration breaker_open_duration = sim::Duration::seconds(2);
  };

  HttpLoadGen(net::Network& network, net::Ipv4Addr self,
              std::vector<net::Ipv4Addr> targets, Params params,
              util::Rng rng, std::uint16_t client_port = 40080);
  ~HttpLoadGen();

  void start();
  void stop();

  // Replaces the target pool. Breaker state survives for targets present in
  // both pools and the rotation cursor follows the target it pointed at, so
  // ReplicaSet churn does not perturb same-seed digests.
  void set_targets(std::vector<net::Ipv4Addr> targets);

  // Changes the offered base rate; takes effect from the next arrival (the
  // TracePlayer's knob; the shape multiplies on top).
  void set_rate(double requests_per_sec);
  double rate() const { return params_.requests_per_sec; }
  void set_shape(TrafficShape shape) { params_.shape = shape; }

  // Fixed-memory log-bucket latency distribution (ms). Quantiles carry the
  // LogHistogram's ≤8% relative-error bound; benches that need exact
  // quantiles keep their own util::Histogram.
  const util::LogHistogram& latencies() const { return latencies_; }

  // --- Accounting (conservation probe: see invariants.cc) --------------------
  // arrivals == completed + failed + timed_out + breaker_rejected
  //             + in_flight, at any instant; and
  // attempts_sent - sent <= retry_budget_ratio * sent + retry_budget_burst.
  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t sent() const { return sent_; }
  std::uint64_t attempts_sent() const { return attempts_sent_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t completed_brownout() const { return completed_brownout_; }
  std::uint64_t timed_out() const { return timed_out_; }
  std::uint64_t failed() const { return failed_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t retries_denied() const { return retries_denied_; }
  std::uint64_t breaker_rejected() const { return breaker_rejected_; }
  std::uint64_t breakers_opened() const { return breakers_opened_; }
  std::size_t in_flight() const { return pending_.size(); }
  const Params& params() const { return params_; }

 private:
  struct Breaker {
    int consecutive_failures = 0;
    sim::SimTime open_until;   // breaker open while now < open_until
    bool open = false;
  };

  struct Pending {
    sim::SimTime first_sent_at;
    net::Ipv4Addr target;
    std::string path;
    double cost = 1.0;
    int attempts = 0;
    sim::EventId timeout_event = 0;
  };

  void fire_next();
  void on_arrival();
  void send_attempt(std::uint64_t id);
  void attempt_failed(std::uint64_t id);
  void on_message(const net::Message& msg);
  bool pick_target(net::Ipv4Addr exclude, bool use_exclude,
                   net::Ipv4Addr* out);
  bool breaker_allows(net::Ipv4Addr target);
  void record_failure(net::Ipv4Addr target);
  void record_success(net::Ipv4Addr target);

  net::Network& network_;
  sim::Simulation& sim_;
  net::Ipv4Addr self_;
  std::vector<net::Ipv4Addr> targets_;
  Params params_;
  util::Rng rng_;
  std::uint16_t port_;
  bool running_ = false;
  sim::SimTime started_at_;
  size_t next_target_ = 0;
  std::uint64_t next_id_ = 1;
  sim::EventId arrival_event_ = 0;

  std::map<net::Ipv4Addr, Breaker> breakers_;
  double retry_tokens_ = 0;

  std::map<std::uint64_t, Pending> pending_;
  util::LogHistogram latencies_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t attempts_sent_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t completed_brownout_ = 0;
  std::uint64_t timed_out_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t retries_denied_ = 0;
  std::uint64_t breaker_rejected_ = 0;
  std::uint64_t breakers_opened_ = 0;
};

// Machine-to-machine background flows straight on the fabric.
class BackgroundTraffic {
 public:
  struct Params {
    double flows_per_sec = 10;
    double mean_flow_bytes = 1 << 20;   // Pareto-distributed around this
    double pareto_alpha = 1.5;          // heavy tail
    // Probability the destination shares the source's rack (Gill et al.:
    // most DC traffic stays rack-local).
    double rack_locality = 0.7;
  };

  BackgroundTraffic(net::Fabric& fabric, const net::Topology& topology,
                    Params params, util::Rng rng);

  void start();
  void stop();

  std::uint64_t flows_started() const { return flows_started_; }
  double bytes_offered() const { return bytes_offered_; }

 private:
  void fire_next();

  net::Fabric& fabric_;
  const net::Topology& topology_;
  Params params_;
  util::Rng rng_;
  bool running_ = false;
  sim::EventId arrival_event_ = 0;
  std::uint64_t flows_started_ = 0;
  double bytes_offered_ = 0;
};

// Thin client for KvStoreApp (used by examples/tests).
class KvClient {
 public:
  KvClient(net::Network& network, net::Ipv4Addr self,
           std::uint16_t client_port = 46379);
  ~KvClient();

  using Callback = std::function<void(util::Result<util::Json>)>;
  void put(net::Ipv4Addr server, const std::string& key, std::uint64_t bytes,
           Callback cb, std::uint16_t server_port = 6379);
  void get(net::Ipv4Addr server, const std::string& key, Callback cb,
           std::uint16_t server_port = 6379);
  void del(net::Ipv4Addr server, const std::string& key, Callback cb,
           std::uint16_t server_port = 6379);

 private:
  void request(net::Ipv4Addr server, std::uint16_t server_port,
               util::Json body, Callback cb);
  void on_message(const net::Message& msg);

  net::Network& network_;
  sim::Simulation& sim_;
  net::Ipv4Addr self_;
  std::uint16_t port_;
  std::uint64_t next_id_ = 1;
  struct Pending {
    Callback cb;
    sim::EventId timeout_event = 0;
  };
  std::map<std::uint64_t, Pending> pending_;
};

}  // namespace picloud::apps
