// Workload and traffic generation.
//
// The paper's core critique of simulators is unrealistic traffic: "Traffic
// patterns in operational Cloud DC networks constantly change over time and
// are generally unpredictable" (§I, citing Gill et al. and VL2). Two
// generators reproduce the relevant behaviours:
//
//   * HttpLoadGen — open-loop Poisson request stream against a pool of web
//     instances (the "public website hosting" use case), measuring
//     end-to-end latency (CPU contention + fabric congestion).
//   * BackgroundTraffic — VL2-style machine-to-machine flows: Poisson
//     arrivals, Pareto (heavy-tailed) sizes, tunable rack locality.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/fabric.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulation.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/rng.h"

namespace picloud::apps {

class HttpLoadGen {
 public:
  struct Params {
    double requests_per_sec = 20;
    std::uint16_t server_port = 80;
    sim::Duration request_timeout = sim::Duration::seconds(10);
    std::uint64_t request_bytes = 256;  // GET + headers
  };

  HttpLoadGen(net::Network& network, net::Ipv4Addr self,
              std::vector<net::Ipv4Addr> targets, Params params,
              util::Rng rng, std::uint16_t client_port = 40080);
  ~HttpLoadGen();

  void start();
  void stop();

  // Adds/replaces the target pool (targets rotate round-robin).
  void set_targets(std::vector<net::Ipv4Addr> targets);

  // Changes the offered rate; takes effect from the next arrival (the
  // TracePlayer's knob for diurnal/flash-crowd dynamics).
  void set_rate(double requests_per_sec);
  double rate() const { return params_.requests_per_sec; }

  // Fixed-memory log-bucket latency distribution (ms). Quantiles carry the
  // LogHistogram's ≤8% relative-error bound; benches that need exact
  // quantiles keep their own util::Histogram.
  const util::LogHistogram& latencies() const { return latencies_; }
  std::uint64_t sent() const { return sent_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t timed_out() const { return timed_out_; }

 private:
  void fire_next();
  void on_message(const net::Message& msg);

  net::Network& network_;
  sim::Simulation& sim_;
  net::Ipv4Addr self_;
  std::vector<net::Ipv4Addr> targets_;
  Params params_;
  util::Rng rng_;
  std::uint16_t port_;
  bool running_ = false;
  size_t next_target_ = 0;
  std::uint64_t next_id_ = 1;
  sim::EventId arrival_event_ = 0;

  struct Pending {
    sim::SimTime sent_at;
    sim::EventId timeout_event = 0;
  };
  std::map<std::uint64_t, Pending> pending_;
  util::LogHistogram latencies_;
  std::uint64_t sent_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t timed_out_ = 0;
};

// Machine-to-machine background flows straight on the fabric.
class BackgroundTraffic {
 public:
  struct Params {
    double flows_per_sec = 10;
    double mean_flow_bytes = 1 << 20;   // Pareto-distributed around this
    double pareto_alpha = 1.5;          // heavy tail
    // Probability the destination shares the source's rack (Gill et al.:
    // most DC traffic stays rack-local).
    double rack_locality = 0.7;
  };

  BackgroundTraffic(net::Fabric& fabric, const net::Topology& topology,
                    Params params, util::Rng rng);

  void start();
  void stop();

  std::uint64_t flows_started() const { return flows_started_; }
  double bytes_offered() const { return bytes_offered_; }

 private:
  void fire_next();

  net::Fabric& fabric_;
  const net::Topology& topology_;
  Params params_;
  util::Rng rng_;
  bool running_ = false;
  sim::EventId arrival_event_ = 0;
  std::uint64_t flows_started_ = 0;
  double bytes_offered_ = 0;
};

// Thin client for KvStoreApp (used by examples/tests).
class KvClient {
 public:
  KvClient(net::Network& network, net::Ipv4Addr self,
           std::uint16_t client_port = 46379);
  ~KvClient();

  using Callback = std::function<void(util::Result<util::Json>)>;
  void put(net::Ipv4Addr server, const std::string& key, std::uint64_t bytes,
           Callback cb, std::uint16_t server_port = 6379);
  void get(net::Ipv4Addr server, const std::string& key, Callback cb,
           std::uint16_t server_port = 6379);
  void del(net::Ipv4Addr server, const std::string& key, Callback cb,
           std::uint16_t server_port = 6379);

 private:
  void request(net::Ipv4Addr server, std::uint16_t server_port,
               util::Json body, Callback cb);
  void on_message(const net::Message& msg);

  net::Network& network_;
  sim::Simulation& sim_;
  net::Ipv4Addr self_;
  std::uint16_t port_;
  std::uint64_t next_id_ = 1;
  struct Pending {
    Callback cb;
    sim::EventId timeout_event = 0;
  };
  std::map<std::uint64_t, Pending> pending_;
};

}  // namespace picloud::apps
