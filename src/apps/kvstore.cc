#include "apps/kvstore.h"

#include "util/logging.h"

namespace picloud::apps {

using util::Json;

KvStoreParams KvStoreParams::from_json(const Json& j) {
  KvStoreParams p;
  p.port = static_cast<std::uint16_t>(j.get_number("port", 6379));
  p.cycles_per_op = j.get_number("cycles_per_op", 0.5e6);
  return p;
}

KvStoreApp::KvStoreApp(KvStoreParams params) : params_(params) {}

void KvStoreApp::start(os::Container& container) {
  container_ = &container;
  // Re-charge the dataset (fresh start: zero; post-migration: full set).
  if (stored_bytes_ > 0) {
    util::Status charged = container.alloc_memory(stored_bytes_);
    if (!charged.ok()) {
      LOG_WARN("kvstore", "%s: dataset no longer fits (%s); dropping it",
               container.name().c_str(), charged.error().message.c_str());
      values_.clear();
      stored_bytes_ = 0;
    }
  }
  container.listen(params_.port,
                   [this](const net::Message& msg) { on_request(msg); });
}

void KvStoreApp::stop() {
  if (container_ == nullptr) return;
  container_->unlisten(params_.port);
  if (stored_bytes_ > 0) container_->free_memory(stored_bytes_);
  container_ = nullptr;
}

void KvStoreApp::reply(net::Ipv4Addr to, std::uint16_t port, Json body,
                       double padding) {
  if (container_ == nullptr) return;
  container_->send(to, port, body.dump(), params_.port, padding);
}

void KvStoreApp::on_request(const net::Message& msg) {
  if (container_ == nullptr) return;
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  Json request = std::move(parsed).value();
  net::Ipv4Addr reply_to = msg.src;
  std::uint16_t reply_port = msg.src_port;

  container_->run_cpu(params_.cycles_per_op, [this, request, reply_to,
                                              reply_port](bool completed) {
    if (!completed || container_ == nullptr) return;
    std::string op = request.get_string("op");
    std::string key = request.get_string("key");
    Json body = Json::object();
    body.set("id", request.get_number("id"));

    if (op == "put") {
      auto bytes = static_cast<std::uint64_t>(request.get_number("bytes"));
      auto existing = values_.find(key);
      std::uint64_t old_bytes =
          existing != values_.end() ? existing->second : 0;
      std::uint64_t delta = bytes > old_bytes ? bytes - old_bytes : 0;
      if (delta > 0 && !container_->alloc_memory(delta).ok()) {
        ++ops_rejected_;
        body.set("ok", false);
        body.set("error", "out of memory");
        reply(reply_to, reply_port, std::move(body));
        return;
      }
      if (old_bytes > bytes) container_->free_memory(old_bytes - bytes);
      values_[key] = bytes;
      stored_bytes_ = stored_bytes_ + bytes - old_bytes;
      ++ops_served_;
      body.set("ok", true);
      reply(reply_to, reply_port, std::move(body));
      return;
    }

    if (op == "get") {
      auto it = values_.find(key);
      ++ops_served_;
      if (it == values_.end()) {
        body.set("ok", false);
        body.set("error", "no such key");
        reply(reply_to, reply_port, std::move(body));
        return;
      }
      body.set("ok", true);
      body.set("bytes", static_cast<unsigned long long>(it->second));
      // The value itself rides as padding.
      reply(reply_to, reply_port, std::move(body),
            static_cast<double>(it->second));
      return;
    }

    if (op == "del") {
      auto it = values_.find(key);
      if (it != values_.end()) {
        container_->free_memory(it->second);
        stored_bytes_ -= it->second;
        values_.erase(it);
      }
      ++ops_served_;
      body.set("ok", true);
      reply(reply_to, reply_port, std::move(body));
      return;
    }

    ++ops_rejected_;
    body.set("ok", false);
    body.set("error", "unknown op");
    reply(reply_to, reply_port, std::move(body));
  });
}

util::Json KvStoreApp::status() const {
  Json j = Json::object();
  j.set("keys", static_cast<unsigned long long>(values_.size()));
  j.set("bytes", static_cast<unsigned long long>(stored_bytes_));
  j.set("ops", static_cast<unsigned long long>(ops_served_));
  return j;
}

}  // namespace picloud::apps
