#include "apps/kvstore.h"

#include "os/node_os.h"
#include "util/logging.h"

namespace picloud::apps {

using util::Json;

KvStoreParams KvStoreParams::from_json(const Json& j) {
  KvStoreParams p;
  p.port = static_cast<std::uint16_t>(j.get_number("port", 6379));
  p.cycles_per_op = j.get_number("cycles_per_op", 0.5e6);
  p.admission_control = j.get_number("admission_control", 1) != 0;
  p.queue_capacity = static_cast<int>(j.get_number("queue_capacity", 128));
  p.service_concurrency =
      static_cast<int>(j.get_number("service_concurrency", 4));
  p.queue_deadline = sim::Duration::nanos(static_cast<std::int64_t>(
      j.get_number("queue_deadline_ns", 750.0 * 1e6)));
  p.brownout_enter_fill = j.get_number("brownout_enter_fill", 0.75);
  p.brownout_exit_fill = j.get_number("brownout_exit_fill", 0.25);
  p.brownout_cycles_factor = j.get_number("brownout_cycles_factor", 0.25);
  return p;
}

KvStoreApp::KvStoreApp(KvStoreParams params) : params_(params) {}

void KvStoreApp::bind_metrics(os::Container& container) {
  if (m_received_ != nullptr) return;
  util::MetricsRegistry& reg = container.node().simulation().metrics();
  m_received_ = &reg.counter("apps.kvstore.ops_received");
  m_served_ = &reg.counter("apps.kvstore.ops_served");
  m_served_brownout_ = &reg.counter("apps.kvstore.served_brownout");
  m_shed_admission_ = &reg.counter("apps.kvstore.shed_admission");
  m_shed_deadline_ = &reg.counter("apps.kvstore.shed_deadline");
  m_refused_at_start_ = &reg.counter("apps.kvstore.refused_at_start");
  m_queue_depth_ = &reg.gauge("apps.kvstore.queue_depth");
}

void KvStoreApp::start(os::Container& container) {
  container_ = &container;
  sim_ = &container.node().simulation();
  bind_metrics(container);
  // Re-charge the dataset (fresh start: zero; post-migration: full set).
  if (stored_bytes_ > 0) {
    util::Status charged = container.alloc_memory(stored_bytes_);
    if (!charged.ok()) {
      LOG_WARN("kvstore", "%s: dataset no longer fits (%s); dropping it",
               container.name().c_str(), charged.error().message.c_str());
      values_.clear();
      stored_bytes_ = 0;
    }
  }
  container.listen(params_.port,
                   [this](const net::Message& msg) { on_request(msg); });
}

void KvStoreApp::stop() {
  if (container_ == nullptr) return;
  container_->unlisten(params_.port);
  while (!queue_.empty()) {
    ++refused_at_start_;
    if (m_refused_at_start_ != nullptr) m_refused_at_start_->inc();
    queue_.pop_front();
    if (m_queue_depth_ != nullptr) m_queue_depth_->add(-1);
  }
  if (stored_bytes_ > 0) container_->free_memory(stored_bytes_);
  container_ = nullptr;
}

void KvStoreApp::reply(net::Ipv4Addr to, std::uint16_t port, Json body,
                       double padding) {
  if (container_ == nullptr) return;
  container_->send(to, port, body.dump(), params_.port, padding);
}

void KvStoreApp::update_brownout() {
  const double fill = params_.queue_capacity > 0
                          ? static_cast<double>(queue_.size()) /
                                static_cast<double>(params_.queue_capacity)
                          : 0.0;
  if (!brownout_ && fill >= params_.brownout_enter_fill) {
    brownout_ = true;
  } else if (brownout_ && fill <= params_.brownout_exit_fill) {
    brownout_ = false;
  }
}

void KvStoreApp::on_request(const net::Message& msg) {
  if (container_ == nullptr) return;
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  Json request = std::move(parsed).value();

  if (request.get_string("op") == "health") {
    Json body = Json::object();
    body.set("id", request.get_number("id"));
    body.set("ok", true);
    body.set("health", true);
    reply(msg.src, msg.src_port, std::move(body), 64);
    return;
  }

  ++ops_received_;
  if (m_received_ != nullptr) m_received_->inc();

  QueueEntry entry;
  entry.reply_to = msg.src;
  entry.reply_port = msg.src_port;
  entry.request = std::move(request);
  entry.deadline = sim_->now() + params_.queue_deadline;

  if (!params_.admission_control) {
    ++in_service_;
    serve(std::move(entry));
    return;
  }

  if (static_cast<int>(queue_.size()) >= params_.queue_capacity) {
    ++shed_admission_;
    if (m_shed_admission_ != nullptr) m_shed_admission_->inc();
    Json body = Json::object();
    body.set("id", entry.request.get_number("id"));
    body.set("ok", false);
    body.set("shed", std::string("admission"));
    reply(entry.reply_to, entry.reply_port, std::move(body));
    return;
  }
  queue_.push_back(std::move(entry));
  if (m_queue_depth_ != nullptr) m_queue_depth_->add(1);
  update_brownout();
  pump();
}

void KvStoreApp::pump() {
  while (container_ != nullptr && in_service_ < params_.service_concurrency &&
         !queue_.empty()) {
    QueueEntry entry = std::move(queue_.front());
    queue_.pop_front();
    if (m_queue_depth_ != nullptr) m_queue_depth_->add(-1);
    if (sim_->now() > entry.deadline) {
      ++shed_deadline_;
      if (m_shed_deadline_ != nullptr) m_shed_deadline_->inc();
      Json body = Json::object();
      body.set("id", entry.request.get_number("id"));
      body.set("ok", false);
      body.set("shed", std::string("deadline"));
      reply(entry.reply_to, entry.reply_port, std::move(body));
      continue;
    }
    ++in_service_;
    serve(std::move(entry));
  }
  update_brownout();
}

void KvStoreApp::serve(QueueEntry entry) {
  const bool degraded = params_.admission_control && brownout_;
  const double cycles =
      params_.cycles_per_op *
      (degraded ? params_.brownout_cycles_factor : 1.0);
  container_->run_cpu(cycles, [this, entry = std::move(entry),
                               degraded](bool completed) {
    --in_service_;
    if (!completed || container_ == nullptr) {
      ++refused_at_start_;
      if (m_refused_at_start_ != nullptr) m_refused_at_start_->inc();
      return;
    }
    execute(entry, degraded);
    if (params_.admission_control) pump();
  });
}

void KvStoreApp::execute(const QueueEntry& entry, bool degraded) {
  const Json& request = entry.request;
  std::string op = request.get_string("op");
  std::string key = request.get_string("key");
  net::Ipv4Addr reply_to = entry.reply_to;
  std::uint16_t reply_port = entry.reply_port;
  Json body = Json::object();
  body.set("id", request.get_number("id"));

  auto served = [this, degraded]() {
    ++ops_served_;
    if (m_served_ != nullptr) m_served_->inc();
    if (degraded) {
      ++served_brownout_;
      if (m_served_brownout_ != nullptr) m_served_brownout_->inc();
    }
  };

  if (op == "put") {
    auto bytes = static_cast<std::uint64_t>(request.get_number("bytes"));
    auto existing = values_.find(key);
    std::uint64_t old_bytes = existing != values_.end() ? existing->second : 0;
    std::uint64_t delta = bytes > old_bytes ? bytes - old_bytes : 0;
    if (delta > 0 && !container_->alloc_memory(delta).ok()) {
      ++ops_rejected_;
      body.set("ok", false);
      body.set("error", "out of memory");
      reply(reply_to, reply_port, std::move(body));
      return;
    }
    if (old_bytes > bytes) container_->free_memory(old_bytes - bytes);
    values_[key] = bytes;
    stored_bytes_ = stored_bytes_ + bytes - old_bytes;
    served();
    body.set("ok", true);
    reply(reply_to, reply_port, std::move(body));
    return;
  }

  if (op == "get") {
    auto it = values_.find(key);
    served();
    if (it == values_.end()) {
      body.set("ok", false);
      body.set("error", "no such key");
      reply(reply_to, reply_port, std::move(body));
      return;
    }
    body.set("ok", true);
    body.set("bytes", static_cast<unsigned long long>(it->second));
    if (degraded) {
      // Brownout: metadata only — the value's bytes stay off the wire.
      body.set("brownout", true);
      reply(reply_to, reply_port, std::move(body));
    } else {
      // The value itself rides as padding.
      reply(reply_to, reply_port, std::move(body),
            static_cast<double>(it->second));
    }
    return;
  }

  if (op == "del") {
    auto it = values_.find(key);
    if (it != values_.end()) {
      container_->free_memory(it->second);
      stored_bytes_ -= it->second;
      values_.erase(it);
    }
    served();
    body.set("ok", true);
    reply(reply_to, reply_port, std::move(body));
    return;
  }

  ++ops_rejected_;
  body.set("ok", false);
  body.set("error", "unknown op");
  reply(reply_to, reply_port, std::move(body));
}

util::Json KvStoreApp::status() const {
  Json j = Json::object();
  j.set("keys", static_cast<unsigned long long>(values_.size()));
  j.set("bytes", static_cast<unsigned long long>(stored_bytes_));
  j.set("ops", static_cast<unsigned long long>(ops_served_));
  j.set("shed_admission", static_cast<unsigned long long>(shed_admission_));
  j.set("shed_deadline", static_cast<unsigned long long>(shed_deadline_));
  j.set("refused_at_start",
        static_cast<unsigned long long>(refused_at_start_));
  j.set("queue_depth", static_cast<unsigned long long>(queue_.size()));
  j.set("brownout", brownout_);
  return j;
}

}  // namespace picloud::apps
