#include "apps/loadgen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/json.h"

namespace picloud::apps {

using util::Json;

// ---------------------------------------------------------------------------
// TrafficShape

double TrafficShape::factor(sim::Duration t) const {
  double f = 1.0;
  switch (kind) {
    case Kind::kSteady:
      break;
    case Kind::kDiurnal: {
      const double p = period.to_seconds();
      if (p > 0) {
        f = 1.0 + amplitude * std::sin(2.0 * 3.14159265358979323846 *
                                       t.to_seconds() / p);
      }
      break;
    }
    case Kind::kFlashCrowd:
      if (t >= at && t < at + duration) f = multiplier;
      break;
  }
  // Keep the arrival chain alive: a zero rate would stop it for good.
  return std::max(f, 0.05);
}

TrafficShape TrafficShape::from_json(const Json& j) {
  TrafficShape s;
  const std::string kind = j.get_string("kind", "steady");
  if (kind == "diurnal") {
    s.kind = Kind::kDiurnal;
  } else if (kind == "flash_crowd") {
    s.kind = Kind::kFlashCrowd;
  } else {
    s.kind = Kind::kSteady;
  }
  s.amplitude = j.get_number("amplitude", 0.5);
  s.period = sim::Duration::nanos(
      static_cast<std::int64_t>(j.get_number("period_ns", 120.0 * 1e9)));
  s.at = sim::Duration::nanos(
      static_cast<std::int64_t>(j.get_number("at_ns", 30.0 * 1e9)));
  s.duration = sim::Duration::nanos(
      static_cast<std::int64_t>(j.get_number("duration_ns", 20.0 * 1e9)));
  s.multiplier = j.get_number("multiplier", 10.0);
  s.cost_mean = j.get_number("cost_mean", 1.0);
  s.cost_alpha = j.get_number("cost_alpha", 0.0);
  return s;
}

Json TrafficShape::to_json() const {
  Json j = Json::object();
  switch (kind) {
    case Kind::kSteady: j.set("kind", std::string("steady")); break;
    case Kind::kDiurnal: j.set("kind", std::string("diurnal")); break;
    case Kind::kFlashCrowd: j.set("kind", std::string("flash_crowd")); break;
  }
  j.set("amplitude", amplitude);
  j.set("period_ns", static_cast<double>(period.ns()));
  j.set("at_ns", static_cast<double>(at.ns()));
  j.set("duration_ns", static_cast<double>(duration.ns()));
  j.set("multiplier", multiplier);
  j.set("cost_mean", cost_mean);
  j.set("cost_alpha", cost_alpha);
  return j;
}

// ---------------------------------------------------------------------------
// HttpLoadGen

HttpLoadGen::HttpLoadGen(net::Network& network, net::Ipv4Addr self,
                         std::vector<net::Ipv4Addr> targets, Params params,
                         util::Rng rng, std::uint16_t client_port)
    : network_(network),
      sim_(network.simulation()),
      self_(self),
      targets_(std::move(targets)),
      params_(params),
      rng_(rng),
      port_(client_port) {
  retry_tokens_ = params_.retry_budget_burst;
  network_.listen(self_, port_,
                  [this](const net::Message& msg) { on_message(msg); });
}

HttpLoadGen::~HttpLoadGen() {
  stop();
  network_.unlisten(self_, port_);
}

void HttpLoadGen::start() {
  if (running_) return;
  running_ = true;
  started_at_ = sim_.now();
  fire_next();
}

void HttpLoadGen::stop() {
  if (!running_) return;
  running_ = false;
  if (arrival_event_ != 0) {
    sim_.cancel(arrival_event_);
    arrival_event_ = 0;
  }
}

void HttpLoadGen::set_targets(std::vector<net::Ipv4Addr> targets) {
  // Keep rotation deterministic across pool changes: the cursor follows the
  // target it pointed at (falling back to 0 if that target left), instead of
  // unconditionally resetting — so a mid-run ReplicaSet churn yields the
  // same request sequence for the same seed regardless of when the
  // reconciler fires relative to in-flight requests.
  net::Ipv4Addr cursor_ip;
  bool have_cursor = false;
  if (!targets_.empty()) {
    cursor_ip = targets_[next_target_ % targets_.size()];
    have_cursor = true;
  }
  // Drop breaker state for targets that left the pool.
  for (auto it = breakers_.begin(); it != breakers_.end();) {
    if (std::find(targets.begin(), targets.end(), it->first) ==
        targets.end()) {
      it = breakers_.erase(it);
    } else {
      ++it;
    }
  }
  targets_ = std::move(targets);
  next_target_ = 0;
  if (have_cursor) {
    auto at = std::find(targets_.begin(), targets_.end(), cursor_ip);
    if (at != targets_.end()) {
      next_target_ = static_cast<size_t>(at - targets_.begin());
    }
  }
}

void HttpLoadGen::set_rate(double requests_per_sec) {
  params_.requests_per_sec = requests_per_sec;
  // When idled at rate 0 the arrival chain has stopped; rearm it.
  if (running_ && arrival_event_ == 0 && requests_per_sec > 0) fire_next();
}

void HttpLoadGen::fire_next() {
  if (!running_ || params_.requests_per_sec <= 0) return;
  const double rate = params_.requests_per_sec *
                      params_.shape.factor(sim_.now() - started_at_);
  double gap = rng_.exponential(1.0 / rate);
  arrival_event_ = sim_.after(sim::Duration::seconds(gap), [this]() {
    arrival_event_ = 0;
    if (!running_) return;
    on_arrival();
    fire_next();
  });
}

bool HttpLoadGen::breaker_allows(net::Ipv4Addr target) {
  auto it = breakers_.find(target);
  if (it == breakers_.end() || !it->second.open) return true;
  return sim_.now() >= it->second.open_until;  // half-open trial
}

bool HttpLoadGen::pick_target(net::Ipv4Addr exclude, bool use_exclude,
                              net::Ipv4Addr* out) {
  if (targets_.empty()) return false;
  for (size_t i = 0; i < targets_.size(); ++i) {
    net::Ipv4Addr candidate = targets_[next_target_ % targets_.size()];
    ++next_target_;
    if (use_exclude && candidate == exclude && targets_.size() > 1) continue;
    if (!breaker_allows(candidate)) continue;
    auto b = breakers_.find(candidate);
    if (b != breakers_.end() && b->second.open) {
      // Half-open: let this trial through, re-arm the open window so the
      // pool isn't flooded while the trial is in flight.
      b->second.open_until = sim_.now() + params_.breaker_open_duration;
    }
    *out = candidate;
    return true;
  }
  return false;
}

void HttpLoadGen::record_failure(net::Ipv4Addr target) {
  Breaker& b = breakers_[target];
  ++b.consecutive_failures;
  if (b.open) {
    // Half-open trial failed: stay open for another window.
    b.open_until = sim_.now() + params_.breaker_open_duration;
    return;
  }
  if (b.consecutive_failures >= params_.breaker_failure_threshold) {
    b.open = true;
    b.open_until = sim_.now() + params_.breaker_open_duration;
    ++breakers_opened_;
  }
}

void HttpLoadGen::record_success(net::Ipv4Addr target) {
  auto it = breakers_.find(target);
  if (it == breakers_.end()) return;
  it->second.consecutive_failures = 0;
  it->second.open = false;
}

void HttpLoadGen::on_arrival() {
  ++arrivals_;
  net::Ipv4Addr target;
  if (!pick_target({}, false, &target)) {
    // Empty pool, or every target's breaker is open: open-loop clients give
    // up immediately rather than queueing load the fleet can't take.
    ++breaker_rejected_;
    return;
  }
  std::uint64_t id = next_id_++;
  ++sent_;
  retry_tokens_ = std::min(retry_tokens_ + params_.retry_budget_ratio,
                           params_.retry_budget_burst);

  Pending pending;
  pending.first_sent_at = sim_.now();
  pending.target = target;
  pending.path = "/index.html";
  pending.cost = 1.0;
  if (params_.shape.cost_alpha > 1.0) {
    // Pareto with the requested mean: mean = alpha * xm / (alpha - 1).
    const double xm = params_.shape.cost_mean *
                      (params_.shape.cost_alpha - 1.0) /
                      params_.shape.cost_alpha;
    pending.cost = rng_.pareto(params_.shape.cost_alpha, xm);
  }
  pending_[id] = std::move(pending);
  send_attempt(id);
}

void HttpLoadGen::send_attempt(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  ++pending.attempts;
  ++attempts_sent_;

  Json body = Json::object();
  body.set("op", "get");
  body.set("path", pending.path);
  body.set("id", static_cast<unsigned long long>(id));
  if (pending.cost != 1.0) body.set("cost", pending.cost);

  pending.timeout_event = sim_.after(params_.request_timeout, [this, id]() {
    auto at = pending_.find(id);
    if (at == pending_.end()) return;
    at->second.timeout_event = 0;
    record_failure(at->second.target);
    if (at->second.attempts < params_.max_attempts) {
      if (retry_tokens_ >= 1.0) {
        net::Ipv4Addr next;
        if (pick_target(at->second.target, true, &next)) {
          retry_tokens_ -= 1.0;
          ++retries_;
          at->second.target = next;
          send_attempt(id);
          return;
        }
      } else {
        ++retries_denied_;
      }
    }
    pending_.erase(at);
    ++timed_out_;
  });

  net::Message msg;
  msg.src = self_;
  msg.dst = pending.target;
  msg.src_port = port_;
  msg.dst_port = params_.server_port;
  msg.payload = body.dump();
  msg.padding_bytes = static_cast<double>(params_.request_bytes);
  network_.send(std::move(msg));
}

void HttpLoadGen::attempt_failed(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  if (pending.timeout_event != 0) {
    sim_.cancel(pending.timeout_event);
    pending.timeout_event = 0;
  }
  record_failure(pending.target);
  if (pending.attempts < params_.max_attempts) {
    if (retry_tokens_ >= 1.0) {
      net::Ipv4Addr next;
      if (pick_target(pending.target, true, &next)) {
        retry_tokens_ -= 1.0;
        ++retries_;
        pending.target = next;
        send_attempt(id);
        return;
      }
    } else {
      ++retries_denied_;
    }
  }
  pending_.erase(it);
  ++failed_;
}

void HttpLoadGen::on_message(const net::Message& msg) {
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  const Json& reply = parsed.value();
  auto id = static_cast<std::uint64_t>(reply.get_number("id"));
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // late reply after timeout
  if (msg.src != it->second.target) return;  // stale attempt's reply

  const double status = reply.get_number("status", 200);
  const bool shed = reply.has("shed") || reply.has("lb_error");
  if (status >= 500 || shed) {
    attempt_failed(id);
    return;
  }
  if (it->second.timeout_event != 0) sim_.cancel(it->second.timeout_event);
  record_success(it->second.target);
  latencies_.observe((sim_.now() - it->second.first_sent_at).to_millis());
  const bool brownout = reply.get_bool("brownout", false);
  pending_.erase(it);
  ++completed_;
  if (brownout) ++completed_brownout_;
}

// ---------------------------------------------------------------------------
// BackgroundTraffic

BackgroundTraffic::BackgroundTraffic(net::Fabric& fabric,
                                     const net::Topology& topology,
                                     Params params, util::Rng rng)
    : fabric_(fabric), topology_(topology), params_(params), rng_(rng) {}

void BackgroundTraffic::start() {
  if (running_) return;
  running_ = true;
  fire_next();
}

void BackgroundTraffic::stop() {
  if (!running_) return;
  running_ = false;
  if (arrival_event_ != 0) {
    fabric_.simulation().cancel(arrival_event_);
    arrival_event_ = 0;
  }
}

void BackgroundTraffic::fire_next() {
  if (!running_ || params_.flows_per_sec <= 0) return;
  double gap = rng_.exponential(1.0 / params_.flows_per_sec);
  arrival_event_ =
      fabric_.simulation().after(sim::Duration::seconds(gap), [this]() {
        arrival_event_ = 0;
        if (!running_) return;
        const auto& hosts = topology_.hosts;
        if (hosts.size() >= 2) {
          size_t src_idx = static_cast<size_t>(
              rng_.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1));
          int src_rack = topology_.host_rack[src_idx];
          size_t dst_idx = src_idx;
          bool want_local = rng_.chance(params_.rack_locality);
          // Rejection-sample a destination matching the locality choice
          // (bounded; falls back to any distinct host).
          for (int tries = 0; tries < 32; ++tries) {
            size_t candidate = static_cast<size_t>(rng_.uniform_int(
                0, static_cast<std::int64_t>(hosts.size()) - 1));
            if (candidate == src_idx) continue;
            bool local = topology_.host_rack[candidate] == src_rack;
            if (local == want_local) {
              dst_idx = candidate;
              break;
            }
            dst_idx = candidate;  // fallback
          }
          if (dst_idx != src_idx) {
            // Pareto sizes with the requested mean: mean = alpha*xm/(alpha-1).
            double xm = params_.mean_flow_bytes * (params_.pareto_alpha - 1) /
                        params_.pareto_alpha;
            double bytes = rng_.pareto(params_.pareto_alpha, xm);
            net::FlowSpec flow;
            flow.src = hosts[src_idx];
            flow.dst = hosts[dst_idx];
            flow.bytes = bytes;
            fabric_.start_flow(std::move(flow));
            ++flows_started_;
            bytes_offered_ += bytes;
          }
        }
        fire_next();
      });
}

// ---------------------------------------------------------------------------
// KvClient

KvClient::KvClient(net::Network& network, net::Ipv4Addr self,
                   std::uint16_t client_port)
    : network_(network),
      sim_(network.simulation()),
      self_(self),
      port_(client_port) {
  network_.listen(self_, port_,
                  [this](const net::Message& msg) { on_message(msg); });
}

KvClient::~KvClient() { network_.unlisten(self_, port_); }

void KvClient::request(net::Ipv4Addr server, std::uint16_t server_port,
                       Json body, Callback cb) {
  std::uint64_t id = next_id_++;
  body.set("id", static_cast<unsigned long long>(id));
  Pending pending;
  pending.cb = std::move(cb);
  pending.timeout_event =
      sim_.after(sim::Duration::seconds(10), [this, id]() {
        auto it = pending_.find(id);
        if (it == pending_.end()) return;
        Callback cb = std::move(it->second.cb);
        pending_.erase(it);
        cb(util::Error::make("timeout", "kv request timed out"));
      });
  pending_[id] = std::move(pending);

  net::Message msg;
  msg.src = self_;
  msg.dst = server;
  msg.src_port = port_;
  msg.dst_port = server_port;
  msg.payload = body.dump();
  // put carries the value's bytes on the wire.
  if (body.get_string("op") == "put") {
    msg.padding_bytes = body.get_number("bytes");
  }
  network_.send(std::move(msg));
}

void KvClient::put(net::Ipv4Addr server, const std::string& key,
                   std::uint64_t bytes, Callback cb,
                   std::uint16_t server_port) {
  Json body = Json::object();
  body.set("op", "put");
  body.set("key", key);
  body.set("bytes", static_cast<unsigned long long>(bytes));
  request(server, server_port, std::move(body), std::move(cb));
}

void KvClient::get(net::Ipv4Addr server, const std::string& key, Callback cb,
                   std::uint16_t server_port) {
  Json body = Json::object();
  body.set("op", "get");
  body.set("key", key);
  request(server, server_port, std::move(body), std::move(cb));
}

void KvClient::del(net::Ipv4Addr server, const std::string& key, Callback cb,
                   std::uint16_t server_port) {
  Json body = Json::object();
  body.set("op", "del");
  body.set("key", key);
  request(server, server_port, std::move(body), std::move(cb));
}

void KvClient::on_message(const net::Message& msg) {
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  auto id = static_cast<std::uint64_t>(parsed.value().get_number("id"));
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  sim_.cancel(it->second.timeout_event);
  Callback cb = std::move(it->second.cb);
  pending_.erase(it);
  cb(std::move(parsed).value());
}

}  // namespace picloud::apps
