#include "apps/loadgen.h"

#include <cassert>

#include "util/json.h"

namespace picloud::apps {

using util::Json;

// ---------------------------------------------------------------------------
// HttpLoadGen

HttpLoadGen::HttpLoadGen(net::Network& network, net::Ipv4Addr self,
                         std::vector<net::Ipv4Addr> targets, Params params,
                         util::Rng rng, std::uint16_t client_port)
    : network_(network),
      sim_(network.simulation()),
      self_(self),
      targets_(std::move(targets)),
      params_(params),
      rng_(rng),
      port_(client_port) {
  network_.listen(self_, port_,
                  [this](const net::Message& msg) { on_message(msg); });
}

HttpLoadGen::~HttpLoadGen() {
  stop();
  network_.unlisten(self_, port_);
}

void HttpLoadGen::start() {
  if (running_) return;
  running_ = true;
  fire_next();
}

void HttpLoadGen::stop() {
  if (!running_) return;
  running_ = false;
  if (arrival_event_ != 0) {
    sim_.cancel(arrival_event_);
    arrival_event_ = 0;
  }
}

void HttpLoadGen::set_targets(std::vector<net::Ipv4Addr> targets) {
  targets_ = std::move(targets);
  next_target_ = 0;
}

void HttpLoadGen::set_rate(double requests_per_sec) {
  params_.requests_per_sec = requests_per_sec;
  // When idled at rate 0 the arrival chain has stopped; rearm it.
  if (running_ && arrival_event_ == 0 && requests_per_sec > 0) fire_next();
}

void HttpLoadGen::fire_next() {
  if (!running_ || params_.requests_per_sec <= 0) return;
  double gap = rng_.exponential(1.0 / params_.requests_per_sec);
  arrival_event_ = sim_.after(sim::Duration::seconds(gap), [this]() {
    arrival_event_ = 0;
    if (!running_) return;
    if (!targets_.empty()) {
      net::Ipv4Addr target = targets_[next_target_ % targets_.size()];
      ++next_target_;
      std::uint64_t id = next_id_++;
      ++sent_;
      Json body = Json::object();
      body.set("op", "get");
      body.set("path", "/index.html");
      body.set("id", static_cast<unsigned long long>(id));

      Pending pending;
      pending.sent_at = sim_.now();
      pending.timeout_event =
          sim_.after(params_.request_timeout, [this, id]() {
            auto it = pending_.find(id);
            if (it == pending_.end()) return;
            pending_.erase(it);
            ++timed_out_;
          });
      pending_[id] = pending;

      net::Message msg;
      msg.src = self_;
      msg.dst = target;
      msg.src_port = port_;
      msg.dst_port = params_.server_port;
      msg.payload = body.dump();
      msg.padding_bytes = static_cast<double>(params_.request_bytes);
      network_.send(std::move(msg));
    }
    fire_next();
  });
}

void HttpLoadGen::on_message(const net::Message& msg) {
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  auto id = static_cast<std::uint64_t>(parsed.value().get_number("id"));
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // late reply after timeout
  sim_.cancel(it->second.timeout_event);
  latencies_.observe((sim_.now() - it->second.sent_at).to_millis());
  pending_.erase(it);
  ++completed_;
}

// ---------------------------------------------------------------------------
// BackgroundTraffic

BackgroundTraffic::BackgroundTraffic(net::Fabric& fabric,
                                     const net::Topology& topology,
                                     Params params, util::Rng rng)
    : fabric_(fabric), topology_(topology), params_(params), rng_(rng) {}

void BackgroundTraffic::start() {
  if (running_) return;
  running_ = true;
  fire_next();
}

void BackgroundTraffic::stop() {
  if (!running_) return;
  running_ = false;
  if (arrival_event_ != 0) {
    fabric_.simulation().cancel(arrival_event_);
    arrival_event_ = 0;
  }
}

void BackgroundTraffic::fire_next() {
  if (!running_ || params_.flows_per_sec <= 0) return;
  double gap = rng_.exponential(1.0 / params_.flows_per_sec);
  arrival_event_ =
      fabric_.simulation().after(sim::Duration::seconds(gap), [this]() {
        arrival_event_ = 0;
        if (!running_) return;
        const auto& hosts = topology_.hosts;
        if (hosts.size() >= 2) {
          size_t src_idx = static_cast<size_t>(
              rng_.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1));
          int src_rack = topology_.host_rack[src_idx];
          size_t dst_idx = src_idx;
          bool want_local = rng_.chance(params_.rack_locality);
          // Rejection-sample a destination matching the locality choice
          // (bounded; falls back to any distinct host).
          for (int tries = 0; tries < 32; ++tries) {
            size_t candidate = static_cast<size_t>(rng_.uniform_int(
                0, static_cast<std::int64_t>(hosts.size()) - 1));
            if (candidate == src_idx) continue;
            bool local = topology_.host_rack[candidate] == src_rack;
            if (local == want_local) {
              dst_idx = candidate;
              break;
            }
            dst_idx = candidate;  // fallback
          }
          if (dst_idx != src_idx) {
            // Pareto sizes with the requested mean: mean = alpha*xm/(alpha-1).
            double xm = params_.mean_flow_bytes * (params_.pareto_alpha - 1) /
                        params_.pareto_alpha;
            double bytes = rng_.pareto(params_.pareto_alpha, xm);
            net::FlowSpec flow;
            flow.src = hosts[src_idx];
            flow.dst = hosts[dst_idx];
            flow.bytes = bytes;
            fabric_.start_flow(std::move(flow));
            ++flows_started_;
            bytes_offered_ += bytes;
          }
        }
        fire_next();
      });
}

// ---------------------------------------------------------------------------
// KvClient

KvClient::KvClient(net::Network& network, net::Ipv4Addr self,
                   std::uint16_t client_port)
    : network_(network),
      sim_(network.simulation()),
      self_(self),
      port_(client_port) {
  network_.listen(self_, port_,
                  [this](const net::Message& msg) { on_message(msg); });
}

KvClient::~KvClient() { network_.unlisten(self_, port_); }

void KvClient::request(net::Ipv4Addr server, std::uint16_t server_port,
                       Json body, Callback cb) {
  std::uint64_t id = next_id_++;
  body.set("id", static_cast<unsigned long long>(id));
  Pending pending;
  pending.cb = std::move(cb);
  pending.timeout_event =
      sim_.after(sim::Duration::seconds(10), [this, id]() {
        auto it = pending_.find(id);
        if (it == pending_.end()) return;
        Callback cb = std::move(it->second.cb);
        pending_.erase(it);
        cb(util::Error::make("timeout", "kv request timed out"));
      });
  pending_[id] = std::move(pending);

  net::Message msg;
  msg.src = self_;
  msg.dst = server;
  msg.src_port = port_;
  msg.dst_port = server_port;
  msg.payload = body.dump();
  // put carries the value's bytes on the wire.
  if (body.get_string("op") == "put") {
    msg.padding_bytes = body.get_number("bytes");
  }
  network_.send(std::move(msg));
}

void KvClient::put(net::Ipv4Addr server, const std::string& key,
                   std::uint64_t bytes, Callback cb,
                   std::uint16_t server_port) {
  Json body = Json::object();
  body.set("op", "put");
  body.set("key", key);
  body.set("bytes", static_cast<unsigned long long>(bytes));
  request(server, server_port, std::move(body), std::move(cb));
}

void KvClient::get(net::Ipv4Addr server, const std::string& key, Callback cb,
                   std::uint16_t server_port) {
  Json body = Json::object();
  body.set("op", "get");
  body.set("key", key);
  request(server, server_port, std::move(body), std::move(cb));
}

void KvClient::del(net::Ipv4Addr server, const std::string& key, Callback cb,
                   std::uint16_t server_port) {
  Json body = Json::object();
  body.set("op", "del");
  body.set("key", key);
  request(server, server_port, std::move(body), std::move(cb));
}

void KvClient::on_message(const net::Message& msg) {
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  auto id = static_cast<std::uint64_t>(parsed.value().get_number("id"));
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  sim_.cancel(it->second.timeout_event);
  Callback cb = std::move(it->second.cb);
  pending_.erase(it);
  cb(std::move(parsed).value());
}

}  // namespace picloud::apps
