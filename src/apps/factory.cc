#include "apps/factory.h"

#include "apps/batch.h"
#include "apps/dfs.h"
#include "apps/httpd.h"
#include "apps/kvstore.h"
#include "apps/lb.h"
#include "apps/mapreduce.h"

namespace picloud::apps {

util::Result<std::unique_ptr<os::ContainerApp>> make_app(
    const std::string& kind, const util::Json& params) {
  if (kind == "httpd") {
    return std::unique_ptr<os::ContainerApp>(
        new HttpdApp(HttpdParams::from_json(params)));
  }
  if (kind == "kvstore") {
    return std::unique_ptr<os::ContainerApp>(
        new KvStoreApp(KvStoreParams::from_json(params)));
  }
  if (kind == "lb") {
    return std::unique_ptr<os::ContainerApp>(
        new LbApp(LbParams::from_json(params)));
  }
  if (kind == "mr-worker") {
    return std::unique_ptr<os::ContainerApp>(new MapReduceWorkerApp);
  }
  if (kind == "dfs-node") {
    return std::unique_ptr<os::ContainerApp>(new DfsNodeApp);
  }
  if (kind == "batch") {
    return std::unique_ptr<os::ContainerApp>(
        new BatchApp(BatchParams::from_json(params)));
  }
  return util::Error::make("not_found", "unknown app kind: " + kind);
}

}  // namespace picloud::apps
