#include "apps/trace.h"

#include <cmath>

#include "util/strings.h"

namespace picloud::apps {

DiurnalProfile::DiurnalProfile(Params params, util::Rng rng)
    : params_(params), rng_(rng) {}

double DiurnalProfile::rate_at(sim::SimTime t) const {
  double hour = std::fmod(t.to_seconds() / 3600.0, 24.0);
  // Smooth day/night swell: 1.0 at the peak hour, 0.0 twelve hours away,
  // squared to sharpen the business-hours bulge.
  double phase = (hour - params_.peak_hour) * M_PI / 12.0;
  double swell = 0.5 * (1.0 + std::cos(phase));
  swell *= swell;
  double rate = params_.base_rps + (params_.peak_rps - params_.base_rps) * swell;
  rate *= noise_factor_;
  if (t < flash_until_) rate *= params_.flash_multiplier;
  return rate;
}

void DiurnalProfile::advance(sim::SimTime t) {
  double elapsed_days =
      (t - last_advance_).to_seconds() / 86400.0;
  last_advance_ = t;
  // Resample multiplicative jitter.
  noise_factor_ = 1.0 + rng_.uniform(-params_.noise, params_.noise);
  // Flash crowd arrivals as a Bernoulli approximation of the Poisson rate
  // over the advance interval.
  if (elapsed_days > 0 &&
      rng_.chance(std::min(params_.flash_per_day * elapsed_days, 1.0))) {
    flash_until_ = t + params_.flash_duration;
  }
}

TracePlayer::TracePlayer(sim::Simulation& sim, HttpLoadGen& generator,
                         DiurnalProfile profile, sim::Duration update_period)
    : sim_(sim),
      generator_(generator),
      profile_(std::move(profile)),
      period_(update_period) {}

void TracePlayer::start() {
  if (running_) return;
  running_ = true;
  generator_.start();
  tick();
  task_ = sim::PeriodicTask(sim_, period_, [this]() { tick(); });
}

void TracePlayer::stop() {
  if (!running_) return;
  running_ = false;
  task_.stop();
  generator_.stop();
}

void TracePlayer::tick() {
  profile_.advance(sim_.now());
  current_rps_ = profile_.rate_at(sim_.now());
  generator_.set_rate(current_rps_);
}

TraceRecorder::TraceRecorder(sim::Simulation& sim, sim::Duration period)
    : sim_(sim), period_(period) {}

void TraceRecorder::add_gauge(const std::string& name, Gauge gauge) {
  gauges_.emplace_back(name, std::move(gauge));
}

void TraceRecorder::start() {
  if (running_) return;
  running_ = true;
  sample();
  task_ = sim::PeriodicTask(sim_, period_, [this]() { sample(); });
}

void TraceRecorder::stop() {
  if (!running_) return;
  running_ = false;
  task_.stop();
}

void TraceRecorder::sample() {
  Row row;
  row.t_seconds = sim_.now().to_seconds();
  for (const auto& [name, gauge] : gauges_) {
    row.values[name] = gauge();
  }
  rows_.push_back(std::move(row));
}

std::string TraceRecorder::render() const {
  std::string out = util::format("%10s", "t (s)");
  for (const auto& [name, gauge] : gauges_) {
    out += util::format(" %12s", name.c_str());
  }
  out += "\n";
  for (const Row& row : rows_) {
    out += util::format("%10.0f", row.t_seconds);
    for (const auto& [name, gauge] : gauges_) {
      auto it = row.values.find(name);
      out += util::format(" %12.2f", it != row.values.end() ? it->second : 0);
    }
    out += "\n";
  }
  return out;
}

}  // namespace picloud::apps
