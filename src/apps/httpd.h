// Lightweight httpd — the paper's canonical Pi workload.
//
// §IV: "We are therefore currently limited to a subset of software
// (lightweight httpd servers, hadoop etc.) at the application layer that can
// be used to emulate current DC workloads." Each GET costs CPU cycles under
// the container's cgroup and returns a response body over the fabric, so
// request latency reflects both CPU contention on the Pi and network
// congestion on the path.
#pragma once

#include <cstdint>
#include <string>

#include "os/container.h"
#include "util/json.h"

namespace picloud::apps {

struct HttpdParams {
  std::uint16_t port = 80;
  double cycles_per_request = 2e6;     // ~3 ms alone on a 700 MHz Pi
  std::uint64_t response_bytes = 8192; // page size
  std::uint64_t working_set_bytes = 10ull << 20;  // resident beyond idle

  static HttpdParams from_json(const util::Json& j);
  util::Json to_json() const;
};

class HttpdApp : public os::ContainerApp {
 public:
  explicit HttpdApp(HttpdParams params = {});

  std::string kind() const override { return "httpd"; }
  void start(os::Container& container) override;
  void stop() override;
  util::Json status() const override;
  double dirty_bytes_per_sec() const override {
    // Logs + caches churn a slice of the working set.
    return static_cast<double>(params_.working_set_bytes) * 0.02;
  }

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t requests_dropped() const { return requests_dropped_; }
  const HttpdParams& params() const { return params_; }

 private:
  void on_request(const net::Message& msg);

  HttpdParams params_;
  os::Container* container_ = nullptr;
  bool working_set_resident_ = false;
  std::uint64_t requests_served_ = 0;
  std::uint64_t requests_dropped_ = 0;  // refused (e.g. OOM at start)
};

}  // namespace picloud::apps
