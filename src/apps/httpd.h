// Lightweight httpd — the paper's canonical Pi workload.
//
// §IV: "We are therefore currently limited to a subset of software
// (lightweight httpd servers, hadoop etc.) at the application layer that can
// be used to emulate current DC workloads." Each GET costs CPU cycles under
// the container's cgroup and returns a response body over the fabric, so
// request latency reflects both CPU contention on the Pi and network
// congestion on the path.
//
// Overload resilience (DESIGN.md §11): requests are admitted into a bounded
// queue and served at a fixed concurrency; the queue sheds at capacity,
// sheds again when an entry's deadline expires before service starts, and
// under sustained pressure the server enters *brownout* — degraded responses
// that cost a fraction of the cycles and bytes — instead of letting the
// backlog collapse every request's latency. Every drop is metered by cause.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "os/container.h"
#include "sim/simulation.h"
#include "util/json.h"
#include "util/metrics.h"

namespace picloud::apps {

struct HttpdParams {
  std::uint16_t port = 80;
  double cycles_per_request = 2e6;     // ~3 ms alone on a 700 MHz Pi
  std::uint64_t response_bytes = 8192; // page size
  std::uint64_t working_set_bytes = 10ull << 20;  // resident beyond idle

  // --- Admission control (DESIGN.md §11) -------------------------------------
  // Master switch: off reproduces the pre-overload-tier behaviour (every
  // request goes straight to run_cpu) — the no-shedding baseline the
  // flash-crowd acceptance test compares against.
  bool admission_control = true;
  // Bound on requests waiting for a service slot. Full queue -> 503.
  int queue_capacity = 64;
  // Requests in run_cpu simultaneously; the rest wait in the queue.
  int service_concurrency = 4;
  // Time a request may wait in the queue; checked when it reaches the head,
  // expired entries are shed with a 503 instead of burning cycles.
  sim::Duration queue_deadline = sim::Duration::millis(750);

  // --- Brownout --------------------------------------------------------------
  // Hysteresis on queue fill: enter degraded serving at `enter`, leave at
  // `exit`. Brownout responses cost cycles*factor and bytes*factor.
  double brownout_enter_fill = 0.75;
  double brownout_exit_fill = 0.25;
  double brownout_cycles_factor = 0.25;
  double brownout_bytes_factor = 0.125;

  static HttpdParams from_json(const util::Json& j);
  util::Json to_json() const;
};

class HttpdApp : public os::ContainerApp {
 public:
  explicit HttpdApp(HttpdParams params = {});

  std::string kind() const override { return "httpd"; }
  void start(os::Container& container) override;
  void stop() override;
  util::Json status() const override;
  double dirty_bytes_per_sec() const override {
    // Logs + caches churn a slice of the working set.
    return static_cast<double>(params_.working_set_bytes) * 0.02;
  }

  // --- Accounting (conservation probe: see invariants.cc) --------------------
  // received == served_ok + served_brownout + shed_admission + shed_deadline
  //             + refused_at_start + queue_depth + in_service, at any instant.
  std::uint64_t requests_received() const { return requests_received_; }
  std::uint64_t requests_served() const {
    return served_ok_ + served_brownout_;
  }
  std::uint64_t served_ok() const { return served_ok_; }
  std::uint64_t served_brownout() const { return served_brownout_; }
  std::uint64_t shed_admission() const { return shed_admission_; }
  std::uint64_t shed_deadline() const { return shed_deadline_; }
  // Admitted but never completed: the CPU task was cancelled (container
  // stopped / destroyed / OOM-killed mid-service) — the legacy
  // `requests_dropped_` cause, now one bucket among four.
  std::uint64_t refused_at_start() const { return refused_at_start_; }
  std::uint64_t requests_dropped() const {
    return shed_admission_ + shed_deadline_ + refused_at_start_;
  }
  std::size_t queue_depth() const { return queue_.size(); }
  int in_service() const { return in_service_; }
  bool brownout_active() const { return brownout_; }
  const HttpdParams& params() const { return params_; }

 private:
  struct QueueEntry {
    net::Ipv4Addr reply_to;
    std::uint16_t reply_port = 0;
    double id = 0;
    std::string path;
    double cost = 1.0;  // heavy-tailed per-request work multiplier
    sim::SimTime deadline;
  };

  void on_request(const net::Message& msg);
  void pump();
  void serve(QueueEntry entry);
  void shed(const QueueEntry& entry, const char* cause);
  void update_brownout();
  void bind_metrics(os::Container& container);
  void set_queue_gauge(double depth);

  HttpdParams params_;
  os::Container* container_ = nullptr;
  sim::Simulation* sim_ = nullptr;
  bool working_set_resident_ = false;

  std::deque<QueueEntry> queue_;  // bounded by params_.queue_capacity
  int in_service_ = 0;
  bool brownout_ = false;

  std::uint64_t requests_received_ = 0;
  std::uint64_t served_ok_ = 0;
  std::uint64_t served_brownout_ = 0;
  std::uint64_t shed_admission_ = 0;
  std::uint64_t shed_deadline_ = 0;
  std::uint64_t refused_at_start_ = 0;
  std::uint64_t health_probes_ = 0;

  // Registry series (aggregated across instances; bound at first start()).
  util::Counter* m_received_ = nullptr;
  util::Counter* m_served_ok_ = nullptr;
  util::Counter* m_served_brownout_ = nullptr;
  util::Counter* m_shed_admission_ = nullptr;
  util::Counter* m_shed_deadline_ = nullptr;
  util::Counter* m_refused_at_start_ = nullptr;
  util::Counter* m_brownout_entered_ = nullptr;
  util::Gauge* m_queue_depth_ = nullptr;
};

}  // namespace picloud::apps
