// L7 load balancer — the front door of the overload-resilient serving tier
// (DESIGN.md §11).
//
// The paper's public-website use case (§II) puts a fleet of lightweight httpd
// containers behind one address; this app is that address. It proxies JSON
// request datagrams to a backend pool, with:
//
//   * pluggable balancing policy: round-robin or least-outstanding;
//   * per-backend active health checks ({"op":"health"} probes) driving a
//     three-state breaker: Healthy -> (consecutive failures) -> Ejected ->
//     (ejection period elapses) -> HalfOpen -> (probe succeeds) -> Healthy;
//   * a retry *budget*: a token bucket refilled at `retry_budget_ratio`
//     tokens per proxied request caps retries as a fraction of traffic, so a
//     failing backend cannot trigger retry-storm amplification on failover;
//   * endpoint-change ingestion: set_backends() preserves breaker state for
//     surviving backends and keeps the round-robin cursor deterministic, so
//     ReplicaSet churn does not perturb same-seed digests.
//
// Accounting invariant (see invariants.cc): at any instant
//   requests_received == responses_ok + responses_error + dropped_in_flight
//                        + in_flight.
// and forwarding is budget-bounded:
//   attempts_forwarded - requests_forwarded <=
//       retry_budget_ratio * requests_forwarded + retry_budget_burst.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "os/container.h"
#include "sim/simulation.h"
#include "util/json.h"
#include "util/metrics.h"

namespace picloud::apps {

enum class LbPolicy { kRoundRobin, kLeastOutstanding };

struct LbParams {
  std::uint16_t port = 80;           // client-facing
  std::uint16_t upstream_port = 8081;  // source port for backend traffic
  std::uint16_t backend_port = 80;   // where backends listen
  LbPolicy policy = LbPolicy::kRoundRobin;

  // Active health checking / ejection.
  sim::Duration health_period = sim::Duration::millis(500);
  sim::Duration health_timeout = sim::Duration::millis(250);
  int unhealthy_threshold = 3;       // consecutive failures -> eject
  sim::Duration ejection_period = sim::Duration::seconds(5);

  // Proxying.
  sim::Duration proxy_timeout = sim::Duration::seconds(2);
  int max_attempts = 2;              // first try + at most one retry

  // Retry budget (token bucket).
  double retry_budget_ratio = 0.1;   // tokens earned per proxied request
  double retry_budget_burst = 10.0;  // bucket cap (and initial fill)

  static LbParams from_json(const util::Json& j);
  util::Json to_json() const;
};

class LbApp : public os::ContainerApp {
 public:
  enum class BackendState { kHealthy, kEjected, kHalfOpen };

  explicit LbApp(LbParams params = {});

  std::string kind() const override { return "lb"; }
  void start(os::Container& container) override;
  void stop() override;
  util::Json status() const override;
  double dirty_bytes_per_sec() const override { return 16.0 * 1024; }

  // Replaces the backend pool (ReplicaSet endpoint-change hook). Breaker
  // state survives for backends present in both pools; the round-robin
  // cursor follows the backend it pointed at, keeping rotation
  // deterministic across churn.
  void set_backends(std::vector<net::Ipv4Addr> backends);

  // --- Accounting (conservation probe: see invariants.cc) --------------------
  std::uint64_t requests_received() const { return requests_received_; }
  std::uint64_t responses_ok() const { return responses_ok_; }
  std::uint64_t responses_error() const { return responses_error_; }
  std::uint64_t dropped_in_flight() const { return dropped_in_flight_; }
  std::size_t in_flight() const { return proxies_.size(); }
  // Requests that entered the proxy path (received minus no-backend 503s).
  std::uint64_t requests_forwarded() const { return requests_forwarded_; }
  // Total upstream sends, including retries.
  std::uint64_t attempts_forwarded() const { return attempts_forwarded_; }
  std::uint64_t retries_attempted() const { return retries_attempted_; }
  std::uint64_t retries_denied() const { return retries_denied_; }
  std::uint64_t no_backend_errors() const { return no_backend_; }
  std::uint64_t backends_ejected() const { return backends_ejected_; }
  std::uint64_t backends_readmitted() const { return backends_readmitted_; }

  const LbParams& params() const { return params_; }
  std::vector<net::Ipv4Addr> healthy_backends() const;
  BackendState backend_state(net::Ipv4Addr ip) const;
  std::size_t backend_count() const { return backends_.size(); }

 private:
  struct Backend {
    BackendState state = BackendState::kHealthy;
    int consecutive_failures = 0;
    int outstanding = 0;           // proxied requests currently in flight
    sim::EventId reopen_event = 0;  // ejected -> half-open transition
  };

  struct Proxy {
    net::Ipv4Addr client;
    std::uint16_t client_port = 0;
    double client_id = 0;          // restored on the way back
    std::string payload;           // rewritten request (proxy id installed)
    double padding = 0;
    net::Ipv4Addr backend;         // current attempt's target
    int attempts = 0;
    sim::SimTime attempt_at;       // when the current attempt was forwarded
    sim::EventId timeout_event = 0;
  };

  void on_client(const net::Message& msg);
  void on_upstream(const net::Message& msg);
  void on_health_reply(net::Ipv4Addr backend);
  void run_health_checks();
  void probe(net::Ipv4Addr ip);
  // Picks a backend for a new attempt; `exclude` skips the backend that just
  // failed when an alternative exists. Returns false if none is eligible.
  bool choose_backend(net::Ipv4Addr exclude, bool use_exclude,
                      net::Ipv4Addr* out);
  void forward(std::uint64_t pid);
  void finish(std::uint64_t pid, const std::string& payload, double padding,
              bool ok);
  void attempt_failed(std::uint64_t pid);
  void backend_failure(net::Ipv4Addr ip);
  void backend_success(net::Ipv4Addr ip);
  void eject(net::Ipv4Addr ip);
  void bind_metrics(os::Container& container);

  LbParams params_;
  os::Container* container_ = nullptr;
  sim::Simulation* sim_ = nullptr;
  sim::PeriodicTask health_task_;

  std::vector<net::Ipv4Addr> rotation_;          // pool, endpoint order
  std::map<net::Ipv4Addr, Backend> backends_;
  std::size_t rr_cursor_ = 0;

  std::uint64_t next_pid_ = 1;  // proxy + probe id space (upstream port)
  std::map<std::uint64_t, Proxy> proxies_;
  struct PendingProbe {
    net::Ipv4Addr backend;
    sim::EventId timeout_event = 0;
  };
  std::map<std::uint64_t, PendingProbe> probes_;

  double retry_tokens_ = 0;

  std::uint64_t requests_received_ = 0;
  std::uint64_t responses_ok_ = 0;
  std::uint64_t responses_error_ = 0;
  std::uint64_t dropped_in_flight_ = 0;
  std::uint64_t requests_forwarded_ = 0;
  std::uint64_t attempts_forwarded_ = 0;
  std::uint64_t retries_attempted_ = 0;
  std::uint64_t retries_denied_ = 0;
  std::uint64_t no_backend_ = 0;
  std::uint64_t upstream_timeouts_ = 0;
  std::uint64_t backends_ejected_ = 0;
  std::uint64_t backends_readmitted_ = 0;

  util::Counter* m_received_ = nullptr;
  util::Counter* m_retries_ = nullptr;
  util::Counter* m_retries_denied_ = nullptr;
  util::Counter* m_upstream_timeouts_ = nullptr;
  util::Counter* m_ejected_ = nullptr;
  util::Counter* m_readmitted_ = nullptr;
  util::Counter* m_no_backend_ = nullptr;
  util::Gauge* m_healthy_ = nullptr;
  util::LogHistogram* m_upstream_latency_ = nullptr;
};

}  // namespace picloud::apps
