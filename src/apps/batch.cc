#include "apps/batch.h"

#include "os/node_os.h"

namespace picloud::apps {

using util::Json;

BatchParams BatchParams::from_json(const Json& j) {
  BatchParams p;
  p.chunk_cycles = j.get_number("chunk_cycles", 10e6);
  p.duty = j.get_number("duty", 1.0);
  p.working_set_bytes = static_cast<std::uint64_t>(
      j.get_number("working_set_bytes", 5.0 * (1 << 20)));
  return p;
}

BatchApp::BatchApp(BatchParams params) : params_(params) {}

void BatchApp::start(os::Container& container) {
  container_ = &container;
  working_set_resident_ =
      container.alloc_memory(params_.working_set_bytes).ok();
  next_chunk();
}

void BatchApp::stop() {
  if (container_ == nullptr) return;
  if (current_task_ != 0) {
    container_->cancel_cpu(current_task_);
    current_task_ = 0;
  }
  if (working_set_resident_) {
    container_->free_memory(params_.working_set_bytes);
    working_set_resident_ = false;
  }
  container_ = nullptr;
}

void BatchApp::next_chunk() {
  if (container_ == nullptr) return;
  current_task_ = container_->run_cpu(
      params_.chunk_cycles, [this](bool completed) {
        current_task_ = 0;
        if (!completed || container_ == nullptr) return;
        cycles_completed_ += params_.chunk_cycles;
        if (params_.duty >= 1.0) {
          next_chunk();
          return;
        }
        // Duty cycle: rest so that busy/(busy+rest) == duty. The rest
        // interval is computed from the chunk's ideal solo runtime so a
        // throttled tenant still *requests* the same average load.
        double solo_seconds =
            params_.chunk_cycles / container_->node().cpu().capacity();
        double rest = solo_seconds * (1.0 - params_.duty) /
                      std::max(params_.duty, 1e-6);
        container_->node().simulation().after(
            sim::Duration::seconds(rest), [this]() { next_chunk(); });
      });
}

util::Json BatchApp::status() const {
  Json j = Json::object();
  j.set("cycles", cycles_completed_);
  j.set("duty", params_.duty);
  return j;
}

}  // namespace picloud::apps
