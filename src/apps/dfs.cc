#include "apps/dfs.h"

#include <algorithm>

#include "os/node_os.h"
#include "util/logging.h"
#include "util/strings.h"

namespace picloud::apps {

using util::Json;

// ---------------------------------------------------------------------------
// Datanode

void DfsNodeApp::start(os::Container& container) {
  container_ = &container;
  container.listen(kDfsPort,
                   [this](const net::Message& msg) { on_message(msg); });
}

void DfsNodeApp::stop() {
  if (container_ == nullptr) return;
  container_->unlisten(kDfsPort);
  // Blocks stay on the SD card across container restarts (it is the card's
  // space, not the container's RAM); release only on destruction with the
  // node. For the model's accounting we keep the reservations.
  container_ = nullptr;
}

void DfsNodeApp::reply(net::Ipv4Addr to, std::uint16_t port, Json body,
                       double padding) {
  if (container_ == nullptr) return;
  container_->send(to, port, body.dump(), kDfsPort, padding);
}

void DfsNodeApp::on_message(const net::Message& msg) {
  if (container_ == nullptr) return;
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  Json request = std::move(parsed).value();
  std::string op = request.get_string("op");
  std::string block = request.get_string("block");
  net::Ipv4Addr reply_to = msg.src;
  std::uint16_t reply_port = msg.src_port;
  Json ack = Json::object();
  ack.set("id", request.get_number("id"));

  if (op == "store") {
    auto bytes = static_cast<std::uint64_t>(request.get_number("bytes"));
    storage::SdCard& card = container_->node().sdcard();
    if (blocks_.count(block) == 0 && !card.reserve(bytes)) {
      ack.set("ok", false);
      ack.set("error", "sd card full");
      reply(reply_to, reply_port, std::move(ack));
      return;
    }
    // The block is on the wire already (padding); persisting it queues on
    // the card behind everything else being written.
    card.write(bytes, [this, block, bytes, reply_to, reply_port,
                       ack = std::move(ack)]() mutable {
      if (container_ == nullptr) return;
      if (blocks_.count(block) == 0) {
        blocks_[block] = bytes;
        stored_bytes_ += bytes;
      }
      ack.set("ok", true);
      reply(reply_to, reply_port, std::move(ack));
    });
    return;
  }

  if (op == "fetch") {
    auto it = blocks_.find(block);
    if (it == blocks_.end()) {
      ack.set("ok", false);
      ack.set("error", "no such block");
      reply(reply_to, reply_port, std::move(ack));
      return;
    }
    std::uint64_t bytes = it->second;
    container_->node().sdcard().read(
        bytes, [this, bytes, reply_to, reply_port,
                ack = std::move(ack)]() mutable {
          if (container_ == nullptr) return;
          ack.set("ok", true);
          ack.set("bytes", static_cast<unsigned long long>(bytes));
          reply(reply_to, reply_port, std::move(ack),
                static_cast<double>(bytes));
        });
    return;
  }

  if (op == "push") {
    // Re-replication: read the block and store it on a peer datanode.
    auto it = blocks_.find(block);
    auto peer = net::Ipv4Addr::parse(request.get_string("to"));
    if (it == blocks_.end() || !peer) {
      ack.set("ok", false);
      ack.set("error", "no such block/peer");
      reply(reply_to, reply_port, std::move(ack));
      return;
    }
    std::uint64_t bytes = it->second;
    container_->node().sdcard().read(
        bytes, [this, block, bytes, peer = *peer]() {
          if (container_ == nullptr) return;
          Json store = Json::object();
          store.set("op", "store");
          store.set("block", block);
          store.set("bytes", static_cast<unsigned long long>(bytes));
          store.set("id", 0);  // peer's ack is dropped; namenode re-probes
          container_->send(peer, kDfsPort, store.dump(), kDfsPort,
                           static_cast<double>(bytes));
        });
    ack.set("ok", true);
    reply(reply_to, reply_port, std::move(ack));
    return;
  }

  if (op == "drop") {
    auto it = blocks_.find(block);
    if (it != blocks_.end()) {
      container_->node().sdcard().release(it->second);
      stored_bytes_ -= it->second;
      blocks_.erase(it);
    }
    ack.set("ok", true);
    reply(reply_to, reply_port, std::move(ack));
    return;
  }
}

util::Json DfsNodeApp::status() const {
  Json j = Json::object();
  j.set("blocks", static_cast<unsigned long long>(blocks_.size()));
  j.set("bytes", static_cast<unsigned long long>(stored_bytes_));
  return j;
}

// ---------------------------------------------------------------------------
// Namenode

DfsNamenode::DfsNamenode(net::Network& network, net::Ipv4Addr self,
                         Config config, std::uint16_t client_port)
    : network_(network),
      sim_(network.simulation()),
      self_(self),
      config_(config),
      port_(client_port) {
  network_.listen(self_, port_,
                  [this](const net::Message& msg) { on_message(msg); });
}

DfsNamenode::~DfsNamenode() { network_.unlisten(self_, port_); }

void DfsNamenode::add_datanode(net::Ipv4Addr ip, int rack) {
  Datanode node;
  node.ip = ip;
  node.rack = rack;
  datanodes_.push_back(node);
}

DfsNamenode::Datanode* DfsNamenode::node_by_ip(net::Ipv4Addr ip) {
  for (auto& node : datanodes_) {
    if (node.ip == ip) return &node;
  }
  return nullptr;
}

std::vector<net::Ipv4Addr> DfsNamenode::pick_replicas(
    std::uint64_t bytes, const std::set<std::uint32_t>& avoid) {
  // Candidates sorted by (rack unseen first, least assigned bytes) —
  // HDFS-flavoured rack awareness sized for four Lego racks.
  std::vector<net::Ipv4Addr> chosen;
  std::set<int> racks_used;
  for (int round = 0; round < config_.replication; ++round) {
    Datanode* best = nullptr;
    bool best_new_rack = false;
    for (auto& node : datanodes_) {
      if (!node.alive || avoid.count(node.ip.value()) > 0) continue;
      bool taken = false;
      for (net::Ipv4Addr ip : chosen) {
        if (ip == node.ip) taken = true;
      }
      if (taken) continue;
      bool new_rack = racks_used.count(node.rack) == 0;
      if (best == nullptr || (new_rack && !best_new_rack) ||
          (new_rack == best_new_rack &&
           node.assigned_bytes < best->assigned_bytes)) {
        best = &node;
        best_new_rack = new_rack;
      }
    }
    if (best == nullptr) break;
    best->assigned_bytes += bytes;
    racks_used.insert(best->rack);
    chosen.push_back(best->ip);
  }
  return chosen;
}

void DfsNamenode::send_op(net::Ipv4Addr datanode, Json body, double padding,
                          AckCallback cb) {
  std::uint64_t id = next_id_++;
  body.set("id", static_cast<unsigned long long>(id));
  pending_[id] = std::move(cb);
  sim_.after(config_.request_timeout, [this, id]() {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    AckCallback cb = std::move(it->second);
    pending_.erase(it);
    cb(false, 0);
  });
  net::Message msg;
  msg.src = self_;
  msg.dst = datanode;
  msg.src_port = port_;
  msg.dst_port = kDfsPort;
  msg.payload = body.dump();
  msg.padding_bytes = padding;
  network_.send(std::move(msg));
}

void DfsNamenode::on_message(const net::Message& msg) {
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  auto id = static_cast<std::uint64_t>(parsed.value().get_number("id"));
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  AckCallback cb = std::move(it->second);
  pending_.erase(it);
  cb(parsed.value().get_bool("ok"), parsed.value().get_number("bytes"));
}

void DfsNamenode::write(const std::string& file, std::uint64_t bytes,
                        StatusCallback cb) {
  if (files_.count(file) > 0) {
    cb(util::Error::make("exists", "file exists: " + file));
    return;
  }
  size_t block_count = static_cast<size_t>(
      (bytes + config_.block_bytes - 1) / config_.block_bytes);
  if (block_count == 0) block_count = 1;

  auto file_record = std::make_shared<File>();
  file_record->bytes = bytes;
  auto outstanding = std::make_shared<int>(0);
  auto failed = std::make_shared<bool>(false);

  for (size_t i = 0; i < block_count; ++i) {
    Block block;
    block.id = util::format("blk_%06llu",
                            static_cast<unsigned long long>(next_block_++));
    block.bytes = std::min<std::uint64_t>(config_.block_bytes,
                                          bytes - i * config_.block_bytes);
    block.replicas = pick_replicas(block.bytes, {});
    if (block.replicas.empty()) {
      ++stats_.failed_ops;
      cb(util::Error::make("no_capacity", "no live datanodes"));
      return;
    }
    for (net::Ipv4Addr replica : block.replicas) {
      ++*outstanding;
      Json store = Json::object();
      store.set("op", "store");
      store.set("block", block.id);
      store.set("bytes", static_cast<unsigned long long>(block.bytes));
      send_op(replica, std::move(store), static_cast<double>(block.bytes),
              [this, outstanding, failed, cb](bool ok, double) {
                if (!ok) *failed = true;
                if (--*outstanding == 0) {
                  if (*failed) {
                    ++stats_.failed_ops;
                    cb(util::Error::make("io", "a replica store failed"));
                  } else {
                    cb(util::Status::success());
                  }
                }
              });
    }
    ++stats_.blocks_written;
    file_record->blocks.push_back(std::move(block));
  }
  files_[file] = *file_record;
}

void DfsNamenode::read(const std::string& file, ReadCallback cb) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    cb(util::Error::make("not_found", "no such file: " + file));
    return;
  }
  auto outstanding = std::make_shared<int>(0);
  auto total = std::make_shared<double>(0);
  auto failed = std::make_shared<bool>(false);
  for (const Block& block : it->second.blocks) {
    if (block.replicas.empty()) {
      cb(util::Error::make("data_loss", "block has no replicas"));
      return;
    }
    ++*outstanding;
    // Least-assigned live replica serves the read.
    net::Ipv4Addr source = block.replicas[0];
    for (net::Ipv4Addr ip : block.replicas) {
      Datanode* node = node_by_ip(ip);
      if (node != nullptr && node->alive) {
        source = ip;
        break;
      }
    }
    Json fetch = Json::object();
    fetch.set("op", "fetch");
    fetch.set("block", block.id);
    ++stats_.blocks_read;
    send_op(source, std::move(fetch), 0,
            [this, outstanding, total, failed, cb](bool ok, double bytes) {
              if (!ok) *failed = true;
              *total += bytes;
              if (--*outstanding == 0) {
                if (*failed) {
                  ++stats_.failed_ops;
                  cb(util::Error::make("io", "a block fetch failed"));
                } else {
                  cb(static_cast<std::uint64_t>(*total));
                }
              }
            });
  }
}

void DfsNamenode::remove(const std::string& file, StatusCallback cb) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    cb(util::Error::make("not_found", "no such file: " + file));
    return;
  }
  for (const Block& block : it->second.blocks) {
    for (net::Ipv4Addr replica : block.replicas) {
      Json drop = Json::object();
      drop.set("op", "drop");
      drop.set("block", block.id);
      send_op(replica, std::move(drop), 0, [](bool, double) {});
    }
  }
  files_.erase(it);
  cb(util::Status::success());
}

void DfsNamenode::handle_datanode_death(net::Ipv4Addr ip) {
  Datanode* dead = node_by_ip(ip);
  if (dead == nullptr || !dead->alive) return;
  dead->alive = false;
  LOG_WARN("dfs", "datanode %s declared dead; re-replicating",
           ip.to_string().c_str());
  for (auto& [name, file] : files_) {
    for (Block& block : file.blocks) {
      auto replica_it =
          std::find(block.replicas.begin(), block.replicas.end(), ip);
      if (replica_it == block.replicas.end()) continue;
      block.replicas.erase(replica_it);
      ++stats_.replicas_lost;
      if (block.replicas.empty()) continue;  // data loss; read will report

      // Choose a new home (avoid existing replicas) and ask a survivor to
      // push the block there.
      std::set<std::uint32_t> avoid;
      for (net::Ipv4Addr existing : block.replicas) {
        avoid.insert(existing.value());
      }
      avoid.insert(ip.value());
      std::vector<net::Ipv4Addr> fresh = pick_replicas(block.bytes, avoid);
      if (fresh.empty()) continue;  // nowhere to put it; stays degraded
      net::Ipv4Addr survivor = block.replicas[0];
      net::Ipv4Addr target = fresh[0];
      Json push = Json::object();
      push.set("op", "push");
      push.set("block", block.id);
      push.set("to", target.to_string());
      send_op(survivor, std::move(push), 0, [](bool, double) {});
      block.replicas.push_back(target);
      ++stats_.re_replications;
    }
  }
}

size_t DfsNamenode::under_replicated() const {
  size_t n = 0;
  for (const auto& [name, file] : files_) {
    for (const Block& block : file.blocks) {
      if (static_cast<int>(block.replicas.size()) < config_.replication) ++n;
    }
  }
  return n;
}

std::uint64_t DfsNamenode::file_bytes(const std::string& file) const {
  auto it = files_.find(file);
  return it != files_.end() ? it->second.bytes : 0;
}

std::vector<net::Ipv4Addr> DfsNamenode::block_replicas(const std::string& file,
                                                       size_t index) const {
  auto it = files_.find(file);
  if (it == files_.end() || index >= it->second.blocks.size()) return {};
  return it->second.blocks[index].replicas;
}

}  // namespace picloud::apps
