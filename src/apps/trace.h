// Time-varying workload traces.
//
// Paper §I: "Traffic patterns in operational Cloud DC networks constantly
// change over time and are generally unpredictable ... The realism of
// simulated traffic patterns is questionable, since traffic dynamism is
// difficult to model." This module supplies the dynamism: a diurnal
// request-rate curve with noise and flash crowds drives the load
// generators, and a TraceRecorder samples whatever cluster gauges an
// experiment wires in, producing the time-series tables figures are made
// of.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "apps/loadgen.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace picloud::apps {

// Request rate as a function of simulated time-of-day.
class DiurnalProfile {
 public:
  struct Params {
    double base_rps = 20;    // overnight floor
    double peak_rps = 200;   // mid-day peak
    double peak_hour = 14;   // local time of the peak
    double noise = 0.1;      // multiplicative jitter (fraction)
    // Flash crowds: Poisson events multiplying the rate for a while.
    double flash_per_day = 0.5;
    double flash_multiplier = 3.0;
    sim::Duration flash_duration = sim::Duration::minutes(10);
  };

  DiurnalProfile(Params params, util::Rng rng);

  // Rate at simulated time `t` (t=0 is midnight). Deterministic in t for
  // the smooth part; noise/flash state advances via advance().
  double rate_at(sim::SimTime t) const;
  // Advances stochastic state (noise resample, flash arrivals) to `t`.
  void advance(sim::SimTime t);
  bool in_flash() const { return flash_until_.ns() > last_advance_.ns(); }

 private:
  Params params_;
  mutable util::Rng rng_;
  double noise_factor_ = 1.0;
  sim::SimTime flash_until_;
  sim::SimTime last_advance_;
};

// Drives an HttpLoadGen's rate along a profile, re-evaluating every period.
class TracePlayer {
 public:
  TracePlayer(sim::Simulation& sim, HttpLoadGen& generator,
              DiurnalProfile profile,
              sim::Duration update_period = sim::Duration::minutes(1));

  void start();
  void stop();
  double current_rps() const { return current_rps_; }

 private:
  void tick();

  sim::Simulation& sim_;
  HttpLoadGen& generator_;
  DiurnalProfile profile_;
  sim::Duration period_;
  double current_rps_ = 0;
  bool running_ = false;
  sim::PeriodicTask task_;
};

// Samples named gauges on a period and keeps the rows (a figure's columns).
class TraceRecorder {
 public:
  using Gauge = std::function<double()>;

  TraceRecorder(sim::Simulation& sim,
                sim::Duration period = sim::Duration::minutes(5));

  void add_gauge(const std::string& name, Gauge gauge);
  void start();
  void stop();

  struct Row {
    double t_seconds;
    std::map<std::string, double> values;
  };
  const std::vector<Row>& rows() const { return rows_; }
  // Renders an aligned table: t plus one column per gauge.
  std::string render() const;

 private:
  void sample();

  sim::Simulation& sim_;
  sim::Duration period_;
  std::vector<std::pair<std::string, Gauge>> gauges_;
  std::vector<Row> rows_;
  bool running_ = false;
  sim::PeriodicTask task_;
};

}  // namespace picloud::apps
