#include "os/container.h"

#include "os/node_os.h"
#include "util/check.h"
#include "util/logging.h"

namespace picloud::os {

const char* container_state_name(ContainerState state) {
  switch (state) {
    case ContainerState::kStopped: return "stopped";
    case ContainerState::kRunning: return "running";
    case ContainerState::kFrozen: return "frozen";
    case ContainerState::kDestroyed: return "destroyed";
  }
  return "?";
}

Container::Container(NodeOs& node, ContainerConfig config)
    : node_(node), config_(std::move(config)) {}

Container::~Container() {
  if (state_ != ContainerState::kDestroyed) destroy();
}

util::Status Container::start(net::Ipv4Addr ip) {
  if (state_ == ContainerState::kDestroyed) {
    return util::Error::make("state", "container is destroyed");
  }
  if (state_ != ContainerState::kStopped) {
    return util::Error::make("state", "container already started");
  }
  // Memory cgroup first: the idle footprint must fit or lxc-start fails.
  mem_group_ = node_.memory().create_group(config_.memory_limit);
  mem_group_valid_ = true;
  util::Status charged = node_.memory().charge(mem_group_, idle_ram_bytes());
  if (!charged.ok()) {
    node_.memory().destroy_group(mem_group_);
    mem_group_valid_ = false;
    return charged;
  }
  cpu_group_ = node_.cpu().create_group(config_.cpu_shares, config_.cpu_limit);
  ip_ = ip;
  if (!ip_.is_any()) {
    // Bridged networking: the container's IP answers on the host NIC.
    node_.network().bind_ip(ip_, node_.fabric_node());
  }
  state_ = ContainerState::kRunning;
  LOG_INFO("lxc", "%s: started %s (ip %s)", node_.hostname().c_str(),
           config_.name.c_str(), ip_.to_string().c_str());
  if (app_) app_->start(*this);
  return util::Status::success();
}

util::Status Container::freeze() {
  if (state_ != ContainerState::kRunning) {
    return util::Error::make("state", "container not running");
  }
  node_.cpu().freeze_group(cpu_group_, true);
  state_ = ContainerState::kFrozen;
  return util::Status::success();
}

util::Status Container::thaw() {
  if (state_ != ContainerState::kFrozen) {
    return util::Error::make("state", "container not frozen");
  }
  node_.cpu().freeze_group(cpu_group_, false);
  state_ = ContainerState::kRunning;
  return util::Status::success();
}

util::Status Container::stop() {
  if (state_ != ContainerState::kRunning && state_ != ContainerState::kFrozen) {
    return util::Error::make("state", "container not running");
  }
  if (app_) app_->stop();
  for (std::uint16_t port : listened_ports_) {
    node_.network().unlisten(ip_, port);
  }
  listened_ports_.clear();
  if (!ip_.is_any()) node_.network().unbind_ip(ip_);
  node_.cpu().destroy_group(cpu_group_);
  cpu_group_ = kInvalidCgroup;
  node_.memory().destroy_group(mem_group_);
  mem_group_valid_ = false;
  state_ = ContainerState::kStopped;
  LOG_INFO("lxc", "%s: stopped %s", node_.hostname().c_str(),
           config_.name.c_str());
  return util::Status::success();
}

void Container::destroy() {
  if (state_ == ContainerState::kRunning || state_ == ContainerState::kFrozen) {
    (void)stop();
  }
  state_ = ContainerState::kDestroyed;
}

CpuTaskId Container::run_cpu(double cycles, std::function<void(bool)> on_done) {
  if (state_ != ContainerState::kRunning && state_ != ContainerState::kFrozen) {
    // Not schedulable: report failure asynchronously to keep callers simple.
    node_.simulation().after(sim::Duration::zero(),
                             [cb = std::move(on_done)]() {
                               if (cb) cb(false);
                             });
    return 0;
  }
  return node_.cpu().run(cpu_group_, cycles, std::move(on_done));
}

void Container::cancel_cpu(CpuTaskId task) {
  if (task != 0) node_.cpu().cancel(task);
}

util::Status Container::alloc_memory(std::uint64_t bytes) {
  if (!mem_group_valid_) {
    return util::Error::make("state", "container not running");
  }
  return node_.memory().charge(mem_group_, bytes);
}

void Container::free_memory(std::uint64_t bytes) {
  if (mem_group_valid_) node_.memory().uncharge(mem_group_, bytes);
}

bool Container::send(net::Ipv4Addr dst, std::uint16_t dst_port,
                     std::string payload, std::uint16_t src_port,
                     double padding_bytes) {
  if (state_ != ContainerState::kRunning) return false;
  net::Message msg;
  msg.src = ip_;
  msg.dst = dst;
  msg.src_port = src_port;
  msg.dst_port = dst_port;
  msg.payload = std::move(payload);
  msg.padding_bytes = padding_bytes;
  return node_.network().send(std::move(msg));
}

void Container::listen(std::uint16_t port, net::Network::Handler handler) {
  PICLOUD_CHECK(!ip_.is_any()) << "listen() before the container has an IP";
  node_.network().listen(ip_, port, std::move(handler));
  listened_ports_.push_back(port);
}

void Container::unlisten(std::uint16_t port) {
  node_.network().unlisten(ip_, port);
  std::erase(listened_ports_, port);
}

void Container::set_cpu_limit(double fraction) {
  config_.cpu_limit = fraction;
  if (cpu_group_ != kInvalidCgroup) node_.cpu().set_limit(cpu_group_, fraction);
}

void Container::set_cpu_shares(double shares) {
  config_.cpu_shares = shares;
  if (cpu_group_ != kInvalidCgroup) node_.cpu().set_shares(cpu_group_, shares);
}

void Container::set_memory_limit(std::uint64_t bytes) {
  config_.memory_limit = bytes;
  if (mem_group_valid_) node_.memory().set_limit(mem_group_, bytes);
}

std::uint64_t Container::memory_usage() const {
  return mem_group_valid_ ? node_.memory().group_usage(mem_group_) : 0;
}

double Container::cpu_rate() const {
  return cpu_group_ != kInvalidCgroup ? node_.cpu().group_rate(cpu_group_) : 0;
}

double Container::cpu_cycles_used() {
  return cpu_group_ != kInvalidCgroup ? node_.cpu().group_cycles_used(cpu_group_)
                                      : 0;
}

void Container::set_app(std::unique_ptr<ContainerApp> app) {
  app_ = std::move(app);
  if (state_ == ContainerState::kRunning && app_) app_->start(*this);
}

std::unique_ptr<ContainerApp> Container::detach_app() {
  return std::move(app_);
}

util::Json Container::describe() {
  util::Json j = util::Json::object();
  j.set("name", config_.name);
  j.set("image", config_.image_id);
  j.set("state", container_state_name(state_));
  j.set("ip", ip_.to_string());
  j.set("memory_bytes", static_cast<unsigned long long>(memory_usage()));
  j.set("memory_limit", static_cast<unsigned long long>(config_.memory_limit));
  j.set("cpu_shares", config_.cpu_shares);
  j.set("cpu_limit", config_.cpu_limit);
  j.set("cpu_rate_hz", cpu_rate());
  if (app_) {
    j.set("app", app_->kind());
    j.set("app_status", app_->status());
  }
  return j;
}

}  // namespace picloud::os
