#include "os/node_os.h"

#include "util/check.h"
#include "util/logging.h"
#include "util/strings.h"

namespace picloud::os {

NodeOs::NodeOs(sim::Simulation& sim, hw::Device& device, net::Network& network,
               net::NetNodeId fabric_node)
    : sim_(sim), device_(device), network_(network), fabric_node_(fabric_node) {
  const hw::DeviceSpec& spec = device_.spec();
  cpu_ = std::make_unique<CpuScheduler>(sim_, spec.cycles_per_sec());
  std::uint64_t usable_ram =
      spec.ram_bytes > kGpuReservedBytes ? spec.ram_bytes - kGpuReservedBytes
                                         : spec.ram_bytes;
  memory_ = std::make_unique<MemoryManager>(usable_ram);
  sdcard_ = std::make_unique<storage::SdCard>(
      sim_, spec.storage_bytes, spec.storage_read_bps / 8.0,
      spec.storage_write_bps / 8.0);
}

void NodeOs::boot() {
  if (running_) return;
  running_ = true;
  device_.set_powered(sim_.now(), true);
  system_mem_group_ = memory_->create_group();
  util::Status s = memory_->charge(system_mem_group_, kSystemRamBytes);
  PICLOUD_CHECK(s.ok()) << "system RAM reservation: " << s.error().message;
  system_cpu_group_ = cpu_->create_group(/*shares=*/128);
  cpu_->set_utilization_listener([this](double util) {
    device_.power().set_utilization(sim_.now(), util);
  });
  LOG_INFO("os", "%s: booted (%s, %s RAM usable)", hostname().c_str(),
           device_.spec().name.c_str(),
           util::human_bytes(static_cast<double>(memory_->capacity())).c_str());
}

void NodeOs::shutdown() {
  if (!running_) return;
  // Graceful: stop containers first.
  std::vector<std::string> names;
  for (const auto& [name, c] : containers_) names.push_back(name);
  for (const auto& name : names) (void)destroy_container(name);
  if (!host_ip_.is_any()) network_.unbind_ip(host_ip_);
  host_ip_ = net::Ipv4Addr::any();
  memory_->destroy_group(system_mem_group_);
  cpu_->destroy_group(system_cpu_group_);
  cpu_->set_utilization_listener(nullptr);
  device_.set_powered(sim_.now(), false);
  running_ = false;
  LOG_INFO("os", "%s: shut down", hostname().c_str());
}

void NodeOs::crash() {
  if (!running_) return;
  LOG_WARN("os", "%s: CRASH", hostname().c_str());
  // No cleanup courtesy: containers are destroyed outright.
  containers_.clear();  // Container dtor -> destroy() -> stop() best effort
  if (!host_ip_.is_any()) network_.unbind_ip(host_ip_);
  host_ip_ = net::Ipv4Addr::any();
  // Power loss clears RAM and kills every process: the accounting groups
  // die with it, or repeated crash/boot cycles would leak the 48 MiB
  // system footprint until boot cannot charge it.
  memory_->destroy_group(system_mem_group_);
  cpu_->set_utilization_listener(nullptr);
  cpu_->destroy_group(system_cpu_group_);
  device_.set_powered(sim_.now(), false);
  running_ = false;
}

void NodeOs::set_host_ip(net::Ipv4Addr ip) {
  if (!host_ip_.is_any()) network_.unbind_ip(host_ip_);
  host_ip_ = ip;
  if (!host_ip_.is_any()) network_.bind_ip(host_ip_, fabric_node_);
}

bool NodeOs::has_image_layer(const std::string& layer_id) const {
  return image_cache_.count(layer_id) > 0;
}

util::Status NodeOs::add_image_layer(const std::string& layer_id,
                                     std::uint64_t bytes) {
  if (has_image_layer(layer_id)) return util::Status::success();
  if (!sdcard_->reserve(bytes)) {
    return util::Error::make(
        "disk_full", util::format("%s: SD card full caching %s",
                                  hostname().c_str(), layer_id.c_str()));
  }
  image_cache_[layer_id] = bytes;
  return util::Status::success();
}

std::vector<std::string> NodeOs::cached_layers() const {
  std::vector<std::string> out;
  out.reserve(image_cache_.size());
  for (const auto& [id, bytes] : image_cache_) out.push_back(id);
  return out;
}

util::Result<Container*> NodeOs::create_container(ContainerConfig config) {
  if (!running_) {
    return util::Error::make("state", hostname() + " is not running");
  }
  if (config.name.empty()) {
    return util::Error::make("invalid", "container name required");
  }
  if (containers_.count(config.name) > 0) {
    return util::Error::make("exists",
                             "container name in use: " + config.name);
  }
  if (!config.image_id.empty() && !has_image_layer(config.image_id)) {
    return util::Error::make("no_image",
                             "image not cached locally: " + config.image_id);
  }
  auto container = std::make_unique<Container>(*this, std::move(config));
  Container* raw = container.get();
  containers_[raw->name()] = std::move(container);
  return raw;
}

Container* NodeOs::find_container(const std::string& name) {
  auto it = containers_.find(name);
  return it != containers_.end() ? it->second.get() : nullptr;
}

util::Status NodeOs::destroy_container(const std::string& name) {
  auto it = containers_.find(name);
  if (it == containers_.end()) {
    return util::Error::make("not_found", "no such container: " + name);
  }
  it->second->destroy();
  containers_.erase(it);
  return util::Status::success();
}

std::vector<Container*> NodeOs::containers() {
  std::vector<Container*> out;
  out.reserve(containers_.size());
  for (auto& [name, c] : containers_) out.push_back(c.get());
  return out;
}

std::vector<const Container*> NodeOs::containers() const {
  std::vector<const Container*> out;
  out.reserve(containers_.size());
  for (const auto& [name, c] : containers_) out.push_back(c.get());
  return out;
}

size_t NodeOs::running_container_count() const {
  size_t n = 0;
  for (const auto& [name, c] : containers_) {
    if (c->state() == ContainerState::kRunning ||
        c->state() == ContainerState::kFrozen) {
      ++n;
    }
  }
  return n;
}

NodeOs::NodeStats NodeOs::stats() const {
  NodeStats s;
  s.cpu_utilization = cpu_->utilization();
  s.mem_used = memory_->used();
  s.mem_capacity = memory_->capacity();
  s.sd_used = sdcard_->used_bytes();
  s.sd_capacity = sdcard_->capacity_bytes();
  s.containers_total = static_cast<int>(containers_.size());
  s.containers_running = static_cast<int>(running_container_count());
  s.power_watts = device_.power().current_watts();
  return s;
}

}  // namespace picloud::os
