// Linux-container (LXC) model.
//
// Paper §II-B: "we use a lightweight operating system-level virtualisation
// method ... Linux containers do not provide a full virtual machine, but
// rather a virtual environment that has its own process and network space".
// A Container owns a cpu cgroup, a memory cgroup and a bridged network
// identity on its host Pi. Its workload is a ContainerApp (webserver,
// database, Hadoop worker — the Fig. 3 stack) that runs *through* the
// container's resource API, so contention is enforced by the host scheduler.
//
// Lifecycle (lxc-start / lxc-freeze / lxc-stop):
//   Stopped -> start() -> Running <-> freeze()/thaw() -> stop() -> Stopped
//   destroy() from any state -> Destroyed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/addr.h"
#include "net/network.h"
#include "os/memory.h"
#include "os/scheduler.h"
#include "util/json.h"
#include "util/result.h"

namespace picloud::os {

class NodeOs;
class Container;

// A workload that runs inside a container. Implementations live in
// src/apps/. start() may be called more than once (after stop()), which is
// how live migration moves an app between hosts while preserving its state.
class ContainerApp {
 public:
  virtual ~ContainerApp() = default;
  virtual std::string kind() const = 0;
  // Begin serving inside `container`: register listeners, kick off work.
  virtual void start(Container& container) = 0;
  // Quiesce: deregister listeners, drop in-flight work. State must survive.
  virtual void stop() {}
  // App-specific status for the management API (/containers/<n> endpoint).
  virtual util::Json status() const { return util::Json::object(); }
  // Rate at which the app dirties memory while running — drives the
  // iterative pre-copy rounds of live migration.
  virtual double dirty_bytes_per_sec() const { return 64.0 * 1024; }
};

struct ContainerConfig {
  std::string name;
  std::string image_id;          // layer id the rootfs was spawned from
  double cpu_shares = 1024;      // cgroup cpu.shares
  double cpu_limit = 0;          // fraction of node CPU, 0 = uncapped
  std::uint64_t memory_limit = 0;  // cgroup bytes, 0 = no per-container cap
  // Paper §III "removal of virtualisation ... renting out physical nodes
  // rather than virtual ones": a bare-metal tenancy skips the container
  // runtime — no 30 MB idle footprint (only a token supervisor stub), and
  // the workload owns the node's resources directly.
  bool bare_metal = false;
};

enum class ContainerState { kStopped, kRunning, kFrozen, kDestroyed };

const char* container_state_name(ContainerState state);

class Container {
 public:
  // Idle footprint of a running container: "we can run three containers on
  // a single Pi, each consuming 30MB RAM when idle" (§II-B).
  static constexpr std::uint64_t kIdleRamBytes = 30ull << 20;
  // Footprint of a bare-metal tenancy's supervisor stub (§III).
  static constexpr std::uint64_t kBareMetalRamBytes = 2ull << 20;

  // RAM this configuration pins at start.
  std::uint64_t idle_ram_bytes() const {
    return config_.bare_metal ? kBareMetalRamBytes : kIdleRamBytes;
  }

  Container(NodeOs& node, ContainerConfig config);
  ~Container();

  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;

  // --- Lifecycle --------------------------------------------------------------
  // Starts the container with the given bridged IP: charges the idle RAM,
  // creates cgroups, binds the IP to the host NIC, starts the app (if set).
  util::Status start(net::Ipv4Addr ip);
  util::Status freeze();
  util::Status thaw();
  util::Status stop();

  // --- Identity ----------------------------------------------------------------
  const std::string& name() const { return config_.name; }
  const ContainerConfig& config() const { return config_; }
  ContainerState state() const { return state_; }
  net::Ipv4Addr ip() const { return ip_; }
  NodeOs& node() { return node_; }

  // --- Resource API (used by apps) ---------------------------------------------
  // Runs CPU work under this container's cgroup.
  CpuTaskId run_cpu(double cycles, std::function<void(bool)> on_done);
  void cancel_cpu(CpuTaskId task);
  // App heap beyond the idle footprint. Fails on cgroup limit or node OOM.
  util::Status alloc_memory(std::uint64_t bytes);
  void free_memory(std::uint64_t bytes);

  // Datagram API, bridged through the host NIC. `padding_bytes` models bulk
  // body size charged on the wire without materialising the bytes.
  bool send(net::Ipv4Addr dst, std::uint16_t dst_port, std::string payload,
            std::uint16_t src_port = 0, double padding_bytes = 0);
  void listen(std::uint16_t port, net::Network::Handler handler);
  void unlisten(std::uint16_t port);

  // --- Limits (management plane) -------------------------------------------------
  void set_cpu_limit(double fraction);
  void set_cpu_shares(double shares);
  void set_memory_limit(std::uint64_t bytes);

  // --- Introspection ---------------------------------------------------------------
  std::uint64_t memory_usage() const;
  // Instantaneous CPU rate granted to this container (cycles/sec).
  double cpu_rate() const;
  double cpu_cycles_used();

  void set_app(std::unique_ptr<ContainerApp> app);
  ContainerApp* app() { return app_.get(); }
  const ContainerApp* app() const { return app_.get(); }
  // Removes the app without stopping it — used by migration to move it.
  std::unique_ptr<ContainerApp> detach_app();

  util::Json describe();

 private:
  friend class NodeOs;
  void destroy();  // NodeOs tears the container down

  NodeOs& node_;
  ContainerConfig config_;
  ContainerState state_ = ContainerState::kStopped;
  net::Ipv4Addr ip_;
  CgroupId cpu_group_ = kInvalidCgroup;
  MemGroupId mem_group_ = 0;
  bool mem_group_valid_ = false;
  std::vector<std::uint16_t> listened_ports_;
  std::unique_ptr<ContainerApp> app_;
};

}  // namespace picloud::os
