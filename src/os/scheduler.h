// Proportional-share CPU scheduler with cgroup semantics.
//
// Models the Linux kernel CFS + cgroup cpu controller the paper's containers
// rely on ("the Linux Container, which is supported by the Linux kernel's
// CGROUPS functionality", §II-B). Each cgroup has cpu.shares (relative
// weight) and an optional utilisation cap — the "(soft) per-VM resource
// utilisation limits" the management API sets (§II-C).
//
// Tasks request a cycle budget and complete when it has been served at the
// group's fair rate; rates are recomputed whenever the runnable set changes
// (same progressive-allocation approach as the network fabric).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "sim/simulation.h"
#include "util/stats.h"

namespace picloud::os {

using CgroupId = std::uint32_t;
using CpuTaskId = std::uint64_t;
inline constexpr CgroupId kInvalidCgroup = ~0u;

class CpuScheduler {
 public:
  CpuScheduler(sim::Simulation& sim, double cycles_per_sec);

  double capacity() const { return capacity_; }

  // --- Cgroups ---------------------------------------------------------------
  // `shares` is the relative weight (Linux default 1024); `limit_fraction`
  // in (0, 1] caps the group at that share of node CPU (0 = uncapped).
  CgroupId create_group(double shares = 1024, double limit_fraction = 0);
  void set_shares(CgroupId group, double shares);
  void set_limit(CgroupId group, double limit_fraction);
  // Freezes/thaws every task in the group (lxc-freeze; also used while a
  // container is stop-copied during migration).
  void freeze_group(CgroupId group, bool frozen);
  // Destroys the group; pending tasks complete with success=false.
  void destroy_group(CgroupId group);
  bool group_exists(CgroupId group) const { return groups_.count(group) > 0; }

  // --- Tasks -------------------------------------------------------------------
  // Runs `cycles` of work in `group`; on_done(true) on completion,
  // on_done(false) if cancelled or the group is destroyed.
  using TaskCallback = std::function<void(bool completed)>;
  CpuTaskId run(CgroupId group, double cycles, TaskCallback on_done);
  void cancel(CpuTaskId task);

  // --- Introspection -------------------------------------------------------------
  // Instantaneous allocation / capacity, in [0, 1].
  double utilization() const;
  // Current service rate of a group (cycles/sec).
  double group_rate(CgroupId group) const;
  // Total cycles a group has consumed (settled to now).
  double group_cycles_used(CgroupId group);
  size_t runnable_tasks() const;
  size_t group_count() const { return groups_.size(); }
  // Time-average utilisation since construction.
  double average_utilization(sim::SimTime now) const {
    return util_signal_.average(now.to_seconds());
  }

  // Invoked after every reallocation with the new utilisation — NodeOs wires
  // this to the device power meter.
  void set_utilization_listener(std::function<void(double)> listener) {
    utilization_listener_ = std::move(listener);
  }

 private:
  struct Task {
    CpuTaskId id = 0;
    CgroupId group = kInvalidCgroup;
    double remaining_cycles = 0;
    double rate = 0;  // cycles/sec currently granted
    // Rate the live completion event was computed with (reschedule guard).
    double scheduled_rate = -1;
    sim::SimTime last_update;
    sim::EventId completion_event = 0;
    TaskCallback on_done;
  };

  struct Group {
    double shares = 1024;
    double limit_fraction = 0;
    bool frozen = false;
    int task_count = 0;
    double rate = 0;            // cycles/sec granted to the group
    double cycles_used = 0;     // settled consumption
  };

  void settle_all();
  void reallocate();
  void finish_task(CpuTaskId id, bool completed);

  sim::Simulation& sim_;
  double capacity_;
  std::map<CgroupId, Group> groups_;
  std::map<CpuTaskId, Task> tasks_;
  CgroupId next_group_ = 1;
  CpuTaskId next_task_ = 1;
  util::TimeWeighted util_signal_;
  std::function<void(double)> utilization_listener_;
  // Cluster-aggregated registry counters: every node's scheduler shares the
  // `os.sched.*` series (never null).
  util::Counter* tasks_started_ = nullptr;
  util::Counter* tasks_completed_ = nullptr;
  util::Counter* tasks_cancelled_ = nullptr;
  util::Counter* reallocations_ = nullptr;
};

}  // namespace picloud::os
