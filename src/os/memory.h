// Per-node memory accounting with cgroup limits.
//
// The original Raspberry Pi's 256 MB is the constraint that shaped the whole
// PiCloud design ("full virtualisation technologies such as Xen are
// memory-intensive when compared to the 256MB RAM capacity", §II-B), so the
// model enforces it strictly: a charge that would exceed the node's RAM
// fails — the caller sees the same OOM a real over-packed Pi would.
#pragma once

#include <cstdint>
#include <map>

#include "util/result.h"

namespace picloud::os {

using MemGroupId = std::uint32_t;

class MemoryManager {
 public:
  explicit MemoryManager(std::uint64_t capacity_bytes);

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t available() const { return capacity_ - used_; }

  // Creates an accounting group. `limit_bytes` of 0 means no group cap
  // (node capacity still applies).
  MemGroupId create_group(std::uint64_t limit_bytes = 0);
  void destroy_group(MemGroupId group);  // releases any remaining charge
  // Adjusts the group limit. May be set below current usage: existing pages
  // stay resident (a *soft* limit, like the paper's per-VM limits) but new
  // charges fail until usage drops below it.
  void set_limit(MemGroupId group, std::uint64_t limit_bytes);

  // Charges bytes to the group. Fails with "oom" (node exhausted) or
  // "limit" (group cap exceeded).
  util::Status charge(MemGroupId group, std::uint64_t bytes);
  void uncharge(MemGroupId group, std::uint64_t bytes);

  std::uint64_t group_usage(MemGroupId group) const;
  std::uint64_t group_limit(MemGroupId group) const;
  double utilization() const {
    return capacity_ > 0
               ? static_cast<double>(used_) / static_cast<double>(capacity_)
               : 0.0;
  }

 private:
  struct Group {
    std::uint64_t limit = 0;
    std::uint64_t usage = 0;
  };

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::map<MemGroupId, Group> groups_;
  MemGroupId next_group_ = 1;
};

}  // namespace picloud::os
