#include "os/scheduler.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace picloud::os {

namespace {
constexpr double kDrainEpsilonCycles = 1e-6;
}

CpuScheduler::CpuScheduler(sim::Simulation& sim, double cycles_per_sec)
    : sim_(sim), capacity_(cycles_per_sec) {
  PICLOUD_CHECK_GT(capacity_, 0) << "CpuScheduler capacity";
  util::MetricsRegistry& m = sim_.metrics();
  tasks_started_ = &m.counter("os.sched.tasks_started");
  tasks_completed_ = &m.counter("os.sched.tasks_completed");
  tasks_cancelled_ = &m.counter("os.sched.tasks_cancelled");
  reallocations_ = &m.counter("os.sched.reallocations");
}

CgroupId CpuScheduler::create_group(double shares, double limit_fraction) {
  PICLOUD_CHECK_GT(shares, 0) << "cgroup shares";
  CgroupId id = next_group_++;
  Group g;
  g.shares = shares;
  g.limit_fraction = std::clamp(limit_fraction, 0.0, 1.0);
  groups_[id] = g;
  return id;
}

void CpuScheduler::set_shares(CgroupId group, double shares) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  it->second.shares = std::max(shares, 1.0);
  reallocate();
}

void CpuScheduler::set_limit(CgroupId group, double limit_fraction) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  it->second.limit_fraction = std::clamp(limit_fraction, 0.0, 1.0);
  reallocate();
}

void CpuScheduler::freeze_group(CgroupId group, bool frozen) {
  auto it = groups_.find(group);
  if (it == groups_.end() || it->second.frozen == frozen) return;
  it->second.frozen = frozen;
  reallocate();
}

void CpuScheduler::destroy_group(CgroupId group) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  // Fail the group's tasks. Collect ids first: finish_task mutates tasks_.
  std::vector<CpuTaskId> doomed;
  for (const auto& [tid, task] : tasks_) {
    if (task.group == group) doomed.push_back(tid);
  }
  for (CpuTaskId tid : doomed) finish_task(tid, /*completed=*/false);
  groups_.erase(group);
  reallocate();
}

CpuTaskId CpuScheduler::run(CgroupId group, double cycles,
                            TaskCallback on_done) {
  PICLOUD_CHECK_GT(groups_.count(group), 0u) << "run() on unknown cgroup " << group;
  PICLOUD_CHECK_GE(cycles, 0) << "run() with negative cycles";
  CpuTaskId id = next_task_++;
  Task task;
  task.id = id;
  task.group = group;
  task.remaining_cycles = std::max(cycles, kDrainEpsilonCycles);
  task.last_update = sim_.now();
  task.on_done = std::move(on_done);
  tasks_.emplace(id, std::move(task));
  ++groups_[group].task_count;
  tasks_started_->inc();
  reallocate();
  return id;
}

void CpuScheduler::cancel(CpuTaskId task) {
  if (tasks_.count(task) == 0) return;
  finish_task(task, /*completed=*/false);
}

// Runs over every task on each scheduling change — keep allocation-free.
// picloud-hot
void CpuScheduler::settle_all() {
  for (auto& [id, task] : tasks_) {
    sim::Duration elapsed = sim_.now() - task.last_update;
    if (elapsed > sim::Duration::zero() && task.rate > 0) {
      double done = task.rate * elapsed.to_seconds();
      done = std::min(done, task.remaining_cycles);
      task.remaining_cycles -= done;
      groups_[task.group].cycles_used += done;
    }
    task.last_update = sim_.now();
  }
}

void CpuScheduler::reallocate() {
  reallocations_->inc();
  settle_all();

  // Phase 1: group rates — weighted fair share with per-group caps
  // (water-filling: capped groups bind first, the rest re-share).
  for (auto& [gid, g] : groups_) g.rate = 0;

  std::map<CgroupId, bool> decided;
  double remaining_capacity = capacity_;
  while (true) {
    double total_shares = 0;
    for (auto& [gid, g] : groups_) {
      if (decided.count(gid) > 0 || g.frozen || g.task_count == 0) continue;
      total_shares += g.shares;
    }
    if (total_shares <= 0) break;
    bool capped_someone = false;
    // First pass: bind groups whose cap is below their fair share.
    for (auto& [gid, g] : groups_) {
      if (decided.count(gid) > 0 || g.frozen || g.task_count == 0) continue;
      double fair = remaining_capacity * g.shares / total_shares;
      double cap = g.limit_fraction > 0 ? g.limit_fraction * capacity_
                                        : capacity_;
      if (cap < fair) {
        g.rate = cap;
        decided[gid] = true;
        remaining_capacity -= cap;
        capped_someone = true;
      }
    }
    if (capped_someone) continue;
    // No caps bind: everyone gets the fair share.
    for (auto& [gid, g] : groups_) {
      if (decided.count(gid) > 0 || g.frozen || g.task_count == 0) continue;
      g.rate = remaining_capacity * g.shares / total_shares;
      decided[gid] = true;
    }
    break;
  }

  // Phase 2: split each group's rate equally across its runnable tasks and
  // reschedule completions.
  std::map<CgroupId, int> live_tasks;
  for (const auto& [tid, task] : tasks_) ++live_tasks[task.group];

  for (auto& [tid, task] : tasks_) {
    const Group& g = groups_[task.group];
    double task_rate =
        (g.frozen || live_tasks[task.group] == 0)
            ? 0.0
            : g.rate / static_cast<double>(live_tasks[task.group]);
    task.rate = task_rate;
    // Unchanged rate -> unchanged finish time: keep the existing event
    // (bounds event churn under heavy request turnover).
    if (task.completion_event != 0 && task_rate == task.scheduled_rate) {
      continue;
    }
    if (task.completion_event != 0) {
      sim_.cancel(task.completion_event);
      task.completion_event = 0;
    }
    task.scheduled_rate = task_rate;
    if (task_rate > 0) {
      double seconds = task.remaining_cycles / task_rate;
      CpuTaskId id = tid;
      task.completion_event =
          sim_.after(sim::Duration::seconds(seconds),
                     [this, id]() { finish_task(id, /*completed=*/true); });
    }
  }

  // Phase 3: utilisation gauge + power hook.
  double util = utilization();
  util_signal_.set(sim_.now().to_seconds(), util);
  if (utilization_listener_) utilization_listener_(util);
}

void CpuScheduler::finish_task(CpuTaskId id, bool completed) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  Task& task = it->second;
  // Settle the finishing task exactly.
  sim::Duration elapsed = sim_.now() - task.last_update;
  if (elapsed > sim::Duration::zero() && task.rate > 0) {
    double done = std::min(task.rate * elapsed.to_seconds(),
                           task.remaining_cycles);
    task.remaining_cycles -= done;
    groups_[task.group].cycles_used += done;
  }
  if (task.completion_event != 0) sim_.cancel(task.completion_event);
  TaskCallback cb = std::move(task.on_done);
  auto group_it = groups_.find(task.group);
  if (group_it != groups_.end() && group_it->second.task_count > 0) {
    --group_it->second.task_count;
  }
  tasks_.erase(it);
  if (completed) {
    tasks_completed_->inc();
  } else {
    tasks_cancelled_->inc();
  }
  reallocate();
  if (cb) cb(completed);
}

double CpuScheduler::utilization() const {
  double allocated = 0;
  for (const auto& [gid, g] : groups_) allocated += g.rate;
  return capacity_ > 0 ? std::min(allocated / capacity_, 1.0) : 0.0;
}

double CpuScheduler::group_rate(CgroupId group) const {
  auto it = groups_.find(group);
  return it != groups_.end() ? it->second.rate : 0.0;
}

double CpuScheduler::group_cycles_used(CgroupId group) {
  settle_all();
  auto it = groups_.find(group);
  return it != groups_.end() ? it->second.cycles_used : 0.0;
}

size_t CpuScheduler::runnable_tasks() const {
  size_t n = 0;
  for (const auto& [tid, task] : tasks_) {
    if (!groups_.at(task.group).frozen) ++n;
  }
  return n;
}

}  // namespace picloud::os
