#include "os/memory.h"

#include "util/check.h"
#include "util/strings.h"

namespace picloud::os {

MemoryManager::MemoryManager(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

MemGroupId MemoryManager::create_group(std::uint64_t limit_bytes) {
  MemGroupId id = next_group_++;
  groups_[id] = Group{limit_bytes, 0};
  return id;
}

void MemoryManager::destroy_group(MemGroupId group) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  PICLOUD_CHECK_LE(it->second.usage, used_) << "memory accounting underflow";
  used_ -= it->second.usage;
  groups_.erase(it);
}

void MemoryManager::set_limit(MemGroupId group, std::uint64_t limit_bytes) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  it->second.limit = limit_bytes;
}

util::Status MemoryManager::charge(MemGroupId group, std::uint64_t bytes) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return util::Error::make("not_found", "no such memory group");
  }
  if (used_ + bytes > capacity_) {
    return util::Error::make(
        "oom", util::format("node OOM: need %llu, available %llu",
                            static_cast<unsigned long long>(bytes),
                            static_cast<unsigned long long>(available())));
  }
  Group& g = it->second;
  if (g.limit > 0 && g.usage + bytes > g.limit) {
    return util::Error::make(
        "limit", util::format("cgroup memory limit: need %llu, headroom %llu",
                              static_cast<unsigned long long>(bytes),
                              static_cast<unsigned long long>(
                                  g.limit > g.usage ? g.limit - g.usage : 0)));
  }
  g.usage += bytes;
  used_ += bytes;
  return util::Status::success();
}

void MemoryManager::uncharge(MemGroupId group, std::uint64_t bytes) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  Group& g = it->second;
  PICLOUD_CHECK_LE(bytes, g.usage) << "uncharge more than group usage";
  g.usage -= bytes;
  used_ -= bytes;
}

std::uint64_t MemoryManager::group_usage(MemGroupId group) const {
  auto it = groups_.find(group);
  return it != groups_.end() ? it->second.usage : 0;
}

std::uint64_t MemoryManager::group_limit(MemGroupId group) const {
  auto it = groups_.find(group);
  return it != groups_.end() ? it->second.limit : 0;
}

}  // namespace picloud::os
