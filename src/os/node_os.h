// NodeOs — the Raspbian-like operating system of one Pi (paper Fig. 3).
//
// Composes the device's resources into the stack a container sees:
//   ARM SoC (hw::Device) -> Raspbian (this class: scheduler, memory, SD
//   card, image cache) -> LXC (os::Container) -> apps.
// The management daemon (cloud::NodeDaemon) runs *on top of* NodeOs just as
// the paper's bespoke API daemon runs on each Pi.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/device.h"
#include "net/addr.h"
#include "net/network.h"
#include "os/container.h"
#include "os/memory.h"
#include "os/scheduler.h"
#include "storage/sdcard.h"
#include "util/result.h"

namespace picloud::os {

class NodeOs {
 public:
  // RAM the Raspbian system itself occupies after boot.
  static constexpr std::uint64_t kSystemRamBytes = 48ull << 20;
  // Minimum GPU memory split on a Pi: unavailable to the OS.
  static constexpr std::uint64_t kGpuReservedBytes = 16ull << 20;

  NodeOs(sim::Simulation& sim, hw::Device& device, net::Network& network,
         net::NetNodeId fabric_node);

  // --- Boot / halt --------------------------------------------------------------
  // Powers the device, charges system RAM, wires CPU utilisation into the
  // power meter. Idempotent.
  void boot();
  // Graceful: stops containers, releases resources, powers off.
  void shutdown();
  // Failure injection: the node dies instantly; containers are destroyed
  // without cleanup, IPs unbound.
  void crash();
  bool running() const { return running_; }

  // --- Identity ------------------------------------------------------------------
  const std::string& hostname() const { return device_.hostname(); }
  hw::Device& device() { return device_; }
  net::NetNodeId fabric_node() const { return fabric_node_; }
  void set_host_ip(net::Ipv4Addr ip);
  net::Ipv4Addr host_ip() const { return host_ip_; }

  // --- Subsystems ------------------------------------------------------------------
  sim::Simulation& simulation() { return sim_; }
  CpuScheduler& cpu() { return *cpu_; }
  MemoryManager& memory() { return *memory_; }
  const MemoryManager& memory() const { return *memory_; }
  storage::SdCard& sdcard() { return *sdcard_; }
  net::Network& network() { return network_; }

  // --- Image cache ------------------------------------------------------------------
  bool has_image_layer(const std::string& layer_id) const;
  // Reserves SD space for the layer; fails when the card is full.
  util::Status add_image_layer(const std::string& layer_id,
                               std::uint64_t bytes);
  std::vector<std::string> cached_layers() const;

  // --- Containers --------------------------------------------------------------------
  // Creates a container definition (rootfs must already be cached).
  util::Result<Container*> create_container(ContainerConfig config);
  Container* find_container(const std::string& name);
  // Stops (if needed) and removes the container.
  util::Status destroy_container(const std::string& name);
  std::vector<Container*> containers();
  std::vector<const Container*> containers() const;
  size_t container_count() const { return containers_.size(); }
  size_t running_container_count() const;

  // --- Monitoring ----------------------------------------------------------------------
  // Instantaneous read of the node, polled by the daemon which owns the
  // `node.<hostname>.` registry gauges (cloud/node_daemon.cc).
  // picloud-lint: allow(metrics-registry)
  struct NodeStats {
    double cpu_utilization = 0;
    std::uint64_t mem_used = 0;
    std::uint64_t mem_capacity = 0;
    std::uint64_t sd_used = 0;
    std::uint64_t sd_capacity = 0;
    int containers_total = 0;
    int containers_running = 0;
    double power_watts = 0;
  };
  NodeStats stats() const;

 private:
  sim::Simulation& sim_;
  hw::Device& device_;
  net::Network& network_;
  net::NetNodeId fabric_node_;
  net::Ipv4Addr host_ip_;
  bool running_ = false;

  std::unique_ptr<CpuScheduler> cpu_;
  std::unique_ptr<MemoryManager> memory_;
  std::unique_ptr<storage::SdCard> sdcard_;
  MemGroupId system_mem_group_ = 0;
  CgroupId system_cpu_group_ = kInvalidCgroup;

  std::map<std::string, std::uint64_t> image_cache_;  // layer id -> bytes
  std::map<std::string, std::unique_ptr<Container>> containers_;
};

}  // namespace picloud::os
