#include "util/logging.h"

#include <cstdio>

namespace picloud::util {

namespace {

LogLevel g_level = LogLevel::kWarn;
Logging::Sink g_sink;

void default_sink(LogLevel level, const std::string& component,
                  const std::string& message) {
  // The default terminal sink of the log spine itself.
  // picloud-lint: allow(metrics-registry)
  std::fprintf(stderr, "[%-5s] %s: %s\n", log_level_name(level),
               component.c_str(), message.c_str());
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel Logging::level() { return g_level; }

void Logging::set_level(LogLevel level) { g_level = level; }

void Logging::set_sink(Sink sink) { g_sink = std::move(sink); }

void Logging::log(LogLevel level, const std::string& component,
                  const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  if (g_sink) {
    g_sink(level, component, message);
  } else {
    default_sink(level, component, message);
  }
}

}  // namespace picloud::util
