#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"
#include "util/strings.h"

namespace picloud::util {

namespace {
const std::string kEmptyString;
const JsonArray kEmptyArray;
const JsonObject kEmptyObject;
const Json kNullJson;
}  // namespace

Json::Json(JsonArray a)
    : type_(Type::kArray), arr_(std::make_unique<JsonArray>(std::move(a))) {}

Json::Json(JsonObject o)
    : type_(Type::kObject), obj_(std::make_unique<JsonObject>(std::move(o))) {}

Json::Json(const Json& other)
    : type_(other.type_), bool_(other.bool_), num_(other.num_), str_(other.str_) {
  if (other.arr_) arr_ = std::make_unique<JsonArray>(*other.arr_);
  if (other.obj_) obj_ = std::make_unique<JsonObject>(*other.obj_);
}

Json::Json(Json&&) noexcept = default;

Json& Json::operator=(const Json& other) {
  if (this != &other) *this = Json(other);
  return *this;
}

Json& Json::operator=(Json&&) noexcept = default;

Json::~Json() = default;

const std::string& Json::as_string() const {
  PICLOUD_CHECK(is_string() || is_null()) << "as_string on non-string Json";
  return is_string() ? str_ : kEmptyString;
}

const JsonArray& Json::as_array() const {
  return is_array() && arr_ ? *arr_ : kEmptyArray;
}

const JsonObject& Json::as_object() const {
  return is_object() && obj_ ? *obj_ : kEmptyObject;
}

JsonArray& Json::mutable_array() {
  if (!is_array()) {
    PICLOUD_CHECK(is_null()) << "mutable_array on non-array Json";
    type_ = Type::kArray;
    arr_ = std::make_unique<JsonArray>();
  }
  return *arr_;
}

JsonObject& Json::mutable_object() {
  if (!is_object()) {
    PICLOUD_CHECK(is_null()) << "mutable_object on non-object Json";
    type_ = Type::kObject;
    obj_ = std::make_unique<JsonObject>();
  }
  return *obj_;
}

bool Json::has(const std::string& key) const {
  return is_object() && obj_ && obj_->count(key) > 0;
}

const Json& Json::get(const std::string& key) const {
  if (is_object() && obj_) {
    auto it = obj_->find(key);
    if (it != obj_->end()) return it->second;
  }
  return kNullJson;
}

double Json::get_number(const std::string& key, double fallback) const {
  const Json& v = get(key);
  return v.is_number() ? v.as_number() : fallback;
}

std::string Json::get_string(const std::string& key, std::string fallback) const {
  const Json& v = get(key);
  return v.is_string() ? v.as_string() : std::move(fallback);
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  const Json& v = get(key);
  return v.is_bool() ? v.as_bool() : fallback;
}

Json& Json::set(const std::string& key, Json value) {
  mutable_object()[key] = std::move(value);
  return *this;
}

Json& Json::push_back(Json value) {
  mutable_array().push_back(std::move(value));
  return *this;
}

size_t Json::size() const {
  if (is_array() && arr_) return arr_->size();
  if (is_object() && obj_) return obj_->size();
  return 0;
}

const Json& Json::operator[](size_t i) const {
  if (is_array() && arr_ && i < arr_->size()) return (*arr_)[i];
  return kNullJson;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return num_ == other.num_;
    case Type::kString: return str_ == other.str_;
    case Type::kArray: return as_array() == other.as_array();
    case Type::kObject: return as_object() == other.as_object();
  }
  return false;
}

namespace {

void escape_string(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += format("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void dump_number(double d, std::string* out) {
  if (std::isnan(d) || std::isinf(d)) {  // not representable in JSON
    *out += "null";
    return;
  }
  double rounded = std::nearbyint(d);
  if (rounded == d && std::fabs(d) < 9.007199254740992e15) {
    *out += format("%lld", static_cast<long long>(d));
  } else {
    *out += format("%.17g", d);
  }
}

void newline_indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: dump_number(num_, out); break;
    case Type::kString: escape_string(str_, out); break;
    case Type::kArray: {
      const JsonArray& a = as_array();
      if (a.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < a.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_indent(out, indent, depth + 1);
        a[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      const JsonObject& o = as_object();
      if (o.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : o) {
        if (!first) out->push_back(',');
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_string(k, out);
        *out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Json::pretty() const {
  std::string out;
  dump_to(&out, /*indent=*/2, /*depth=*/0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser — recursive descent over a string_view with position tracking.

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse() {
    skip_ws();
    Result<Json> v = parse_value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return error("trailing characters");
    return v;
  }

 private:
  Error error(const std::string& what) {
    return Error::make("json_parse",
                       format("%s at offset %zu", what.c_str(), pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool eat_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<Json> parse_value() {
    if (depth_ > kMaxDepth) return error("nesting too deep");
    if (pos_ >= text_.size()) return error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Result<std::string> s = parse_string();
      if (!s.ok()) return s.error();
      return Json(std::move(s).value());
    }
    if (eat_word("null")) return Json(nullptr);
    if (eat_word("true")) return Json(true);
    if (eat_word("false")) return Json(false);
    return parse_number();
  }

  Result<Json> parse_object() {
    ++depth_;
    eat('{');
    Json obj = Json::object();
    skip_ws();
    if (eat('}')) {
      --depth_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return error("expected object key");
      }
      Result<std::string> key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (!eat(':')) return error("expected ':'");
      skip_ws();
      Result<Json> value = parse_value();
      if (!value.ok()) return value;
      obj.set(key.value(), std::move(value).value());
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) break;
      return error("expected ',' or '}'");
    }
    --depth_;
    return obj;
  }

  Result<Json> parse_array() {
    ++depth_;
    eat('[');
    Json arr = Json::array();
    skip_ws();
    if (eat(']')) {
      --depth_;
      return arr;
    }
    while (true) {
      skip_ws();
      Result<Json> value = parse_value();
      if (!value.ok()) return value;
      arr.push_back(std::move(value).value());
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) break;
      return error("expected ',' or ']'");
    }
    --depth_;
    return arr;
  }

  Result<std::string> parse_string() {
    eat('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return error("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return error("bad hex digit in \\u escape");
            }
            // UTF-8 encode (basic multilingual plane only; surrogate pairs
            // are passed through as replacement characters — management
            // payloads are ASCII in practice).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return error("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return error("unterminated string");
  }

  Result<Json> parse_number() {
    size_t start = pos_;
    if (eat('-')) { /* sign */ }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return error("expected value");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return error("bad number");
    return Json(d);
  }

  static constexpr int kMaxDepth = 128;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Json> Json::parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace picloud::util
