// PICLOUD_CHECK — always-on invariant checking with streamed context.
//
// The simulator's value rests on bit-reproducible runs; a violated invariant
// that silently returns garbage (the fate of `assert` under NDEBUG) corrupts
// an experiment without any signal. These macros stay live in every build
// type: a failed check prints `file:line: CHECK failed: <expr> <context>` to
// stderr and aborts, so release-mode benchmark runs fail loudly instead of
// producing plausible-but-wrong numbers.
//
//   PICLOUD_CHECK(lo <= hi) << "uniform_int(" << lo << ", " << hi << ")";
//   PICLOUD_CHECK_GT(mean, 0) << "exponential mean";
//
// Policy (see DESIGN.md "Determinism rules & correctness tooling"):
//   * PICLOUD_CHECK / PICLOUD_CHECK_<OP> — preconditions on public APIs and
//     cross-module invariants. Always on, even under NDEBUG.
//   * PICLOUD_DCHECK / PICLOUD_DCHECK_<OP> — internal consistency checks on
//     hot paths (per-event bookkeeping). Compiled out under NDEBUG; the
//     condition is not evaluated, so operands must be side-effect free.
//
// Raw `assert(` is banned in src/ and enforced by tools/lint/picloud_analyze.
#pragma once

#include <sstream>
#include <utility>

namespace picloud::util::internal {

// Collects streamed context; its destructor reports and aborts. Constructed
// only on the (cold) failure path, so the fast path costs one predicted
// branch and no code besides the condition itself. The stream lives behind a
// pointer (allocated on failure — we are about to abort anyway): a by-value
// ostringstream would make every function with an inlined CHECK reserve
// ~400 bytes of stack and extra saved registers in its prologue, a real cost
// in the event hot loop.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailure();

  std::ostream& stream() { return *stream_; }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream* stream_;
};

// Lets the macro expand to a void expression: `voidify & stream` binds looser
// than `<<`, so trailing context streams into CheckFailure first.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace picloud::util::internal

#define PICLOUD_CHECK_IMPL(cond_, text_)                            \
  (__builtin_expect(static_cast<bool>(cond_), 1))                   \
      ? (void)0                                                     \
      : ::picloud::util::internal::Voidify() &                      \
            ::picloud::util::internal::CheckFailure(__FILE__,       \
                                                    __LINE__, text_) \
                .stream()

// Always-on checks.
#define PICLOUD_CHECK(cond_) PICLOUD_CHECK_IMPL((cond_), #cond_)
#define PICLOUD_CHECK_OP(op_, a_, b_) \
  PICLOUD_CHECK_IMPL(((a_)op_(b_)), #a_ " " #op_ " " #b_)
#define PICLOUD_CHECK_EQ(a_, b_) PICLOUD_CHECK_OP(==, a_, b_)
#define PICLOUD_CHECK_NE(a_, b_) PICLOUD_CHECK_OP(!=, a_, b_)
#define PICLOUD_CHECK_LT(a_, b_) PICLOUD_CHECK_OP(<, a_, b_)
#define PICLOUD_CHECK_LE(a_, b_) PICLOUD_CHECK_OP(<=, a_, b_)
#define PICLOUD_CHECK_GT(a_, b_) PICLOUD_CHECK_OP(>, a_, b_)
#define PICLOUD_CHECK_GE(a_, b_) PICLOUD_CHECK_OP(>=, a_, b_)

// Debug-only checks for hot paths. Under NDEBUG the short-circuited `true ||`
// skips evaluating the condition (operands must be side-effect free) while
// keeping it — and any streamed context — compiling in both modes, so a
// release build cannot rot a DCHECK expression.
#ifdef NDEBUG
#define PICLOUD_DCHECK(cond_) PICLOUD_CHECK_IMPL(true || (cond_), #cond_)
#define PICLOUD_DCHECK_OP(op_, a_, b_) \
  PICLOUD_CHECK_IMPL(true || ((a_)op_(b_)), #a_ " " #op_ " " #b_)
#else
#define PICLOUD_DCHECK(cond_) PICLOUD_CHECK(cond_)
#define PICLOUD_DCHECK_OP(op_, a_, b_) PICLOUD_CHECK_OP(op_, a_, b_)
#endif
#define PICLOUD_DCHECK_EQ(a_, b_) PICLOUD_DCHECK_OP(==, a_, b_)
#define PICLOUD_DCHECK_NE(a_, b_) PICLOUD_DCHECK_OP(!=, a_, b_)
#define PICLOUD_DCHECK_LT(a_, b_) PICLOUD_DCHECK_OP(<, a_, b_)
#define PICLOUD_DCHECK_LE(a_, b_) PICLOUD_DCHECK_OP(<=, a_, b_)
#define PICLOUD_DCHECK_GT(a_, b_) PICLOUD_DCHECK_OP(>, a_, b_)
#define PICLOUD_DCHECK_GE(a_, b_) PICLOUD_DCHECK_OP(>=, a_, b_)
