#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace picloud::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::summary() const {
  return format("n=%lld, mean=%.3f, min=%.3f, max=%.3f, sd=%.3f",
                static_cast<long long>(count_), mean(), min(), max(), stddev());
}

void Histogram::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank with linear interpolation.
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

std::string Histogram::summary() const {
  return format("n=%zu, p50=%.3f, p95=%.3f, p99=%.3f, max=%.3f", count(),
                percentile(50), percentile(95), percentile(99), max());
}

void TimeWeighted::set(double t_seconds, double value) {
  if (!started_) {
    started_ = true;
    start_t_ = last_t_ = t_seconds;
    value_ = value;
    return;
  }
  PICLOUD_CHECK_GE(t_seconds, last_t_) << "TimeWeighted::set time went backwards";
  integral_ += value_ * (t_seconds - last_t_);
  last_t_ = t_seconds;
  value_ = value;
}

double TimeWeighted::integral(double t_seconds) const {
  if (!started_) return 0.0;
  PICLOUD_CHECK_GE(t_seconds, last_t_) << "TimeWeighted::integral time went backwards";
  return integral_ + value_ * (t_seconds - last_t_);
}

double TimeWeighted::average(double t_seconds) const {
  if (!started_ || t_seconds <= start_t_) return value_;
  return integral(t_seconds) / (t_seconds - start_t_);
}

}  // namespace picloud::util
