#include "util/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace picloud::util {

LogHistogram::LogHistogram(double min_value, double growth, int max_buckets)
    : min_value_(min_value), growth_(growth) {
  PICLOUD_CHECK_GT(min_value, 0.0) << "LogHistogram min_value";
  PICLOUD_CHECK_GT(growth, 1.0) << "LogHistogram growth";
  PICLOUD_CHECK_GT(max_buckets, 0) << "LogHistogram max_buckets";
  log_growth_ = std::log(growth);
  buckets_.assign(static_cast<std::size_t>(max_buckets), 0);
}

int LogHistogram::bucket_index(double v) const {
  // v >= min_value_ here. Values beyond the top bucket clamp into it (their
  // count stays right; the quantile saturates at the bucket's span, while
  // max() remains exact).
  int idx = static_cast<int>(std::floor(std::log(v / min_value_) / log_growth_));
  return std::clamp(idx, 0, static_cast<int>(buckets_.size()) - 1);
}

void LogHistogram::observe(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (!(v >= min_value_)) {  // also catches NaN and non-positives
    ++underflow_;
    return;
  }
  ++buckets_[static_cast<std::size_t>(bucket_index(v))];
}

double LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  // Rank of the requested quantile, 1-based, over all samples (underflow
  // sorts first: everything below min_value_ is "smaller than bucket 0").
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  rank = std::max<std::uint64_t>(rank, 1);
  if (rank <= underflow_) return min_;
  std::uint64_t seen = underflow_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      double lo = min_value_ * std::pow(growth_, static_cast<double>(i));
      double mid = lo * std::sqrt(growth_);  // geometric midpoint
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

std::string LogHistogram::summary() const {
  return format("n=%llu, p50=%.6g, p99=%.6g, max=%.6g",
                static_cast<unsigned long long>(count_), percentile(50),
                percentile(99), max());
}

Json LogHistogram::to_json() const {
  Json j = Json::object();
  j.set("count", static_cast<unsigned long long>(count_));
  j.set("sum", sum_);
  j.set("min", min());
  j.set("max", max());
  j.set("mean", mean());
  j.set("p50", percentile(50));
  j.set("p90", percentile(90));
  j.set("p99", percentile(99));
  return j;
}

namespace {

// Grows `v` so Symbol id `id` is a valid slot (null until first request).
template <typename T>
std::unique_ptr<T>& slot_for(std::vector<std::unique_ptr<T>>& v,
                             Symbol name) {
  PICLOUD_DCHECK(name.valid()) << "metric name symbol";
  if (v.size() <= name.id()) v.resize(name.id() + 1);
  return v[name.id()];
}

// Read-side: the instance at `id`, or nullptr if absent / never requested.
template <typename T>
const T* peek(const std::vector<std::unique_ptr<T>>& v, Symbol name) {
  if (!name.valid() || name.id() >= v.size()) return nullptr;
  return v[name.id()].get();
}

}  // namespace

Counter& MetricsRegistry::counter(Symbol name) {
  PICLOUD_DCHECK(name.id() >= linked_counters_.size() ||
                 linked_counters_[name.id()].read == nullptr)
      << "counter name already bound to a linked source";
  auto& slot = slot_for(counters_, name);
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

void MetricsRegistry::link_counter(Symbol name,
                                   std::uint64_t (*read)(const void*),
                                   const void* ctx) {
  PICLOUD_CHECK(read != nullptr) << "link_counter source";
  PICLOUD_DCHECK(peek(counters_, name) == nullptr)
      << "counter name already has a stored cell";
  if (linked_counters_.size() <= name.id()) {
    linked_counters_.resize(name.id() + 1);
  }
  linked_counters_[name.id()] = LinkedCounter{read, ctx};
}

Gauge& MetricsRegistry::gauge(Symbol name) {
  auto& slot = slot_for(gauges_, name);
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

LogHistogram& MetricsRegistry::histogram(Symbol name, double min_value,
                                         double growth, int max_buckets) {
  auto& slot = slot_for(histograms_, name);
  if (slot == nullptr) {
    slot = std::make_unique<LogHistogram>(min_value, growth, max_buckets);
  }
  return *slot;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const Symbol s = names_.find(name);
  if (s.valid() && s.id() < linked_counters_.size()) {
    const LinkedCounter& link = linked_counters_[s.id()];
    if (link.read != nullptr) return link.read(link.ctx);
  }
  const Counter* c = peek(counters_, s);
  return c != nullptr ? c->value() : 0;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const Gauge* g = peek(gauges_, names_.find(name));
  return g != nullptr ? g->value() : 0.0;
}

bool MetricsRegistry::has(std::string_view name) const {
  const Symbol s = names_.find(name);
  if (s.valid() && s.id() < linked_counters_.size() &&
      linked_counters_[s.id()].read != nullptr) {
    return true;
  }
  return peek(counters_, s) != nullptr || peek(gauges_, s) != nullptr ||
         peek(histograms_, s) != nullptr;
}

std::size_t MetricsRegistry::size() const {
  std::size_t n = 0;
  for (const auto& link : linked_counters_) n += link.read != nullptr;
  for (const auto& c : counters_) n += c != nullptr;
  for (const auto& g : gauges_) n += g != nullptr;
  for (const auto& h : histograms_) n += h != nullptr;
  return n;
}

namespace {

// True when `name` is inside `prefix`'s subtree; on success `out` is the
// exported key (the name with "prefix." stripped).
bool in_scope(const std::string& name, const std::string& prefix,
              std::string* out) {
  if (prefix.empty()) {
    *out = name;
    return true;
  }
  if (name == prefix) {
    *out = name;
    return true;
  }
  if (name.size() > prefix.size() + 1 &&
      name.compare(0, prefix.size(), prefix) == 0 &&
      name[prefix.size()] == '.') {
    *out = name.substr(prefix.size() + 1);
    return true;
  }
  return false;
}

}  // namespace

Json MetricsRegistry::snapshot(const std::string& prefix) const {
  // Symbol ids are first-use order; the export contract is sorted-by-name
  // (byte-identical to the historical std::map-backed layout), so build a
  // name-sorted view once and walk it per kind. Snapshot is a cold path.
  std::vector<std::pair<const std::string*, std::uint32_t>> by_name;
  by_name.reserve(names_.size());
  for (std::uint32_t id = 0; id < names_.size(); ++id) {
    by_name.emplace_back(&names_.str(names_.symbol_at(id)), id);
  }
  std::sort(by_name.begin(), by_name.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });

  Json counters = Json::object();
  Json gauges = Json::object();
  Json histograms = Json::object();
  std::string key;
  for (const auto& [name, id] : by_name) {
    const Symbol s = names_.symbol_at(id);
    if (!in_scope(*name, prefix, &key)) continue;
    if (const Counter* c = peek(counters_, s)) {
      counters.set(key, static_cast<unsigned long long>(c->value()));
    }
    if (s.id() < linked_counters_.size() &&
        linked_counters_[s.id()].read != nullptr) {
      const LinkedCounter& link = linked_counters_[s.id()];
      counters.set(key, static_cast<unsigned long long>(link.read(link.ctx)));
    }
    if (const Gauge* g = peek(gauges_, s)) gauges.set(key, g->value());
    if (const LogHistogram* h = peek(histograms_, s)) {
      histograms.set(key, h->to_json());
    }
  }
  Json j = Json::object();
  j.set("counters", std::move(counters));
  j.set("gauges", std::move(gauges));
  j.set("histograms", std::move(histograms));
  return j;
}

}  // namespace picloud::util
