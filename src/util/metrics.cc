#include "util/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace picloud::util {

LogHistogram::LogHistogram(double min_value, double growth, int max_buckets)
    : min_value_(min_value), growth_(growth) {
  PICLOUD_CHECK_GT(min_value, 0.0) << "LogHistogram min_value";
  PICLOUD_CHECK_GT(growth, 1.0) << "LogHistogram growth";
  PICLOUD_CHECK_GT(max_buckets, 0) << "LogHistogram max_buckets";
  log_growth_ = std::log(growth);
  buckets_.assign(static_cast<std::size_t>(max_buckets), 0);
}

int LogHistogram::bucket_index(double v) const {
  // v >= min_value_ here. Values beyond the top bucket clamp into it (their
  // count stays right; the quantile saturates at the bucket's span, while
  // max() remains exact).
  int idx = static_cast<int>(std::floor(std::log(v / min_value_) / log_growth_));
  return std::clamp(idx, 0, static_cast<int>(buckets_.size()) - 1);
}

void LogHistogram::observe(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (!(v >= min_value_)) {  // also catches NaN and non-positives
    ++underflow_;
    return;
  }
  ++buckets_[static_cast<std::size_t>(bucket_index(v))];
}

double LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  // Rank of the requested quantile, 1-based, over all samples (underflow
  // sorts first: everything below min_value_ is "smaller than bucket 0").
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  rank = std::max<std::uint64_t>(rank, 1);
  if (rank <= underflow_) return min_;
  std::uint64_t seen = underflow_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      double lo = min_value_ * std::pow(growth_, static_cast<double>(i));
      double mid = lo * std::sqrt(growth_);  // geometric midpoint
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

std::string LogHistogram::summary() const {
  return format("n=%llu, p50=%.6g, p99=%.6g, max=%.6g",
                static_cast<unsigned long long>(count_), percentile(50),
                percentile(99), max());
}

Json LogHistogram::to_json() const {
  Json j = Json::object();
  j.set("count", static_cast<unsigned long long>(count_));
  j.set("sum", sum_);
  j.set("min", min());
  j.set("max", max());
  j.set("mean", mean());
  j.set("p50", percentile(50));
  j.set("p90", percentile(90));
  j.set("p99", percentile(99));
  return j;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  PICLOUD_DCHECK(!name.empty()) << "metric name";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  PICLOUD_DCHECK(!name.empty()) << "metric name";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

LogHistogram& MetricsRegistry::histogram(const std::string& name,
                                         double min_value, double growth,
                                         int max_buckets) {
  PICLOUD_DCHECK(!name.empty()) << "metric name";
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<LogHistogram>(min_value, growth, max_buckets);
  }
  return *slot;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second->value() : 0;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second->value() : 0.0;
}

bool MetricsRegistry::has(const std::string& name) const {
  return counters_.count(name) > 0 || gauges_.count(name) > 0 ||
         histograms_.count(name) > 0;
}

namespace {

// True when `name` is inside `prefix`'s subtree; on success `out` is the
// exported key (the name with "prefix." stripped).
bool in_scope(const std::string& name, const std::string& prefix,
              std::string* out) {
  if (prefix.empty()) {
    *out = name;
    return true;
  }
  if (name == prefix) {
    *out = name;
    return true;
  }
  if (name.size() > prefix.size() + 1 &&
      name.compare(0, prefix.size(), prefix) == 0 &&
      name[prefix.size()] == '.') {
    *out = name.substr(prefix.size() + 1);
    return true;
  }
  return false;
}

}  // namespace

Json MetricsRegistry::snapshot(const std::string& prefix) const {
  Json counters = Json::object();
  Json gauges = Json::object();
  Json histograms = Json::object();
  std::string key;
  for (const auto& [name, c] : counters_) {
    if (in_scope(name, prefix, &key)) {
      counters.set(key, static_cast<unsigned long long>(c->value()));
    }
  }
  for (const auto& [name, g] : gauges_) {
    if (in_scope(name, prefix, &key)) gauges.set(key, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    if (in_scope(name, prefix, &key)) histograms.set(key, h->to_json());
  }
  Json j = Json::object();
  j.set("counters", std::move(counters));
  j.set("gauges", std::move(gauges));
  j.set("histograms", std::move(histograms));
  return j;
}

}  // namespace picloud::util
