// Test-only fault injection knobs — seeded bugs for the simulation-fuzzing
// harness (DESIGN.md §10).
//
// The invariant checker in src/testing/ is only trustworthy if it can be
// shown to *fail*: tests/testing_selfcheck_test.cc flips one of these knobs,
// runs a scenario, and asserts the checker reports the planted violation.
// Each knob deliberately breaks one accounting contract that production code
// otherwise maintains:
//
//   double_count_spawn_ok        cloud/pimaster.cc counts a successful spawn
//                                twice, violating spawns_ok + spawns_failed
//                                <= spawn_requests.
//   skip_link_drop_accounting    net/fabric.cc omits the per-link drop
//                                increment on a lossy-link admission drop,
//                                violating sum(link drops) == flows_lost.
//
// All knobs default to off; flipping one costs a single branch on a cold
// path, so production behaviour and determinism are unchanged when unused.
// The singleton is process-global (tests run scenarios back to back in one
// process) — call reset() in test teardown.
#pragma once

namespace picloud::util {

struct FaultInjection {
  bool double_count_spawn_ok = false;
  bool skip_link_drop_accounting = false;

  void reset() { *this = FaultInjection(); }
  bool any() const { return double_count_spawn_ok || skip_link_drop_accounting; }

  static FaultInjection& instance();
};

}  // namespace picloud::util
