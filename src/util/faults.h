// Test-only fault injection knobs — seeded bugs for the simulation-fuzzing
// harness (DESIGN.md §10).
//
// The invariant checker in src/testing/ is only trustworthy if it can be
// shown to *fail*: tests/testing_selfcheck_test.cc flips one of these knobs,
// runs a scenario, and asserts the checker reports the planted violation.
// Each knob deliberately breaks one accounting contract that production code
// otherwise maintains:
//
//   double_count_spawn_ok        cloud/pimaster.cc counts a successful spawn
//                                twice, violating spawns_ok + spawns_failed
//                                <= spawn_requests.
//   skip_link_drop_accounting    net/fabric.cc omits the per-link drop
//                                increment on a lossy-link admission drop,
//                                violating sum(link drops) == flows_lost.
//   recount_replayed_spawn       cloud/pimaster.cc re-counts a spawn success
//                                when an idempotent duplicate is answered
//                                from the completed-entry replay path. The
//                                violation is schedule-dependent: a duplicate
//                                that coalesces with the in-flight original
//                                never takes the replay path, so only
//                                interleavings that defer the duplicate past
//                                first completion trip the spawn-accounting
//                                probe — the model checker's planted bug
//                                (DESIGN.md §13.4).
//
// All knobs default to off; flipping one costs a single branch on a cold
// path, so production behaviour and determinism are unchanged when unused.
// The singleton is process-global (tests run scenarios back to back in one
// process) — prefer ScopedFaultInjection below over manual reset() calls:
// it restores the pre-existing knob state even when the test body exits
// early through an ASSERT or an exception.
#pragma once

namespace picloud::util {

struct FaultInjection {
  bool double_count_spawn_ok = false;
  bool skip_link_drop_accounting = false;
  bool recount_replayed_spawn = false;

  void reset() { *this = FaultInjection(); }
  bool any() const {
    return double_count_spawn_ok || skip_link_drop_accounting ||
           recount_replayed_spawn;
  }

  static FaultInjection& instance();
};

// RAII guard over the process-global knobs: snapshots them on construction
// and restores the snapshot on destruction, so a scenario (or the model
// checker's planted-bug pipeline, DESIGN.md §13.4) can flip knobs without
// leaking state into whatever runs next in the same process. Dereferences
// to the live singleton for ergonomic flipping:
//
//   util::ScopedFaultInjection faults;
//   faults->double_count_spawn_ok = true;
//   ...  // knob restored at scope exit, whatever state it started in
class ScopedFaultInjection {
 public:
  ScopedFaultInjection() : saved_(FaultInjection::instance()) {}
  ~ScopedFaultInjection() { FaultInjection::instance() = saved_; }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultInjection& operator*() const { return FaultInjection::instance(); }
  FaultInjection* operator->() const { return &FaultInjection::instance(); }

 private:
  FaultInjection saved_;
};

}  // namespace picloud::util
