// Small string helpers used across the code base (splitting REST paths,
// formatting dashboard tables, building container names).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace picloud::util {

// Splits `s` on `sep`, keeping empty fields ("a//b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

// Splits and drops empty fields ("/a//b/" -> {"a","b"}); the natural form
// for URL path segments.
std::vector<std::string> split_nonempty(std::string_view s, char sep);

// As split_nonempty, but returns views into `s` — no per-segment copies.
// Dispatch paths (proto::Router) use this; the caller must keep `s` alive.
std::vector<std::string_view> split_nonempty_views(std::string_view s,
                                                   char sep);

// Joins `parts` with `sep` between each pair.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// True if `s` begins with / ends with the given prefix / suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

// Lower-cases ASCII characters only.
std::string to_lower(std::string_view s);

// Parses a non-negative integer; returns false on any non-digit or overflow.
bool parse_u64(std::string_view s, unsigned long long* out);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Human-readable byte count: "30.0 MiB", "1.5 GiB".
std::string human_bytes(double bytes);

// Pads/truncates to an exact column width (for the text control panel).
std::string pad(std::string_view s, size_t width);

}  // namespace picloud::util
