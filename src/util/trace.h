// Sim-time structured tracing — the causal-event half of the telemetry
// spine (DESIGN.md §9; metrics are the aggregate half, util/metrics.h).
//
// Components record sparse control-plane events (a migration phase, a chaos
// crash, a reconciler GC) as (sim-time, component, event, key=value...)
// tuples into a fixed-capacity ring owned by the Simulation (sim.trace()).
// The ring keeps the newest events; an optional sink sees every event as it
// is recorded (live timeline feeds, test assertions) regardless of ring
// eviction.
//
// This is for causal timelines, not hot-path accounting: a 56-node run
// traces lifecycle edges (hundreds of events), never per-packet or
// per-request activity — counters and histograms cover those.
//
//   PICLOUD_TRACE(sim.trace(), "cloud.chaos", "node_crash",
//                 {"node", hostname});
//
// The macro skips all argument construction when tracing is disabled.
// Determinism: events carry only sim-derived data, so same-seed runs yield
// bit-identical to_json() output.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/intern.h"
#include "util/json.h"

namespace picloud::util {

// The materialized (all-strings) view of a recorded event — what events(),
// to_json() and sinks see. The ring itself stores interned handles
// (DESIGN.md §12.4); canonical strings are rebuilt only at this boundary.
struct TraceEvent {
  std::int64_t t_ns = 0;  // simulated time the event was recorded
  std::string component;  // dotted owner, e.g. "cloud.migration"
  std::string event;      // verb, e.g. "precopy_round"
  std::vector<std::pair<std::string, std::string>> kv;

  Json to_json() const;       // {"t_s": ..., "component": ..., "event": ..., kv...}
  std::string to_string() const;  // "[  12.500000s] cloud.chaos node_crash node=pi-r0-03"
};

class TraceBuffer {
 public:
  using Clock = std::function<std::int64_t()>;   // current sim time in ns
  using Sink = std::function<void(const TraceEvent&)>;

  explicit TraceBuffer(std::size_t capacity = 1024);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  // The owning Simulation installs its clock; unset, events stamp t=0.
  void set_clock(Clock clock) { clock_ = std::move(clock); }
  // Sees every record() before ring insertion. Pass nullptr to remove.
  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Component and event names, and kv keys, are interned on record();
  // the small fixed vocabulary of a run means steady-state recording
  // copies only kv *values* (which are genuinely dynamic).
  void record(std::string_view component, std::string_view event,
              std::vector<std::pair<std::string_view, std::string>> kv = {});

  // Retained events, oldest first.
  std::vector<TraceEvent> events() const;
  Json to_json() const;  // {"events": [...], "recorded": n, "dropped": n}

  std::uint64_t recorded() const { return recorded_; }
  // Events evicted from the ring (still seen by the sink, if any).
  std::uint64_t dropped() const { return dropped_; }
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  // Ring-resident form: handles for the static vocabulary, strings only
  // for dynamic kv values.
  struct Record {
    std::int64_t t_ns = 0;
    Symbol component;
    Symbol event;
    std::vector<std::pair<Symbol, std::string>> kv;
  };

  TraceEvent materialize(const Record& r) const;

  std::size_t capacity_;
  bool enabled_ = true;
  Clock clock_;
  Sink sink_;
  StringTable names_;          // component / event / kv-key vocabulary
  std::vector<Record> ring_;   // grows to capacity_, then wraps
  std::size_t next_ = 0;       // insertion point once full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

// Records a trace event iff the buffer is enabled; key/value pairs are
// brace-lists of two strings: PICLOUD_TRACE(tb, "net.fabric", "link_down",
// {"link", std::to_string(id)}). Arguments are not evaluated when disabled.
#define PICLOUD_TRACE(buf_, component_, event_, ...)              \
  do {                                                            \
    ::picloud::util::TraceBuffer& tb_ = (buf_);                   \
    if (tb_.enabled()) tb_.record((component_), (event_), {__VA_ARGS__}); \
  } while (0)

}  // namespace picloud::util
