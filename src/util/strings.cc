#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace picloud::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_nonempty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& part : split(s, sep)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::vector<std::string_view> split_nonempty_views(std::string_view s,
                                                   char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool parse_u64(std::string_view s, unsigned long long* out) {
  if (s.empty()) return false;
  unsigned long long v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    unsigned long long digit = static_cast<unsigned long long>(c - '0');
    if (v > (~0ULL - digit) / 10) return false;  // overflow
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string human_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return format("%.1f %s", bytes, kUnits[unit]);
}

std::string pad(std::string_view s, size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

}  // namespace picloud::util
