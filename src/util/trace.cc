#include "util/trace.h"

#include "util/strings.h"

namespace picloud::util {

Json TraceEvent::to_json() const {
  Json j = Json::object();
  j.set("t_s", static_cast<double>(t_ns) / 1e9);
  j.set("component", component);
  j.set("event", event);
  if (!kv.empty()) {
    Json fields = Json::object();
    for (const auto& [k, v] : kv) fields.set(k, v);
    j.set("fields", std::move(fields));
  }
  return j;
}

std::string TraceEvent::to_string() const {
  std::string out = format("[%12.6fs] %s %s", static_cast<double>(t_ns) / 1e9,
                           component.c_str(), event.c_str());
  for (const auto& [k, v] : kv) out += " " + k + "=" + v;
  return out;
}

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void TraceBuffer::record(std::string_view component, std::string_view event,
                         std::vector<std::pair<std::string_view, std::string>> kv) {
  if (!enabled_) return;
  Record rec;
  rec.t_ns = clock_ ? clock_() : 0;
  rec.component = names_.intern(component);
  rec.event = names_.intern(event);
  rec.kv.reserve(kv.size());
  for (auto& [k, v] : kv) rec.kv.emplace_back(names_.intern(k), std::move(v));
  ++recorded_;
  // Sinks (and events()) see the materialized all-strings view; only the
  // ring stores handles.
  if (sink_) sink_(materialize(rec));
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[next_] = std::move(rec);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  }
}

std::size_t TraceBuffer::size() const { return ring_.size(); }

TraceEvent TraceBuffer::materialize(const Record& r) const {
  TraceEvent ev;
  ev.t_ns = r.t_ns;
  ev.component = names_.str(r.component);
  ev.event = names_.str(r.event);
  ev.kv.reserve(r.kv.size());
  for (const auto& [k, v] : r.kv) ev.kv.emplace_back(names_.str(k), v);
  return ev;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(materialize(ring_[(next_ + i) % ring_.size()]));
  }
  return out;
}

Json TraceBuffer::to_json() const {
  Json list = Json::array();
  for (const TraceEvent& ev : events()) list.push_back(ev.to_json());
  Json j = Json::object();
  j.set("events", std::move(list));
  j.set("recorded", static_cast<unsigned long long>(recorded_));
  j.set("dropped", static_cast<unsigned long long>(dropped_));
  return j;
}

void TraceBuffer::clear() {
  ring_.clear();
  next_ = 0;
}

}  // namespace picloud::util
