#include "util/trace.h"

#include "util/strings.h"

namespace picloud::util {

Json TraceEvent::to_json() const {
  Json j = Json::object();
  j.set("t_s", static_cast<double>(t_ns) / 1e9);
  j.set("component", component);
  j.set("event", event);
  if (!kv.empty()) {
    Json fields = Json::object();
    for (const auto& [k, v] : kv) fields.set(k, v);
    j.set("fields", std::move(fields));
  }
  return j;
}

std::string TraceEvent::to_string() const {
  std::string out = format("[%12.6fs] %s %s", static_cast<double>(t_ns) / 1e9,
                           component.c_str(), event.c_str());
  for (const auto& [k, v] : kv) out += " " + k + "=" + v;
  return out;
}

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void TraceBuffer::record(std::string component, std::string event,
                         std::vector<std::pair<std::string, std::string>> kv) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.t_ns = clock_ ? clock_() : 0;
  ev.component = std::move(component);
  ev.event = std::move(event);
  ev.kv = std::move(kv);
  ++recorded_;
  if (sink_) sink_(ev);
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[next_] = std::move(ev);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  }
}

std::size_t TraceBuffer::size() const { return ring_.size(); }

std::vector<TraceEvent> TraceBuffer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

Json TraceBuffer::to_json() const {
  Json list = Json::array();
  for (const TraceEvent& ev : events()) list.push_back(ev.to_json());
  Json j = Json::object();
  j.set("events", std::move(list));
  j.set("recorded", static_cast<unsigned long long>(recorded_));
  j.set("dropped", static_cast<unsigned long long>(dropped_));
  return j;
}

void TraceBuffer::clear() {
  ring_.clear();
  next_ = 0;
}

}  // namespace picloud::util
