// Result<T> — lightweight expected-style error propagation for expected
// (non-programming-error) failures across module boundaries.
//
// The PiCloud management plane deals in fallible operations constantly
// (REST calls that 404, placements that do not fit, migrations that abort),
// so the codebase follows the Core Guidelines advice of reserving exceptions
// for programming errors and uses Result<T> for anticipated failure.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace picloud::util {

// An error with a short machine-readable code and a human-readable message.
struct Error {
  std::string code;     // e.g. "not_found", "no_capacity", "timeout"
  std::string message;  // free-form detail for logs / HTTP bodies

  static Error make(std::string code, std::string message) {
    return Error{std::move(code), std::move(message)};
  }
};

// Result<T>: either a value or an Error. Modeled after std::expected
// (which is C++23; we target C++20).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    PICLOUD_CHECK(ok()) << "Result::value on error Result";
    return std::get<T>(data_);
  }
  T& value() & {
    PICLOUD_CHECK(ok()) << "Result::value on error Result";
    return std::get<T>(data_);
  }
  T&& value() && {
    PICLOUD_CHECK(ok()) << "Result::value on error Result";
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    PICLOUD_CHECK(!ok()) << "Result::error on ok Result";
    return std::get<Error>(data_);
  }

  // Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status success() { return Status{}; }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    PICLOUD_CHECK(!ok()) << "Status::error on ok Status";
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace picloud::util
