// Leveled logging with a pluggable sink.
//
// The simulation kernel installs a sink that prefixes messages with the
// simulated clock, so logs read like the syslog of a real PiCloud run.
// Default level is kWarn so tests and benches stay quiet; examples raise it.
#pragma once

#include <functional>
#include <string>

#include "util/strings.h"

namespace picloud::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* log_level_name(LogLevel level);

// Global logging configuration. Not thread-safe by design: the simulator is
// single-threaded (deterministic DES), per DESIGN.md §6.
class Logging {
 public:
  using Sink = std::function<void(LogLevel, const std::string& component,
                                  const std::string& message)>;

  static LogLevel level();
  static void set_level(LogLevel level);
  // Replaces the sink (default writes to stderr). Pass nullptr to restore.
  static void set_sink(Sink sink);

  static void log(LogLevel level, const std::string& component,
                  const std::string& message);
};

#define PICLOUD_LOG(lvl_, comp_, ...)                                   \
  do {                                                                  \
    if (static_cast<int>(lvl_) >=                                       \
        static_cast<int>(::picloud::util::Logging::level())) {          \
      ::picloud::util::Logging::log(lvl_, comp_,                        \
                                    ::picloud::util::format(__VA_ARGS__)); \
    }                                                                   \
  } while (0)

#define LOG_DEBUG(component, ...) \
  PICLOUD_LOG(::picloud::util::LogLevel::kDebug, component, __VA_ARGS__)
#define LOG_INFO(component, ...) \
  PICLOUD_LOG(::picloud::util::LogLevel::kInfo, component, __VA_ARGS__)
#define LOG_WARN(component, ...) \
  PICLOUD_LOG(::picloud::util::LogLevel::kWarn, component, __VA_ARGS__)
#define LOG_ERROR(component, ...) \
  PICLOUD_LOG(::picloud::util::LogLevel::kError, component, __VA_ARGS__)

}  // namespace picloud::util
