// Minimal JSON value, parser and serializer.
//
// The PiCloud management plane speaks JSON over its RESTful API (paper
// §II-C: "a bespoke administration API supported by daemons on the pimaster
// and on individual Pi devices"), so the repo carries its own dependency-free
// implementation. Supports the full JSON data model except that numbers are
// stored as double (adequate for management payloads: counters, loads,
// sizes up to 2^53).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace picloud::util {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps keys ordered -> deterministic serialization, which the
// tests rely on.
using JsonObject = std::map<std::string, Json>;

// A JSON value: null, bool, number, string, array or object.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}                 // NOLINT
  Json(bool b) : type_(Type::kBool), bool_(b) {}               // NOLINT
  Json(double d) : type_(Type::kNumber), num_(d) {}            // NOLINT
  Json(int i) : type_(Type::kNumber), num_(i) {}               // NOLINT
  Json(unsigned u) : type_(Type::kNumber), num_(u) {}          // NOLINT
  Json(long long i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}  // NOLINT
  Json(unsigned long long u) : type_(Type::kNumber), num_(static_cast<double>(u)) {}  // NOLINT
  Json(long i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}       // NOLINT
  Json(unsigned long u) : type_(Type::kNumber), num_(static_cast<double>(u)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}       // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(std::string_view s) : type_(Type::kString), str_(s) {}  // NOLINT
  Json(JsonArray a);                                           // NOLINT
  Json(JsonObject o);                                          // NOLINT

  Json(const Json&);
  Json(Json&&) noexcept;
  Json& operator=(const Json&);
  Json& operator=(Json&&) noexcept;
  ~Json();

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors. Calling the wrong accessor is a programming error
  // (asserts in debug; returns a zero value in release).
  bool as_bool() const { return is_bool() ? bool_ : false; }
  double as_number() const { return is_number() ? num_ : 0.0; }
  std::int64_t as_int() const { return static_cast<std::int64_t>(as_number()); }
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& mutable_array();
  JsonObject& mutable_object();

  // Object helpers. get() returns null Json for missing keys.
  bool has(const std::string& key) const;
  const Json& get(const std::string& key) const;
  // get_or with a typed default.
  double get_number(const std::string& key, double fallback = 0.0) const;
  std::string get_string(const std::string& key, std::string fallback = "") const;
  bool get_bool(const std::string& key, bool fallback = false) const;
  // Sets key -> value on an object (converts a null value to object first).
  Json& set(const std::string& key, Json value);
  // Appends to an array (converts a null value to array first).
  Json& push_back(Json value);

  size_t size() const;
  const Json& operator[](size_t i) const;  // array index

  // Serialization. dump() is compact; pretty() indents with two spaces.
  std::string dump() const;
  std::string pretty() const;

  // Parsing. Accepts strict JSON; returns parse errors with position info.
  static Result<Json> parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // unique_ptr keeps Json small and breaks the recursive type.
  std::unique_ptr<JsonArray> arr_;
  std::unique_ptr<JsonObject> obj_;
};

}  // namespace picloud::util
