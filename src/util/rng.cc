#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace picloud::util {

namespace {

std::uint64_t splitmix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(&sm);
}

Rng Rng::fork() {
  return Rng(next_u64());
}

std::uint64_t Rng::next_u64() {
  // xoshiro256**
  std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PICLOUD_CHECK_LE(lo, hi) << "uniform_int bounds";
  std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  std::uint64_t limit = ~0ULL - (~0ULL % range + 1) % range;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v > limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  PICLOUD_CHECK_GT(mean, 0) << "exponential mean";
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::pareto(double alpha, double xm) {
  PICLOUD_CHECK(alpha > 0 && xm > 0)
      << "pareto shape/minimum: alpha=" << alpha << " xm=" << xm;
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  double u2 = next_double();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

bool Rng::chance(double p) {
  return next_double() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  PICLOUD_CHECK(!weights.empty()) << "weighted_index over empty vector";
  double total = 0;
  for (double w : weights) {
    PICLOUD_CHECK_GE(w, 0) << "weighted_index weight";
    total += w;
  }
  PICLOUD_CHECK_GT(total, 0) << "weighted_index weights all zero";
  double x = uniform(0, total);
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace picloud::util
