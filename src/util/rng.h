// Deterministic random number generation.
//
// Every stochastic element in the simulation (workload arrivals, request
// sizes, traffic pattern choices, failure injection) draws from an explicit
// Rng stream seeded from the experiment configuration, so a run is
// bit-reproducible. Uses xoshiro256** (public-domain algorithm by Blackman
// and Vigna) with splitmix64 seeding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace picloud::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Creates an independent child stream; parent and child sequences do not
  // overlap in practice (distinct splitmix64-derived states).
  Rng fork();

  // Uniform 64-bit value.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double next_double();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Exponential with the given mean (> 0).
  double exponential(double mean);

  // Pareto with shape alpha (> 0) and minimum xm (> 0): heavy-tailed flow
  // sizes, matching measured DC traffic distributions.
  double pareto(double alpha, double xm);

  // Normal via Box-Muller.
  double normal(double mean, double stddev);

  // Bernoulli trial.
  bool chance(double p);

  // Picks an index in [0, weights.size()) proportionally to weights.
  // Requires a non-empty vector with non-negative entries, not all zero.
  std::size_t weighted_index(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace picloud::util
