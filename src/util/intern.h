// String interning — Symbol handles over a StringTable (DESIGN.md §12.4).
//
// Hot paths in the simulator key telemetry and dispatch on names: metric
// series ("sim.events_executed"), trace components ("cloud.migration"),
// REST routes ("/api/v1/nodes"). Comparing, hashing and copying
// std::string keys on every event is pure overhead — the set of distinct
// names in a run is tiny (hundreds) and fixed after warm-up. A StringTable
// assigns each distinct string a dense 32-bit Symbol on first sight;
// thereafter the hot path carries the handle and touches no characters.
// Canonical strings are rematerialized only at snapshot/JSON boundaries.
//
// Determinism: Symbol ids are assigned in first-intern order, which is a
// pure function of the (deterministic) event order; the unordered index is
// only ever probed, never iterated, so hash layout cannot leak into run
// digests. Sorted output (e.g. MetricsRegistry::snapshot) must sort by the
// canonical string, not by id.
//
// Tables are owned per-Simulation (inside MetricsRegistry / TraceBuffer /
// RouteTable), not global: no locks, no cross-run id bleed.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/check.h"

namespace picloud::util {

// A dense handle for an interned string. Trivially copyable, 4 bytes;
// equality is an integer compare. Only meaningful with the StringTable
// that issued it. Default-constructed Symbols are invalid.
class Symbol {
 public:
  constexpr Symbol() = default;

  constexpr bool valid() const { return id_ != kInvalidId; }
  // Dense index in [0, table.size()) — usable as a vector slot.
  constexpr std::uint32_t id() const { return id_; }

  friend constexpr bool operator==(Symbol a, Symbol b) {
    return a.id_ == b.id_;
  }
  friend constexpr bool operator!=(Symbol a, Symbol b) {
    return a.id_ != b.id_;
  }

 private:
  friend class StringTable;
  explicit constexpr Symbol(std::uint32_t id) : id_(id) {}

  static constexpr std::uint32_t kInvalidId = 0xffffffffu;
  std::uint32_t id_ = kInvalidId;
};

// Append-only intern pool. intern() is allocation-free on a hit; str() is
// an O(1) indexed load. Not thread-safe (the simulator is single-threaded).
class StringTable {
 public:
  StringTable() = default;
  StringTable(const StringTable&) = delete;
  StringTable& operator=(const StringTable&) = delete;

  // Returns the Symbol for `s`, interning it on first sight.
  Symbol intern(std::string_view s) {
    auto it = index_.find(s);
    if (it != index_.end()) return Symbol(it->second);
    const auto id = static_cast<std::uint32_t>(strings_.size());
    PICLOUD_CHECK_LT(strings_.size(), Symbol::kInvalidId) << "intern pool";
    // deque never relocates elements, so both the returned references and
    // the string_view keys below stay valid for the table's lifetime.
    const std::string& stored = strings_.emplace_back(s);
    index_.emplace(std::string_view(stored), id);
    return Symbol(id);
  }

  // Lookup without interning; invalid Symbol if `s` was never seen.
  Symbol find(std::string_view s) const {
    auto it = index_.find(s);
    return it != index_.end() ? Symbol(it->second) : Symbol();
  }

  // Canonical string for a handle issued by this table.
  const std::string& str(Symbol s) const {
    PICLOUD_DCHECK(s.valid()) << "str() on invalid Symbol";
    PICLOUD_DCHECK_LT(s.id(), strings_.size()) << "foreign Symbol";
    return strings_[s.id()];
  }

  // Handle for an already-assigned id in [0, size()) — lets the owning
  // container walk its dense pool without re-hashing names.
  Symbol symbol_at(std::uint32_t id) const {
    PICLOUD_DCHECK_LT(id, strings_.size()) << "symbol_at";
    return Symbol(id);
  }

  // Number of distinct strings interned so far; ids are [0, size()).
  std::size_t size() const { return strings_.size(); }

 private:
  std::deque<std::string> strings_;  // stable element addresses
  // Probed only (find/emplace); never iterated, so its nondeterministic
  // layout cannot reach run digests. picloud-lint: allow(unordered-container)
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace picloud::util
