#include "util/faults.h"

namespace picloud::util {

FaultInjection& FaultInjection::instance() {
  static FaultInjection faults;
  return faults;
}

}  // namespace picloud::util
