// MetricsRegistry — the unified telemetry spine (DESIGN.md §9).
//
// The paper's management plane exists to answer "what is the cloud doing
// right now" (the Fig. 4 panel, per-Pi CPU/memory monitoring of §II-C, the
// power accounting of Table I). Every layer of this model reports through
// one registry instead of ad-hoc per-module structs:
//
//   * Counter    — monotonically increasing u64 (events, retries, drops);
//   * Gauge      — last-write-wins double (utilisation, watts, queue depth);
//   * LogHistogram — fixed-memory log-bucket distribution (latencies, sizes).
//
// Names are hierarchical dotted paths, lowercase, with the owning layer as
// the first segment: `net.fabric.pkts_dropped`, `cloud.reconciler.orphans_gc`,
// `proto.rest.retries`, `node.<hostname>.cpu_utilization`. Per-node metrics
// live under `node.<hostname>.` so a daemon can serve its own scope.
//
// The registry is owned by the sim::Simulation context (sim.metrics());
// handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime, so components grab them once at construction and
// increment on the hot path without a map lookup. Everything is
// deterministic: same-seed runs produce bit-identical snapshot() JSON
// (asserted by tests/determinism_test.cc).
//
// Internally names are interned (util/intern.h): each kind's instances
// live in a dense vector indexed by Symbol id, so a handle-keyed lookup is
// one indexed load and a repeated string-keyed lookup is one hash probe —
// no std::map node chase, no string compares. Canonical strings appear
// only at the snapshot() boundary, where keys are sorted by name to keep
// the JSON byte-identical to the historical std::map layout.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/intern.h"
#include "util/json.h"

namespace picloud::util {

// Monotonic event count. inc() is a single add — safe on hot paths.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Fixed-memory distribution: geometric buckets over (min_value, +inf).
//
// Bucket i spans [min_value * growth^i, min_value * growth^(i+1)); a
// percentile query answers the geometric midpoint of its bucket, so the
// relative error of any quantile is bounded by (growth - 1) — ≤ 8% with the
// defaults — while memory stays O(max_buckets) no matter how many samples
// stream in. min(), max(), mean() and sum() are exact (tracked separately).
//
// Use this on hot paths (per-request latencies over hours of simulated
// time); util::Histogram keeps exact percentiles for benches whose tables
// need them and whose sample counts are bounded.
class LogHistogram {
 public:
  explicit LogHistogram(double min_value = 1e-6, double growth = 1.08,
                        int max_buckets = 512);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  // p in [0, 100]. Relative error ≤ (growth - 1); extremes are exact.
  double percentile(double p) const;
  double median() const { return percentile(50); }
  double p99() const { return percentile(99); }

  std::string summary() const;  // "n=…, p50=…, p99=…, max=…"
  Json to_json() const;         // {count, sum, min, max, mean, p50, p90, p99}

 private:
  int bucket_index(double v) const;

  double min_value_;
  double log_growth_;   // precomputed ln(growth)
  double growth_;
  std::vector<std::uint64_t> buckets_;  // fixed size, allocated at ctor
  std::uint64_t underflow_ = 0;         // samples <= 0 or below min_value
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// The registry: hierarchical names -> metric instances. Handles are stable
// pointers for the registry's lifetime (values are heap-allocated);
// requesting an existing name returns the same instance, so independent
// components contributing to one logical series (e.g. every node's CPU
// scheduler under `os.sched.*`) aggregate naturally.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Interns `name`, returning a handle usable with the Symbol overloads
  // below. Components that emit under a fixed name should resolve it once
  // (construction time) and keep the Counter*/Gauge* instead.
  Symbol name_symbol(std::string_view name) {
    PICLOUD_DCHECK(!name.empty()) << "metric name";
    return names_.intern(name);
  }
  const std::string& name_of(Symbol s) const { return names_.str(s); }

  Counter& counter(Symbol name);
  Gauge& gauge(Symbol name);
  LogHistogram& histogram(Symbol name, double min_value = 1e-6,
                          double growth = 1.08, int max_buckets = 512);

  // Linked counter: `name` exports `read(ctx)` — evaluated at snapshot /
  // read time — instead of a stored cell. For monotonic values a hot loop
  // already maintains (e.g. the event loop's executed-event count), this
  // keeps the loop free of a per-event registry increment while snapshots
  // still see the exact value at any event boundary. `ctx` must outlive the
  // registry. A name is either linked or stored, never both.
  void link_counter(Symbol name, std::uint64_t (*read)(const void*),
                    const void* ctx);

  // String-keyed conveniences (construction-time call sites).
  Counter& counter(const std::string& name) {
    return counter(name_symbol(name));
  }
  Gauge& gauge(const std::string& name) { return gauge(name_symbol(name)); }
  LogHistogram& histogram(const std::string& name, double min_value = 1e-6,
                          double growth = 1.08, int max_buckets = 512) {
    return histogram(name_symbol(name), min_value, growth, max_buckets);
  }

  // Read-side helpers (tests, endpoints). Missing names read as zero and
  // do not intern.
  std::uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;
  bool has(std::string_view name) const;
  std::size_t size() const;

  // Canonical JSON export:
  //   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  // With a non-empty `prefix`, only metrics named `prefix` or `prefix.*`
  // are exported and the `prefix.` is stripped from the keys — the shape a
  // node daemon serves for its own `node.<hostname>.` scope. Keys iterate
  // in sorted order, so serialization is deterministic.
  Json snapshot(const std::string& prefix = "") const;

 private:
  // Dense per-kind storage indexed by Symbol id; a slot is null until that
  // (name, kind) pair is first requested. The three kinds share one symbol
  // space, so each vector has gaps — cheap (8 bytes/gap) next to the O(1)
  // hot-path lookup it buys. snapshot() sorts by canonical name to keep
  // output deterministic (ids are first-use order, not lexicographic).
  StringTable names_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<LogHistogram>> histograms_;
  // Sparse, indexed by Symbol id like the stores above (read == nullptr
  // means "not linked"); exported alongside counters_ on every read path.
  struct LinkedCounter {
    std::uint64_t (*read)(const void*) = nullptr;
    const void* ctx = nullptr;
  };
  std::vector<LinkedCounter> linked_counters_;
};

}  // namespace picloud::util
