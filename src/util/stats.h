// Statistics collection: running summaries, percentile histograms and
// time-weighted averages. Used by the monitoring layer (per-node CPU / memory
// / network gauges), by benches (latency distributions) and by the power
// model (energy integration).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace picloud::util {

// Count / mean / min / max / stddev over a stream of samples, O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  std::string summary() const;  // "n=…, mean=…, min=…, max=…, sd=…"

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford accumulator
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exact-percentile histogram: stores samples, sorts lazily. Fine for the
// sample counts benches produce (<= millions).
class Histogram {
 public:
  void add(double x);
  size_t count() const { return samples_.size(); }
  double percentile(double p) const;  // p in [0, 100]
  double median() const { return percentile(50); }
  double p99() const { return percentile(99); }
  double mean() const;
  double min() const { return percentile(0); }
  double max() const { return percentile(100); }

  std::string summary() const;  // "n=…, p50=…, p95=…, p99=…, max=…"

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Integral of a piecewise-constant signal over time: used for average
// utilisation and energy (power integrated over simulated time).
class TimeWeighted {
 public:
  // Records that the signal changed to `value` at time `t_seconds`.
  // Times must be non-decreasing.
  void set(double t_seconds, double value);

  // Integral of the signal from the first set() up to `t_seconds`.
  double integral(double t_seconds) const;

  // Time-average of the signal over [first set, t_seconds].
  double average(double t_seconds) const;

  double current() const { return value_; }

 private:
  bool started_ = false;
  double start_t_ = 0.0;
  double last_t_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
};

}  // namespace picloud::util
