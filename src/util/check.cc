#include "util/check.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace picloud::util::internal {

CheckFailure::CheckFailure(const char* file, int line, const char* condition)
    : file_(file),
      line_(line),
      condition_(condition),
      stream_(new std::ostringstream) {}

CheckFailure::~CheckFailure() {
  std::string context = stream_->str();
  // Crash path: must not depend on the (possibly broken) log spine.
  // picloud-lint: allow(metrics-registry)
  std::fprintf(stderr, "%s:%d: CHECK failed: %s%s%s\n", file_, line_,
               condition_, context.empty() ? "" : " — ", context.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace picloud::util::internal
