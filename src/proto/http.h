// HTTP-style request/response types and a path router.
//
// The paper's management plane is RESTful (§II-C: "controls workloads
// running on the Pi devices using RESTful interfaces"), so the model carries
// real method/path/status semantics. Requests serialize to a compact JSON
// envelope on the wire (the fabric charges the serialized size).
//
// Router supports literal segments and ":param" captures:
//   router.handle(Method::kPost, "/containers/:name/freeze", handler);
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/intern.h"
#include "util/json.h"
#include "util/result.h"

namespace picloud::proto {

enum class Method { kGet, kPost, kPut, kDelete };

const char* method_name(Method m);
std::optional<Method> parse_method(const std::string& name);

struct HttpRequest {
  Method method = Method::kGet;
  std::string path;        // "/nodes/pi-r0-03/containers"
  util::Json body;         // JSON payload (null for body-less requests)
  std::uint64_t id = 0;    // correlation id, set by the client

  std::string serialize() const;
  static util::Result<HttpRequest> parse(const std::string& wire);
};

struct HttpResponse {
  int status = 200;
  util::Json body;
  std::uint64_t id = 0;  // echoes the request id

  bool ok() const { return status >= 200 && status < 300; }
  std::string serialize() const;
  static util::Result<HttpResponse> parse(const std::string& wire);

  static HttpResponse make(int status, util::Json body = util::Json());
  // Convenience bodies: {"error": code, "message": ...}.
  static HttpResponse not_found(const std::string& message = "not found");
  static HttpResponse bad_request(const std::string& message);
  static HttpResponse conflict(const std::string& message);
  static HttpResponse service_unavailable(const std::string& message);
  static HttpResponse from_error(const util::Error& error);
};

// Captured ":param" values, by name.
using PathParams = std::map<std::string, std::string>;
using RouteHandler =
    std::function<HttpResponse(const HttpRequest&, const PathParams&)>;
// Async handlers receive a responder they must invoke exactly once —
// possibly after further network round trips (pimaster proxying a spawn to
// a node daemon).
using Responder = std::function<void(HttpResponse)>;
using AsyncRouteHandler =
    std::function<void(const HttpRequest&, const PathParams&, Responder)>;

// Routes are compiled at registration into a table keyed by segment count,
// with literal segments interned (util/intern.h): dispatch splits the
// request path into string_views, resolves each segment to a Symbol with
// one hash probe, and matches candidates by integer compares — no
// per-request segment strings, no string compares in the scan. PathParams
// are materialized only for the winning route. Observable semantics are
// unchanged: later registrations win on exact duplicates, an unmatched
// path is 404, a matched path with the wrong method is 405.
class Router {
 public:
  // Registers a route; ":name" segments capture. Later registrations win on
  // exact duplicates.
  void handle(Method method, const std::string& pattern, RouteHandler handler);
  void handle_async(Method method, const std::string& pattern,
                    AsyncRouteHandler handler);
  // Dispatches; 404 when nothing matches. The responder may fire later.
  void dispatch_async(const HttpRequest& request, Responder respond) const;
  // Synchronous convenience for purely-sync routers (unit tests, local
  // panels): returns 504 if the matched handler did not respond inline.
  HttpResponse dispatch(const HttpRequest& request) const;
  size_t route_count() const { return routes_.size(); }
  // All registered "METHOD pattern" strings (control panel's API index).
  std::vector<std::string> describe() const;

 private:
  // One pre-compiled pattern segment: a valid `literal` matches exactly
  // that interned string; an invalid one is a ":param" capture.
  struct Seg {
    util::Symbol literal;
    std::string param;  // capture name, empty for literals
  };
  struct Route {
    Method method;
    std::vector<Seg> segs;
    std::string pattern;  // original, for describe()
    AsyncRouteHandler handler;
  };

  std::vector<Route> routes_;
  // Literal-segment vocabulary shared by all routes. Request segments that
  // find() nothing here can only match ":param" captures.
  util::StringTable seg_names_;
  // Route indices (registration order) bucketed by segment count — only
  // same-length candidates are ever scanned.
  std::vector<std::vector<std::uint32_t>> by_count_;
};

}  // namespace picloud::proto
