// DNS — the pimaster's naming service.
//
// Hostnames ("pi-r2-07", "web-frontend-1.containers.picloud") resolve to the
// DHCP-assigned addresses. The server answers queries over the fabric on
// port 53; DnsResolver adds client-side caching with TTL so repeated
// resolution does not hammer the management network.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/addr.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "util/result.h"

namespace picloud::proto {

inline constexpr std::uint16_t kDnsPort = 53;

class DnsServer {
 public:
  DnsServer(net::Network& network, net::Ipv4Addr server_ip,
            sim::Duration record_ttl = sim::Duration::seconds(60));
  ~DnsServer();

  void start();
  void stop();

  // Zone management (naming policy lives here).
  void add_record(const std::string& name, net::Ipv4Addr ip);
  void remove_record(const std::string& name);
  // Local (non-network) lookup, used by services co-located on pimaster.
  std::optional<net::Ipv4Addr> lookup(const std::string& name) const;
  // Reverse lookup.
  std::optional<std::string> reverse(net::Ipv4Addr ip) const;

  size_t record_count() const { return records_.size(); }
  std::uint64_t queries_served() const { return queries_; }
  sim::Duration ttl() const { return ttl_; }
  std::vector<std::string> names() const;

 private:
  void on_message(const net::Message& msg);

  net::Network& network_;
  net::Ipv4Addr ip_;
  sim::Duration ttl_;
  bool serving_ = false;
  std::map<std::string, net::Ipv4Addr> records_;
  std::uint64_t queries_ = 0;
};

// Caching stub resolver for one client identity.
class DnsResolver {
 public:
  DnsResolver(net::Network& network, net::Ipv4Addr self,
              net::Ipv4Addr server, std::uint16_t client_port = 5353);
  ~DnsResolver();

  using ResolveCallback = std::function<void(util::Result<net::Ipv4Addr>)>;

  // Resolves `name`; served from cache when fresh, otherwise queries the
  // server (with a timeout -> "timeout" error; NXDOMAIN -> "not_found").
  void resolve(const std::string& name, ResolveCallback cb,
               sim::Duration timeout = sim::Duration::seconds(3));

  size_t cache_size() const { return cache_.size(); }
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t queries_sent() const { return queries_sent_; }

 private:
  struct CacheEntry {
    net::Ipv4Addr ip;
    sim::SimTime expires;
  };
  struct Pending {
    std::string name;
    ResolveCallback cb;
    sim::EventId timeout_event = 0;
  };

  void on_message(const net::Message& msg);
  void finish(std::uint64_t id, util::Result<net::Ipv4Addr> result);

  net::Network& network_;
  sim::Simulation& sim_;
  net::Ipv4Addr self_;
  net::Ipv4Addr server_;
  std::uint16_t port_;
  std::map<std::string, CacheEntry> cache_;
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_id_ = 1;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t queries_sent_ = 0;
};

}  // namespace picloud::proto
