// RESTful transport: HTTP requests/responses carried as messages over the
// simulated network, with correlation ids and client-side timeouts.
//
// Paper §II-C: "There is an API daemon on each Pi providing a RESTful
// management interface for facilitating virtual host management and
// interacting with a head node (the pimaster)." RestServer is that daemon's
// transport; RestClient is what pimaster and the web panel use to reach it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/addr.h"
#include "net/network.h"
#include "proto/http.h"
#include "sim/simulation.h"
#include "util/result.h"

namespace picloud::proto {

// Serves a Router on (ip, port). The router is borrowed; callers keep it
// alive and may keep registering routes while serving.
class RestServer {
 public:
  RestServer(net::Network& network, net::Ipv4Addr ip, std::uint16_t port,
             Router* router);
  ~RestServer();

  RestServer(const RestServer&) = delete;
  RestServer& operator=(const RestServer&) = delete;

  void start();
  void stop();
  bool serving() const { return serving_; }

  net::Ipv4Addr ip() const { return ip_; }
  std::uint16_t port() const { return port_; }

  std::uint64_t requests_served() const { return requests_served_; }

 private:
  void on_message(const net::Message& msg);

  net::Network& network_;
  net::Ipv4Addr ip_;
  std::uint16_t port_;
  Router* router_;
  bool serving_ = false;
  std::uint64_t requests_served_ = 0;
};

// Asynchronous REST client. One instance per caller identity (an IP); all
// in-flight calls share one ephemeral port and demultiplex on the
// correlation id.
class RestClient {
 public:
  static constexpr sim::Duration kDefaultTimeout = sim::Duration::seconds(5);

  RestClient(net::Network& network, net::Ipv4Addr self,
             std::uint16_t ephemeral_port = 49152);
  ~RestClient();

  RestClient(const RestClient&) = delete;
  RestClient& operator=(const RestClient&) = delete;

  using ResponseCallback = std::function<void(util::Result<HttpResponse>)>;

  // Issues a request; the callback fires exactly once with the response or
  // a "timeout" error.
  void call(net::Ipv4Addr server, std::uint16_t port, Method method,
            const std::string& path, util::Json body, ResponseCallback cb,
            sim::Duration timeout = kDefaultTimeout);

  // Shorthands.
  void get(net::Ipv4Addr server, std::uint16_t port, const std::string& path,
           ResponseCallback cb) {
    call(server, port, Method::kGet, path, util::Json(), std::move(cb));
  }
  void post(net::Ipv4Addr server, std::uint16_t port, const std::string& path,
            util::Json body, ResponseCallback cb) {
    call(server, port, Method::kPost, path, std::move(body), std::move(cb));
  }

  size_t inflight() const { return pending_.size(); }
  std::uint64_t calls_made() const { return calls_made_; }
  std::uint64_t timeouts() const { return timeouts_; }

 private:
  struct Pending {
    ResponseCallback cb;
    sim::EventId timeout_event = 0;
  };

  void on_message(const net::Message& msg);
  void finish(std::uint64_t id, util::Result<HttpResponse> result);

  net::Network& network_;
  sim::Simulation& sim_;
  net::Ipv4Addr self_;
  std::uint16_t port_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t calls_made_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace picloud::proto
