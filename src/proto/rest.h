// RESTful transport: HTTP requests/responses carried as messages over the
// simulated network, with correlation ids, client-side timeouts, and
// retrying calls under an explicit RetryPolicy.
//
// Paper §II-C: "There is an API daemon on each Pi providing a RESTful
// management interface for facilitating virtual host management and
// interacting with a head node (the pimaster)." RestServer is that daemon's
// transport; RestClient is what pimaster and the web panel use to reach it.
//
// The datagram network drops requests and responses alike (link cuts, lossy
// links, crashed peers), so control-plane callers describe their reliability
// needs with a RetryPolicy: capped exponential backoff between attempts,
// deterministic jitter drawn from a util::Rng forked off the simulation's
// root stream, a per-attempt timeout, and an optional overall deadline.
// Retried mutations stay at-most-once via IdempotencyCache on the server
// side: a key that already executed replays the recorded response instead of
// re-running the handler.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/addr.h"
#include "net/network.h"
#include "proto/http.h"
#include "sim/simulation.h"
#include "util/intern.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/rng.h"

namespace picloud::proto {

// How a RestClient call behaves under loss: per-attempt timeout, capped
// exponential backoff between attempts, and an optional overall deadline.
// Retries fire only on transport errors (timeout); an HTTP response of any
// status is a definitive answer from the server and is never retried here.
struct RetryPolicy {
  // Total attempts including the first; 0 means unbounded (the call keeps
  // retrying until the overall deadline, or forever if none is set).
  int max_attempts = 1;
  // Timeout for each individual attempt.
  sim::Duration attempt_timeout = sim::Duration::seconds(5);
  // Backoff before attempt n+1 is min(max_backoff,
  // initial_backoff * backoff_multiplier^(n-1)), then jittered.
  sim::Duration initial_backoff = sim::Duration::millis(200);
  double backoff_multiplier = 2.0;
  sim::Duration max_backoff = sim::Duration::seconds(10);
  // Fraction of the backoff randomized away: the actual delay is drawn
  // uniformly from [backoff * (1 - jitter), backoff]. 0 disables jitter.
  double jitter = 0.5;
  // Wall (simulated) deadline across all attempts and backoffs; zero means
  // no overall deadline.
  sim::Duration overall_deadline = sim::Duration::zero();

  // A single attempt with an explicit timeout — for fire-and-forget calls
  // whose caller has its own retry loop (e.g. periodic heartbeats).
  static RetryPolicy single(sim::Duration timeout) {
    RetryPolicy p;
    p.max_attempts = 1;
    p.attempt_timeout = timeout;
    return p;
  }

  // The default control-plane profile: a few attempts with backoff.
  static RetryPolicy standard(
      int attempts = 3,
      sim::Duration attempt_timeout = sim::Duration::seconds(5)) {
    RetryPolicy p;
    p.max_attempts = attempts;
    p.attempt_timeout = attempt_timeout;
    return p;
  }

  // Keep retrying until the peer answers (registration loops). Bounded only
  // by an overall deadline if the caller sets one.
  static RetryPolicy unbounded(
      sim::Duration attempt_timeout = sim::Duration::seconds(3),
      sim::Duration max_backoff = sim::Duration::seconds(15)) {
    RetryPolicy p;
    p.max_attempts = 0;
    p.attempt_timeout = attempt_timeout;
    p.initial_backoff = sim::Duration::millis(500);
    p.max_backoff = max_backoff;
    return p;
  }
};

// Retry budget accounting across all policy-driven calls sharing a metrics
// prefix. A value snapshot assembled from registry counters (the registry is
// the source of truth; see retry_stats()).
struct RetryStats {
  std::uint64_t calls = 0;              // logical calls issued with a policy
  std::uint64_t attempts = 0;           // wire attempts (>= calls)
  std::uint64_t retries = 0;            // attempts beyond each call's first
  std::uint64_t succeeded_after_retry = 0;
  std::uint64_t exhausted = 0;          // failed after max_attempts
  std::uint64_t deadline_exceeded = 0;  // failed on the overall deadline
};

// Server-side dedup of retried mutations. A handler admits each request's
// idempotency key before doing work:
//
//   auto once = cache.admit(key, std::move(respond));
//   if (!once) return;        // duplicate: replayed or coalesced
//   ... do the work, eventually calling once(response);
//
// A fresh key returns a wrapped responder that records the outcome and
// answers every coalesced duplicate; a completed key replays the recorded
// response immediately; an in-progress key queues the responder for the
// in-flight execution's outcome. Completed entries are evicted FIFO beyond
// `capacity` (in-progress entries are never evicted). Empty keys bypass the
// cache entirely (legacy callers without keys keep plain semantics).
//
// Keys are interned (util/intern.h): admit() is one hash probe plus an
// indexed load, and the wrapped responder carries a 4-byte Symbol instead
// of a key copy. Retries of one mutation hit the same Symbol; eviction
// frees the entry (response body, waiters) while the key string stays in
// the table — bounded by the number of *distinct* mutations in a run,
// which simulation workloads keep small.
class IdempotencyCache {
 public:
  explicit IdempotencyCache(std::size_t capacity = 256)
      : capacity_(capacity) {}

  struct Stats {
    std::uint64_t admitted = 0;   // fresh keys that ran the handler
    std::uint64_t replayed = 0;   // duplicates answered from the record
    std::uint64_t coalesced = 0;  // duplicates attached to an in-flight run
    std::uint64_t evicted = 0;
  };

  // Returns a responder to call with the outcome, or nullptr if this request
  // is a duplicate (its responder has been replayed or queued).
  Responder admit(const std::string& key, Responder respond);

  // Mirrors every stat bump into `<prefix>.{admitted,replayed,coalesced,
  // evicted}` counters. The cache has no Simulation of its own (it is also
  // used standalone in tests), so owners that do wire it in at construction.
  void bind_metrics(util::MetricsRegistry& registry, const std::string& prefix);

  std::size_t size() const { return live_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    bool done = false;
    HttpResponse response;
    std::vector<Responder> waiters;
  };

  void complete(util::Symbol key, HttpResponse response);

  std::size_t capacity_;
  util::StringTable keys_;
  std::vector<std::unique_ptr<Entry>> entries_;  // indexed by key Symbol id
  std::size_t live_ = 0;                         // non-null entries
  std::deque<util::Symbol> completed_order_;
  Stats stats_;
  util::Counter* admitted_ = nullptr;  // registry mirrors; null until bound
  util::Counter* replayed_ = nullptr;
  util::Counter* coalesced_ = nullptr;
  util::Counter* evicted_ = nullptr;
};

// Serves a Router on (ip, port). The router is borrowed; callers keep it
// alive and may keep registering routes while serving.
class RestServer {
 public:
  RestServer(net::Network& network, net::Ipv4Addr ip, std::uint16_t port,
             Router* router);
  ~RestServer();

  RestServer(const RestServer&) = delete;
  RestServer& operator=(const RestServer&) = delete;

  void start();
  void stop();
  bool serving() const { return serving_; }

  net::Ipv4Addr ip() const { return ip_; }
  std::uint16_t port() const { return port_; }

  std::uint64_t requests_served() const { return requests_served_; }

 private:
  void on_message(const net::Message& msg);

  net::Network& network_;
  net::Ipv4Addr ip_;
  std::uint16_t port_;
  Router* router_;
  bool serving_ = false;
  std::uint64_t requests_served_ = 0;           // this server only
  util::Counter* requests_counter_ = nullptr;   // proto.rest.server.requests
};

// Asynchronous REST client. One instance per caller identity (an IP); all
// in-flight calls share one ephemeral port and demultiplex on the
// correlation id.
//
// Accounting lives in the simulation's MetricsRegistry under
// `<metrics_prefix>.{requests,timeouts,calls,attempts,retries,
// succeeded_after_retry,exhausted,deadline_exceeded}`. Clients constructed
// with the same prefix share counters (deliberate aggregation: every
// default-prefix client rolls up under "proto.rest"); per-identity callers
// like node daemons pass their own scope, e.g. "node.pi-r0-03.rest".
class RestClient {
 public:
  static constexpr sim::Duration kDefaultTimeout = sim::Duration::seconds(5);

  RestClient(net::Network& network, net::Ipv4Addr self,
             std::uint16_t ephemeral_port = 49152,
             const std::string& metrics_prefix = "proto.rest");
  ~RestClient();

  RestClient(const RestClient&) = delete;
  RestClient& operator=(const RestClient&) = delete;

  using ResponseCallback = std::function<void(util::Result<HttpResponse>)>;

  // Issues a single attempt; the callback fires exactly once with the
  // response or a "timeout" error.
  void call(net::Ipv4Addr server, std::uint16_t port, Method method,
            const std::string& path, util::Json body, ResponseCallback cb,
            sim::Duration timeout = kDefaultTimeout);

  // Issues a retrying call under `policy`. Each attempt gets a fresh
  // correlation id and the per-attempt timeout; transport errors back off
  // (with deterministic jitter) and retry until the attempt budget or the
  // overall deadline runs out. The callback fires exactly once.
  void call(net::Ipv4Addr server, std::uint16_t port, Method method,
            const std::string& path, util::Json body, ResponseCallback cb,
            const RetryPolicy& policy);

  // Shorthands.
  void get(net::Ipv4Addr server, std::uint16_t port, const std::string& path,
           ResponseCallback cb) {
    call(server, port, Method::kGet, path, util::Json(), std::move(cb));
  }
  void post(net::Ipv4Addr server, std::uint16_t port, const std::string& path,
            util::Json body, ResponseCallback cb) {
    call(server, port, Method::kPost, path, std::move(body), std::move(cb));
  }

  size_t inflight() const { return pending_.size(); }
  // Logical policy-driven calls still running (including between attempts).
  size_t inflight_retries() const { return retry_calls_.size(); }
  // Wire requests / attempt timeouts under this client's metrics prefix
  // (shared across same-prefix clients, like the counters they read).
  std::uint64_t calls_made() const { return requests_->value(); }
  std::uint64_t timeouts() const { return timeouts_->value(); }
  // Snapshot of the retry counters under this client's metrics prefix.
  RetryStats retry_stats() const {
    RetryStats s;
    s.calls = retry_calls_counter_->value();
    s.attempts = attempts_->value();
    s.retries = retries_->value();
    s.succeeded_after_retry = succeeded_after_retry_->value();
    s.exhausted = exhausted_->value();
    s.deadline_exceeded = deadline_exceeded_->value();
    return s;
  }

 private:
  struct Pending {
    ResponseCallback cb;
    sim::EventId timeout_event = 0;
  };

  // One logical retrying call (possibly spanning several wire attempts).
  struct RetryCall {
    RetryPolicy policy;
    net::Ipv4Addr server;
    std::uint16_t port = 0;
    Method method = Method::kGet;
    std::string path;
    util::Json body;
    ResponseCallback cb;
    int attempts_made = 0;
    sim::SimTime deadline;     // overall; SimTime::max() when none
    bool has_deadline = false;
    sim::EventId backoff_event = 0;  // nonzero while waiting to retry
  };

  void on_message(const net::Message& msg);
  void finish(std::uint64_t id, util::Result<HttpResponse> result);
  void retry_attempt(std::uint64_t retry_id);
  void retry_done(std::uint64_t retry_id, util::Result<HttpResponse> result);

  net::Network& network_;
  sim::Simulation& sim_;
  net::Ipv4Addr self_;
  std::uint16_t port_;
  util::Rng rng_;  // jitter stream, forked from the simulation root
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_retry_id_ = 1;
  std::map<std::uint64_t, RetryCall> retry_calls_;
  // Registry handles under the ctor's metrics prefix (never null).
  util::Counter* requests_ = nullptr;
  util::Counter* timeouts_ = nullptr;
  util::Counter* retry_calls_counter_ = nullptr;
  util::Counter* attempts_ = nullptr;
  util::Counter* retries_ = nullptr;
  util::Counter* succeeded_after_retry_ = nullptr;
  util::Counter* exhausted_ = nullptr;
  util::Counter* deadline_exceeded_ = nullptr;
};

}  // namespace picloud::proto
