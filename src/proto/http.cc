#include "proto/http.h"

#include "util/strings.h"

namespace picloud::proto {

const char* method_name(Method m) {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kPost: return "POST";
    case Method::kPut: return "PUT";
    case Method::kDelete: return "DELETE";
  }
  return "?";
}

std::optional<Method> parse_method(const std::string& name) {
  if (name == "GET") return Method::kGet;
  if (name == "POST") return Method::kPost;
  if (name == "PUT") return Method::kPut;
  if (name == "DELETE") return Method::kDelete;
  return std::nullopt;
}

std::string HttpRequest::serialize() const {
  util::Json j = util::Json::object();
  j.set("m", method_name(method));
  j.set("p", path);
  if (!body.is_null()) j.set("b", body);
  j.set("i", static_cast<unsigned long long>(id));
  return j.dump();
}

util::Result<HttpRequest> HttpRequest::parse(const std::string& wire) {
  auto parsed = util::Json::parse(wire);
  if (!parsed.ok()) return parsed.error();
  const util::Json& j = parsed.value();
  auto method = parse_method(j.get_string("m"));
  if (!method) return util::Error::make("bad_request", "unknown method");
  HttpRequest req;
  req.method = *method;
  req.path = j.get_string("p");
  req.body = j.get("b");
  req.id = static_cast<std::uint64_t>(j.get_number("i"));
  if (req.path.empty() || req.path[0] != '/') {
    return util::Error::make("bad_request", "path must start with /");
  }
  return req;
}

std::string HttpResponse::serialize() const {
  util::Json j = util::Json::object();
  j.set("s", status);
  if (!body.is_null()) j.set("b", body);
  j.set("i", static_cast<unsigned long long>(id));
  return j.dump();
}

util::Result<HttpResponse> HttpResponse::parse(const std::string& wire) {
  auto parsed = util::Json::parse(wire);
  if (!parsed.ok()) return parsed.error();
  const util::Json& j = parsed.value();
  HttpResponse resp;
  resp.status = static_cast<int>(j.get_number("s", 0));
  if (resp.status < 100 || resp.status > 599) {
    return util::Error::make("bad_response", "invalid status code");
  }
  resp.body = j.get("b");
  resp.id = static_cast<std::uint64_t>(j.get_number("i"));
  return resp;
}

HttpResponse HttpResponse::make(int status, util::Json body) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  return r;
}

namespace {
HttpResponse error_response(int status, const std::string& code,
                            const std::string& message) {
  util::Json body = util::Json::object();
  body.set("error", code);
  body.set("message", message);
  return HttpResponse::make(status, std::move(body));
}
}  // namespace

HttpResponse HttpResponse::not_found(const std::string& message) {
  return error_response(404, "not_found", message);
}

HttpResponse HttpResponse::bad_request(const std::string& message) {
  return error_response(400, "bad_request", message);
}

HttpResponse HttpResponse::conflict(const std::string& message) {
  return error_response(409, "conflict", message);
}

HttpResponse HttpResponse::service_unavailable(const std::string& message) {
  return error_response(503, "unavailable", message);
}

HttpResponse HttpResponse::from_error(const util::Error& error) {
  int status = 500;
  if (error.code == "not_found" || error.code == "no_image") status = 404;
  else if (error.code == "exists" || error.code == "conflict" ||
           error.code == "state") status = 409;
  else if (error.code == "invalid" || error.code == "bad_request") status = 400;
  else if (error.code == "oom" || error.code == "limit" ||
           error.code == "no_capacity" || error.code == "disk_full") status = 507;
  else if (error.code == "timeout" || error.code == "unavailable") status = 503;
  return error_response(status, error.code, error.message);
}

void Router::handle(Method method, const std::string& pattern,
                    RouteHandler handler) {
  handle_async(method, pattern,
               [handler = std::move(handler)](const HttpRequest& req,
                                              const PathParams& params,
                                              Responder respond) {
                 respond(handler(req, params));
               });
}

void Router::handle_async(Method method, const std::string& pattern,
                          AsyncRouteHandler handler) {
  Route route;
  route.method = method;
  route.pattern = pattern;
  for (const std::string& seg : util::split_nonempty(pattern, '/')) {
    Seg compiled;
    if (!seg.empty() && seg[0] == ':') {
      compiled.param = seg.substr(1);
    } else {
      compiled.literal = seg_names_.intern(seg);
    }
    route.segs.push_back(std::move(compiled));
  }
  route.handler = std::move(handler);
  const std::size_t count = route.segs.size();
  if (by_count_.size() <= count) by_count_.resize(count + 1);
  by_count_[count].push_back(static_cast<std::uint32_t>(routes_.size()));
  routes_.push_back(std::move(route));
}

void Router::dispatch_async(const HttpRequest& request,
                            Responder respond) const {
  const auto parts = util::split_nonempty_views(request.path, '/');
  // Resolve each request segment to the literal vocabulary once; a segment
  // the table has never seen (invalid Symbol) can only match a capture.
  std::vector<util::Symbol> part_syms(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    part_syms[i] = seg_names_.find(parts[i]);
  }
  bool path_matched = false;
  if (parts.size() < by_count_.size()) {
    const auto& bucket = by_count_[parts.size()];
    // Later registrations win: scan newest-first.
    for (auto it = bucket.rbegin(); it != bucket.rend(); ++it) {
      const Route& route = routes_[*it];
      bool ok = true;
      for (std::size_t i = 0; i < parts.size(); ++i) {
        const util::Symbol lit = route.segs[i].literal;
        if (lit.valid() && lit != part_syms[i]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      path_matched = true;
      if (route.method != request.method) continue;
      // Params materialize only for the route that actually runs.
      PathParams params;
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (!route.segs[i].literal.valid()) {
          params.emplace(route.segs[i].param, std::string(parts[i]));
        }
      }
      std::uint64_t id = request.id;
      route.handler(request, params,
                    [respond = std::move(respond), id](HttpResponse resp) {
                      resp.id = id;
                      respond(std::move(resp));
                    });
      return;
    }
  }
  HttpResponse resp = path_matched
                          ? error_response(405, "method_not_allowed",
                                           "method not allowed on this path")
                          : HttpResponse::not_found("no route for " +
                                                    request.path);
  resp.id = request.id;
  respond(std::move(resp));
}

HttpResponse Router::dispatch(const HttpRequest& request) const {
  HttpResponse out = error_response(504, "pending",
                                    "handler did not respond synchronously");
  bool responded = false;
  dispatch_async(request, [&out, &responded](HttpResponse resp) {
    out = std::move(resp);
    responded = true;
  });
  (void)responded;
  return out;
}

std::vector<std::string> Router::describe() const {
  std::vector<std::string> out;
  out.reserve(routes_.size());
  for (const auto& r : routes_) {
    out.push_back(util::format("%s %s", method_name(r.method),
                               r.pattern.c_str()));
  }
  return out;
}

}  // namespace picloud::proto
