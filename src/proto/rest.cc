#include "proto/rest.h"

#include <algorithm>

#include "util/logging.h"

namespace picloud::proto {

void IdempotencyCache::bind_metrics(util::MetricsRegistry& registry,
                                    const std::string& prefix) {
  admitted_ = &registry.counter(prefix + ".admitted");
  replayed_ = &registry.counter(prefix + ".replayed");
  coalesced_ = &registry.counter(prefix + ".coalesced");
  evicted_ = &registry.counter(prefix + ".evicted");
  // Back-fill activity recorded before binding so the registry view matches.
  admitted_->inc(stats_.admitted);
  replayed_->inc(stats_.replayed);
  coalesced_->inc(stats_.coalesced);
  evicted_->inc(stats_.evicted);
}

Responder IdempotencyCache::admit(const std::string& key, Responder respond) {
  if (key.empty()) return respond;  // unkeyed request: plain semantics
  const util::Symbol sym = keys_.intern(key);
  if (entries_.size() <= sym.id()) entries_.resize(sym.id() + 1);
  if (Entry* entry = entries_[sym.id()].get()) {
    if (entry->done) {
      ++stats_.replayed;
      if (replayed_) replayed_->inc();
      if (respond) respond(entry->response);
    } else {
      ++stats_.coalesced;
      if (coalesced_) coalesced_->inc();
      entry->waiters.push_back(std::move(respond));
    }
    return nullptr;
  }
  ++stats_.admitted;
  if (admitted_) admitted_->inc();
  auto entry = std::make_unique<Entry>();
  entry->waiters.push_back(std::move(respond));
  entries_[sym.id()] = std::move(entry);
  ++live_;
  return [this, sym](HttpResponse response) {
    complete(sym, std::move(response));
  };
}

void IdempotencyCache::complete(util::Symbol key, HttpResponse response) {
  Entry* entry = key.id() < entries_.size() ? entries_[key.id()].get()
                                            : nullptr;
  if (entry == nullptr) return;  // evicted mid-flight: nothing to record
  if (entry->done) return;  // a wrapped responder fired twice; first wins
  entry->done = true;
  entry->response = response;
  std::vector<Responder> waiters = std::move(entry->waiters);
  entry->waiters.clear();
  completed_order_.push_back(key);
  while (!completed_order_.empty() && live_ > capacity_) {
    const util::Symbol victim = completed_order_.front();
    completed_order_.pop_front();
    Entry* v = entries_[victim.id()].get();
    if (v != nullptr && v->done) {
      entries_[victim.id()].reset();
      --live_;
      ++stats_.evicted;
      if (evicted_) evicted_->inc();
    }
  }
  for (auto& waiter : waiters) {
    if (waiter) waiter(response);
  }
}

RestServer::RestServer(net::Network& network, net::Ipv4Addr ip,
                       std::uint16_t port, Router* router)
    : network_(network),
      ip_(ip),
      port_(port),
      router_(router),
      requests_counter_(
          &network.simulation().metrics().counter("proto.rest.server.requests")) {}

RestServer::~RestServer() { stop(); }

void RestServer::start() {
  if (serving_) return;
  serving_ = true;
  network_.listen(ip_, port_,
                  [this](const net::Message& msg) { on_message(msg); });
}

void RestServer::stop() {
  if (!serving_) return;
  serving_ = false;
  network_.unlisten(ip_, port_);
}

void RestServer::on_message(const net::Message& msg) {
  ++requests_served_;
  requests_counter_->inc();
  net::Ipv4Addr reply_to = msg.src;
  std::uint16_t reply_port = msg.src_port;
  // Capture the network (which outlives every server) rather than `this`:
  // async handlers may outlive a server its node crashed out from under.
  // If the source IP has been unbound by then, send() just drops the reply.
  net::Network& network = network_;
  net::Ipv4Addr self = ip_;
  std::uint16_t self_port = port_;
  auto send_reply = [&network, self, self_port, reply_to,
                     reply_port](HttpResponse response) {
    net::Message reply;
    reply.src = self;
    reply.dst = reply_to;
    reply.src_port = self_port;
    reply.dst_port = reply_port;
    reply.payload = response.serialize();
    network.send(std::move(reply));
  };
  auto request = HttpRequest::parse(msg.payload);
  if (!request.ok()) {
    send_reply(HttpResponse::bad_request(request.error().message));
    return;
  }
  router_->dispatch_async(request.value(), std::move(send_reply));
}

RestClient::RestClient(net::Network& network, net::Ipv4Addr self,
                       std::uint16_t ephemeral_port,
                       const std::string& metrics_prefix)
    : network_(network),
      sim_(network.simulation()),
      self_(self),
      port_(ephemeral_port),
      rng_(network.simulation().rng().fork()) {
  util::MetricsRegistry& m = sim_.metrics();
  requests_ = &m.counter(metrics_prefix + ".requests");
  timeouts_ = &m.counter(metrics_prefix + ".timeouts");
  retry_calls_counter_ = &m.counter(metrics_prefix + ".calls");
  attempts_ = &m.counter(metrics_prefix + ".attempts");
  retries_ = &m.counter(metrics_prefix + ".retries");
  succeeded_after_retry_ = &m.counter(metrics_prefix + ".succeeded_after_retry");
  exhausted_ = &m.counter(metrics_prefix + ".exhausted");
  deadline_exceeded_ = &m.counter(metrics_prefix + ".deadline_exceeded");
  network_.listen(self_, port_,
                  [this](const net::Message& msg) { on_message(msg); });
}

RestClient::~RestClient() {
  network_.unlisten(self_, port_);
  // Fail anything still in flight so callers are never left hanging.
  // Collect first: finish() mutates pending_. A pending attempt that belongs
  // to a retrying call propagates the "cancelled" error without retrying.
  std::vector<std::uint64_t> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, p] : pending_) ids.push_back(id);
  for (std::uint64_t id : ids) {
    finish(id, util::Error::make("cancelled", "client destroyed"));
  }
  // Retrying calls parked in a backoff have no pending attempt; cancel their
  // timers and fail them too.
  std::vector<std::uint64_t> retry_ids;
  retry_ids.reserve(retry_calls_.size());
  for (const auto& [id, rc] : retry_calls_) retry_ids.push_back(id);
  for (std::uint64_t id : retry_ids) {
    auto it = retry_calls_.find(id);
    if (it == retry_calls_.end()) continue;
    if (it->second.backoff_event != 0) sim_.cancel(it->second.backoff_event);
    retry_done(id, util::Error::make("cancelled", "client destroyed"));
  }
}

void RestClient::call(net::Ipv4Addr server, std::uint16_t port, Method method,
                      const std::string& path, util::Json body,
                      ResponseCallback cb, sim::Duration timeout) {
  std::uint64_t id = next_id_++;
  requests_->inc();
  HttpRequest request;
  request.method = method;
  request.path = path;
  request.body = std::move(body);
  request.id = id;

  Pending pending;
  pending.cb = std::move(cb);
  pending.timeout_event = sim_.after(timeout, [this, id]() {
    // Timeout schedule point (DESIGN.md §13). finish() cancels the timeout
    // event, so in a default run a firing timeout always has a live pending
    // entry and behaviour here is unchanged. Under a model-checking strategy
    // the expiry is parked: by the time the strategy runs it, a parked
    // delivery may have completed the call first, so the action re-checks.
    if (!sim_.schedule_points().active()) {
      timeouts_->inc();
      finish(id, util::Error::make("timeout", "REST call timed out"));
      return;
    }
    sim::SchedulePoint point;
    point.kind = sim::SchedulePointKind::kTimeout;
    point.label =
        "timeout:" + self_.to_string() + ":" + std::to_string(id);
    point.object = self_.to_string();
    point.src_ip = self_.to_string();
    point.src_port = port_;
    sim_.schedule_points().intercept(std::move(point), [this, id]() {
      if (pending_.find(id) == pending_.end()) return;  // raced a delivery
      timeouts_->inc();
      finish(id, util::Error::make("timeout", "REST call timed out"));
    });
  });
  pending_[id] = std::move(pending);

  net::Message msg;
  msg.src = self_;
  msg.dst = server;
  msg.src_port = port_;
  msg.dst_port = port;
  msg.payload = request.serialize();
  network_.send(std::move(msg));
  // Drops are handled by the timeout: a datagram network, reliability here.
}

void RestClient::call(net::Ipv4Addr server, std::uint16_t port, Method method,
                      const std::string& path, util::Json body,
                      ResponseCallback cb, const RetryPolicy& policy) {
  std::uint64_t retry_id = next_retry_id_++;
  RetryCall rc;
  rc.policy = policy;
  rc.server = server;
  rc.port = port;
  rc.method = method;
  rc.path = path;
  rc.body = std::move(body);
  rc.cb = std::move(cb);
  rc.has_deadline = policy.overall_deadline > sim::Duration::zero();
  rc.deadline = rc.has_deadline ? sim_.now() + policy.overall_deadline
                                : sim::SimTime::max();
  retry_calls_.emplace(retry_id, std::move(rc));
  retry_calls_counter_->inc();
  retry_attempt(retry_id);
}

void RestClient::retry_attempt(std::uint64_t retry_id) {
  auto it = retry_calls_.find(retry_id);
  if (it == retry_calls_.end()) return;
  RetryCall& rc = it->second;
  rc.backoff_event = 0;

  sim::Duration timeout = rc.policy.attempt_timeout;
  if (rc.has_deadline) {
    sim::Duration left = rc.deadline - sim_.now();
    if (left <= sim::Duration::zero()) {
      deadline_exceeded_->inc();
      retry_done(retry_id,
                 util::Error::make("deadline", "REST call deadline exceeded"));
      return;
    }
    timeout = std::min(timeout, left);
  }

  ++rc.attempts_made;
  attempts_->inc();
  if (rc.attempts_made > 1) retries_->inc();

  // Each attempt is a fresh single-shot call with its own correlation id, so
  // a late response to a timed-out attempt can never satisfy a newer one.
  call(
      rc.server, rc.port, rc.method, rc.path, rc.body,
      [this, retry_id](util::Result<HttpResponse> result) {
        auto rit = retry_calls_.find(retry_id);
        if (rit == retry_calls_.end()) return;
        RetryCall& rc = rit->second;
        if (result.ok()) {
          if (rc.attempts_made > 1) succeeded_after_retry_->inc();
          retry_done(retry_id, std::move(result));
          return;
        }
        if (result.error().code == "cancelled") {
          retry_done(retry_id, std::move(result));
          return;
        }
        if (rc.policy.max_attempts > 0 &&
            rc.attempts_made >= rc.policy.max_attempts) {
          exhausted_->inc();
          retry_done(retry_id, std::move(result));
          return;
        }
        // Capped exponential backoff with deterministic jitter: the delay is
        // drawn from [backoff * (1 - jitter), backoff] off this client's
        // forked rng stream.
        sim::Duration backoff = rc.policy.initial_backoff;
        for (int i = 1; i < rc.attempts_made; ++i) {
          backoff = backoff * rc.policy.backoff_multiplier;
          if (backoff >= rc.policy.max_backoff) break;
        }
        backoff = std::min(backoff, rc.policy.max_backoff);
        if (rc.policy.jitter > 0) {
          backoff = backoff * (1.0 - rc.policy.jitter * rng_.next_double());
        }
        if (rc.has_deadline && sim_.now() + backoff >= rc.deadline) {
          deadline_exceeded_->inc();
          retry_done(
              retry_id,
              util::Error::make("deadline", "REST call deadline exceeded"));
          return;
        }
        rc.backoff_event =
            sim_.after(backoff, [this, retry_id]() { retry_attempt(retry_id); });
      },
      timeout);
}

void RestClient::retry_done(std::uint64_t retry_id,
                            util::Result<HttpResponse> result) {
  auto it = retry_calls_.find(retry_id);
  if (it == retry_calls_.end()) return;
  ResponseCallback cb = std::move(it->second.cb);
  retry_calls_.erase(it);
  if (cb) cb(std::move(result));
}

void RestClient::on_message(const net::Message& msg) {
  auto response = HttpResponse::parse(msg.payload);
  if (!response.ok()) {
    LOG_WARN("rest", "unparseable response at %s", self_.to_string().c_str());
    return;
  }
  finish(response.value().id, response.value());
}

void RestClient::finish(std::uint64_t id, util::Result<HttpResponse> result) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // late response after timeout
  Pending pending = std::move(it->second);
  pending_.erase(it);
  if (pending.timeout_event != 0) sim_.cancel(pending.timeout_event);
  if (pending.cb) pending.cb(std::move(result));
}

}  // namespace picloud::proto
