#include "proto/rest.h"

#include "util/logging.h"

namespace picloud::proto {

RestServer::RestServer(net::Network& network, net::Ipv4Addr ip,
                       std::uint16_t port, Router* router)
    : network_(network), ip_(ip), port_(port), router_(router) {}

RestServer::~RestServer() { stop(); }

void RestServer::start() {
  if (serving_) return;
  serving_ = true;
  network_.listen(ip_, port_,
                  [this](const net::Message& msg) { on_message(msg); });
}

void RestServer::stop() {
  if (!serving_) return;
  serving_ = false;
  network_.unlisten(ip_, port_);
}

void RestServer::on_message(const net::Message& msg) {
  ++requests_served_;
  net::Ipv4Addr reply_to = msg.src;
  std::uint16_t reply_port = msg.src_port;
  auto send_reply = [this, reply_to, reply_port](HttpResponse response) {
    net::Message reply;
    reply.src = ip_;
    reply.dst = reply_to;
    reply.src_port = port_;
    reply.dst_port = reply_port;
    reply.payload = response.serialize();
    network_.send(std::move(reply));
  };
  auto request = HttpRequest::parse(msg.payload);
  if (!request.ok()) {
    send_reply(HttpResponse::bad_request(request.error().message));
    return;
  }
  router_->dispatch_async(request.value(), std::move(send_reply));
}

RestClient::RestClient(net::Network& network, net::Ipv4Addr self,
                       std::uint16_t ephemeral_port)
    : network_(network),
      sim_(network.simulation()),
      self_(self),
      port_(ephemeral_port) {
  network_.listen(self_, port_,
                  [this](const net::Message& msg) { on_message(msg); });
}

RestClient::~RestClient() {
  network_.unlisten(self_, port_);
  // Fail anything still in flight so callers are never left hanging.
  // Collect first: finish() mutates pending_.
  std::vector<std::uint64_t> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, p] : pending_) ids.push_back(id);
  for (std::uint64_t id : ids) {
    finish(id, util::Error::make("cancelled", "client destroyed"));
  }
}

void RestClient::call(net::Ipv4Addr server, std::uint16_t port, Method method,
                      const std::string& path, util::Json body,
                      ResponseCallback cb, sim::Duration timeout) {
  std::uint64_t id = next_id_++;
  ++calls_made_;
  HttpRequest request;
  request.method = method;
  request.path = path;
  request.body = std::move(body);
  request.id = id;

  Pending pending;
  pending.cb = std::move(cb);
  pending.timeout_event = sim_.after(timeout, [this, id]() {
    ++timeouts_;
    finish(id, util::Error::make("timeout", "REST call timed out"));
  });
  pending_[id] = std::move(pending);

  net::Message msg;
  msg.src = self_;
  msg.dst = server;
  msg.src_port = port_;
  msg.dst_port = port;
  msg.payload = request.serialize();
  network_.send(std::move(msg));
  // Drops are handled by the timeout: a datagram network, reliability here.
}

void RestClient::on_message(const net::Message& msg) {
  auto response = HttpResponse::parse(msg.payload);
  if (!response.ok()) {
    LOG_WARN("rest", "unparseable response at %s", self_.to_string().c_str());
    return;
  }
  finish(response.value().id, response.value());
}

void RestClient::finish(std::uint64_t id, util::Result<HttpResponse> result) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // late response after timeout
  Pending pending = std::move(it->second);
  pending_.erase(it);
  if (pending.timeout_event != 0) sim_.cancel(pending.timeout_event);
  if (pending.cb) pending.cb(std::move(result));
}

}  // namespace picloud::proto
