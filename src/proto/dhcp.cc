#include "proto/dhcp.h"

#include <algorithm>

#include "util/check.h"
#include "util/json.h"
#include "util/logging.h"

namespace picloud::proto {

using util::Json;

DhcpServer::DhcpServer(net::Network& network, net::NetNodeId server_node,
                       net::Ipv4Addr server_ip, DhcpServerConfig config)
    : network_(network),
      sim_(network.simulation()),
      node_(server_node),
      ip_(server_ip),
      config_(config) {
  PICLOUD_CHECK(config_.subnet.contains(config_.range_start))
      << "DHCP range start outside subnet";
  PICLOUD_CHECK(config_.subnet.contains(config_.range_end))
      << "DHCP range end outside subnet";
  PICLOUD_CHECK(config_.range_start <= config_.range_end) << "DHCP range order";
}

DhcpServer::~DhcpServer() { stop(); }

void DhcpServer::start() {
  if (serving_) return;
  serving_ = true;
  network_.listen_node(node_, kDhcpServerPort,
                       [this](const net::Message& msg) { on_message(msg); });
}

void DhcpServer::stop() {
  if (!serving_) return;
  serving_ = false;
  network_.unlisten_node(node_, kDhcpServerPort);
}

void DhcpServer::add_reservation(const std::string& mac, net::Ipv4Addr ip) {
  PICLOUD_CHECK(config_.subnet.contains(ip))
      << "reservation " << ip.to_string() << " outside subnet";
  reservations_[mac] = ip;
}

bool DhcpServer::ip_in_use(net::Ipv4Addr ip, const std::string& for_mac) const {
  auto it = leases_.find(ip.value());
  if (it == leases_.end()) return false;
  if (it->second.mac == for_mac) return false;  // same client: renewal
  return it->second.expires > sim_.now();
}

std::optional<net::Ipv4Addr> DhcpServer::pick_address(const std::string& mac) {
  // Policy order: static reservation, then current lease, then pool scan.
  auto reserved = reservations_.find(mac);
  if (reserved != reservations_.end()) return reserved->second;
  for (const auto& [ipv, lease] : leases_) {
    if (lease.mac == mac) return net::Ipv4Addr(ipv);
  }
  for (net::Ipv4Addr ip = config_.range_start; ip <= config_.range_end;
       ip = ip.next()) {
    if (ip_in_use(ip, mac)) continue;
    // Never hand out a static reservation dynamically.
    bool is_reserved = false;
    for (const auto& [rmac, rip] : reservations_) {
      if (rip == ip && rmac != mac) {
        is_reserved = true;
        break;
      }
    }
    if (!is_reserved) return ip;
  }
  return std::nullopt;
}

void DhcpServer::send_to_client(net::NetNodeId client_node, Json payload) {
  net::Message msg;
  msg.src = ip_;
  msg.src_port = kDhcpServerPort;
  msg.dst_port = kDhcpClientPort;
  msg.payload = payload.dump();
  network_.send_to_node(node_, client_node, std::move(msg));
}

void DhcpServer::on_message(const net::Message& msg) {
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  const Json& j = parsed.value();
  std::string type = j.get_string("type");
  std::string mac = j.get_string("mac");
  std::string hostname = j.get_string("hostname");
  auto client_node =
      static_cast<net::NetNodeId>(j.get_number("node", net::kInvalidNode));
  if (mac.empty() || client_node == net::kInvalidNode) return;

  if (type == "discover") {
    ++discovers_;
    auto ip = pick_address(mac);
    if (!ip) {
      ++naks_;
      Json nak = Json::object();
      nak.set("type", "nak");
      nak.set("reason", "address pool exhausted");
      send_to_client(client_node, std::move(nak));
      return;
    }
    Json offer = Json::object();
    offer.set("type", "offer");
    offer.set("ip", ip->to_string());
    offer.set("lease_s", config_.lease_duration.to_seconds());
    offer.set("server_ip", ip_.to_string());
    offer.set("server_node", node_);
    LOG_DEBUG("dhcp", "OFFER %s to %s", ip->to_string().c_str(), mac.c_str());
    send_to_client(client_node, std::move(offer));
    return;
  }

  if (type == "request") {
    auto requested = net::Ipv4Addr::parse(j.get_string("ip"));
    if (!requested || ip_in_use(*requested, mac) ||
        !config_.subnet.contains(*requested)) {
      ++naks_;
      Json nak = Json::object();
      nak.set("type", "nak");
      nak.set("reason", "requested address unavailable");
      send_to_client(client_node, std::move(nak));
      return;
    }
    DhcpLease lease;
    lease.mac = mac;
    lease.hostname = hostname;
    lease.ip = *requested;
    lease.expires = sim_.now() + config_.lease_duration;
    leases_[requested->value()] = lease;
    ++acks_;
    Json ack = Json::object();
    ack.set("type", "ack");
    ack.set("ip", requested->to_string());
    ack.set("lease_s", config_.lease_duration.to_seconds());
    ack.set("server_node", node_);
    LOG_DEBUG("dhcp", "ACK %s to %s (%s)", requested->to_string().c_str(),
              mac.c_str(), hostname.c_str());
    send_to_client(client_node, std::move(ack));
    if (on_lease_) on_lease_(lease);
    return;
  }

  if (type == "release") {
    auto released = net::Ipv4Addr::parse(j.get_string("ip"));
    if (released) release(*released);
  }
}

std::optional<DhcpLease> DhcpServer::lease_for_mac(const std::string& mac) const {
  for (const auto& [ipv, lease] : leases_) {
    if (lease.mac == mac && lease.expires > sim_.now()) return lease;
  }
  return std::nullopt;
}

size_t DhcpServer::active_leases() const {
  size_t n = 0;
  for (const auto& [ipv, lease] : leases_) {
    if (lease.expires > sim_.now()) ++n;
  }
  return n;
}

util::Result<net::Ipv4Addr> DhcpServer::allocate_static(
    const std::string& mac, const std::string& hostname) {
  auto ip = pick_address(mac);
  if (!ip) {
    return util::Error::make("no_capacity", "DHCP pool exhausted");
  }
  DhcpLease lease;
  lease.mac = mac;
  lease.hostname = hostname;
  lease.ip = *ip;
  // Static allocations do not expire (management-plane owned).
  lease.expires = sim::SimTime::max();
  leases_[ip->value()] = lease;
  if (on_lease_) on_lease_(lease);
  return *ip;
}

void DhcpServer::release(net::Ipv4Addr ip) { leases_.erase(ip.value()); }

DhcpClient::DhcpClient(net::Network& network, net::NetNodeId node,
                       std::string mac, std::string hostname)
    : network_(network),
      sim_(network.simulation()),
      node_(node),
      mac_(std::move(mac)),
      hostname_(std::move(hostname)),
      rng_(network.simulation().rng().fork()) {}

DhcpClient::~DhcpClient() { stop(); }

void DhcpClient::start(BoundCallback on_bound) {
  if (state_ != State::kStopped) return;
  on_bound_ = std::move(on_bound);
  network_.listen_node(node_, kDhcpClientPort,
                       [this](const net::Message& msg) { on_message(msg); });
  state_ = State::kInit;
  retry_attempt_ = 0;
  send_discover();
}

void DhcpClient::stop() {
  if (state_ == State::kStopped) return;
  network_.unlisten_node(node_, kDhcpClientPort);
  if (retry_event_ != 0) sim_.cancel(retry_event_);
  if (renew_event_ != 0) sim_.cancel(renew_event_);
  retry_event_ = 0;
  renew_event_ = 0;
  state_ = State::kStopped;
}

void DhcpClient::send_discover() {
  state_ = State::kSelecting;
  ++discovers_sent_;
  Json discover = Json::object();
  discover.set("type", "discover");
  discover.set("mac", mac_);
  discover.set("hostname", hostname_);
  discover.set("node", node_);
  net::Message msg;
  msg.src = net::Ipv4Addr::any();
  msg.src_port = kDhcpClientPort;
  msg.dst_port = kDhcpServerPort;
  msg.payload = discover.dump();
  network_.send_to_node(node_, std::nullopt, std::move(msg));
  arm_retry();
}

sim::Duration DhcpClient::next_retry_delay() {
  sim::Duration backoff = kRetryBase;
  for (int i = 0; i < retry_attempt_; ++i) {
    backoff = backoff * kRetryMultiplier;
    if (backoff >= kRetryCap) break;
  }
  backoff = std::min(backoff, kRetryCap);
  ++retry_attempt_;
  return backoff * (1.0 - kRetryJitter * rng_.next_double());
}

void DhcpClient::arm_retry() {
  if (retry_event_ != 0) sim_.cancel(retry_event_);
  retry_event_ = sim_.after(next_retry_delay(), [this]() {
    retry_event_ = 0;
    if (state_ == State::kSelecting || state_ == State::kRequesting) {
      send_discover();
    }
  });
}

void DhcpClient::on_message(const net::Message& msg) {
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  const Json& j = parsed.value();
  std::string type = j.get_string("type");

  if (type == "offer" && state_ == State::kSelecting) {
    auto ip = net::Ipv4Addr::parse(j.get_string("ip"));
    if (!ip) return;
    offered_ip_ = *ip;
    server_node_ = static_cast<net::NetNodeId>(
        j.get_number("server_node", net::kInvalidNode));
    state_ = State::kRequesting;
    Json request = Json::object();
    request.set("type", "request");
    request.set("mac", mac_);
    request.set("hostname", hostname_);
    request.set("node", node_);
    request.set("ip", offered_ip_.to_string());
    net::Message req;
    req.src = net::Ipv4Addr::any();
    req.src_port = kDhcpClientPort;
    req.dst_port = kDhcpServerPort;
    req.payload = request.dump();
    network_.send_to_node(node_, server_node_, std::move(req));
    arm_retry();
    return;
  }

  if (type == "ack" && state_ == State::kRequesting) {
    auto ip = net::Ipv4Addr::parse(j.get_string("ip"));
    if (!ip) return;
    ip_ = *ip;
    state_ = State::kBound;
    retry_attempt_ = 0;  // bound: the backoff ladder starts over
    if (retry_event_ != 0) {
      sim_.cancel(retry_event_);
      retry_event_ = 0;
    }
    sim::Duration lease = sim::Duration::seconds(j.get_number("lease_s", 3600));
    // Renew at half-lease by re-requesting the same address.
    if (renew_event_ != 0) sim_.cancel(renew_event_);
    renew_event_ = sim_.after(lease / 2.0, [this]() {
      renew_event_ = 0;
      if (state_ != State::kBound) return;
      state_ = State::kRequesting;
      offered_ip_ = ip_;
      Json request = Json::object();
      request.set("type", "request");
      request.set("mac", mac_);
      request.set("hostname", hostname_);
      request.set("node", node_);
      request.set("ip", ip_.to_string());
      net::Message req;
      req.src = net::Ipv4Addr::any();
      req.src_port = kDhcpClientPort;
      req.dst_port = kDhcpServerPort;
      req.payload = request.dump();
      network_.send_to_node(node_, server_node_, std::move(req));
      arm_retry();
    });
    if (on_bound_) on_bound_(ip_, lease);
    return;
  }

  if (type == "nak") {
    // Back to square one after a backed-off delay: a NAK storm (e.g. pool
    // exhaustion) shouldn't keep the whole rack hammering the server.
    state_ = State::kInit;
    if (retry_event_ != 0) sim_.cancel(retry_event_);
    retry_event_ = sim_.after(next_retry_delay(), [this]() {
      retry_event_ = 0;
      if (state_ == State::kInit) send_discover();
    });
  }
}

}  // namespace picloud::proto
