// DHCP — address assignment for booting Pis and their containers.
//
// Paper §II-A: "A system administrator can implement customised IP and
// naming policies through DHCP and DNS services running on the pimaster."
// The full DORA handshake is modelled (DISCOVER broadcast, OFFER, REQUEST,
// ACK/NAK) over the fabric, so a rack of 14 Pis powering on genuinely
// floods the management network with discovery traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/addr.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "util/json.h"
#include "util/result.h"
#include "util/rng.h"

namespace picloud::proto {

inline constexpr std::uint16_t kDhcpServerPort = 67;
inline constexpr std::uint16_t kDhcpClientPort = 68;

struct DhcpLease {
  std::string mac;
  std::string hostname;
  net::Ipv4Addr ip;
  sim::SimTime expires;
};

struct DhcpServerConfig {
  net::Subnet subnet;                // pool lives inside this subnet
  net::Ipv4Addr range_start;         // first dynamically assignable address
  net::Ipv4Addr range_end;           // last, inclusive
  sim::Duration lease_duration = sim::Duration::minutes(60);
};

class DhcpServer {
 public:
  DhcpServer(net::Network& network, net::NetNodeId server_node,
             net::Ipv4Addr server_ip, DhcpServerConfig config);
  ~DhcpServer();

  void start();
  void stop();

  // Customised IP policy: always hand this MAC this address.
  void add_reservation(const std::string& mac, net::Ipv4Addr ip);

  // Fires on every ACK — the pimaster hooks DNS registration and its node
  // registry here.
  using LeaseCallback = std::function<void(const DhcpLease&)>;
  void set_lease_callback(LeaseCallback cb) { on_lease_ = std::move(cb); }

  std::optional<DhcpLease> lease_for_mac(const std::string& mac) const;
  size_t active_leases() const;
  std::uint64_t discovers_seen() const { return discovers_; }
  std::uint64_t acks_sent() const { return acks_; }
  std::uint64_t naks_sent() const { return naks_; }

  // Direct allocation path, used for container (bridged virtual-host)
  // addresses where the pimaster itself is the requester.
  util::Result<net::Ipv4Addr> allocate_static(const std::string& mac,
                                              const std::string& hostname);
  void release(net::Ipv4Addr ip);

 private:
  void on_message(const net::Message& msg);
  std::optional<net::Ipv4Addr> pick_address(const std::string& mac);
  void send_to_client(net::NetNodeId client_node, util::Json payload);
  bool ip_in_use(net::Ipv4Addr ip, const std::string& for_mac) const;

  net::Network& network_;
  sim::Simulation& sim_;
  net::NetNodeId node_;
  net::Ipv4Addr ip_;
  DhcpServerConfig config_;
  bool serving_ = false;
  std::map<std::string, net::Ipv4Addr> reservations_;  // mac -> ip
  std::map<std::uint32_t, DhcpLease> leases_;          // ip -> lease
  LeaseCallback on_lease_;
  std::uint64_t discovers_ = 0;
  std::uint64_t acks_ = 0;
  std::uint64_t naks_ = 0;
};

// Client state machine: Init -> Selecting -> Requesting -> Bound, with
// renewal at half-lease and fallback to rediscovery on NAK/timeout.
class DhcpClient {
 public:
  enum class State { kInit, kSelecting, kRequesting, kBound, kStopped };

  DhcpClient(net::Network& network, net::NetNodeId node, std::string mac,
             std::string hostname);
  ~DhcpClient();

  using BoundCallback =
      std::function<void(net::Ipv4Addr ip, sim::Duration lease)>;

  // Begins the handshake; `on_bound` fires on every (re)bind.
  void start(BoundCallback on_bound);
  void stop();

  State state() const { return state_; }
  net::Ipv4Addr ip() const { return ip_; }
  std::uint64_t discovers_sent() const { return discovers_sent_; }
  // Consecutive unanswered tries since the last bind (drives the backoff).
  int retry_attempt() const { return retry_attempt_; }

  // Retries back off exponentially from kRetryBase up to kRetryCap, with
  // deterministic jitter drawn from a forked util::Rng so a rack of clients
  // power-cycling together doesn't re-flood the server in lockstep. The
  // actual delay for attempt n is backoff(n) * U[1 - kRetryJitter, 1].
  static constexpr sim::Duration kRetryBase = sim::Duration::seconds(2);
  static constexpr sim::Duration kRetryCap = sim::Duration::seconds(30);
  static constexpr double kRetryMultiplier = 2.0;
  static constexpr double kRetryJitter = 0.5;

 private:
  void send_discover();
  void on_message(const net::Message& msg);
  void arm_retry();
  sim::Duration next_retry_delay();

  net::Network& network_;
  sim::Simulation& sim_;
  net::NetNodeId node_;
  std::string mac_;
  std::string hostname_;
  util::Rng rng_;  // jitter stream, forked from the simulation root
  State state_ = State::kStopped;
  net::Ipv4Addr ip_;
  net::Ipv4Addr offered_ip_;
  net::NetNodeId server_node_ = net::kInvalidNode;
  BoundCallback on_bound_;
  sim::EventId retry_event_ = 0;
  sim::EventId renew_event_ = 0;
  std::uint64_t discovers_sent_ = 0;
  int retry_attempt_ = 0;
};

}  // namespace picloud::proto
