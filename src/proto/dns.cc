#include "proto/dns.h"

#include <vector>

#include "util/json.h"

namespace picloud::proto {

using util::Json;

DnsServer::DnsServer(net::Network& network, net::Ipv4Addr server_ip,
                     sim::Duration record_ttl)
    : network_(network), ip_(server_ip), ttl_(record_ttl) {}

DnsServer::~DnsServer() { stop(); }

void DnsServer::start() {
  if (serving_) return;
  serving_ = true;
  network_.listen(ip_, kDnsPort,
                  [this](const net::Message& msg) { on_message(msg); });
}

void DnsServer::stop() {
  if (!serving_) return;
  serving_ = false;
  network_.unlisten(ip_, kDnsPort);
}

void DnsServer::add_record(const std::string& name, net::Ipv4Addr ip) {
  records_[name] = ip;
}

void DnsServer::remove_record(const std::string& name) {
  records_.erase(name);
}

std::optional<net::Ipv4Addr> DnsServer::lookup(const std::string& name) const {
  auto it = records_.find(name);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> DnsServer::reverse(net::Ipv4Addr ip) const {
  for (const auto& [name, addr] : records_) {
    if (addr == ip) return name;
  }
  return std::nullopt;
}

std::vector<std::string> DnsServer::names() const {
  std::vector<std::string> out;
  out.reserve(records_.size());
  for (const auto& [name, addr] : records_) out.push_back(name);
  return out;
}

void DnsServer::on_message(const net::Message& msg) {
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  const Json& j = parsed.value();
  std::string name = j.get_string("q");
  ++queries_;
  Json answer = Json::object();
  answer.set("id", j.get_number("id"));
  auto found = lookup(name);
  if (found) {
    answer.set("a", found->to_string());
    answer.set("ttl_s", ttl_.to_seconds());
  } else {
    answer.set("nx", true);
  }
  net::Message reply;
  reply.src = ip_;
  reply.dst = msg.src;
  reply.src_port = kDnsPort;
  reply.dst_port = msg.src_port;
  reply.payload = answer.dump();
  network_.send(std::move(reply));
}

DnsResolver::DnsResolver(net::Network& network, net::Ipv4Addr self,
                         net::Ipv4Addr server, std::uint16_t client_port)
    : network_(network),
      sim_(network.simulation()),
      self_(self),
      server_(server),
      port_(client_port) {
  network_.listen(self_, port_,
                  [this](const net::Message& msg) { on_message(msg); });
}

DnsResolver::~DnsResolver() {
  network_.unlisten(self_, port_);
  std::vector<std::uint64_t> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, p] : pending_) ids.push_back(id);
  for (std::uint64_t id : ids) {
    finish(id, util::Error::make("cancelled", "resolver destroyed"));
  }
}

void DnsResolver::resolve(const std::string& name, ResolveCallback cb,
                          sim::Duration timeout) {
  auto cached = cache_.find(name);
  if (cached != cache_.end() && cached->second.expires > sim_.now()) {
    ++cache_hits_;
    net::Ipv4Addr ip = cached->second.ip;
    sim_.after(sim::Duration::zero(), [cb = std::move(cb), ip]() {
      cb(ip);  // async like a real resolver, even on cache hit
    });
    return;
  }

  std::uint64_t id = next_id_++;
  ++queries_sent_;
  Pending pending;
  pending.name = name;
  pending.cb = std::move(cb);
  pending.timeout_event = sim_.after(timeout, [this, id]() {
    finish(id, util::Error::make("timeout", "DNS query timed out"));
  });
  pending_[id] = std::move(pending);

  Json query = Json::object();
  query.set("q", name);
  query.set("id", static_cast<unsigned long long>(id));
  net::Message msg;
  msg.src = self_;
  msg.dst = server_;
  msg.src_port = port_;
  msg.dst_port = kDnsPort;
  msg.payload = query.dump();
  network_.send(std::move(msg));
}

void DnsResolver::on_message(const net::Message& msg) {
  auto parsed = Json::parse(msg.payload);
  if (!parsed.ok()) return;
  const Json& j = parsed.value();
  std::uint64_t id = static_cast<std::uint64_t>(j.get_number("id"));
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  if (j.get_bool("nx")) {
    finish(id, util::Error::make("not_found",
                                 "NXDOMAIN: " + it->second.name));
    return;
  }
  auto ip = net::Ipv4Addr::parse(j.get_string("a"));
  if (!ip) {
    finish(id, util::Error::make("bad_response", "malformed DNS answer"));
    return;
  }
  CacheEntry entry;
  entry.ip = *ip;
  entry.expires =
      sim_.now() + sim::Duration::seconds(j.get_number("ttl_s", 60));
  cache_[it->second.name] = entry;
  finish(id, *ip);
}

void DnsResolver::finish(std::uint64_t id,
                         util::Result<net::Ipv4Addr> result) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  pending_.erase(it);
  if (pending.timeout_event != 0) sim_.cancel(pending.timeout_event);
  if (pending.cb) pending.cb(std::move(result));
}

}  // namespace picloud::proto
