// Cost and power accounting — reproduces the paper's Table I and extends it
// with energy economics (§III power measurement, §IV cost discussion).
//
// Table I (paper):
//   Testbed  $112,000 (@$2,000)   10,080W/h (@180W/h)   Cooling: Yes
//   PiCloud  $1,960   (@$35)      196W/h    (@3.5W/h)   Cooling: No
//
// The paper also notes cooling "reportedly accounts for 33% of the total
// power consumption in Cloud DCs"; the extended rows charge that overhead to
// cooled testbeds.
#pragma once

#include <string>
#include <vector>

#include "hw/spec.h"

namespace picloud::cost {

struct CostRow {
  std::string label;
  int units = 0;
  double unit_cost_usd = 0;
  double capex_usd = 0;         // units * unit cost
  double unit_watts = 0;        // nameplate per unit
  double it_power_watts = 0;    // units * unit watts
  bool needs_cooling = false;
  double cooling_watts = 0;     // overhead when cooled
  double total_power_watts = 0; // IT + cooling
};

// Fraction of *total* power that cooling represents in a cooled DC
// (paper §IV: 33%). IT power of P implies total P / (1 - f).
inline constexpr double kCoolingFractionOfTotal = 0.33;

// Builds one row from a device spec at the given scale.
CostRow cost_row(const std::string& label, const hw::DeviceSpec& spec,
                 int units);

// The paper's Table I: 56 commodity x86 servers vs 56 Raspberry Pis.
std::vector<CostRow> table1(int units = 56);

// Energy economics over a time horizon.
double energy_kwh(double watts, double hours);
double energy_cost_usd(double watts, double hours,
                       double usd_per_kwh = 0.15);
// Hours of continuous operation after which the x86 testbed's total spend
// (capex + energy) overtakes the PiCloud's. Returns a negative value when
// the cheaper-capex row is also cheaper in power (never overtaken).
double breakeven_hours(const CostRow& expensive, const CostRow& cheap,
                       double usd_per_kwh = 0.15);

// Renders rows in the paper's table shape.
std::string render_table(const std::vector<CostRow>& rows);

}  // namespace picloud::cost
