#include "cost/cost_model.h"

#include "util/strings.h"

namespace picloud::cost {

CostRow cost_row(const std::string& label, const hw::DeviceSpec& spec,
                 int units) {
  CostRow row;
  row.label = label;
  row.units = units;
  row.unit_cost_usd = spec.unit_cost_usd;
  row.capex_usd = spec.unit_cost_usd * units;
  row.unit_watts = spec.peak_watts;
  row.it_power_watts = spec.peak_watts * units;
  row.needs_cooling = spec.needs_cooling;
  if (spec.needs_cooling) {
    double total = row.it_power_watts / (1.0 - kCoolingFractionOfTotal);
    row.cooling_watts = total - row.it_power_watts;
    row.total_power_watts = total;
  } else {
    row.total_power_watts = row.it_power_watts;
  }
  return row;
}

std::vector<CostRow> table1(int units) {
  return {
      cost_row("Testbed", hw::x86_server(), units),
      cost_row("PiCloud", hw::pi_model_b(), units),
  };
}

double energy_kwh(double watts, double hours) {
  return watts * hours / 1000.0;
}

double energy_cost_usd(double watts, double hours, double usd_per_kwh) {
  return energy_kwh(watts, hours) * usd_per_kwh;
}

double breakeven_hours(const CostRow& expensive, const CostRow& cheap,
                       double usd_per_kwh) {
  double capex_gap = expensive.capex_usd - cheap.capex_usd;
  double power_gap_watts =
      expensive.total_power_watts - cheap.total_power_watts;
  if (power_gap_watts <= 0) return -1.0;
  double usd_per_hour = power_gap_watts / 1000.0 * usd_per_kwh;
  return -capex_gap / usd_per_hour;  // capex gap is positive: already ahead
}

std::string render_table(const std::vector<CostRow>& rows) {
  std::string out;
  out += util::format("%-10s %14s %18s %10s\n", "Server", "Cost",
                      "Power Needs", "Cooling?");
  for (const CostRow& row : rows) {
    out += util::format("%-10s $%-8.0f (@$%.0f) %7.0fW (@%.1fW) %9s\n",
                        row.label.c_str(), row.capex_usd, row.unit_cost_usd,
                        row.it_power_watts, row.unit_watts,
                        row.needs_cooling ? "Yes" : "No");
  }
  return out;
}

}  // namespace picloud::cost
