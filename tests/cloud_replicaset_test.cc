// ReplicaSet reconciliation unit tests.
#include <gtest/gtest.h>

#include "cloud/cloud.h"
#include "cloud/replicaset.h"
#include "util/strings.h"

namespace picloud::cloud {
namespace {

class ReplicaSetCloud : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulation>(61);
    PiCloudConfig config;
    config.racks = 2;
    config.hosts_per_rack = 3;
    config.placement_policy = "round-robin";
    cloud_ = std::make_unique<PiCloud>(*sim_, config);
    cloud_->power_on();
    ASSERT_TRUE(cloud_->await_ready());
    cloud_->run_for(sim::Duration::seconds(5));
  }

  std::unique_ptr<ReplicaSet> make_set(int replicas) {
    ReplicaSet::Config config;
    config.name_prefix = "web";
    config.replicas = replicas;
    config.spec.app_kind = "httpd";
    config.reconcile_period = sim::Duration::seconds(5);
    return std::make_unique<ReplicaSet>(*sim_, cloud_->master(), config);
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<PiCloud> cloud_;
};

TEST_F(ReplicaSetCloud, SpawnsToDeclaredCount) {
  auto tier = make_set(4);
  tier->start();
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 4;
  }));
  EXPECT_EQ(tier->stats().spawned, 4u);
  // Names are slot-stable.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(cloud_->master().instance(util::format("web-%d", i)).ok());
  }
}

TEST_F(ReplicaSetCloud, ReplacesReplicaAfterNodeCrash) {
  auto tier = make_set(3);
  int change_events = 0;
  tier->set_on_change([&]() { ++change_events; });
  tier->start();
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 3;
  }));
  int changes_after_converged = change_events;

  auto victim = cloud_->master().instance("web-1");
  ASSERT_TRUE(victim.ok());
  NodeDaemon* daemon = cloud_->daemon_by_hostname(victim.value().hostname);
  daemon->crash();
  // The reconciler notices (liveness window ~10 s), clears, respawns.
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 3;
  }));
  EXPECT_GE(tier->stats().replaced, 1u);
  auto replacement = cloud_->master().instance("web-1");
  ASSERT_TRUE(replacement.ok());
  EXPECT_NE(replacement.value().hostname, victim.value().hostname);
  EXPECT_GT(change_events, changes_after_converged);
}

TEST_F(ReplicaSetCloud, DetectsContainerLostToPowerCycle) {
  auto tier = make_set(2);
  tier->start();
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 2;
  }));
  // Power-cycle a hosting node quickly: it re-registers as alive, but the
  // replica's container died with it — registry drift the health probe
  // must catch.
  tier->stop();  // pause healing so the drift itself is observable
  auto victim = cloud_->master().instance("web-0");
  ASSERT_TRUE(victim.ok());
  NodeDaemon* daemon = cloud_->daemon_by_hostname(victim.value().hostname);
  daemon->crash();
  daemon->start();
  cloud_->run_for(sim::Duration::seconds(15));
  // The node is back and registered, but the container died with it: the
  // record looks fine, the health probe must say otherwise.
  ASSERT_TRUE(cloud_->master().instance("web-0").ok());
  EXPECT_FALSE(cloud_->master().instance_healthy("web-0"));
  tier->start();
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 2;
  }));
  EXPECT_GE(tier->stats().replaced, 1u);
}

TEST_F(ReplicaSetCloud, SpawnFailuresAreCountedWhenClusterFull) {
  // 6 nodes x 3 containers = 18 slots; ask for 20.
  auto tier = make_set(20);
  tier->start();
  cloud_->run_for(sim::Duration::minutes(3));
  EXPECT_EQ(tier->healthy_replicas(), 18u);
  EXPECT_GT(tier->stats().spawn_failures, 0u);
}

TEST_F(ReplicaSetCloud, StopFreezesTheSet) {
  auto tier = make_set(2);
  tier->start();
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 2;
  }));
  tier->stop();
  auto victim = cloud_->master().instance("web-0");
  ASSERT_TRUE(victim.ok());
  cloud_->daemon_by_hostname(victim.value().hostname)->crash();
  cloud_->run_for(sim::Duration::minutes(2));
  EXPECT_EQ(tier->healthy_replicas(), 1u);  // nothing heals it
}

}  // namespace
}  // namespace picloud::cloud
