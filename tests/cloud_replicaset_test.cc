// ReplicaSet reconciliation unit tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/lb.h"
#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "cloud/replicaset.h"
#include "util/strings.h"

namespace picloud::cloud {
namespace {

class ReplicaSetCloud : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulation>(61);
    PiCloudConfig config;
    config.racks = 2;
    config.hosts_per_rack = 3;
    config.placement_policy = "round-robin";
    cloud_ = std::make_unique<PiCloud>(*sim_, config);
    cloud_->power_on();
    ASSERT_TRUE(cloud_->await_ready());
    cloud_->run_for(sim::Duration::seconds(5));
  }

  std::unique_ptr<ReplicaSet> make_set(int replicas) {
    ReplicaSet::Config config;
    config.name_prefix = "web";
    config.replicas = replicas;
    config.spec.app_kind = "httpd";
    config.reconcile_period = sim::Duration::seconds(5);
    return std::make_unique<ReplicaSet>(*sim_, cloud_->master(), config);
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<PiCloud> cloud_;
};

TEST_F(ReplicaSetCloud, SpawnsToDeclaredCount) {
  auto tier = make_set(4);
  tier->start();
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 4;
  }));
  EXPECT_EQ(tier->stats().spawned, 4u);
  // Names are slot-stable.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(cloud_->master().instance(util::format("web-%d", i)).ok());
  }
}

TEST_F(ReplicaSetCloud, ReplacesReplicaAfterNodeCrash) {
  auto tier = make_set(3);
  int change_events = 0;
  tier->set_on_change([&]() { ++change_events; });
  tier->start();
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 3;
  }));
  int changes_after_converged = change_events;

  auto victim = cloud_->master().instance("web-1");
  ASSERT_TRUE(victim.ok());
  NodeDaemon* daemon = cloud_->daemon_by_hostname(victim.value().hostname);
  daemon->crash();
  // The reconciler notices (liveness window ~10 s), clears, respawns.
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 3;
  }));
  EXPECT_GE(tier->stats().replaced, 1u);
  auto replacement = cloud_->master().instance("web-1");
  ASSERT_TRUE(replacement.ok());
  EXPECT_NE(replacement.value().hostname, victim.value().hostname);
  EXPECT_GT(change_events, changes_after_converged);
}

TEST_F(ReplicaSetCloud, DetectsContainerLostToPowerCycle) {
  auto tier = make_set(2);
  tier->start();
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 2;
  }));
  // Power-cycle a hosting node quickly: it re-registers as alive, but the
  // replica's container died with it — registry drift the health probe
  // must catch.
  tier->stop();  // pause healing so the drift itself is observable
  auto victim = cloud_->master().instance("web-0");
  ASSERT_TRUE(victim.ok());
  NodeDaemon* daemon = cloud_->daemon_by_hostname(victim.value().hostname);
  daemon->crash();
  daemon->start();
  cloud_->run_for(sim::Duration::seconds(15));
  // The node is back and registered, but the container died with it: the
  // record looks fine, the health probe must say otherwise.
  ASSERT_TRUE(cloud_->master().instance("web-0").ok());
  EXPECT_FALSE(cloud_->master().instance_healthy("web-0"));
  tier->start();
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 2;
  }));
  EXPECT_GE(tier->stats().replaced, 1u);
}

TEST_F(ReplicaSetCloud, SpawnFailuresAreCountedWhenClusterFull) {
  // 6 nodes x 3 containers = 18 slots; ask for 20.
  auto tier = make_set(20);
  tier->start();
  cloud_->run_for(sim::Duration::minutes(3));
  EXPECT_EQ(tier->healthy_replicas(), 18u);
  EXPECT_GT(tier->stats().spawn_failures, 0u);
}

TEST_F(ReplicaSetCloud, SetReplicasGrowsAndShrinksSlots) {
  auto tier = make_set(2);
  tier->start();
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 2;
  }));

  tier->set_replicas(4);
  EXPECT_EQ(tier->replicas(), 4);
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 4;
  }));
  EXPECT_TRUE(cloud_->master().instance("web-3").ok());

  // Shrinking deletes the excess slots (highest first) from the registry.
  tier->set_replicas(1);
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 1 &&
           !cloud_->master().instance("web-3").ok() &&
           !cloud_->master().instance("web-1").ok();
  }));
  EXPECT_TRUE(cloud_->master().instance("web-0").ok());
  // And the set stays at the new size through a reconcile generation.
  cloud_->run_for(sim::Duration::seconds(30));
  EXPECT_EQ(tier->healthy_replicas(), 1u);
}

TEST_F(ReplicaSetCloud, LbFollowsEndpointChurnUnderTraffic) {
  // Satellite of the overload tier (DESIGN.md §11): an LB consumes the
  // endpoint-change hook; killing and respawning replicas mid-traffic must
  // converge the LB's pool with no requests routed into the void at
  // quiesce.
  auto tier = make_set(3);
  auto lb_record =
      cloud_->spawn_and_wait({.name = "lb-0", .app_kind = "lb"});
  ASSERT_TRUE(lb_record.ok());
  // Re-resolved on every hook fire: a respawned LB is a new app object.
  auto find_lb = [&]() -> apps::LbApp* {
    auto record = cloud_->master().instance("lb-0");
    if (!record.ok()) return nullptr;
    NodeDaemon* daemon = cloud_->daemon_by_hostname(record.value().hostname);
    if (daemon == nullptr || !daemon->node().running()) return nullptr;
    os::Container* c = daemon->node().find_container("lb-0");
    if (c == nullptr) return nullptr;
    return dynamic_cast<apps::LbApp*>(c->app());
  };
  tier->set_on_change([&]() {
    if (apps::LbApp* lb = find_lb()) lb->set_backends(tier->endpoints());
  });
  tier->start();
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 3;
  }));
  apps::LbApp* lb = find_lb();
  ASSERT_NE(lb, nullptr);
  lb->set_backends(tier->endpoints());

  apps::HttpLoadGen::Params params;
  params.requests_per_sec = 30;
  params.request_timeout = sim::Duration::seconds(1);
  apps::HttpLoadGen gen(cloud_->network(), cloud_->admin_ip(),
                        {lb_record.value().ip}, params, util::Rng(41));
  gen.start();
  cloud_->run_for(sim::Duration::seconds(5));
  std::uint64_t completed_before_churn = gen.completed();

  // Crash a node hosting a web replica (never the LB's own node).
  std::string lb_host = cloud_->master().instance("lb-0").value().hostname;
  NodeDaemon* victim_daemon = nullptr;
  for (int i = 0; i < 3; ++i) {
    auto record = cloud_->master().instance(util::format("web-%d", i));
    ASSERT_TRUE(record.ok());
    if (record.value().hostname != lb_host) {
      victim_daemon = cloud_->daemon_by_hostname(record.value().hostname);
      break;
    }
  }
  ASSERT_NE(victim_daemon, nullptr);
  victim_daemon->crash();

  // The reconciler respawns elsewhere; the hook re-points the LB.
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 3;
  }));
  cloud_->run_for(sim::Duration::seconds(10));
  EXPECT_GT(gen.completed(), completed_before_churn + 100);

  gen.stop();
  cloud_->run_for(sim::Duration::seconds(5));
  // Converged: the LB's healthy pool is exactly the tier's endpoint set,
  // nothing is parked in flight, and every pooled address is live.
  EXPECT_EQ(lb->healthy_backends().size(), 3u);
  EXPECT_EQ(lb->in_flight(), 0u);
  std::vector<net::Ipv4Addr> endpoints = tier->endpoints();
  for (net::Ipv4Addr ip : lb->healthy_backends()) {
    EXPECT_NE(std::find(endpoints.begin(), endpoints.end(), ip),
              endpoints.end());
  }
  EXPECT_EQ(lb->requests_received(),
            lb->responses_ok() + lb->responses_error() +
                lb->dropped_in_flight() + lb->in_flight());
}

TEST_F(ReplicaSetCloud, StopFreezesTheSet) {
  auto tier = make_set(2);
  tier->start();
  ASSERT_TRUE(cloud_->run_until(sim::Duration::minutes(5), [&]() {
    return tier->healthy_replicas() == 2;
  }));
  tier->stop();
  auto victim = cloud_->master().instance("web-0");
  ASSERT_TRUE(victim.ok());
  cloud_->daemon_by_hostname(victim.value().hostname)->crash();
  cloud_->run_for(sim::Duration::minutes(2));
  EXPECT_EQ(tier->healthy_replicas(), 1u);  // nothing heals it
}

}  // namespace
}  // namespace picloud::cloud
