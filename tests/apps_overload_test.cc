// Overload & graceful degradation acceptance tests (DESIGN.md §11): a 10×
// open-loop flash crowd against a 3-replica httpd fleet behind the L7 load
// balancer. Admission control + brownout must keep goodput during the
// crowd ≥ 5× the no-shedding baseline, with every request accounted for
// exactly once and retry amplification inside the token-bucket budget.
#include <gtest/gtest.h>

#include "apps/httpd.h"
#include "apps/kvstore.h"
#include "apps/lb.h"
#include "apps/loadgen.h"
#include "hw/device.h"
#include "net/topology.h"
#include "os/node_os.h"
#include "sim/simulation.h"

namespace picloud::apps {
namespace {

struct FlashWorld {
  sim::Simulation sim;
  net::Fabric fabric{sim};
  net::Network network{sim, fabric};
  net::Topology topo;
  std::vector<std::unique_ptr<hw::Device>> devices;
  std::vector<std::unique_ptr<os::NodeOs>> nodes;
  net::Ipv4Addr client_ip{10, 0, 0, 200};

  explicit FlashWorld(int host_count = 4) {
    topo = net::build_single_rack(fabric, host_count);
    for (int i = 0; i < host_count; ++i) {
      devices.push_back(std::make_unique<hw::Device>(
          i, "pi-r0-" + std::to_string(i), hw::pi_model_b()));
      nodes.push_back(std::make_unique<os::NodeOs>(
          sim, *devices.back(), network, topo.hosts[i]));
      nodes.back()->boot();
      nodes.back()->set_host_ip(net::Ipv4Addr(10, 0, 0, 1 + i));
    }
    network.bind_ip(client_ip, topo.internet);
  }

  net::Ipv4Addr launch(int n, const std::string& name,
                       std::unique_ptr<os::ContainerApp> app) {
    auto created = nodes[n]->create_container({.name = name});
    EXPECT_TRUE(created.ok());
    created.value()->set_app(std::move(app));
    net::Ipv4Addr ip(10, 0, 1,
                     static_cast<std::uint8_t>(10 * (n + 1) +
                                               nodes[n]->container_count()));
    EXPECT_TRUE(created.value()->start(ip).ok());
    return ip;
  }
};

struct FlashResult {
  std::uint64_t goodput_in_window = 0;  // completions during the crowd
  std::uint64_t completed = 0;
  std::uint64_t completed_brownout = 0;
  std::uint64_t shed = 0;  // admission + deadline sheds across the fleet
  bool conserved = true;
  bool budget_ok = true;
  bool brownout_cleared = true;
};

// The acceptance scenario: 3 httpd replicas behind one LB, open-loop base
// rate stepped 10× for 20 s. `admission` off reproduces the pre-overload
// tier (every request straight to run_cpu) as the baseline.
FlashResult run_flash_crowd(bool admission) {
  FlashWorld w;
  HttpdParams hp;
  hp.admission_control = admission;
  hp.cycles_per_request = 2e7;  // ~29 ms alone: the crowd is 3.8× capacity
  std::vector<net::Ipv4Addr> backends;
  std::vector<HttpdApp*> apps;
  for (int i = 0; i < 3; ++i) {
    std::string name = "web" + std::to_string(i);
    backends.push_back(w.launch(i, name, std::make_unique<HttpdApp>(hp)));
    apps.push_back(
        dynamic_cast<HttpdApp*>(w.nodes[i]->find_container(name)->app()));
  }
  auto lb_ip = w.launch(3, "lb", std::make_unique<LbApp>());
  auto* lb = dynamic_cast<LbApp*>(w.nodes[3]->find_container("lb")->app());
  lb->set_backends(backends);

  HttpLoadGen::Params params;
  params.requests_per_sec = 40;
  params.request_timeout = sim::Duration::seconds(1);
  params.shape.kind = TrafficShape::Kind::kFlashCrowd;
  params.shape.at = sim::Duration::seconds(10);
  params.shape.duration = sim::Duration::seconds(20);
  params.shape.multiplier = 10.0;
  HttpLoadGen gen(w.network, w.client_ip, {lb_ip}, params, util::Rng(29));
  gen.start();

  FlashResult r;
  std::uint64_t completed_at_window_start = 0;
  w.sim.after(sim::Duration::seconds(10),
              [&]() { completed_at_window_start = gen.completed(); });
  w.sim.after(sim::Duration::seconds(30), [&]() {
    r.goodput_in_window = gen.completed() - completed_at_window_start;
  });
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(45));
  gen.stop();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(5));

  r.completed = gen.completed();
  r.completed_brownout = gen.completed_brownout();
  for (HttpdApp* app : apps) {
    r.shed += app->shed_admission() + app->shed_deadline();
    if (app->requests_received() !=
        app->served_ok() + app->served_brownout() + app->shed_admission() +
            app->shed_deadline() + app->refused_at_start() +
            app->queue_depth() + static_cast<std::uint64_t>(app->in_service())) {
      r.conserved = false;
    }
    if (app->brownout_active()) r.brownout_cleared = false;
  }
  if (gen.arrivals() != gen.completed() + gen.failed() + gen.timed_out() +
                            gen.breaker_rejected() + gen.in_flight()) {
    r.conserved = false;
  }
  if (lb->requests_received() != lb->responses_ok() + lb->responses_error() +
                                     lb->dropped_in_flight() +
                                     lb->in_flight()) {
    r.conserved = false;
  }
  const double lb_budget = lb->params().retry_budget_ratio *
                               static_cast<double>(lb->requests_forwarded()) +
                           lb->params().retry_budget_burst;
  if (static_cast<double>(lb->attempts_forwarded() -
                          lb->requests_forwarded()) > lb_budget + 1e-6) {
    r.budget_ok = false;
  }
  const double gen_budget =
      gen.params().retry_budget_ratio * static_cast<double>(gen.sent()) +
      gen.params().retry_budget_burst;
  if (static_cast<double>(gen.attempts_sent() - gen.sent()) >
      gen_budget + 1e-6) {
    r.budget_ok = false;
  }
  return r;
}

TEST(FlashCrowd, AdmissionControlKeepsGoodputUnderOverload) {
  FlashResult with_shedding = run_flash_crowd(/*admission=*/true);
  FlashResult baseline = run_flash_crowd(/*admission=*/false);

  // Zero unaccounted requests, both modes.
  EXPECT_TRUE(with_shedding.conserved);
  EXPECT_TRUE(baseline.conserved);
  // Retry amplification stays inside the budget, both modes.
  EXPECT_TRUE(with_shedding.budget_ok);
  EXPECT_TRUE(baseline.budget_ok);

  // The tentpole number: goodput during the crowd with admission control is
  // at least 5× the collapse baseline.
  EXPECT_GE(with_shedding.goodput_in_window,
            5 * std::max<std::uint64_t>(baseline.goodput_in_window, 1));
  EXPECT_GT(with_shedding.goodput_in_window, 2000u);

  // Degradation was graceful and temporary: brownout responses were served
  // during the crowd and the fleet left brownout once it passed.
  EXPECT_GT(with_shedding.completed_brownout, 0u);
  EXPECT_TRUE(with_shedding.brownout_cleared);
}

TEST(FlashCrowd, DiurnalShapeModulatesOfferedLoad) {
  // factor() is a pure function of time-since-start: the sinusoid peaks at
  // t = period/4 and troughs at 3·period/4, and never reaches zero.
  TrafficShape shape;
  shape.kind = TrafficShape::Kind::kDiurnal;
  shape.amplitude = 0.5;
  shape.period = sim::Duration::seconds(100);
  EXPECT_NEAR(shape.factor(sim::Duration::seconds(0)), 1.0, 1e-9);
  EXPECT_NEAR(shape.factor(sim::Duration::seconds(25)), 1.5, 1e-9);
  EXPECT_NEAR(shape.factor(sim::Duration::seconds(75)), 0.5, 1e-9);
  // A full-amplitude trough clamps instead of killing the arrival chain.
  shape.amplitude = 1.0;
  EXPECT_GE(shape.factor(sim::Duration::seconds(75)), 0.05);

  TrafficShape flash;
  flash.kind = TrafficShape::Kind::kFlashCrowd;
  flash.at = sim::Duration::seconds(30);
  flash.duration = sim::Duration::seconds(20);
  flash.multiplier = 10.0;
  EXPECT_NEAR(flash.factor(sim::Duration::seconds(29)), 1.0, 1e-9);
  EXPECT_NEAR(flash.factor(sim::Duration::seconds(30)), 10.0, 1e-9);
  EXPECT_NEAR(flash.factor(sim::Duration::seconds(49)), 10.0, 1e-9);
  EXPECT_NEAR(flash.factor(sim::Duration::seconds(50)), 1.0, 1e-9);

  // Round-trips through JSON (the scenario repro format).
  TrafficShape reloaded = TrafficShape::from_json(flash.to_json());
  EXPECT_EQ(reloaded.kind, TrafficShape::Kind::kFlashCrowd);
  EXPECT_EQ(reloaded.at.ns(), flash.at.ns());
  EXPECT_EQ(reloaded.duration.ns(), flash.duration.ns());
  EXPECT_NEAR(reloaded.multiplier, 10.0, 1e-9);
}

TEST(FlashCrowd, HeavyTailedCostRidesInRequests) {
  // cost_alpha > 1 gives each request a Pareto work multiplier; the server
  // multiplies its per-request cycles by it, so the same offered rate costs
  // visibly more CPU time than constant-cost traffic.
  auto median_latency = [](double alpha) {
    FlashWorld w(2);
    HttpdParams hp;
    hp.cycles_per_request = 4e6;
    auto ip = w.launch(0, "web", std::make_unique<HttpdApp>(hp));
    HttpLoadGen::Params params;
    params.requests_per_sec = 30;
    params.request_timeout = sim::Duration::seconds(2);
    params.shape.cost_alpha = alpha;
    params.shape.cost_mean = 3.0;
    HttpLoadGen gen(w.network, w.client_ip, {ip}, params, util::Rng(31));
    gen.start();
    w.sim.run_until(w.sim.now() + sim::Duration::seconds(20));
    gen.stop();
    EXPECT_GT(gen.completed(), 400u);
    return gen.latencies().median();
  };
  double constant_cost = median_latency(0.0);   // disabled: cost 1
  double heavy_tailed = median_latency(2.0);    // Pareto, mean 3
  EXPECT_GT(heavy_tailed, constant_cost * 1.5);
}

TEST(KvStoreOverload, BoundedQueueShedsInsteadOfCollapsing) {
  FlashWorld w(2);
  KvStoreParams kp;
  kp.queue_capacity = 32;
  kp.service_concurrency = 2;
  auto ip = w.launch(0, "db", std::make_unique<KvStoreApp>(kp));
  auto* app = dynamic_cast<KvStoreApp*>(w.nodes[0]->find_container("db")->app());
  ASSERT_NE(app, nullptr);

  // 300 puts issued back-to-back against a 32-deep queue: the excess sheds
  // with an admission 503 instead of queueing without bound.
  KvClient client(w.network, w.client_ip);
  int ok = 0, shed = 0;
  for (int i = 0; i < 300; ++i) {
    client.put(ip, "k" + std::to_string(i), 1024,
               [&](util::Result<util::Json> r) {
                 if (!r.ok()) return;
                 if (r.value().get_bool("ok")) {
                   ++ok;
                 } else if (r.value().get_string("shed", "") == "admission") {
                   ++shed;
                 }
               });
  }
  w.sim.run();

  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(app->shed_admission(), static_cast<std::uint64_t>(shed));
  // Conservation at quiesce: queue and service slots drained.
  EXPECT_EQ(app->queue_depth(), 0u);
  EXPECT_EQ(app->in_service(), 0);
  EXPECT_EQ(app->ops_received(),
            app->ops_served() + app->ops_rejected() + app->shed_admission() +
                app->shed_deadline() + app->refused_at_start());
}

TEST(KvStoreOverload, BrownoutServesMetadataOnly) {
  FlashWorld w(2);
  KvStoreParams kp;
  kp.queue_capacity = 16;
  kp.service_concurrency = 1;
  kp.cycles_per_op = 5e6;  // slow enough that a burst trips the threshold
  auto ip = w.launch(0, "db", std::make_unique<KvStoreApp>(kp));
  auto* app = dynamic_cast<KvStoreApp*>(w.nodes[0]->find_container("db")->app());
  ASSERT_NE(app, nullptr);

  KvClient client(w.network, w.client_ip);
  bool stored = false;
  client.put(ip, "hot", 1 << 20,
             [&](util::Result<util::Json> r) { stored = r.ok(); });
  w.sim.run();
  ASSERT_TRUE(stored);

  int full_reads = 0, brownout_reads = 0;
  for (int i = 0; i < 40; ++i) {
    client.get(ip, "hot", [&](util::Result<util::Json> r) {
      if (!r.ok() || !r.value().get_bool("ok")) return;
      if (r.value().get_bool("brownout", false)) {
        ++brownout_reads;
      } else {
        ++full_reads;
      }
    });
  }
  w.sim.run();

  // The burst pushed the queue past the brownout threshold: some reads came
  // back metadata-only, and they were cheaper to serve.
  EXPECT_GT(brownout_reads, 0);
  EXPECT_EQ(app->served_brownout(),
            static_cast<std::uint64_t>(brownout_reads));
  // Once the burst drains, brownout exits.
  EXPECT_FALSE(app->brownout_active());
}

}  // namespace
}  // namespace picloud::apps
