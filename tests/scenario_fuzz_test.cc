// Simulation-fuzzing sweep (DESIGN.md §10): every seed derives a random
// cluster + workload + chaos schedule, runs it end to end under the
// cluster-wide invariant checker, and must come out converged and clean.
//
// Tier-1 runs a 25-seed sweep; environment overrides:
//   PICLOUD_FUZZ_SEEDS=N        sweep seeds 1..N (the nightly job uses 250)
//   PICLOUD_FUZZ_SEED_LIST=a,b  sweep exactly these seeds (repro)
//   PICLOUD_FUZZ_TIME=secs      wall-clock budget; the sweep stops adding
//                               seeds once exceeded (at least one runs)
//   PICLOUD_FUZZ_SCENARIO=path  run one scenario re-loaded from a repro file
//   PICLOUD_FUZZ_ARTIFACTS=dir  write failing-scenario repro JSON here
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "testing/runner.h"
#include "testing/scenario.h"

// The fuzz harness lives in picloud::testing, which shadows gtest's
// ::testing inside the picloud namespace; aliasing both and staying in the
// global namespace sidesteps the collision.
namespace testing_ = picloud::testing;
namespace util = picloud::util;

namespace {

std::vector<std::uint64_t> sweep_seeds() {
  if (const char* list = std::getenv("PICLOUD_FUZZ_SEED_LIST")) {
    std::vector<std::uint64_t> seeds;
    std::stringstream ss(list);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) seeds.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    }
    if (!seeds.empty()) return seeds;
  }
  int count = 25;
  if (const char* n = std::getenv("PICLOUD_FUZZ_SEEDS")) {
    count = std::max(1, std::atoi(n));
  }
  std::vector<std::uint64_t> seeds;
  for (int i = 1; i <= count; ++i) seeds.push_back(static_cast<std::uint64_t>(i));
  return seeds;
}

// Writes a failing scenario as a re-loadable repro file when the artifacts
// dir is configured (the nightly CI job uploads these).
void write_repro(const testing_::Scenario& scenario,
                 const testing_::RunReport& report) {
  const char* dir = std::getenv("PICLOUD_FUZZ_ARTIFACTS");
  if (dir == nullptr) return;
  const std::string path =
      std::string(dir) + "/scenario-seed-" + std::to_string(scenario.seed) + ".json";
  std::ofstream out(path);
  if (!out) return;
  util::Json repro = util::Json::object();
  repro.set("scenario", scenario.to_json());
  repro.set("signature", report.signature());
  repro.set("summary", report.summary);
  out << repro.pretty() << "\n";
}

TEST(ScenarioFuzzTest, Sweep) {
  // Single-scenario repro mode: re-load a written artifact and run only it.
  if (const char* path = std::getenv("PICLOUD_FUZZ_SCENARIO")) {
    std::ifstream in(path);
    ASSERT_TRUE(in) << "cannot read " << path;
    std::stringstream buf;
    buf << in.rdbuf();
    auto parsed = util::Json::parse(buf.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const util::Json& root = parsed.value();
    auto loaded = testing_::Scenario::from_json(
        root.has("scenario") ? root.get("scenario") : root);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    testing_::RunReport report = testing_::run_scenario(loaded.value());
    EXPECT_FALSE(report.failed()) << report.summary;
    return;
  }

  // Wall-clock budget: bounds only how many seeds run, never what any one
  // seed does — the simulation itself stays bit-deterministic.
  double budget_s = 0;
  if (const char* t = std::getenv("PICLOUD_FUZZ_TIME")) budget_s = std::atof(t);
  const auto started =
      std::chrono::steady_clock::now();  // picloud-lint: allow(nondeterminism)

  const testing_::ScenarioGenerator generator;
  int ran = 0;
  for (std::uint64_t seed : sweep_seeds()) {
    if (budget_s > 0 && ran > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() -  // picloud-lint: allow(nondeterminism)
          started;
      if (elapsed.count() > budget_s) break;
    }
    const testing_::Scenario scenario = generator.generate(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    const testing_::RunReport report = testing_::run_scenario(scenario);
    ++ran;
    if (report.failed()) {
      write_repro(scenario, report);
      ADD_FAILURE() << report.summary << "scenario:\n"
                    << scenario.to_json().pretty();
    }
  }
  EXPECT_GE(ran, 1);
}

// The scenario is a pure function of the seed.
TEST(ScenarioFuzzTest, GeneratorIsDeterministic) {
  const testing_::ScenarioGenerator generator;
  for (std::uint64_t seed : {1ull, 7ull, 4711ull}) {
    EXPECT_EQ(generator.generate(seed).to_json().dump(),
              generator.generate(seed).to_json().dump());
  }
}

// Repro files round-trip exactly: to_json -> from_json -> to_json.
TEST(ScenarioFuzzTest, ScenarioJsonRoundTrips) {
  const testing_::ScenarioGenerator generator;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const testing_::Scenario original = generator.generate(seed);
    const std::string dumped = original.to_json().dump();
    auto parsed = util::Json::parse(dumped);
    ASSERT_TRUE(parsed.ok());
    auto reloaded = testing_::Scenario::from_json(parsed.value());
    ASSERT_TRUE(reloaded.ok()) << reloaded.error().message;
    EXPECT_EQ(reloaded.value().to_json().dump(), dumped) << "seed " << seed;
  }
}

// The nightly 250-seed sweep's coverage criterion: a healthy share of
// generated scenarios carry a traffic-shape event (flash crowd, diurnal
// curve, or heavy-tailed request cost), and some front their tier with an
// L7 load balancer — otherwise the overload machinery never gets fuzzed.
TEST(ScenarioFuzzTest, GeneratorCoversTrafficShapesAndLbTiers) {
  const testing_::ScenarioGenerator generator;
  int with_shape = 0;
  int with_lb = 0;
  const int kSeeds = 250;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const testing_::Scenario scenario = generator.generate(seed);
    bool shape = false;
    bool lb = false;
    for (const testing_::WorkloadSpec& w : scenario.workloads) {
      shape = shape || w.has_traffic_event();
      lb = lb || w.lb;
    }
    with_shape += shape ? 1 : 0;
    with_lb += lb ? 1 : 0;
  }
  EXPECT_GE(with_shape, kSeeds / 5)
      << "fewer than 20% of scenarios carry a traffic-shape event";
  EXPECT_GE(with_lb, kSeeds / 20);
}

// A hand-built overload scenario — flash crowd against an LB-fronted tier —
// replays bit-identically and clean, like any generated one.
TEST(ScenarioFuzzTest, LbFlashCrowdScenarioReplaysBitIdentically) {
  testing_::Scenario scenario;
  scenario.seed = 99;
  scenario.racks = 1;
  scenario.hosts_per_rack = 5;
  scenario.chaos_window = picloud::sim::Duration::minutes(2);
  testing_::WorkloadSpec web;
  web.app_kind = "httpd";
  web.replicas = 3;
  web.load_rps = 30;
  web.lb = true;
  web.traffic.kind = picloud::apps::TrafficShape::Kind::kFlashCrowd;
  web.traffic.at = picloud::sim::Duration::seconds(20);
  web.traffic.duration = picloud::sim::Duration::seconds(30);
  web.traffic.multiplier = 8.0;
  web.traffic.cost_alpha = 2.0;
  web.traffic.cost_mean = 2.0;
  scenario.workloads.push_back(web);

  const testing_::RunReport a = testing_::run_scenario(scenario);
  EXPECT_FALSE(a.failed()) << a.summary;
  const testing_::RunReport b = testing_::run_scenario(scenario);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.signature(), b.signature());
}

// Same scenario, two runs, bit-identical end state — the property every
// repro workflow rests on.
TEST(ScenarioFuzzTest, SameSeedRunsBitIdentically) {
  const testing_::Scenario scenario = testing_::ScenarioGenerator().generate(3);
  const testing_::RunReport a = testing_::run_scenario(scenario);
  const testing_::RunReport b = testing_::run_scenario(scenario);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.signature(), b.signature());
}

}  // namespace
