// End-to-end integration: the full 56-node Glasgow build, driven entirely
// through the public API — boot, DHCP storm, registration, spawning over
// REST, monitoring, limits, deletion, and the control panel.
#include <gtest/gtest.h>

#include <set>

#include "cloud/cloud.h"
#include "apps/httpd.h"
#include "apps/loadgen.h"
#include "util/strings.h"

namespace picloud {
namespace {

using cloud::PiCloud;
using cloud::PiCloudConfig;

class PiCloudIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulation>(42);
    cloud_ = std::make_unique<PiCloud>(*sim_);
    cloud_->power_on();
    ASSERT_TRUE(cloud_->await_ready(sim::Duration::seconds(120)))
        << "not all 56 nodes registered";
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<PiCloud> cloud_;
};

TEST_F(PiCloudIntegration, AllNodesGetDistinctAddressesAndNames) {
  EXPECT_EQ(cloud_->node_count(), 56u);
  std::set<std::uint32_t> ips;
  for (size_t i = 0; i < cloud_->node_count(); ++i) {
    net::Ipv4Addr ip = cloud_->daemon(i).ip();
    EXPECT_FALSE(ip.is_any());
    ips.insert(ip.value());
    // DNS knows every hostname.
    auto resolved =
        cloud_->master().dns().lookup(cloud_->node(i).hostname());
    ASSERT_TRUE(resolved.has_value());
    EXPECT_EQ(*resolved, ip);
  }
  EXPECT_EQ(ips.size(), 56u) << "duplicate DHCP leases";
}

TEST_F(PiCloudIntegration, MonitorSeesWholeFleetAlive) {
  // Give heartbeats a few periods.
  cloud_->run_for(sim::Duration::seconds(5));
  auto summary = cloud_->master().monitor().summary();
  EXPECT_EQ(summary.nodes_total, 56);
  EXPECT_EQ(summary.nodes_alive, 56);
  EXPECT_GT(summary.power_watts, 0);
}

TEST_F(PiCloudIntegration, SpawnRunsRealHttpdReachableOverFabric) {
  auto record = cloud_->spawn_and_wait({.name = "web-1", .app_kind = "httpd"});
  ASSERT_TRUE(record.ok()) << record.error().message;
  EXPECT_FALSE(record.value().hostname.empty());

  // Hit it with real requests from the admin workstation.
  apps::HttpLoadGen::Params params;
  params.requests_per_sec = 50;
  apps::HttpLoadGen gen(cloud_->network(), cloud_->admin_ip(),
                        {record.value().ip}, params,
                        util::Rng(7));
  gen.start();
  cloud_->run_for(sim::Duration::seconds(10));
  gen.stop();
  EXPECT_GT(gen.completed(), 400u);
  EXPECT_EQ(gen.timed_out(), 0u);
  EXPECT_GT(gen.latencies().median(), 0.0);
}

TEST_F(PiCloudIntegration, SpawnRespectsThreeContainerEnvelope) {
  // 56 nodes x 3 containers: the 169th must be refused.
  int ok = 0;
  int refused = 0;
  for (int i = 0; i < 56 * 3 + 1; ++i) {
    auto record = cloud_->spawn_and_wait(
        {.name = util::format("idle-%03d", i)});
    if (record.ok()) {
      ++ok;
    } else {
      ++refused;
      EXPECT_EQ(record.error().code, "no_capacity");
    }
  }
  EXPECT_EQ(ok, 168);
  EXPECT_EQ(refused, 1);
}

TEST_F(PiCloudIntegration, DeleteFreesCapacityAndName) {
  auto record = cloud_->spawn_and_wait({.name = "ephemeral"});
  ASSERT_TRUE(record.ok());
  util::Status deleted = cloud_->delete_and_wait("ephemeral");
  ASSERT_TRUE(deleted.ok());
  EXPECT_FALSE(cloud_->master().instance("ephemeral").ok());
  // Name and address can be reused.
  auto again = cloud_->spawn_and_wait({.name = "ephemeral"});
  EXPECT_TRUE(again.ok());
}

TEST_F(PiCloudIntegration, PanelRendersDashboardWithFleet) {
  auto record = cloud_->spawn_and_wait({.name = "web-1", .app_kind = "httpd"});
  ASSERT_TRUE(record.ok());
  cloud_->run_for(sim::Duration::seconds(5));
  auto dashboard = cloud_->dashboard();
  ASSERT_TRUE(dashboard.ok()) << dashboard.error().message;
  EXPECT_NE(dashboard.value().find("PiCloud Control Panel"), std::string::npos);
  EXPECT_NE(dashboard.value().find("pi-r0-00"), std::string::npos);
  EXPECT_NE(dashboard.value().find("web-1"), std::string::npos);
}

TEST_F(PiCloudIntegration, SoftLimitsApplyOverRest) {
  auto record = cloud_->spawn_and_wait({.name = "web-1", .app_kind = "httpd"});
  ASSERT_TRUE(record.ok());
  bool done = false;
  util::Json limits = util::Json::object();
  limits.set("cpu_limit", 0.25);
  cloud_->panel().set_vm_limits("web-1", std::move(limits),
                                [&](util::Result<util::Json> result) {
                                  done = true;
                                  ASSERT_TRUE(result.ok());
                                  EXPECT_EQ(result.value().get_number(
                                                "cpu_limit"),
                                            0.25);
                                });
  EXPECT_TRUE(cloud_->run_until(sim::Duration::seconds(10),
                                [&]() { return done; }));
  // The container on the node really is capped.
  cloud::NodeDaemon* daemon =
      cloud_->daemon_by_hostname(record.value().hostname);
  ASSERT_NE(daemon, nullptr);
  os::Container* container = daemon->node().find_container("web-1");
  ASSERT_NE(container, nullptr);
  EXPECT_EQ(container->config().cpu_limit, 0.25);
}

TEST_F(PiCloudIntegration, MigrationMovesInstanceAndPreservesService) {
  auto record = cloud_->spawn_and_wait({.name = "web-1", .app_kind = "httpd"});
  ASSERT_TRUE(record.ok());
  std::string source = record.value().hostname;

  apps::HttpLoadGen::Params params;
  params.requests_per_sec = 20;
  apps::HttpLoadGen gen(cloud_->network(), cloud_->admin_ip(),
                        {record.value().ip}, params, util::Rng(7));
  gen.start();
  cloud_->run_for(sim::Duration::seconds(3));

  auto report = cloud_->migrate_and_wait("web-1", "", /*live=*/true);
  ASSERT_TRUE(report.success) << report.error;
  EXPECT_NE(report.to, source);
  EXPECT_GT(report.bytes_transferred, 0);
  EXPECT_LT(report.downtime.to_seconds(), report.total_duration.to_seconds());

  // Same IP keeps serving on the new host.
  std::uint64_t before = gen.completed();
  cloud_->run_for(sim::Duration::seconds(5));
  gen.stop();
  EXPECT_GT(gen.completed(), before + 50);

  auto updated = cloud_->master().instance("web-1");
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated.value().hostname, report.to);
}

TEST(PiCloudBootOrder, FleetConvergesWhenMasterStartsLate) {
  // Power the Pis before the pimaster exists: DHCP DISCOVERs go unanswered
  // and registration cannot happen. When the master finally starts, the
  // whole fleet must converge without manual help (clients re-discover,
  // daemons retry registration).
  sim::Simulation sim(55);
  cloud::PiCloudConfig config;
  config.racks = 2;
  config.hosts_per_rack = 4;
  PiCloud cloud(sim, config);
  // Bypass power_on() (which starts the master): boot daemons only.
  for (size_t i = 0; i < cloud.node_count(); ++i) cloud.daemon(i).start();
  cloud.run_for(sim::Duration::seconds(30));
  int registered = 0;
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    if (cloud.daemon(i).registered()) ++registered;
  }
  EXPECT_EQ(registered, 0) << "nothing to register with yet";

  // The head node arrives late.
  cloud.master().start();
  EXPECT_TRUE(cloud.await_ready(sim::Duration::seconds(120)));
  EXPECT_EQ(cloud.master().monitor().summary().nodes_total, 8);
}

TEST_F(PiCloudIntegration, NodeCrashIsDetectedByMonitor) {
  cloud_->run_for(sim::Duration::seconds(5));
  std::string victim = cloud_->node(0).hostname();
  cloud_->daemon(0).crash();
  cloud_->run_for(sim::Duration::seconds(15));
  EXPECT_FALSE(cloud_->master().monitor().alive(victim));
  auto summary = cloud_->master().monitor().summary();
  EXPECT_EQ(summary.nodes_alive, 55);
}

}  // namespace
}  // namespace picloud
