// CPU scheduler tests: proportional shares, caps, freeze, work conservation
// — including the property sweep over random task mixes.
#include <gtest/gtest.h>

#include <cmath>

#include "os/scheduler.h"
#include "util/rng.h"

namespace picloud::os {
namespace {

constexpr double kPiHz = 700e6;

TEST(CpuScheduler, SingleTaskRunsAtFullSpeed) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, kPiHz);
  CgroupId g = cpu.create_group();
  bool done = false;
  sim::SimTime finish;
  cpu.run(g, 700e6, [&](bool completed) {
    done = completed;
    finish = sim.now();
  });
  EXPECT_DOUBLE_EQ(cpu.utilization(), 1.0);
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_NEAR(finish.to_seconds(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(cpu.utilization(), 0.0);
}

TEST(CpuScheduler, EqualSharesSplitEvenly) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, kPiHz);
  CgroupId a = cpu.create_group(1024);
  CgroupId b = cpu.create_group(1024);
  sim::SimTime fa, fb;
  cpu.run(a, 350e6, [&](bool) { fa = sim.now(); });
  cpu.run(b, 350e6, [&](bool) { fb = sim.now(); });
  sim.run();
  // Each gets half the core: 350e6 cycles at 350 MHz = 1 s.
  EXPECT_NEAR(fa.to_seconds(), 1.0, 1e-9);
  EXPECT_NEAR(fb.to_seconds(), 1.0, 1e-9);
}

TEST(CpuScheduler, SharesAreProportional) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, kPiHz);
  CgroupId heavy = cpu.create_group(3072);  // 3x weight
  CgroupId light = cpu.create_group(1024);
  cpu.run(heavy, 1e9, [](bool) {});
  cpu.run(light, 1e9, [](bool) {});
  EXPECT_NEAR(cpu.group_rate(heavy) / cpu.group_rate(light), 3.0, 1e-9);
  sim.run();
}

TEST(CpuScheduler, LimitCapsAGroupAndRedistributes) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, kPiHz);
  CgroupId capped = cpu.create_group(1024, /*limit=*/0.25);
  CgroupId free_group = cpu.create_group(1024);
  cpu.run(capped, 1e9, [](bool) {});
  cpu.run(free_group, 1e9, [](bool) {});
  EXPECT_NEAR(cpu.group_rate(capped), 0.25 * kPiHz, 1);
  // Work conservation: the other group absorbs the rest.
  EXPECT_NEAR(cpu.group_rate(free_group), 0.75 * kPiHz, 1);
  sim.run();
}

TEST(CpuScheduler, LimitAloneThrottlesBelowFullUtilization) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, kPiHz);
  CgroupId capped = cpu.create_group(1024, 0.5);
  sim::SimTime finish;
  cpu.run(capped, 350e6, [&](bool) { finish = sim.now(); });
  EXPECT_NEAR(cpu.utilization(), 0.5, 1e-9);
  sim.run();
  EXPECT_NEAR(finish.to_seconds(), 1.0, 1e-9);  // 350e6 at 350 MHz
}

TEST(CpuScheduler, TasksWithinGroupShareItsRate) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, kPiHz);
  CgroupId g = cpu.create_group();
  int done = 0;
  sim::SimTime last;
  for (int i = 0; i < 2; ++i) {
    cpu.run(g, 350e6, [&](bool) {
      ++done;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_NEAR(last.to_seconds(), 1.0, 1e-9);  // both at 350 MHz
}

TEST(CpuScheduler, FreezeStopsProgressThawResumes) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, kPiHz);
  CgroupId g = cpu.create_group();
  sim::SimTime finish;
  cpu.run(g, 700e6, [&](bool) { finish = sim.now(); });  // 1s of work
  EXPECT_EQ(cpu.runnable_tasks(), 1u);
  sim.after(sim::Duration::seconds(0.5), [&]() {
    cpu.freeze_group(g, true);
    EXPECT_EQ(cpu.runnable_tasks(), 0u);  // frozen group's task is parked
  });
  sim.after(sim::Duration::seconds(2.5), [&]() { cpu.freeze_group(g, false); });
  sim.run();
  // 0.5s done, frozen 2s, remaining 0.5s: finishes at 3.0s.
  EXPECT_NEAR(finish.to_seconds(), 3.0, 1e-9);
}

TEST(CpuScheduler, CancelReportsIncomplete) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, kPiHz);
  CgroupId g = cpu.create_group();
  bool completed = true;
  CpuTaskId task = cpu.run(g, 1e12, [&](bool c) { completed = c; });
  cpu.cancel(task);
  sim.run();
  EXPECT_FALSE(completed);
}

TEST(CpuScheduler, DestroyGroupFailsItsTasks) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, kPiHz);
  CgroupId g = cpu.create_group();
  int failed = 0;
  for (int i = 0; i < 3; ++i) {
    cpu.run(g, 1e12, [&](bool c) {
      if (!c) ++failed;
    });
  }
  cpu.destroy_group(g);
  sim.run();
  EXPECT_EQ(failed, 3);
  EXPECT_FALSE(cpu.group_exists(g));
}

TEST(CpuScheduler, CyclesAccountingMatchesWork) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, kPiHz);
  CgroupId g = cpu.create_group();
  cpu.run(g, 123e6, [](bool) {});
  sim.run();
  EXPECT_NEAR(cpu.group_cycles_used(g), 123e6, 1);
}

TEST(CpuScheduler, AverageUtilizationIntegratesBusyTime) {
  sim::Simulation sim;
  CpuScheduler cpu(sim, kPiHz);
  CgroupId g = cpu.create_group();
  cpu.run(g, 700e6, [](bool) {});  // busy exactly 1 s
  sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(4));
  EXPECT_NEAR(cpu.average_utilization(sim.now()), 0.25, 1e-6);
}

// Property: across random mixes of groups/limits/tasks, allocation is
// work-conserving (min(capacity, sum of caps) used), never exceeds capacity,
// and respects per-group caps.
class SchedulerProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerProperty, AllocationInvariants) {
  util::Rng rng(GetParam() * 7919);
  sim::Simulation sim;
  CpuScheduler cpu(sim, kPiHz);

  int group_count = static_cast<int>(rng.uniform_int(1, 6));
  std::vector<CgroupId> groups;
  std::vector<double> caps;
  for (int i = 0; i < group_count; ++i) {
    double shares = rng.uniform(128, 4096);
    double limit = rng.chance(0.5) ? rng.uniform(0.1, 1.0) : 0.0;
    groups.push_back(cpu.create_group(shares, limit));
    caps.push_back(limit > 0 ? limit * kPiHz : kPiHz);
    int tasks = static_cast<int>(rng.uniform_int(1, 4));
    for (int t = 0; t < tasks; ++t) {
      cpu.run(groups.back(), rng.uniform(1e6, 1e9), [](bool) {});
    }
  }

  double allocated = 0;
  double cap_sum = 0;
  for (size_t i = 0; i < groups.size(); ++i) {
    double rate = cpu.group_rate(groups[i]);
    EXPECT_LE(rate, caps[i] * (1 + 1e-9)) << "group over its cap";
    allocated += rate;
    cap_sum += caps[i];
  }
  EXPECT_LE(allocated, kPiHz * (1 + 1e-9));
  // Work conservation up to the binding constraint.
  EXPECT_NEAR(allocated, std::min(kPiHz, cap_sum), kPiHz * 1e-9);
  sim.run();  // drain
}

INSTANTIATE_TEST_SUITE_P(RandomMixes, SchedulerProperty,
                         ::testing::Range(1, 30));

}  // namespace
}  // namespace picloud::os
