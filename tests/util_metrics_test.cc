// Telemetry spine unit tests: registry semantics, log-bucket histogram
// accuracy, canonical snapshot JSON, and the sim-time trace ring.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "util/intern.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace picloud::util {
namespace {

TEST(MetricsRegistry, CountersAreStableAndShared) {
  MetricsRegistry m;
  Counter& a = m.counter("net.fabric.flows_started");
  a.inc();
  a.inc(4);
  // Requesting the same name returns the same instance: independent
  // components contributing to one logical series aggregate naturally.
  Counter& b = m.counter("net.fabric.flows_started");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(m.counter_value("net.fabric.flows_started"), 5u);
  EXPECT_EQ(m.counter_value("never.registered"), 0u);
  EXPECT_TRUE(m.has("net.fabric.flows_started"));
  EXPECT_FALSE(m.has("net.fabric"));
}

TEST(MetricsRegistry, HandlesSurviveLaterRegistrations) {
  MetricsRegistry m;
  Counter* first = &m.counter("a.first");
  // A pile of later registrations must not invalidate the earlier handle
  // (components grab pointers once at construction).
  for (int i = 0; i < 200; ++i) {
    m.counter("b.fill." + std::to_string(i)).inc();
  }
  first->inc(7);
  EXPECT_EQ(m.counter_value("a.first"), 7u);
  EXPECT_EQ(m.size(), 201u);
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  MetricsRegistry m;
  Gauge& g = m.gauge("node.pi-r0-00.cpu_utilization");
  g.set(0.25);
  g.set(0.75);
  g.add(0.05);
  EXPECT_DOUBLE_EQ(m.gauge_value("node.pi-r0-00.cpu_utilization"), 0.80);
}

TEST(LogHistogram, ExactAggregatesAndBoundedQuantileError) {
  LogHistogram h;  // min 1e-6, growth 1.08 -> quantile error <= 8%
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) samples.push_back(static_cast<double>(i));
  double sum = 0;
  for (double v : samples) {
    h.observe(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), sum / 1000.0);
  // Quantiles land within the documented relative-error bound of the exact
  // rank statistic; extremes are exact.
  EXPECT_NEAR(h.median(), 500.0, 500.0 * 0.08);
  EXPECT_NEAR(h.percentile(90), 900.0, 900.0 * 0.08);
  EXPECT_NEAR(h.p99(), 990.0, 990.0 * 0.08);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
}

TEST(LogHistogram, UnderflowAndEmptyBehave) {
  LogHistogram h(/*min_value=*/1.0, /*growth=*/2.0, /*max_buckets=*/8);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);  // empty
  h.observe(-3.0);  // below min_value: counted, sorts before bucket 0
  h.observe(0.0);
  h.observe(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);  // exact even for underflow samples
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.percentile(10), -3.0);  // rank 1 -> underflow -> min
  EXPECT_DOUBLE_EQ(h.percentile(100), 4.0);
}

TEST(LogHistogram, TopBucketClampKeepsMaxExact) {
  LogHistogram h(/*min_value=*/1.0, /*growth=*/2.0, /*max_buckets=*/4);
  h.observe(1e9);  // far beyond the top bucket (span ends at 16)
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  // The quantile saturates at the clamped bucket but never exceeds max().
  EXPECT_LE(h.median(), 1e9);
}

TEST(MetricsRegistry, SnapshotJsonRoundTrip) {
  MetricsRegistry m;
  m.counter("cloud.master.spawns_ok").inc(3);
  m.gauge("node.pi-r0-00.power_watts").set(2.75);
  LogHistogram& h = m.histogram("cloud.migration.downtime_seconds");
  h.observe(0.5);
  h.observe(1.5);

  Json snap = m.snapshot();
  // All three sections are always present, even when empty elsewhere.
  ASSERT_TRUE(snap.has("counters"));
  ASSERT_TRUE(snap.has("gauges"));
  ASSERT_TRUE(snap.has("histograms"));
  EXPECT_EQ(snap.get("counters").get_number("cloud.master.spawns_ok"), 3);
  EXPECT_DOUBLE_EQ(snap.get("gauges").get_number("node.pi-r0-00.power_watts"),
                   2.75);
  const Json& hist =
      snap.get("histograms").get("cloud.migration.downtime_seconds");
  EXPECT_EQ(hist.get_number("count"), 2);
  EXPECT_DOUBLE_EQ(hist.get_number("sum"), 2.0);

  // Canonical form: dump -> parse -> dump is the identity (sorted keys).
  std::string dumped = snap.dump();
  auto parsed = Json::parse(dumped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().dump(), dumped);
}

TEST(MetricsRegistry, SnapshotPrefixFiltersAndStrips) {
  MetricsRegistry m;
  m.counter("node.pi-r0-00.heartbeats_sent").inc(9);
  m.gauge("node.pi-r0-00.cpu_utilization").set(0.5);
  m.counter("node.pi-r0-01.heartbeats_sent").inc(2);
  m.counter("cloud.master.spawns_ok").inc();
  // "node.pi-r0-0" is not a path component boundary of pi-r0-00's scope.
  Json none = m.snapshot("node.pi-r0-0");
  EXPECT_FALSE(none.get("counters").has("0.heartbeats_sent"));

  Json scoped = m.snapshot("node.pi-r0-00");
  EXPECT_EQ(scoped.get("counters").get_number("heartbeats_sent"), 9);
  EXPECT_DOUBLE_EQ(scoped.get("gauges").get_number("cpu_utilization"), 0.5);
  EXPECT_FALSE(scoped.get("counters").has("node.pi-r0-01.heartbeats_sent"));
  EXPECT_FALSE(scoped.get("counters").has("cloud.master.spawns_ok"));
}

TEST(TraceBuffer, RingKeepsNewestAndCountsDrops) {
  TraceBuffer tb(/*capacity=*/4);
  std::int64_t now = 0;
  tb.set_clock([&now]() { return now; });
  for (int i = 0; i < 10; ++i) {
    now = i * 1000;
    PICLOUD_TRACE(tb, "test", "tick", {"i", std::to_string(i)});
  }
  EXPECT_EQ(tb.recorded(), 10u);
  EXPECT_EQ(tb.dropped(), 6u);
  std::vector<TraceEvent> events = tb.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, newest retained.
  EXPECT_EQ(events.front().kv.at(0).second, "6");
  EXPECT_EQ(events.back().kv.at(0).second, "9");
  EXPECT_EQ(events.back().t_ns, 9000);
}

TEST(StringTable, InternDedupesAndRoundTrips) {
  StringTable t;
  Symbol a = t.intern("net.fabric");
  Symbol b = t.intern("os.sched");
  Symbol a2 = t.intern("net.fabric");
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.str(a), "net.fabric");
  EXPECT_EQ(t.str(b), "os.sched");
  EXPECT_EQ(t.symbol_at(a.id()), a);
  EXPECT_EQ(t.find("os.sched"), b);
  EXPECT_FALSE(t.find("never.seen").valid());
  EXPECT_FALSE(Symbol{}.valid());
}

TEST(StringTable, IdsFollowFirstInternOrder) {
  // Ids are dense and assigned in first-intern order — a pure function of
  // the (deterministic) event order, never of hash layout.
  StringTable t;
  EXPECT_EQ(t.intern("zebra").id(), 0u);
  EXPECT_EQ(t.intern("aardvark").id(), 1u);
  EXPECT_EQ(t.intern("zebra").id(), 0u);  // re-intern keeps the first id
  EXPECT_EQ(t.intern("mid").id(), 2u);
}

TEST(StringTable, StoredStringsSurviveTableGrowth) {
  // str() hands out references that components may hold across later
  // interns (deque backing: growth never moves stored strings).
  StringTable t;
  Symbol first = t.intern("stable.key");
  const std::string* addr = &t.str(first);
  for (int i = 0; i < 1000; ++i) t.intern("fill." + std::to_string(i));
  EXPECT_EQ(&t.str(first), addr);
  EXPECT_EQ(t.str(first), "stable.key");
}

TEST(MetricsRegistry, SymbolHandlesAliasStringNames) {
  // The Symbol overloads and the string conveniences reach the same
  // instrument; name_symbol/name_of round-trip the canonical name.
  MetricsRegistry m;
  Symbol s = m.name_symbol("net.fabric.flows_started");
  m.counter(s).inc(3);
  EXPECT_EQ(&m.counter(s), &m.counter("net.fabric.flows_started"));
  m.counter("net.fabric.flows_started").inc(4);
  EXPECT_EQ(m.counter_value("net.fabric.flows_started"), 7u);
  EXPECT_EQ(m.name_of(s), "net.fabric.flows_started");
  // One name, one symbol — whichever instrument kind uses it.
  m.gauge(s).set(1.5);
  EXPECT_DOUBLE_EQ(m.gauge_value("net.fabric.flows_started"), 1.5);
  EXPECT_EQ(m.name_symbol("net.fabric.flows_started"), s);
}

TEST(MetricsRegistry, SnapshotIsRegistrationOrderIndependent) {
  // The dense handle-keyed stores lay instruments out in intern order, but
  // snapshots stay canonically name-sorted: two registries fed the same
  // series in different orders serialize byte-identically.
  MetricsRegistry a;
  a.counter("z.last").inc(2);
  a.gauge("a.first").set(0.5);
  a.counter("m.mid").inc(1);
  MetricsRegistry b;
  b.gauge("a.first").set(0.5);
  b.counter("m.mid").inc(1);
  b.counter("z.last").inc(2);
  EXPECT_EQ(a.snapshot().dump(), b.snapshot().dump());
}

TEST(TraceBuffer, MaterializedEventsRebuildInternedStrings) {
  // Records keep Symbol handles for component/event/kv-keys; materialized
  // TraceEvents carry the full canonical strings again.
  TraceBuffer tb(/*capacity=*/8);
  std::int64_t now = 42;
  tb.set_clock([&now]() { return now; });
  for (int i = 0; i < 3; ++i) {
    PICLOUD_TRACE(tb, "net.fabric", "flow_start", {"flow", std::to_string(i)});
  }
  std::vector<TraceEvent> events = tb.events();
  ASSERT_EQ(events.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(events[i].component, "net.fabric");
    EXPECT_EQ(events[i].event, "flow_start");
    ASSERT_EQ(events[i].kv.size(), 1u);
    EXPECT_EQ(events[i].kv[0].first, "flow");
    EXPECT_EQ(events[i].kv[0].second, std::to_string(i));
    EXPECT_EQ(events[i].t_ns, 42);
  }
}

TEST(TraceBuffer, SinkSeesEverythingAndDisableSkips) {
  TraceBuffer tb(/*capacity=*/2);
  int sunk = 0;
  tb.set_sink([&sunk](const TraceEvent&) { ++sunk; });
  for (int i = 0; i < 5; ++i) PICLOUD_TRACE(tb, "test", "e");
  EXPECT_EQ(sunk, 5);  // the sink outlives ring eviction
  tb.set_enabled(false);
  PICLOUD_TRACE(tb, "test", "e");
  EXPECT_EQ(sunk, 5);
  EXPECT_EQ(tb.recorded(), 5u);
}

}  // namespace
}  // namespace picloud::util
