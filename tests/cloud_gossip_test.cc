// Gossip (peer-to-peer management) tests: epidemic convergence, liveness by
// version staleness, failure detection, cost accounting, and the
// facade-level integration on a full cloud.
#include <gtest/gtest.h>

#include "cloud/cloud.h"
#include "cloud/gossip.h"
#include "net/topology.h"

namespace picloud::cloud {
namespace {

// A standalone mesh over a single-rack fabric (no daemons needed).
struct GossipWorld {
  sim::Simulation sim{5};
  net::Fabric fabric{sim};
  net::Network network{sim, fabric};
  net::Topology topo;
  std::vector<std::unique_ptr<GossipAgent>> agents;
  std::vector<net::Ipv4Addr> ips;
  std::vector<std::string> names;

  explicit GossipWorld(int n, GossipConfig config = {}) {
    topo = net::build_single_rack(fabric, n);
    for (int i = 0; i < n; ++i) {
      names.push_back("pi-" + std::to_string(i));
      ips.push_back(net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i + 1)));
      network.bind_ip(ips[i], topo.hosts[i]);
      agents.push_back(std::make_unique<GossipAgent>(
          network, config, util::Rng(100 + i)));
    }
    // Ring seeding: each node knows only its neighbour.
    for (int i = 0; i < n; ++i) {
      agents[i]->add_seed(names[(i + 1) % n], ips[(i + 1) % n]);
      agents[i]->start(names[i], ips[i]);
    }
  }
};

TEST(Gossip, MembershipConvergesEpidemically) {
  GossipWorld w(8);
  // Each agent starts knowing 2 nodes (self + ring neighbour); after a few
  // rounds everyone knows everyone.
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(10));
  for (auto& agent : w.agents) {
    EXPECT_EQ(agent->known_members(), 8u);
    EXPECT_EQ(agent->live_members(), 8u);
  }
}

TEST(Gossip, LoadFiguresPropagate) {
  GossipWorld w(5);
  w.agents[3]->update_self(0.75, 123 << 20, 2);
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(10));
  auto seen = w.agents[0]->entry("pi-3");
  ASSERT_TRUE(seen.has_value());
  EXPECT_DOUBLE_EQ(seen->cpu, 0.75);
  EXPECT_EQ(seen->mem_used, 123ull << 20);
  EXPECT_EQ(seen->containers, 2);
}

TEST(Gossip, SilentNodeIsSuspectedWithinWindow) {
  GossipConfig config;
  config.suspect_after = sim::Duration::seconds(5);
  GossipWorld w(6, config);
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(10));
  ASSERT_EQ(w.agents[0]->live_members(), 6u);
  // Node 4 goes dark.
  w.agents[4]->stop();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(8));
  EXPECT_FALSE(w.agents[0]->alive("pi-4"));
  EXPECT_FALSE(w.agents[2]->alive("pi-4"));
  // Everyone else still fresh.
  EXPECT_TRUE(w.agents[0]->alive("pi-1"));
  EXPECT_EQ(w.agents[0]->live_members(), 5u);
}

TEST(Gossip, MessageCostIsFanoutBounded) {
  GossipConfig config;
  config.fanout = 2;
  config.period = sim::Duration::seconds(1);
  GossipWorld w(10, config);
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(20));
  for (auto& agent : w.agents) {
    // <= fanout messages per round.
    EXPECT_LE(agent->messages_sent(), agent->rounds() * 2);
    EXPECT_GT(agent->merges_applied(), 0u);
  }
}

TEST(Gossip, RestartedAgentRejoins) {
  GossipConfig config;
  config.suspect_after = sim::Duration::seconds(5);
  GossipWorld w(4, config);
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(8));
  w.agents[2]->stop();
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(8));
  ASSERT_FALSE(w.agents[0]->alive("pi-2"));
  w.agents[2]->start("pi-2", w.ips[2]);
  w.sim.run_until(w.sim.now() + sim::Duration::seconds(8));
  EXPECT_TRUE(w.agents[0]->alive("pi-2"));
}

TEST(Gossip, FullCloudIntegration) {
  sim::Simulation sim(6);
  PiCloudConfig config;
  config.racks = 2;
  config.hosts_per_rack = 4;
  PiCloud cloud(sim, config);
  cloud.power_on();
  ASSERT_TRUE(cloud.await_ready());
  EXPECT_FALSE(cloud.gossip_enabled());
  cloud.start_gossip();
  EXPECT_TRUE(cloud.gossip_enabled());
  cloud.run_for(sim::Duration::seconds(15));
  // Ask an arbitrary Pi for the cluster view: it knows all 8 members.
  GossipAgent* agent = cloud.gossip_agent(5);
  ASSERT_NE(agent, nullptr);
  EXPECT_EQ(agent->known_members(), 8u);
  EXPECT_EQ(agent->live_members(), 8u);
  // Crash a node (and silence its agent): peers notice without pimaster.
  cloud.daemon(0).crash();
  cloud.stop_gossip_agent(0);
  cloud.run_for(sim::Duration::seconds(15));
  EXPECT_FALSE(agent->alive(cloud.node(0).hostname()));
  EXPECT_EQ(agent->live_members(), 7u);
}

}  // namespace
}  // namespace picloud::cloud
