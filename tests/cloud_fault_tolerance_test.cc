// Control-plane fault tolerance: migration crash injection (source and
// destination dying mid-flight), reconciler repair of registry drift
// (lost marking + orphan GC), and end-to-end idempotent spawns.
#include <gtest/gtest.h>

#include "apps/kvstore.h"
#include "apps/loadgen.h"
#include "cloud/cloud.h"
#include "cloud/replicaset.h"
#include "util/strings.h"

namespace picloud {
namespace {

using cloud::PiCloud;
using cloud::PiCloudConfig;
using util::Json;

class FaultCloud : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulation>(29);
    PiCloudConfig config;
    config.racks = 2;
    config.hosts_per_rack = 3;
    cloud_ = std::make_unique<PiCloud>(*sim_, config);
    cloud_->power_on();
    ASSERT_TRUE(cloud_->await_ready());
    cloud_->run_for(sim::Duration::seconds(5));
  }

  // Spawns a kvstore pinned to `host` and loads `mb` megabytes into it so a
  // live migration has real memory to pre-copy.
  net::Ipv4Addr spawn_loaded_kv(const std::string& name,
                                const std::string& host, int mb) {
    auto record = cloud_->spawn_and_wait(
        {.name = name, .app_kind = "kvstore", .hostname = host});
    EXPECT_TRUE(record.ok()) << record.error().message;
    apps::KvClient kv(cloud_->network(), cloud_->admin_ip());
    int stored = 0;
    for (int i = 0; i < mb; ++i) {
      kv.put(record.value().ip, "k" + std::to_string(i), 1 << 20,
             [&](util::Result<Json> r) {
               if (r.ok() && r.value().get_bool("ok")) ++stored;
             });
    }
    cloud_->run_until(sim::Duration::seconds(60),
                      [&]() { return stored == mb; });
    EXPECT_EQ(stored, mb);
    return record.value().ip;
  }

  // Caches the base image on `host` so a later migration's prepare phase is
  // fast (the destination doesn't pull 1.8 GB mid-test).
  void warm_image_cache(const std::string& host) {
    auto warm = cloud_->spawn_and_wait({.name = "warm-" + host,
                                        .app_kind = "",
                                        .hostname = host});
    ASSERT_TRUE(warm.ok()) << warm.error().message;
    ASSERT_TRUE(cloud_->delete_and_wait("warm-" + host).ok());
  }

  // Containers named `name` in a runnable state on powered-on nodes.
  int live_containers_named(const std::string& name) {
    int count = 0;
    for (size_t i = 0; i < cloud_->node_count(); ++i) {
      if (!cloud_->node(i).running()) continue;
      os::Container* c = cloud_->node(i).find_container(name);
      if (c != nullptr && (c->state() == os::ContainerState::kRunning ||
                           c->state() == os::ContainerState::kFrozen)) {
        ++count;
      }
    }
    return count;
  }

  cloud::MigrationReport migrate_with_crash(const std::string& instance,
                                            const std::string& to,
                                            const std::string& crash_host,
                                            sim::Duration crash_after) {
    cloud::NodeDaemon* victim = cloud_->daemon_by_hostname(crash_host);
    EXPECT_NE(victim, nullptr);
    sim_->after(crash_after, [victim]() { victim->crash(); });
    bool done = false;
    cloud::MigrationReport report;
    cloud_->master().migrate_instance(instance, to, /*live=*/true,
                                      [&](const cloud::MigrationReport& r) {
                                        done = true;
                                        report = r;
                                      });
    cloud_->run_until(sim::Duration::seconds(600), [&]() { return done; });
    EXPECT_TRUE(done) << "migration never reported";
    return report;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<PiCloud> cloud_;
};

// ---------------------------------------------------------------------------
// Migration crash injection

TEST_F(FaultCloud, SourceCrashMidPreCopyAborts) {
  spawn_loaded_kv("db", "pi-r0-00", 20);
  warm_image_cache("pi-r1-00");

  // ~50 MB to pre-copy over 100 Mb takes seconds; 1.5 s in is mid-copy.
  auto report = migrate_with_crash("db", "pi-r1-00", "pi-r0-00",
                                   sim::Duration::millis(1500));
  EXPECT_FALSE(report.success);
  EXPECT_FALSE(report.instance_lost);
  EXPECT_EQ(cloud_->master().migrations().stats().aborted_source_dead, 1u);
  EXPECT_EQ(cloud_->master().migrations().in_flight(), 0u);
  // Nothing half-built on the destination.
  cloud::NodeDaemon* dst = cloud_->daemon_by_hostname("pi-r1-00");
  EXPECT_EQ(dst->node().find_container("db"), nullptr);

  // The source-dead reconciliation path takes over: within the liveness
  // window plus a couple of sweeps the record flips to "lost".
  cloud_->run_for(sim::Duration::seconds(60));
  auto record = cloud_->master().instance("db");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().state, "lost");
  EXPECT_GE(cloud_->master().reconciler().stats().marked_lost_dead_node, 1u);
  // A lost instance can still be deleted (registry repair, no node to ask).
  EXPECT_TRUE(cloud_->delete_and_wait("db").ok());
  EXPECT_FALSE(cloud_->master().instance("db").ok());
}

TEST_F(FaultCloud, DestinationCrashMidPreCopyRollsBackToSource) {
  spawn_loaded_kv("db", "pi-r0-00", 20);
  warm_image_cache("pi-r1-00");
  cloud::NodeDaemon* src = cloud_->daemon_by_hostname("pi-r0-00");
  std::uint64_t mem_before = src->node().stats().mem_used;

  auto report = migrate_with_crash("db", "pi-r1-00", "pi-r1-00",
                                   sim::Duration::millis(1500));
  EXPECT_FALSE(report.success);
  EXPECT_FALSE(report.instance_lost);
  EXPECT_GE(cloud_->master().migrations().stats().aborted_dest_dead, 1u);
  EXPECT_EQ(cloud_->master().migrations().in_flight(), 0u);

  // The instance must still be serving on the source, thawed, app attached,
  // with its memory charged exactly once.
  os::Container* c = src->node().find_container("db");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->state(), os::ContainerState::kRunning);
  EXPECT_NE(c->app(), nullptr);
  EXPECT_EQ(src->node().stats().mem_used, mem_before);
  auto record = cloud_->master().instance("db");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().state, "running");
  EXPECT_EQ(record.value().hostname, "pi-r0-00");
  EXPECT_TRUE(cloud_->master().instance_healthy("db"));
  // The abandoned pre-copy flows are gone from the fabric.
  cloud_->run_for(sim::Duration::seconds(10));
  EXPECT_EQ(cloud_->fabric().active_flow_count(), 0u);
}

// Sweeps the destination-crash instant across the whole migration timeline
// (pre-copy, final copy, commit, post-commit darkness). Whatever the
// outcome, exactly one of these holds afterwards: the instance runs on the
// source (rollback), runs on the destination (crash landed after commit
// completed... impossible here since the destination died for good), or the
// record is "lost" — and never is a container duplicated or leaked.
TEST(FaultSweep, DestinationCrashAnywhereNeverDuplicatesOrLeaks) {
  const double offsets_s[] = {0.5, 2.0, 4.0, 6.0, 8.0, 12.0};
  bool saw_abort = false;
  for (double offset : offsets_s) {
    sim::Simulation sim(31);
    PiCloudConfig config;
    config.racks = 2;
    config.hosts_per_rack = 3;
    PiCloud cloud(sim, config);
    cloud.power_on();
    ASSERT_TRUE(cloud.await_ready());
    cloud.run_for(sim::Duration::seconds(5));

    auto db = cloud.spawn_and_wait(
        {.name = "db", .app_kind = "kvstore", .hostname = "pi-r0-00"});
    ASSERT_TRUE(db.ok());
    auto warm = cloud.spawn_and_wait(
        {.name = "warm", .app_kind = "", .hostname = "pi-r1-00"});
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE(cloud.delete_and_wait("warm").ok());
    apps::KvClient kv(cloud.network(), cloud.admin_ip());
    int stored = 0;
    for (int i = 0; i < 20; ++i) {
      kv.put(db.value().ip, "k" + std::to_string(i), 1 << 20,
             [&](util::Result<Json> r) {
               if (r.ok() && r.value().get_bool("ok")) ++stored;
             });
    }
    cloud.run_until(sim::Duration::seconds(60), [&]() { return stored == 20; });

    cloud::NodeDaemon* dst = cloud.daemon_by_hostname("pi-r1-00");
    sim.after(sim::Duration::millis(static_cast<std::int64_t>(offset * 1000)),
              [dst]() { dst->crash(); });
    bool done = false;
    cloud::MigrationReport report;
    cloud.master().migrate_instance(
        "db", "pi-r1-00", /*live=*/true,
        [&](const cloud::MigrationReport& r) {
          done = true;
          report = r;
        },
        cloud::AddressUpdateMode::kArpConvergence);
    cloud.run_until(sim::Duration::seconds(600), [&]() { return done; });
    ASSERT_TRUE(done) << "offset " << offset;
    if (!report.success) saw_abort = true;

    // Let the reconciler converge, then audit the world.
    cloud.run_for(sim::Duration::seconds(60));
    int live = 0;
    for (size_t i = 0; i < cloud.node_count(); ++i) {
      if (!cloud.node(i).running()) continue;
      os::Container* c = cloud.node(i).find_container("db");
      if (c != nullptr && c->state() == os::ContainerState::kRunning) ++live;
    }
    EXPECT_LE(live, 1) << "duplicate instance at offset " << offset;
    EXPECT_EQ(cloud.master().migrations().in_flight(), 0u);
    EXPECT_EQ(cloud.fabric().active_flow_count(), 0u)
        << "leaked flows at offset " << offset;
    auto record = cloud.master().instance("db");
    ASSERT_TRUE(record.ok());
    if (record.value().state == "running") {
      EXPECT_EQ(live, 1) << "running record but no container, offset "
                         << offset;
      EXPECT_TRUE(cloud.master().instance_healthy("db"));
    } else {
      EXPECT_EQ(record.value().state, "lost");
      EXPECT_EQ(live, 0) << "lost record but container alive, offset "
                         << offset;
    }
  }
  EXPECT_TRUE(saw_abort) << "no offset interrupted the migration";
}

// ---------------------------------------------------------------------------
// Reconciler

TEST_F(FaultCloud, ReconcilerMarksDeadNodeInstancesLostAndReplicaSetReplaces) {
  cloud::ReplicaSet::Config rs_config;
  rs_config.name_prefix = "web";
  rs_config.replicas = 2;
  rs_config.spec.app_kind = "httpd";
  cloud::ReplicaSet tier(*sim_, cloud_->master(), rs_config);
  tier.start();
  ASSERT_TRUE(cloud_->run_until(sim::Duration::seconds(600), [&]() {
    return tier.healthy_replicas() == 2;
  }));

  // A standalone instance shares web-0's node: nothing owns it, so only
  // the reconciler can notice its death.
  auto record = cloud_->master().instance("web-0");
  ASSERT_TRUE(record.ok());
  auto solo = cloud_->spawn_and_wait(
      {.name = "solo", .app_kind = "httpd", .hostname = record.value().hostname});
  ASSERT_TRUE(solo.ok());

  // Kill the node; never repair it.
  cloud::NodeDaemon* victim = cloud_->daemon_by_hostname(
      record.value().hostname);
  ASSERT_NE(victim, nullptr);
  victim->crash();

  // The ReplicaSet notices the unhealthy replica, deletes the record and
  // respawns the slot elsewhere.
  ASSERT_TRUE(cloud_->run_until(sim::Duration::seconds(600), [&]() {
    return tier.healthy_replicas() == 2;
  }));
  EXPECT_GE(tier.stats().replaced, 1u);
  auto replacement = cloud_->master().instance("web-0");
  ASSERT_TRUE(replacement.ok());
  EXPECT_NE(replacement.value().hostname, record.value().hostname);
  EXPECT_EQ(replacement.value().state, "running");

  // The orphaned standalone record is the reconciler's job: marked lost
  // once the liveness window (10 s) lapses and a sweep confirms.
  ASSERT_TRUE(cloud_->run_until(sim::Duration::seconds(600), [&]() {
    auto r = cloud_->master().instance("solo");
    return r.ok() && r.value().state == "lost";
  }));
  EXPECT_GE(cloud_->master().reconciler().stats().marked_lost_dead_node, 1u);
}

TEST_F(FaultCloud, ReconcilerDestroysOrphanContainers) {
  // A container no record claims — e.g. the remnant of a spawn whose
  // response was lost. Planted behind the master's back.
  cloud::NodeDaemon* host = cloud_->daemon_by_hostname("pi-r1-01");
  ASSERT_NE(host, nullptr);
  auto ghost = host->node().create_container({.name = "ghost"});
  ASSERT_TRUE(ghost.ok());
  ASSERT_TRUE(ghost.value()->start(net::Ipv4Addr(10, 0, 240, 7)).ok());

  // Needs `confirmations` (2) consecutive sightings plus the DELETE round
  // trip; three sweep periods is plenty.
  cloud_->run_for(sim::Duration::seconds(60));
  os::Container* c = host->node().find_container("ghost");
  EXPECT_TRUE(c == nullptr || c->state() == os::ContainerState::kDestroyed);
  EXPECT_GE(cloud_->master().reconciler().stats().orphans_destroyed, 1u);
}

TEST_F(FaultCloud, ReconcilerSparesClaimedAndInFlightContainers) {
  auto record = cloud_->spawn_and_wait({.name = "web", .app_kind = "httpd"});
  ASSERT_TRUE(record.ok());
  std::uint64_t destroyed_before =
      cloud_->master().reconciler().stats().orphans_destroyed;
  cloud_->run_for(sim::Duration::minutes(3));
  // A legitimately placed instance is never garbage-collected.
  EXPECT_EQ(cloud_->master().reconciler().stats().orphans_destroyed,
            destroyed_before);
  EXPECT_TRUE(cloud_->master().instance_healthy("web"));
}

// ---------------------------------------------------------------------------
// End-to-end idempotent spawn

TEST_F(FaultCloud, DuplicateSpawnRequestsCoalesceAndReplay) {
  Json spec = Json::object();
  spec.set("name", "web-1");
  spec.set("app", "httpd");
  spec.set("idem", "op-123");

  auto post = [&](int* status) {
    cloud_->panel().client().call(
        cloud_->master_ip(), cloud::PiMaster::kPort, proto::Method::kPost,
        "/instances", spec,
        [status](util::Result<proto::HttpResponse> result) {
          *status = result.ok() ? result.value().status : 599;
        },
        sim::Duration::seconds(300));
  };

  // Two copies of the same logical request race: the second coalesces onto
  // the first execution instead of failing with "name in use".
  int first = 0, second = 0;
  post(&first);
  post(&second);
  cloud_->run_until(sim::Duration::seconds(300),
                    [&]() { return first != 0 && second != 0; });
  EXPECT_EQ(first, 201);
  EXPECT_EQ(second, 201);

  // A third copy after completion replays the recorded response.
  int third = 0;
  post(&third);
  cloud_->run_until(sim::Duration::seconds(30), [&]() { return third != 0; });
  EXPECT_EQ(third, 201);

  // Exactly one instance exists; the dedup cache saw one run, one coalesce,
  // one replay.
  EXPECT_EQ(cloud_->master().instances().size(), 1u);
  EXPECT_EQ(cloud_->master().idempotency().stats().admitted, 1u);
  EXPECT_GE(cloud_->master().idempotency().stats().coalesced, 1u);
  EXPECT_GE(cloud_->master().idempotency().stats().replayed, 1u);

  // A different key with the same name is a genuine conflict.
  spec.set("idem", "op-456");
  int conflict = 0;
  post(&conflict);
  cloud_->run_until(sim::Duration::seconds(30),
                    [&]() { return conflict != 0; });
  EXPECT_EQ(conflict, 409);
  EXPECT_EQ(cloud_->master().instances().size(), 1u);
}

}  // namespace
}  // namespace picloud
