// Determinism proof: the same seed must produce bit-identical runs.
//
// Two full mixed-workload cloud runs execute in one process with the same
// seed; every observable — event counts, final clock, per-request latency
// digests, energy, DHCP assignments — is folded into one FNV-1a digest that
// must match exactly. A different seed must yield a different digest (the
// workload really is seed-driven, not constant).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>

#include "apps/loadgen.h"
#include "cloud/cloud.h"

namespace picloud {
namespace {

class Digest {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ULL;  // FNV-1a 64 prime
    }
  }
  void add(double v) { add(std::bit_cast<std::uint64_t>(v)); }
  void add(const std::string& s) {
    for (unsigned char c : s) {
      hash_ ^= c;
      hash_ *= 0x100000001B3ULL;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;  // FNV offset basis
};

struct ScenarioResult {
  std::uint64_t digest = 0;
  // Full MetricsRegistry snapshot, serialized. Canonical JSON with sorted
  // keys: same-seed runs must match this byte for byte (DESIGN.md §9).
  std::string metrics_json;
};

// Boots a 2x4 cloud, runs a mixed workload (httpd + kvstore + batch + HTTP
// load + a delete/respawn cycle), and digests everything observable.
ScenarioResult run_scenario(std::uint64_t seed) {
  sim::Simulation sim(seed);
  cloud::PiCloudConfig config;
  config.racks = 2;
  config.hosts_per_rack = 4;
  cloud::PiCloud cloud(sim, config);
  cloud.power_on();
  EXPECT_TRUE(cloud.await_ready(sim::Duration::seconds(120)));

  auto web = cloud.spawn_and_wait({.name = "web-1", .app_kind = "httpd"});
  auto kv = cloud.spawn_and_wait({.name = "kv-1", .app_kind = "kvstore"});
  auto batch = cloud.spawn_and_wait({.name = "crunch-1", .app_kind = "batch"});
  EXPECT_TRUE(web.ok() && kv.ok() && batch.ok());

  // Seed-driven traffic: the generator's stream forks from the root RNG.
  apps::HttpLoadGen::Params params;
  params.requests_per_sec = 40;
  apps::HttpLoadGen gen(cloud.network(), cloud.admin_ip(), {web.value().ip},
                        params, sim.rng().fork());
  gen.start();
  cloud.run_for(sim::Duration::seconds(20));

  // Churn: delete and reuse a name mid-load.
  EXPECT_TRUE(cloud.delete_and_wait("crunch-1").ok());
  auto again = cloud.spawn_and_wait({.name = "crunch-1", .app_kind = "batch"});
  EXPECT_TRUE(again.ok());
  cloud.run_for(sim::Duration::seconds(10));
  gen.stop();
  cloud.run_for(sim::Duration::seconds(2));

  Digest d;
  d.add(sim.events_executed());
  d.add(static_cast<std::uint64_t>(sim.now().ns()));
  d.add(gen.completed());
  d.add(gen.timed_out());
  d.add(gen.latencies().percentile(50));
  d.add(gen.latencies().percentile(99));
  d.add(cloud.energy_kwh());
  d.add(cloud.current_power_watts());
  auto summary = cloud.master().monitor().summary();
  d.add(static_cast<std::uint64_t>(summary.nodes_alive));
  d.add(summary.power_watts);
  for (size_t i = 0; i < cloud.node_count(); ++i) {
    d.add(static_cast<std::uint64_t>(cloud.daemon(i).ip().value()));
    d.add(cloud.node(i).hostname());
  }
  for (const char* name : {"web-1", "kv-1", "crunch-1"}) {
    auto record = cloud.master().instance(name);
    EXPECT_TRUE(record.ok());
    d.add(record.value().hostname);
    d.add(static_cast<std::uint64_t>(record.value().ip.value()));
  }
  return ScenarioResult{d.value(), sim.metrics().snapshot().dump()};
}

TEST(Determinism, SameSeedSameDigest) {
  EXPECT_EQ(run_scenario(42).digest, run_scenario(42).digest);
}

TEST(Determinism, DifferentSeedDifferentDigest) {
  EXPECT_NE(run_scenario(42).digest, run_scenario(1337).digest);
}

// The telemetry spine is part of the determinism contract: every counter,
// gauge, and histogram any component registered — REST retries, fabric
// flows, scheduler activity, per-node gauges — must serialize to the exact
// same bytes on a same-seed rerun.
TEST(Determinism, SameSeedBitIdenticalMetricsSnapshot) {
  ScenarioResult a = run_scenario(42);
  ScenarioResult b = run_scenario(42);
  EXPECT_FALSE(a.metrics_json.empty());
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

}  // namespace
}  // namespace picloud
