// Memory manager, container lifecycle and NodeOs tests — the paper's
// resource envelope (256 MB, 30 MB idle containers, 3 per Pi).
#include <gtest/gtest.h>

#include "hw/device.h"
#include "net/network.h"
#include "net/topology.h"
#include "os/memory.h"
#include "os/node_os.h"
#include "sim/simulation.h"

namespace picloud::os {
namespace {

// ---------------------------------------------------------------------------
// MemoryManager

TEST(MemoryManager, ChargesAndLimits) {
  MemoryManager mem(100);
  MemGroupId g = mem.create_group(/*limit=*/40);
  EXPECT_EQ(mem.group_limit(g), 40u);
  EXPECT_TRUE(mem.charge(g, 30).ok());
  EXPECT_EQ(mem.group_usage(g), 30u);
  util::Status over_limit = mem.charge(g, 20);
  ASSERT_FALSE(over_limit.ok());
  EXPECT_EQ(over_limit.error().code, "limit");
  mem.uncharge(g, 10);
  EXPECT_TRUE(mem.charge(g, 20).ok());
}

TEST(MemoryManager, NodeCapacityIsHard) {
  MemoryManager mem(100);
  MemGroupId a = mem.create_group();
  MemGroupId b = mem.create_group();
  EXPECT_TRUE(mem.charge(a, 70).ok());
  util::Status oom = mem.charge(b, 40);
  ASSERT_FALSE(oom.ok());
  EXPECT_EQ(oom.error().code, "oom");
  EXPECT_EQ(mem.available(), 30u);
}

TEST(MemoryManager, SoftLimitBelowUsageBlocksNewCharges) {
  MemoryManager mem(100);
  MemGroupId g = mem.create_group();
  EXPECT_TRUE(mem.charge(g, 50).ok());
  mem.set_limit(g, 40);  // below current usage: soft semantics
  EXPECT_EQ(mem.group_usage(g), 50u);  // resident pages stay
  EXPECT_FALSE(mem.charge(g, 1).ok());
  mem.uncharge(g, 20);
  EXPECT_TRUE(mem.charge(g, 5).ok());
}

TEST(MemoryManager, DestroyGroupReleasesEverything) {
  MemoryManager mem(100);
  MemGroupId g = mem.create_group();
  ASSERT_TRUE(mem.charge(g, 60).ok());
  mem.destroy_group(g);
  EXPECT_EQ(mem.used(), 0u);
}

// ---------------------------------------------------------------------------
// Container + NodeOs

struct NodeWorld {
  sim::Simulation sim;
  net::Fabric fabric{sim};
  net::Network network{sim, fabric};
  net::Topology topo;
  hw::Device device{0, "pi-r0-00", hw::pi_model_b()};
  std::unique_ptr<NodeOs> node;

  NodeWorld() {
    topo = net::build_single_rack(fabric, 2);
    node = std::make_unique<NodeOs>(sim, device, network, topo.hosts[0]);
    node->boot();
  }
};

TEST(NodeOs, BootChargesSystemFootprint) {
  NodeWorld w;
  // 256 MB - 16 MB GPU = 240 MB usable; 48 MB system.
  EXPECT_EQ(w.node->memory().capacity(), 240ull << 20);
  EXPECT_EQ(w.node->memory().used(), 48ull << 20);
  EXPECT_TRUE(w.node->running());
}

TEST(NodeOs, ThreeIdleContainersFitTheFourthAppDoesNot) {
  // The paper's envelope: 3 x 30 MB idle containers fit comfortably in
  // 240 MB alongside the 48 MB system; memory-hungry additions do not.
  NodeWorld w;
  for (int i = 0; i < 3; ++i) {
    auto c = w.node->create_container({.name = "c" + std::to_string(i)});
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.value()->start(net::Ipv4Addr(10, 0, 0, 10 + i)).ok());
  }
  EXPECT_EQ(w.node->memory().used(), (48ull + 90ull) << 20);
  // A 4th idle container still squeezes in (138+30=168 < 240)...
  auto c4 = w.node->create_container({.name = "c3"});
  ASSERT_TRUE(c4.ok());
  EXPECT_TRUE(c4.value()->start(net::Ipv4Addr(10, 0, 0, 13)).ok());
  // ...but its app cannot take the 80 MB a real workload wants.
  EXPECT_FALSE(c4.value()->alloc_memory(80ull << 20).ok());
}

TEST(Container, LifecycleTransitions) {
  NodeWorld w;
  auto created = w.node->create_container({.name = "web"});
  ASSERT_TRUE(created.ok());
  Container* c = created.value();
  EXPECT_EQ(c->state(), ContainerState::kStopped);
  EXPECT_FALSE(c->freeze().ok());  // must be running first
  ASSERT_TRUE(c->start(net::Ipv4Addr(10, 0, 0, 10)).ok());
  EXPECT_EQ(c->state(), ContainerState::kRunning);
  EXPECT_FALSE(c->start(net::Ipv4Addr(10, 0, 0, 10)).ok());  // double start
  ASSERT_TRUE(c->freeze().ok());
  EXPECT_EQ(c->state(), ContainerState::kFrozen);
  ASSERT_TRUE(c->thaw().ok());
  ASSERT_TRUE(c->stop().ok());
  EXPECT_EQ(c->state(), ContainerState::kStopped);
  // Stopping released the idle RAM.
  EXPECT_EQ(w.node->memory().used(), 48ull << 20);
}

TEST(Container, StartFailsCleanlyWhenRamExhausted) {
  NodeWorld w;
  // Fill the node: 240 - 48 = 192 MB free; 6 x 30 = 180, 7th fails.
  for (int i = 0; i < 6; ++i) {
    auto c = w.node->create_container({.name = "f" + std::to_string(i)});
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.value()->start(net::Ipv4Addr(10, 0, 0, 20 + i)).ok());
  }
  auto last = w.node->create_container({.name = "straw"});
  ASSERT_TRUE(last.ok());
  util::Status status = last.value()->start(net::Ipv4Addr(10, 0, 0, 30));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "oom");
  EXPECT_EQ(last.value()->state(), ContainerState::kStopped);
}

TEST(Container, FrozenContainerMakesNoCpuProgress) {
  NodeWorld w;
  auto c = w.node->create_container({.name = "c"});
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value()->start(net::Ipv4Addr(10, 0, 0, 10)).ok());
  bool done = false;
  c.value()->run_cpu(7e6, [&](bool completed) { done = completed; });
  ASSERT_TRUE(c.value()->freeze().ok());
  w.sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(60));
  EXPECT_FALSE(done);
  ASSERT_TRUE(c.value()->thaw().ok());
  w.sim.run_until(sim::SimTime::zero() + sim::Duration::seconds(120));
  EXPECT_TRUE(done);
}

TEST(Container, CpuLimitSlowsWork) {
  NodeWorld w;
  auto c = w.node->create_container({.name = "c", .cpu_limit = 0.1});
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value()->start(net::Ipv4Addr(10, 0, 0, 10)).ok());
  sim::SimTime finish;
  c.value()->run_cpu(70e6, [&](bool) { finish = w.sim.now(); });  // 0.1s at full
  w.sim.run();
  EXPECT_NEAR(finish.to_seconds(), 1.0, 1e-6);  // 10x slower under the cap
}

TEST(Container, DescribeCarriesStateAndResources) {
  NodeWorld w;
  auto c = w.node->create_container({.name = "c", .memory_limit = 64ull << 20});
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value()->start(net::Ipv4Addr(10, 0, 0, 10)).ok());
  util::Json j = c.value()->describe();
  EXPECT_EQ(j.get_string("name"), "c");
  EXPECT_EQ(j.get_string("state"), "running");
  EXPECT_EQ(j.get_string("ip"), "10.0.0.10");
  EXPECT_EQ(j.get_number("memory_bytes"), 30.0 * (1 << 20));
}

TEST(NodeOs, CrashDropsEverything) {
  NodeWorld w;
  auto c = w.node->create_container({.name = "c"});
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value()->start(net::Ipv4Addr(10, 0, 0, 10)).ok());
  w.node->set_host_ip(net::Ipv4Addr(10, 0, 0, 1));
  w.node->crash();
  EXPECT_FALSE(w.node->running());
  EXPECT_EQ(w.node->container_count(), 0u);
  EXPECT_FALSE(w.network.resolve(net::Ipv4Addr(10, 0, 0, 1)).has_value());
  EXPECT_FALSE(w.network.resolve(net::Ipv4Addr(10, 0, 0, 10)).has_value());
  EXPECT_EQ(w.device.power().current_watts(), 0.0);
}

TEST(NodeOs, RepeatedCrashBootCyclesDoNotLeakSystemRam) {
  // Regression: crash() must release the system accounting groups — power
  // loss clears RAM — or each crash/boot cycle leaks the 48 MiB footprint
  // until boot cannot charge it (found by the Debug/ASan suite).
  NodeWorld w;
  for (int cycle = 0; cycle < 20; ++cycle) {
    auto c = w.node->create_container({.name = "c"});
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.value()->start(net::Ipv4Addr(10, 0, 0, 10)).ok());
    w.node->crash();
    EXPECT_EQ(w.node->memory().used(), 0u) << "cycle " << cycle;
    w.node->boot();
    EXPECT_EQ(w.node->memory().used(), 48ull << 20) << "cycle " << cycle;
  }
}

TEST(NodeOs, ImageCacheRespectsSdCapacity) {
  NodeWorld w;
  EXPECT_TRUE(w.node->add_image_layer("base:1", 10ull << 30).ok());
  EXPECT_TRUE(w.node->has_image_layer("base:1"));
  // 16 GB card: a second 10 GB layer cannot fit.
  util::Status full = w.node->add_image_layer("huge:1", 10ull << 30);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.error().code, "disk_full");
  // Re-adding a cached layer is a no-op success.
  EXPECT_TRUE(w.node->add_image_layer("base:1", 10ull << 30).ok());
  EXPECT_EQ(w.node->cached_layers(), std::vector<std::string>{"base:1"});
}

TEST(NodeOs, CreateRequiresCachedImage) {
  NodeWorld w;
  auto missing = w.node->create_container({.name = "x", .image_id = "nope:1"});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, "no_image");
}

TEST(NodeOs, StatsReflectLoad) {
  NodeWorld w;
  auto c = w.node->create_container({.name = "c"});
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value()->start(net::Ipv4Addr(10, 0, 0, 10)).ok());
  c.value()->run_cpu(1e12, [](bool) {});
  auto stats = w.node->stats();
  EXPECT_EQ(stats.containers_running, 1);
  EXPECT_DOUBLE_EQ(stats.cpu_utilization, 1.0);
  EXPECT_GT(stats.power_watts, w.device.spec().idle_watts);
}

}  // namespace
}  // namespace picloud::os
