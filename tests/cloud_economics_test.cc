// Economics tests: catalogue, billing, overcommit admission, SLO delivery
// under contention, energy-cost accounting. Also covers the batch app.
#include <gtest/gtest.h>

#include "apps/batch.h"
#include "cloud/cloud.h"
#include "cloud/economics.h"
#include "util/strings.h"

namespace picloud::cloud {
namespace {

class EconomicsCloud : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulation>(29);
    PiCloudConfig config;
    config.racks = 1;
    config.hosts_per_rack = 4;
    config.placement_limits.max_containers_per_node = 6;
    cloud_ = std::make_unique<PiCloud>(*sim_, config);
    cloud_->power_on();
    ASSERT_TRUE(cloud_->await_ready());
    cloud_->run_for(sim::Duration::seconds(5));
  }

  std::unique_ptr<CloudEconomics> make_econ(double overcommit) {
    CloudEconomics::Config config;
    config.overcommit = overcommit;
    auto econ = std::make_unique<CloudEconomics>(*sim_, cloud_->master(),
                                                 config);
    econ->set_energy_source([this]() { return cloud_->energy_kwh(); });
    return econ;
  }

  // Launch synchronously for test convenience.
  util::Result<TenantRecord> launch(CloudEconomics& econ,
                                    const std::string& name,
                                    const std::string& offering,
                                    const std::string& app = "batch") {
    util::Result<TenantRecord> out =
        util::Error::make("timeout", "launch timed out");
    bool done = false;
    econ.launch(name, offering, app, [&](util::Result<TenantRecord> result) {
      done = true;
      out = std::move(result);
    });
    cloud_->run_until(sim::Duration::seconds(120), [&]() { return done; });
    return out;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<PiCloud> cloud_;
};

TEST_F(EconomicsCloud, CatalogueLookup) {
  auto econ = make_econ(1.0);
  EXPECT_TRUE(econ->offering("pi.micro").ok());
  EXPECT_TRUE(econ->offering("pi.large").ok());
  EXPECT_FALSE(econ->offering("pi.mega").ok());
}

TEST_F(EconomicsCloud, BillingAccruesHourly) {
  auto econ = make_econ(1.0);
  auto tenant = launch(*econ, "t1", "pi.small");
  ASSERT_TRUE(tenant.ok()) << tenant.error().message;
  cloud_->run_for(sim::Duration::minutes(30));
  // Half an hour of $0.018/h.
  EXPECT_NEAR(econ->revenue_usd(sim_->now()), 0.009, 0.0005);
  // The books balance: profit is revenue net of the metered energy bill.
  EXPECT_DOUBLE_EQ(
      econ->profit_usd(sim_->now()),
      econ->revenue_usd(sim_->now()) - econ->energy_cost_usd());
  // Terminated tenants stop accruing.
  bool done = false;
  econ->terminate("t1", [&](util::Status status) {
    done = true;
    EXPECT_TRUE(status.ok());
  });
  cloud_->run_until(sim::Duration::seconds(60), [&]() { return done; });
  double frozen = econ->revenue_usd(sim_->now());
  cloud_->run_for(sim::Duration::minutes(30));
  EXPECT_DOUBLE_EQ(econ->revenue_usd(sim_->now()), frozen);
  EXPECT_EQ(econ->active_tenants(), 0u);
}

TEST_F(EconomicsCloud, NoOvercommitSellsAtMostOneCorePerNode) {
  auto econ = make_econ(1.0);
  // 4 nodes x 1.0 core at pi.small (0.5): 8 tenants fit, the 9th is refused.
  int ok = 0;
  int refused = 0;
  for (int i = 0; i < 9; ++i) {
    auto tenant = launch(*econ, util::format("t%d", i), "pi.small");
    if (tenant.ok()) {
      ++ok;
    } else {
      ++refused;
      EXPECT_EQ(tenant.error().code, "no_capacity");
    }
  }
  EXPECT_EQ(ok, 8);
  EXPECT_EQ(refused, 1);
  EXPECT_EQ(econ->rejected_launches(), 1u);
  EXPECT_NEAR(econ->cpu_sold("pi-r0-00"), 1.0, 1e-9);
}

TEST_F(EconomicsCloud, OvercommitSellsMoreAndDilutesSlo) {
  auto econ = make_econ(2.0);
  // Pack one node with 4 half-core tenants (2.0 sold on 1.0 physical).
  for (int i = 0; i < 4; ++i) {
    auto tenant = launch(*econ, util::format("t%d", i), "pi.small");
    ASSERT_TRUE(tenant.ok()) << tenant.error().message;
    ASSERT_EQ(tenant.value().hostname, "pi-r0-00");
  }
  EXPECT_NEAR(econ->cpu_sold("pi-r0-00"), 2.0, 1e-9);
  // Batch tenants are always hungry: each bought 0.5 but four share 1.0.
  cloud_->run_for(sim::Duration::minutes(10));
  auto slo = econ->slo_samples(sim_->now());
  ASSERT_EQ(slo.size(), 4u);
  for (const auto& sample : slo) {
    EXPECT_NEAR(sample.satisfaction(), 0.5, 0.05)
        << sample.instance << " expected ~50% of entitlement";
  }
}

TEST_F(EconomicsCloud, FullEntitlementWithoutOvercommit) {
  auto econ = make_econ(1.0);
  auto tenant = launch(*econ, "solo", "pi.small");
  ASSERT_TRUE(tenant.ok());
  cloud_->run_for(sim::Duration::minutes(10));
  auto slo = econ->slo_samples(sim_->now());
  ASSERT_EQ(slo.size(), 1u);
  EXPECT_GT(slo[0].satisfaction(), 0.97);
}

TEST_F(EconomicsCloud, EnergyCostTracksTheBoard) {
  auto econ = make_econ(1.0);
  cloud_->run_for(sim::Duration::minutes(60));
  double kwh = cloud_->energy_kwh();
  ASSERT_GT(kwh, 0);
  EXPECT_NEAR(econ->energy_cost_usd(), kwh * 0.15, 1e-9);
  // Revenue with one tenant beats the whole fleet's energy bill — the
  // PiCloud margin argument in miniature.
  auto tenant = launch(*econ, "t1", "pi.large");
  ASSERT_TRUE(tenant.ok());
  cloud_->run_for(sim::Duration::minutes(60));
  EXPECT_GT(econ->revenue_usd(sim_->now()), 0.0);
}

TEST(BatchApp, DutyCycleScalesConsumption) {
  sim::Simulation sim(3);
  net::Fabric fabric(sim);
  net::Network network(sim, fabric);
  net::Topology topo = net::build_single_rack(fabric, 2);
  hw::Device device(0, "pi", hw::pi_model_b());
  os::NodeOs node(sim, device, network, topo.hosts[0]);
  node.boot();

  auto full = node.create_container({.name = "full"});
  ASSERT_TRUE(full.ok());
  apps::BatchParams half_params;
  half_params.duty = 0.5;
  auto half = node.create_container({.name = "half"});
  ASSERT_TRUE(half.ok());
  full.value()->set_app(std::make_unique<apps::BatchApp>());
  half.value()->set_app(std::make_unique<apps::BatchApp>(half_params));
  ASSERT_TRUE(full.value()->start(net::Ipv4Addr(10, 0, 0, 10)).ok());
  sim.run_until(sim.now() + sim::Duration::seconds(60));
  double full_cycles = full.value()->cpu_cycles_used();
  ASSERT_TRUE(full.value()->stop().ok());

  ASSERT_TRUE(half.value()->start(net::Ipv4Addr(10, 0, 0, 11)).ok());
  sim.run_until(sim.now() + sim::Duration::seconds(60));
  double half_cycles = half.value()->cpu_cycles_used();
  EXPECT_NEAR(half_cycles / full_cycles, 0.5, 0.1);
  // The apps' own progress accounting moved in step with the cycles burnt.
  auto* full_app = dynamic_cast<apps::BatchApp*>(full.value()->app());
  auto* half_app = dynamic_cast<apps::BatchApp*>(half.value()->app());
  ASSERT_NE(full_app, nullptr);
  ASSERT_NE(half_app, nullptr);
  EXPECT_GT(full_app->cycles_completed(), 0.0);
  EXPECT_GT(half_app->cycles_completed(), 0.0);
  EXPECT_GE(full_app->cycles_completed(), half_app->cycles_completed());
}

}  // namespace
}  // namespace picloud::cloud
